// Micro-benchmarks (google-benchmark): executor throughput per operator,
// feature extraction, MART training internals (leaf-histogram build
// one-pass vs. rescan, sibling subtraction, tree fit) and prediction,
// Zipf sampling, histogram construction, and the serving layer (binary
// snapshots vs. the CSV/text persistence path, zero-copy mmap model load
// vs. the read+decode path, concurrent MonitorService replay, sharded
// tick routing, ingest push throughput and TrainerLoop retrain+publish
// latency) — the building blocks whose cost determines the (low)
// overhead the paper requires of progress estimation.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <numeric>

#include "common/crc32.h"
#include "common/random.h"
#include "common/simd.h"
#include "exec/executor.h"
#include "mart/flat_ensemble.h"
#include "mart/tree.h"
#include "mart/mart.h"
#include "obs/metrics.h"
#include "optimizer/histogram.h"
#include "selection/features.h"
#include "serving/mmap_arena.h"
#include "serving/monitor_service.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/trainer_loop.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

std::unique_ptr<Catalog>& SharedCatalog() {
  static auto catalog = rpe::testing::MakeSmallCatalog();
  return catalog;
}

void BM_TableScan(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  for (auto _ : state) {
    auto plan = FinalizePlan(MakeTableScan("t_fact"), *catalog);
    auto run = ExecutePlan(**plan, *catalog);
    benchmark::DoNotOptimize(run->rows_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TableScan);

void BM_HashJoin(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  for (auto _ : state) {
    auto plan = FinalizePlan(
        MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0, 1),
        *catalog);
    auto run = ExecutePlan(**plan, *catalog);
    benchmark::DoNotOptimize(run->rows_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HashJoin);

void BM_IndexNestedLoop(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  for (auto _ : state) {
    auto plan = FinalizePlan(
        MakeNestedLoopJoin(MakeTableScan("t_fact"),
                           MakeIndexSeek("t_dim", "d_id"), 1),
        *catalog);
    auto run = ExecutePlan(**plan, *catalog);
    benchmark::DoNotOptimize(run->rows_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IndexNestedLoop);

void BM_FeatureExtraction(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  auto plan = FinalizePlan(
      MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0, 1),
      *catalog);
  auto run = ExecutePlan(**plan, *catalog);
  PipelineView view{&run.ValueOrDie(), &run->pipelines[0]};
  for (auto _ : state) {
    auto features = ExtractAllFeatures(view);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_FeatureExtraction);

// Leaf-histogram construction, the inner loop of RegressionTree::Fit:
// the one-pass column-major builder vs. the pre-refactor per-feature
// rescan over a row-major bin matrix. Items = leaf rows, so the reported
// rate is rows/s across all features (ns/row = inverse). Arg(0) builds a
// dense (root-like) leaf, Arg(1) a sparse one (every third example).
struct HistFixture {
  HistFixture() : data(100) {
    Rng rng(13);
    std::vector<double> x(100);
    for (size_t i = 0; i < 20000; ++i) {
      for (auto& v : x) v = rng.NextDouble();
      RPE_CHECK_OK(data.AddExample(x, x[0]));
    }
    binned = std::make_unique<BinnedDataset>(data);
    rows = binned->RowMajorBins();
    residuals.resize(data.num_examples());
    for (auto& r : residuals) r = rng.NextGaussian();
    dense.resize(data.num_examples());
    std::iota(dense.begin(), dense.end(), 0u);
    for (uint32_t i = 0; i < data.num_examples(); i += 3) {
      sparse.push_back(i);
    }
  }
  Dataset data;
  std::unique_ptr<BinnedDataset> binned;
  std::vector<uint8_t> rows;  // row-major bins, the rescan baseline layout
  std::vector<double> residuals;
  std::vector<uint32_t> dense, sparse;
};

HistFixture& Hist() {
  static HistFixture fixture;
  return fixture;
}

void BM_LeafHistBuildRescan(benchmark::State& state) {
  auto& fx = Hist();
  const auto& indices = state.range(0) == 0 ? fx.dense : fx.sparse;
  const size_t nf = fx.data.num_features();
  std::vector<double> sum(fx.binned->total_bins());
  std::vector<uint32_t> cnt(fx.binned->total_bins());
  for (auto _ : state) {
    // The pre-refactor access pattern: one rescan of the leaf's indices
    // per feature, striding across the row-major bin matrix.
    for (size_t f = 0; f < nf; ++f) {
      const size_t off = fx.binned->hist_offset(f);
      std::fill(sum.begin() + static_cast<ptrdiff_t>(off),
                sum.begin() + static_cast<ptrdiff_t>(off +
                                                     fx.binned->num_bins(f)),
                0.0);
      std::fill(cnt.begin() + static_cast<ptrdiff_t>(off),
                cnt.begin() + static_cast<ptrdiff_t>(off +
                                                     fx.binned->num_bins(f)),
                0u);
      for (const uint32_t idx : indices) {
        const uint8_t b = fx.rows[idx * nf + f];
        sum[off + b] += fx.residuals[idx];
        cnt[off + b] += 1;
      }
    }
    benchmark::DoNotOptimize(sum.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(indices.size()));
}
BENCHMARK(BM_LeafHistBuildRescan)->Arg(0)->Arg(1);

void BM_LeafHistBuildOnePass(benchmark::State& state) {
  auto& fx = Hist();
  const auto& indices = state.range(0) == 0 ? fx.dense : fx.sparse;
  HistogramSet hist(*fx.binned);
  for (auto _ : state) {
    BuildLeafHistograms(*fx.binned, fx.residuals, indices, &hist, nullptr);
    benchmark::DoNotOptimize(hist.sums().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(indices.size()));
}
BENCHMARK(BM_LeafHistBuildOnePass)->Arg(0)->Arg(1);

// The sibling-derivation alternative to building the larger child at all:
// one elementwise pass over the slabs, independent of the leaf size. The
// timed loop includes a slab copy (Fit reuses the parent's slabs in place
// instead), so this is an upper bound on the derivation cost.
void BM_LeafHistSubtract(benchmark::State& state) {
  auto& fx = Hist();
  HistogramSet parent(*fx.binned), child(*fx.binned);
  BuildLeafHistograms(*fx.binned, fx.residuals, fx.dense, &parent, nullptr);
  BuildLeafHistograms(*fx.binned, fx.residuals, fx.sparse, &child, nullptr);
  HistogramSet scratch(*fx.binned);
  for (auto _ : state) {
    scratch = parent;
    scratch.SubtractChild(child);
    benchmark::DoNotOptimize(scratch.sums().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.binned->total_bins()));
}
BENCHMARK(BM_LeafHistSubtract);

// One full tree fit over the histogram pipeline (30 leaves, the paper's
// shape) — the unit the TrainerLoop pays per boosting iteration.
void BM_TreeFit(benchmark::State& state) {
  auto& fx = Hist();
  TreeParams params;
  params.max_leaves = 30;
  params.force_direct_histograms = state.range(0) == 1;
  for (auto _ : state) {
    RegressionTree tree = RegressionTree::Fit(*fx.binned, fx.residuals, {},
                                              params, nullptr, nullptr);
    benchmark::DoNotOptimize(tree.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.data.num_examples()));
}
BENCHMARK(BM_TreeFit)->Arg(0)->Arg(1);

void BM_MartTrain1k(benchmark::State& state) {
  Dataset data(50);
  Rng rng(3);
  std::vector<double> x(50);
  for (size_t i = 0; i < 1000; ++i) {
    for (auto& v : x) v = rng.NextDouble();
    RPE_CHECK_OK(data.AddExample(x, x[0] * 0.5 + (x[1] > 0.3 ? 0.2 : 0.0)));
  }
  MartParams params;
  params.num_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MartModel model = MartModel::Train(data, params);
    benchmark::DoNotOptimize(model.num_trees());
  }
}
BENCHMARK(BM_MartTrain1k)->Arg(10)->Arg(50);

// Shared fixture for the inference benchmarks: a 500x50 dataset and a
// 100-tree model (plus an 8-model set mirroring the selection pool).
struct InferenceFixture {
  InferenceFixture() : data(50) {
    Rng rng(3);
    std::vector<double> x(50);
    for (size_t i = 0; i < 500; ++i) {
      for (auto& v : x) v = rng.NextDouble();
      RPE_CHECK_OK(data.AddExample(x, x[0]));
    }
    probe = x;
    MartParams params;
    params.num_trees = 100;
    model = MartModel::Train(data, params);
    flat = FlatEnsemble::Compile(model);
    // The deployed selection configuration of the paper (Fig. 3): eight
    // candidate regressors at M = 200 boosting iterations each.
    params.num_trees = 200;
    for (int m = 0; m < 8; ++m) {
      params.seed = static_cast<uint64_t>(m + 1);
      pool_models.push_back(MartModel::Train(data, params));
    }
    pool_set = FlatEnsembleSet::Compile(pool_models);
  }
  Dataset data;
  std::vector<double> probe;
  MartModel model;
  FlatEnsemble flat;
  std::vector<MartModel> pool_models;  // the per-candidate selection pool
  FlatEnsembleSet pool_set;
};

InferenceFixture& Inference() {
  static InferenceFixture fixture;
  return fixture;
}

void BM_MartPredict(benchmark::State& state) {
  auto& fx = Inference();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.model.Predict(fx.probe));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MartPredict);

void BM_FlatPredict(benchmark::State& state) {
  auto& fx = Inference();
  const std::span<const double> x(fx.probe);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.flat.Predict(x));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatPredict);

void BM_FlatPredictBatch(benchmark::State& state) {
  auto& fx = Inference();
  std::vector<double> out(fx.data.num_examples());
  for (auto _ : state) {
    fx.flat.PredictBatch(fx.data, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_FlatPredictBatch);

// Multi-model scoring, one feature vector per decision: the per-decision
// cost of the selection stack (8 candidate regressors), seed loop vs.
// compiled set. The probe row rotates so the walk pattern varies between
// decisions the way real selection traffic does — repeating one row would
// let the branch predictor memorize the seed path.
void BM_MultiModelPredictSeed(benchmark::State& state) {
  auto& fx = Inference();
  std::vector<double> out(fx.pool_models.size());
  size_t row = 0;
  for (auto _ : state) {
    const auto x = fx.data.ExampleSpan(row);
    row = (row + 1) % fx.data.num_examples();
    for (size_t m = 0; m < fx.pool_models.size(); ++m) {
      out[m] = fx.pool_models[m].Predict(x);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_MultiModelPredictSeed);

void BM_MultiModelPredictFlat(benchmark::State& state) {
  auto& fx = Inference();
  std::vector<double> out(fx.pool_set.num_models());
  size_t row = 0;
  for (auto _ : state) {
    fx.pool_set.PredictAll(fx.data.ExampleSpan(row), out);
    row = (row + 1) % fx.data.num_examples();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_MultiModelPredictFlat);

// SIMD kernel rows (common/simd.h): each benchmark runs once forced to
// the scalar tier and once at the host's detected tier, so a report
// shows the dispatch win side by side. The vector paths are pinned
// bit-identical to scalar by tests/simd_test.cpp; these rows measure the
// only thing a tier is allowed to change — throughput. All SIMD rows are
// allowlisted in scripts/check_bench.py: the detected tier differs
// between the baseline host and CI runners, so their ratios are
// environment, not regressions.
void BM_PredictAllBatch(benchmark::State& state) {
  auto& fx = Inference();
  const simd::Tier prev = simd::ActiveTier();
  simd::ForceTier(state.range(0) != 0 ? simd::DetectedTier()
                                      : simd::Tier::kScalar);
  const size_t n = fx.data.num_examples();
  std::vector<const double*> rows(n);
  for (size_t r = 0; r < n; ++r) {
    rows[r] = fx.data.ExampleSpan(r).data();
  }
  std::vector<double> out(n * fx.pool_set.num_models());
  for (auto _ : state) {
    fx.pool_set.PredictAllBatch(rows, out);
    benchmark::DoNotOptimize(out.data());
  }
  simd::ForceTier(prev);
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(n * fx.pool_set.num_models()));
}
BENCHMARK(BM_PredictAllBatch)->Arg(0)->Arg(1);

// Args: (tier, column shape) — shape 0 is a random column (run detection
// must not lose), shape 1 a sorted/binned-monotone column (long uniform
// runs, where the register-accumulator path wins).
void BM_AccumulateColumnDense(benchmark::State& state) {
  const size_t n = size_t{1} << 16;
  const bool sorted = state.range(1) != 0;
  std::vector<uint8_t> col(n);
  std::vector<double> res(n);
  Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    res[i] = rng.NextGaussian();
    col[i] = sorted ? static_cast<uint8_t>((i * 256) / n)
                    : static_cast<uint8_t>(rng.NextDouble() * 256.0);
  }
  std::vector<double> sum(256, 0.0);
  std::vector<uint32_t> cnt(256, 0);
  const simd::Tier prev = simd::ActiveTier();
  simd::ForceTier(state.range(0) != 0 ? simd::DetectedTier()
                                      : simd::Tier::kScalar);
  for (auto _ : state) {
    AccumulateColumnDense(col.data(), res.data(), n, sum.data(),
                          cnt.data());
    benchmark::DoNotOptimize(sum.data());
  }
  simd::ForceTier(prev);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AccumulateColumnDense)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

// The snapshot-checksum kernel over a 1 MiB buffer: SW is the slicing-
// by-8 scalar reference, HW the dispatched (PCLMUL-folded) path.
void Crc32Bench(benchmark::State& state, simd::Tier tier) {
  std::vector<unsigned char> buf(size_t{1} << 20);
  Rng rng(5);
  for (auto& b : buf) {
    b = static_cast<unsigned char>(rng.NextDouble() * 256.0);
  }
  const simd::Tier prev = simd::ActiveTier();
  simd::ForceTier(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(buf.data(), buf.size()));
  }
  simd::ForceTier(prev);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(buf.size()));
}
void BM_Crc32SW(benchmark::State& state) {
  Crc32Bench(state, simd::Tier::kScalar);
}
BENCHMARK(BM_Crc32SW);
void BM_Crc32HW(benchmark::State& state) {
  Crc32Bench(state, simd::DetectedTier());
}
BENCHMARK(BM_Crc32HW);

// Observability hot paths: what one serving-tier accrual costs. Batches
// of 64 ops per iteration amortize the benchmark loop overhead so the
// per-op figure is the fetch_add itself, not the harness.
void BM_MetricsIncrement(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench_hits_total");
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) counter->Inc();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_MetricsIncrement);

void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* hist = registry.GetHistogram("bench_latency_seconds");
  uint64_t v = 12345;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      hist->Record(v);
      v = v * 2862933555777941757ull + 3037000493ull;  // span the octaves
      v &= (1u << 24) - 1;
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_HistogramRecord);

// Serving-layer fixture: a synthetic record set at full schema arity, a
// trained selector stack, and a few executed runs to replay — the
// ingredients of the snapshot and MonitorService benchmarks.
struct ServingFixture {
  ServingFixture() : records(rpe::testing::RandomRecords(200, 17)) {
    records_csv = RecordsToCsv(records);
    records_snapshot = EncodeRecordBatch(records);

    MartParams params;
    params.num_trees = 20;
    params.tree.max_leaves = 16;
    stack = std::make_shared<const SelectorStack>(
        SelectorStack::Train(records, PoolOriginalThree(), params));
    stack_snapshot = EncodeSelectorStack(*stack);
    // Per-process name: concurrent or cross-user runs must not collide
    // on a shared temp file (writer-vs-mmap races, stale ownership).
    stack_path = std::filesystem::temp_directory_path().string() +
                 "/rpe_bench_micro_stack." + std::to_string(::getpid()) +
                 ".rpsn";
    RPE_CHECK_OK(SaveSelectorStack(*stack, stack_path));
    for (const EstimatorSelector* sel :
         {&stack->static_selector, &stack->dynamic_selector}) {
      for (const MartModel& m : sel->models()) {
        model_texts.push_back(m.Serialize());
      }
    }

    auto& catalog = SharedCatalog();
    auto add_run = [&](std::unique_ptr<PlanNode> root) {
      auto plan = FinalizePlan(std::move(root), *catalog);
      auto run = ExecutePlan(**plan, *catalog);
      plans.push_back(std::move(plan).ValueOrDie());
      runs.push_back(std::move(run).ValueOrDie());
    };
    add_run(MakeTableScan("t_fact"));
    add_run(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                         1));
    add_run(MakeNestedLoopJoin(MakeTableScan("t_fact"),
                               MakeIndexSeek("t_dim", "d_id"), 1));
    for (size_t s = 0; s < 64; ++s) {
      session_runs.push_back(&runs[s % runs.size()]);
    }
  }

  ~ServingFixture() { std::remove(stack_path.c_str()); }

  std::vector<PipelineRecord> records;
  std::string records_csv;
  std::string records_snapshot;
  std::shared_ptr<const SelectorStack> stack;
  std::string stack_snapshot;
  std::string stack_path;
  std::vector<std::string> model_texts;
  std::vector<std::unique_ptr<PhysicalPlan>> plans;
  std::vector<QueryRunResult> runs;
  std::vector<const QueryRunResult*> session_runs;
};

ServingFixture& Serving() {
  static ServingFixture fixture;
  return fixture;
}

// The "including read/write" cost of Table 7: record persistence via the
// text CSV path vs. the binary snapshot path.
void BM_RecordsCsvEncode(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RecordsToCsv(fx.records));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.records.size()));
}
BENCHMARK(BM_RecordsCsvEncode);

void BM_RecordsCsvDecode(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    auto records = RecordsFromCsv(fx.records_csv);
    benchmark::DoNotOptimize(records->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.records.size()));
}
BENCHMARK(BM_RecordsCsvDecode);

void BM_RecordsSnapshotEncode(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeRecordBatch(fx.records));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.records.size()));
}
BENCHMARK(BM_RecordsSnapshotEncode);

void BM_RecordsSnapshotDecode(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    auto records = DecodeRecordBatch(fx.records_snapshot);
    benchmark::DoNotOptimize(records->size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.records.size()));
}
BENCHMARK(BM_RecordsSnapshotDecode);

// Model (re)load for warm restarts: text Deserialize of every model of the
// stack vs. one binary snapshot decode (which includes recompiling the
// flat scoring buffers).
void BM_SelectorStackTextDecode(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    size_t trees = 0;
    for (const std::string& text : fx.model_texts) {
      auto model = MartModel::Deserialize(text);
      trees += model->num_trees();
    }
    benchmark::DoNotOptimize(trees);
  }
}
BENCHMARK(BM_SelectorStackTextDecode);

void BM_SelectorStackSnapshotDecode(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    auto stack = DecodeSelectorStack(fx.stack_snapshot);
    benchmark::DoNotOptimize(stack->static_selector.models().size());
  }
}
BENCHMARK(BM_SelectorStackSnapshotDecode);

// Model load for warm restarts, full-file paths: the ordinary read
// (file read + model decode + flat recompilation) vs. the zero-copy mmap
// arena (map + CRC + alias the compiled slabs — no tree decode, no slab
// memcpy). Same file, bit-identical scores; the delta is the per-publish
// load cost the serving tier pays.
void BM_SnapshotReadLoad(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    auto stack = LoadSelectorStack(fx.stack_path);
    RPE_CHECK(stack.ok());
    benchmark::DoNotOptimize(stack->static_selector.models().size());
  }
}
BENCHMARK(BM_SnapshotReadLoad);

void BM_SnapshotMmapLoad(benchmark::State& state) {
  auto& fx = Serving();
  for (auto _ : state) {
    auto loaded = LoadSelectorStackMmap(fx.stack_path);
    RPE_CHECK(loaded.ok());
    RPE_CHECK(loaded->zero_copy);  // the row measures the aliasing path
    benchmark::DoNotOptimize(loaded->stack->static_selector.pool().size());
  }
}
BENCHMARK(BM_SnapshotMmapLoad);

// Sharded session routing: 256 open sessions driven to completion with
// budgeted ticks across 1/4/16 shards. Session setup (open/decide) is
// excluded; items = observations scored per full drain, so the rate is
// the tick-path serving throughput at each shard count.
void BM_ShardedTick(benchmark::State& state) {
  auto& fx = Serving();
  const size_t num_shards = static_cast<size_t>(state.range(0));
  constexpr size_t kSessions = 256;
  int64_t observations = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    observations += static_cast<int64_t>(
        fx.session_runs[s % fx.session_runs.size()]->observations.size());
  }
  for (auto _ : state) {
    state.PauseTiming();
    ShardedMonitorService::Options options;
    options.num_shards = num_shards;
    auto service =
        std::make_unique<ShardedMonitorService>(fx.stack, options);
    for (size_t s = 0; s < kSessions; ++s) {
      RPE_CHECK(
          service->OpenSession(fx.session_runs[s % fx.session_runs.size()])
              .ok());
    }
    state.ResumeTiming();
    while (service->Tick(/*max_steps=*/64) > 0) {
    }
    benchmark::DoNotOptimize(service->num_open_sessions());
    state.PauseTiming();
    service.reset();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * observations);
}
BENCHMARK(BM_ShardedTick)->Arg(1)->Arg(4)->Arg(16);

// Concurrent monitor serving: 64 sessions replayed through the service
// (sharded on the global pool); items = observations scored.
void BM_MonitorServiceReplayAll64(benchmark::State& state) {
  auto& fx = Serving();
  MonitorService service(fx.stack);
  int64_t observations = 0;
  for (auto _ : state) {
    const auto series = service.ReplayAll(fx.session_runs);
    observations = 0;
    for (const auto& s : series) {
      observations += static_cast<int64_t>(s.size());
    }
    benchmark::DoNotOptimize(series.data());
  }
  state.SetItemsProcessed(state.iterations() * observations);
}
BENCHMARK(BM_MonitorServiceReplayAll64);

// Online-learning loop: producer-side ingest throughput (Push with a
// consumer keeping the queue drained) — the per-record overhead a running
// executor pays to stream training data out.
void BM_IngestQueuePush(benchmark::State& state) {
  auto& fx = Serving();
  RecordIngestQueue queue(4096);
  std::vector<PipelineRecord> drain;
  size_t i = 0;
  for (auto _ : state) {
    const size_t idx = i++ % fx.records.size();
    if (!queue.Push(fx.records[idx])) {
      // Queue full: batch-drain (amortized consumer cost) and retry the
      // dropped record.
      drain.clear();
      queue.DrainBatch(&drain, 4096);
      queue.Push(fx.records[idx]);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IngestQueuePush);

// One full retrain + publish cycle of the TrainerLoop (drain a
// threshold's worth of records, retrain the selector stack, hot-swap it
// into the service) — the latency budget of keeping models current.
void BM_TrainerLoopRetrain(benchmark::State& state) {
  auto& fx = Serving();
  MonitorService service(fx.stack);
  RecordIngestQueue queue(4096);
  TrainerLoop::Options options;
  options.retrain_min_records = 64;
  options.min_corpus = 64;
  options.max_corpus = 512;
  options.pool = PoolOriginalThree();
  options.params.num_trees = 20;
  options.params.tree.max_leaves = 16;
  TrainerLoop trainer(&queue, &service, options);
  size_t i = 0;
  for (auto _ : state) {
    for (size_t k = 0; k < options.retrain_min_records; ++k) {
      queue.Push(fx.records[i++ % fx.records.size()]);
    }
    trainer.RunOnce();  // drains the batch, retrains, publishes
    benchmark::DoNotOptimize(service.model_generation());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(options.retrain_min_records));
}
BENCHMARK(BM_TrainerLoopRetrain);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(100000, 1.0);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_HistogramBuild(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  const Table* fact = *catalog->GetTable("t_fact");
  for (auto _ : state) {
    EquiDepthHistogram hist(*fact, 1);
    benchmark::DoNotOptimize(hist.distinct_count());
  }
}
BENCHMARK(BM_HistogramBuild);

}  // namespace
}  // namespace rpe

BENCHMARK_MAIN();
