// Differential bit-exactness suite for the SIMD dispatch layer
// (common/simd.h) and its three kernels: the PCLMUL CRC-32
// (common/crc32.h), the run-detecting histogram accumulator
// (mart/tree.h AccumulateColumnDense), and the AVX2 batched QuickScorer
// (mart/flat_ensemble.h PredictAllBatch). The repo's determinism contract
// says a SIMD tier may only change throughput, never a bit of output —
// every test here forces each tier in turn and asserts the vector path is
// bitwise identical to the always-compiled scalar reference, on seeded
// random inputs plus the adversarial shapes (empty/tail sizes, NaN, ±inf,
// denormals, constant and 255-bin columns).
//
// Randomized cases are replayable like the fuzz suites: every assertion
// prints its case seed, and
//   RPE_FUZZ_SEED=<seed> RPE_FUZZ_CASES=1 ./rpe_tests --gtest_filter='Simd*'
// reruns exactly that case. The suite also verifies the dispatch facade
// itself (RPE_SIMD parsing, forced-tier kernel reports), which is what
// the RPE_SIMD=off CI leg leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/simd.h"
#include "mart/flat_ensemble.h"
#include "mart/tree.h"
#include "serving/mmap_arena.h"
#include "serving/snapshot.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::RandomRecords;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// Uniform double in [0, 1) from the replay PRNG.
double NextUnit(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// Force a tier for one scope, restoring the previous binding on exit so
/// test order never leaks a tier into another test (or into the RPE_SIMD
/// startup state the EnvOverride test asserts on).
class TierGuard {
 public:
  explicit TierGuard(simd::Tier tier) : prev_(simd::ActiveTier()) {
    simd::ForceTier(tier);
  }
  ~TierGuard() { simd::ForceTier(prev_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  simd::Tier prev_;
};

const simd::Tier kAllTiers[] = {simd::Tier::kScalar, simd::Tier::kSse42,
                                simd::Tier::kAvx2};

bool BitEq(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Bit-equality with NaNs compared as a class. NaN *payload/sign* bits
/// are outside the determinism contract: IEEE 754 leaves NaN propagation
/// through `+` unspecified — x86 addsd keeps the first operand's payload,
/// and which operand the compiler puts first for a commutative `+`
/// differs even between -O0 and -O2 builds of the same scalar loop (seen
/// live: quiet_NaN vs the -NaN from inf + -inf surviving a histogram
/// sum). Every NaN compares unequal everywhere downstream regardless of
/// payload, and nothing the repo serializes contains NaNs, so the
/// differential contract for sums over hostile inputs is: bit-equal,
/// except any NaN matches any NaN.
bool BitEqModuloNaN(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Dispatch facade
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ParseTierAcceptsTheDocumentedNames) {
  simd::Tier tier;
  ASSERT_TRUE(simd::ParseTier("off", &tier));
  EXPECT_EQ(tier, simd::Tier::kScalar);
  ASSERT_TRUE(simd::ParseTier("scalar", &tier));
  EXPECT_EQ(tier, simd::Tier::kScalar);
  ASSERT_TRUE(simd::ParseTier("sse42", &tier));
  EXPECT_EQ(tier, simd::Tier::kSse42);
  ASSERT_TRUE(simd::ParseTier("avx2", &tier));
  EXPECT_EQ(tier, simd::Tier::kAvx2);
  EXPECT_FALSE(simd::ParseTier("", &tier));
  EXPECT_FALSE(simd::ParseTier("AVX2", &tier));
  EXPECT_FALSE(simd::ParseTier("sse4.2", &tier));
  EXPECT_FALSE(simd::ParseTier("neon", &tier));
}

TEST(SimdDispatch, ForceTierClampsToDetectedAndRebindsEveryKernel) {
  const simd::Tier detected = simd::DetectedTier();
  for (simd::Tier tier : kAllTiers) {
    TierGuard guard(tier);
    const simd::Tier want = std::min(tier, detected);
    EXPECT_EQ(simd::ActiveTier(), want);
    const std::string report = simd::KernelReport();
    EXPECT_EQ(report.find(std::string("tier=") + simd::TierName(want)), 0u)
        << report;
    // Every registered kernel must appear in the report with a concrete
    // implementation name (the registrar wiring, not string cosmetics).
    for (const char* kernel : {"accumulate=", "batch_score=", "crc32="}) {
      EXPECT_NE(report.find(kernel), std::string::npos)
          << "missing " << kernel << " in: " << report;
    }
    if (want == simd::Tier::kScalar) {
      EXPECT_NE(report.find("accumulate=scalar"), std::string::npos)
          << report;
      EXPECT_NE(report.find("batch_score=scalar"), std::string::npos)
          << report;
      EXPECT_NE(report.find("crc32=slice8"), std::string::npos) << report;
    }
    if (want >= simd::Tier::kSse42) {
      EXPECT_NE(report.find("crc32=pclmul"), std::string::npos) << report;
    }
    if (want == simd::Tier::kAvx2) {
      EXPECT_NE(report.find("accumulate=avx2"), std::string::npos) << report;
      EXPECT_NE(report.find("batch_score=avx2"), std::string::npos)
          << report;
    }
  }
}

/// With RPE_SIMD set in the environment (the CI `RPE_SIMD=off` leg), the
/// startup parse must actually have taken effect — this is the test that
/// proves the off-leg really ran scalar code and wasn't a no-op.
TEST(SimdDispatch, EnvOverrideIsRespectedAtStartup) {
  const char* env = std::getenv("RPE_SIMD");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "RPE_SIMD not set";
  }
  simd::Tier want;
  if (!simd::ParseTier(env, &want)) {
    GTEST_SKIP() << "RPE_SIMD='" << env << "' is not a valid tier "
                 << "(startup warned and fell back to detected)";
  }
  EXPECT_EQ(simd::ActiveTier(), std::min(want, simd::DetectedTier()));
}

// ---------------------------------------------------------------------------
// Crc32
// ---------------------------------------------------------------------------

/// Known-answer vectors for CRC-32/ISO-HDLC (the zlib crc32), generated
/// with python3 zlib — both the scalar reference and every dispatched
/// tier must produce these exact words.
struct CrcKat {
  std::string data;
  uint32_t crc;
};

std::vector<CrcKat> CrcKats() {
  return {
      {"", 0x00000000u},
      {"a", 0xE8B7BE43u},
      {"abc", 0x352441C2u},
      {"123456789", 0xCBF43926u},
      {"The quick brown fox jumps over the lazy dog", 0x414FA339u},
      {std::string(32, '\0'), 0x190A55ADu},
  };
}

TEST(SimdCrc32, KnownAnswersOnEveryTier) {
  auto kats = CrcKats();
  {
    std::string bytes(256, '\0');
    for (size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<char>(i);
    }
    kats.push_back({bytes, 0x29058C73u});
  }
  for (const CrcKat& kat : kats) {
    EXPECT_EQ(Crc32Scalar(kat.data.data(), kat.data.size()), kat.crc)
        << "scalar, len " << kat.data.size();
    for (simd::Tier tier : kAllTiers) {
      TierGuard guard(tier);
      EXPECT_EQ(Crc32(kat.data.data(), kat.data.size()), kat.crc)
          << "tier " << simd::TierName(simd::ActiveTier()) << ", len "
          << kat.data.size();
    }
  }
}

TEST(SimdCrc32, DifferentialAgainstScalarAcrossSizesAndOffsets) {
  const uint64_t base_seed = EnvU64("RPE_FUZZ_SEED", 0xC5C32025ull);
  // Sizes straddle every kernel boundary: sub-8 scalar tail, sub-64
  // fold cutoff, 16-byte fold granularity, and large buffers.
  const size_t sizes[] = {0,  1,  7,   8,   15,  16,   63,  64,
                         65, 80, 100, 255, 256, 1000, 4096};
  const size_t num_cases = EnvU64("RPE_FUZZ_CASES", 4);
  for (size_t c = 0; c < num_cases; ++c) {
    const uint64_t case_seed = base_seed + c;
    uint64_t state = case_seed;
    std::vector<unsigned char> buf(4096 + 9);
    for (auto& b : buf) {
      b = static_cast<unsigned char>(SplitMix64(&state));
    }
    for (size_t size : sizes) {
      for (size_t offset : {size_t{0}, size_t{1}, size_t{9}}) {
        const unsigned char* p = buf.data() + offset;
        const uint32_t seed32 =
            static_cast<uint32_t>(SplitMix64(&state));
        const uint32_t want = Crc32Scalar(p, size, seed32);
        for (simd::Tier tier : kAllTiers) {
          TierGuard guard(tier);
          EXPECT_EQ(Crc32(p, size, seed32), want)
              << "case seed " << case_seed << ", tier "
              << simd::TierName(simd::ActiveTier()) << ", size " << size
              << ", offset " << offset;
        }
      }
    }
  }
}

TEST(SimdCrc32, ChainedMultiSlabEqualsOneShotOnEveryTier) {
  const uint64_t case_seed = EnvU64("RPE_FUZZ_SEED", 0xABCDull);
  uint64_t state = case_seed;
  std::vector<unsigned char> buf(10000);
  for (auto& b : buf) b = static_cast<unsigned char>(SplitMix64(&state));
  // Slab cuts land mid-word, mid-fold-block, and at zero-length slabs —
  // the snapshot writer checksums section by section exactly like this.
  const size_t cuts[] = {0, 3, 3, 64, 91, 1000, 1001, 4096, 10000};
  for (simd::Tier tier : kAllTiers) {
    TierGuard guard(tier);
    const uint32_t one_shot = Crc32(buf.data(), buf.size());
    uint32_t chained = 0;
    size_t prev = 0;
    for (size_t cut : cuts) {
      chained = Crc32(buf.data() + prev, cut - prev, chained);
      prev = cut;
    }
    EXPECT_EQ(chained, one_shot)
        << "case seed " << case_seed << ", tier "
        << simd::TierName(simd::ActiveTier());
  }
}

// ---------------------------------------------------------------------------
// AccumulateColumnDense
// ---------------------------------------------------------------------------

/// Build a residual with hostile values sprinkled in: NaN, ±inf, and
/// denormals all flow through histogram sums in real training when a
/// feature extractor misbehaves, and the vector path must reproduce the
/// scalar sums bit for bit — modulo NaN payloads, which no build of the
/// scalar loop pins down either (see BitEqModuloNaN).
std::vector<double> HostileResiduals(size_t n, uint64_t* state) {
  std::vector<double> res(n);
  for (size_t i = 0; i < n; ++i) {
    switch (SplitMix64(state) % 16) {
      case 0:
        res[i] = std::numeric_limits<double>::quiet_NaN();
        break;
      case 1:
        res[i] = std::numeric_limits<double>::infinity();
        break;
      case 2:
        res[i] = -std::numeric_limits<double>::infinity();
        break;
      case 3:
        res[i] = std::numeric_limits<double>::denorm_min() *
                 static_cast<double>(1 + SplitMix64(state) % 7);
        break;
      default:
        res[i] = NextUnit(state) * 2.0 - 1.0;
    }
  }
  return res;
}

void ExpectAccumulateMatchesScalar(const std::vector<uint8_t>& col,
                                   const std::vector<double>& res,
                                   size_t num_bins, uint64_t case_seed,
                                   const char* what) {
  ASSERT_EQ(col.size(), res.size());
  std::vector<double> want_sum(num_bins, 0.0);
  std::vector<uint32_t> want_cnt(num_bins, 0);
  AccumulateColumnDenseScalar(col.data(), res.data(), col.size(),
                              want_sum.data(), want_cnt.data());
  for (simd::Tier tier : kAllTiers) {
    TierGuard guard(tier);
    std::vector<double> sum(num_bins, 0.0);
    std::vector<uint32_t> cnt(num_bins, 0);
    AccumulateColumnDense(col.data(), res.data(), col.size(), sum.data(),
                          cnt.data());
    EXPECT_TRUE(BitEqModuloNaN(sum, want_sum))
        << what << ": sums diverge, case seed " << case_seed << ", tier "
        << simd::TierName(simd::ActiveTier()) << ", n " << col.size();
    EXPECT_EQ(cnt, want_cnt)
        << what << ": counts diverge, case seed " << case_seed << ", tier "
        << simd::TierName(simd::ActiveTier()) << ", n " << col.size();
  }
}

TEST(SimdAccumulate, DifferentialAcrossColumnShapes) {
  const uint64_t base_seed = EnvU64("RPE_FUZZ_SEED", 0xACC00ull);
  const size_t num_cases = EnvU64("RPE_FUZZ_CASES", 6);
  // Straddle the 32-byte chunk size and its tails.
  const size_t sizes[] = {0, 1, 7, 31, 32, 33, 63, 64, 100, 257, 1000};
  constexpr size_t kBins = 256;
  for (size_t c = 0; c < num_cases; ++c) {
    const uint64_t case_seed = base_seed + c;
    for (size_t n : sizes) {
      uint64_t state = case_seed ^ (n * 0x9E37ull);
      const std::vector<double> res = HostileResiduals(n, &state);
      std::vector<uint8_t> col(n);

      // Random bins: defeats the run detector, exercising the mixed-chunk
      // scalar fallback inside the vector kernel.
      for (auto& b : col) b = static_cast<uint8_t>(SplitMix64(&state));
      ExpectAccumulateMatchesScalar(col, res, kBins, case_seed, "random");

      // All bins equal (single maximal run), including the 255 edge bin.
      std::fill(col.begin(), col.end(), uint8_t{255});
      ExpectAccumulateMatchesScalar(col, res, kBins, case_seed, "const255");
      std::fill(col.begin(), col.end(), uint8_t{0});
      ExpectAccumulateMatchesScalar(col, res, kBins, case_seed, "const0");

      // Sorted bins (a binned monotone feature): long runs with
      // boundaries that move every case.
      for (size_t i = 0; i < n; ++i) {
        col[i] = static_cast<uint8_t>((i * kBins) / (n + 1));
      }
      ExpectAccumulateMatchesScalar(col, res, kBins, case_seed, "sorted");

      // Short alternating runs: uniform probe passes on some chunks,
      // fails on others.
      for (size_t i = 0; i < n; ++i) {
        col[i] = static_cast<uint8_t>((i / 40) % 3);
      }
      ExpectAccumulateMatchesScalar(col, res, kBins, case_seed, "runs40");
    }
  }
}

// ---------------------------------------------------------------------------
// Batched QuickScorer
// ---------------------------------------------------------------------------

FlatEnsembleSet SmallTrainedSet(uint64_t seed, size_t num_models) {
  const size_t nf = 6;
  std::vector<MartModel> models;
  Rng rng(seed);
  for (size_t m = 0; m < num_models; ++m) {
    Dataset data(nf);
    std::vector<double> x(nf);
    for (size_t i = 0; i < 400; ++i) {
      for (auto& v : x) v = rng.NextDouble();
      const double y = x[0] * 0.7 + (x[1] > 0.4 ? 0.5 : -0.2) +
                       x[2] * x[3] + 0.1 * rng.NextGaussian();
      RPE_CHECK_OK(data.AddExample(x, y));
    }
    MartParams params;
    params.num_trees = 25;
    params.seed = seed + m;
    models.push_back(MartModel::Train(data, params));
  }
  return FlatEnsembleSet::Compile(models);
}

/// Feature rows for the batch differential: mostly in-distribution, with
/// NaN / ±inf / denormal / far-out-of-range lanes mixed in so NaN-lane
/// handling and threshold compares at the extremes are all exercised.
std::vector<std::vector<double>> HostileRows(size_t num_rows, size_t nf,
                                             uint64_t* state) {
  std::vector<std::vector<double>> rows(num_rows);
  for (auto& row : rows) {
    row.resize(nf);
    for (auto& v : row) {
      switch (SplitMix64(state) % 12) {
        case 0:
          v = std::numeric_limits<double>::quiet_NaN();
          break;
        case 1:
          v = std::numeric_limits<double>::infinity();
          break;
        case 2:
          v = -std::numeric_limits<double>::infinity();
          break;
        case 3:
          v = std::numeric_limits<double>::denorm_min();
          break;
        case 4:
          v = (NextUnit(state) - 0.5) * 1e300;
          break;
        default:
          v = NextUnit(state) * 2.0 - 0.5;
      }
    }
  }
  return rows;
}

TEST(SimdBatchScore, DifferentialAgainstPerRowScoring) {
  const uint64_t base_seed = EnvU64("RPE_FUZZ_SEED", 0xBA7C4ull);
  const size_t num_cases = EnvU64("RPE_FUZZ_CASES", 3);
  // Batch sizes around the 8-row tile: empty, sub-tile tails, exact
  // tiles, and multi-tile with a tail.
  const size_t batch_sizes[] = {0, 1, 7, 8, 9, 64, 67};
  for (size_t c = 0; c < num_cases; ++c) {
    const uint64_t case_seed = base_seed + c;
    const FlatEnsembleSet set = SmallTrainedSet(case_seed, 3);
    ASSERT_TRUE(set.merged().usable);
    const size_t nm = set.num_models();
    uint64_t state = case_seed;
    for (size_t num_rows : batch_sizes) {
      const auto rows = HostileRows(num_rows, 6, &state);
      std::vector<const double*> ptrs(num_rows);
      for (size_t r = 0; r < num_rows; ++r) ptrs[r] = rows[r].data();

      // Per-row reference, computed once (PredictAll is itself pinned
      // bit-exact to the tree walk by flat_ensemble_test).
      std::vector<double> want(num_rows * nm);
      for (size_t r = 0; r < num_rows; ++r) {
        set.PredictAll(rows[r],
                       std::span<double>(want.data() + r * nm, nm));
      }

      for (simd::Tier tier : kAllTiers) {
        TierGuard guard(tier);
        std::vector<double> got(num_rows * nm, -1.0);
        set.PredictAllBatch(ptrs, got);
        EXPECT_TRUE(BitEq(got, want))
            << "case seed " << case_seed << ", tier "
            << simd::TierName(simd::ActiveTier()) << ", rows " << num_rows;

        std::vector<size_t> argmin(num_rows, ~size_t{0});
        set.ArgMinBatch(ptrs, argmin);
        for (size_t r = 0; r < num_rows; ++r) {
          EXPECT_EQ(argmin[r], set.ArgMin(rows[r]))
              << "case seed " << case_seed << ", tier "
              << simd::TierName(simd::ActiveTier()) << ", row " << r;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end tier independence: training, serialization, snapshots
// ---------------------------------------------------------------------------

/// Training runs the accumulate kernel millions of times; if any tier
/// perturbed one bit of one histogram sum, the fitted trees — and hence
/// the serialized stack — would diverge. Byte-equal encodes across tiers
/// is the whole-pipeline form of the differential tests above.
TEST(SimdEndToEnd, TrainedStackEncodesIdenticallyOnEveryTier) {
  const auto records = RandomRecords(40, 77);
  std::string reference;
  for (simd::Tier tier : kAllTiers) {
    TierGuard guard(tier);
    MartParams params = EstimatorSelector::DefaultParams();
    params.num_trees = 10;
    const SelectorStack stack =
        SelectorStack::Train(records, PoolOriginalThree(), params);
    const std::string encoded = EncodeSelectorStack(stack);
    if (reference.empty()) {
      reference = encoded;
    } else {
      EXPECT_EQ(encoded, reference)
          << "tier " << simd::TierName(simd::ActiveTier())
          << " trained or encoded a different stack";
    }
  }
  ASSERT_FALSE(reference.empty());
}

/// Snapshot round trip pinned to each tier: a stack saved under one CRC
/// implementation must load (CRC-verify) under every other, through both
/// the heap decoder and the zero-copy mmap arena, and score identically.
TEST(SimdEndToEnd, SnapshotRoundTripsAcrossTiers) {
  const auto records = RandomRecords(30, 99);
  MartParams params = EstimatorSelector::DefaultParams();
  params.num_trees = 8;
  const SelectorStack stack =
      SelectorStack::Train(records, PoolOriginalThree(), params);
  const std::string path =
      std::filesystem::temp_directory_path().string() + "/simd_stack.rpsn";

  const std::vector<double> probe = records[0].features;
  const std::vector<double> want =
      stack.dynamic_selector.PredictErrors(probe);

  for (simd::Tier save_tier : kAllTiers) {
    {
      TierGuard guard(save_tier);
      ASSERT_TRUE(SaveSelectorStack(stack, path).ok());
    }
    for (simd::Tier load_tier : kAllTiers) {
      TierGuard guard(load_tier);
      auto loaded = LoadSelectorStack(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_TRUE(
          BitEq(loaded.ValueOrDie().dynamic_selector.PredictErrors(probe),
                want));
      auto mapped = LoadSelectorStackMmap(path);
      ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
      EXPECT_TRUE(mapped.ValueOrDie().zero_copy);
      EXPECT_TRUE(BitEq(
          mapped.ValueOrDie().stack->dynamic_selector.PredictErrors(probe),
          want));
    }
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rpe
