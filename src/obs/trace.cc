#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace rpe {
namespace obs {

// ---------------------------------------------------------------------------
// Tracer

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t capacity) {
  if (enabled()) return;
  size_t cap = 64;
  while (cap < capacity && cap < (size_t{1} << 24)) cap <<= 1;
  slots_ = std::make_unique<Slot[]>(cap);
  capacity_ = cap;
  tickets_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_release);
  slots_.reset();
  capacity_ = 0;
}

void Tracer::Record(const char* name, uint64_t span, uint64_t parent,
                    uint64_t start_ns, uint64_t dur_ns, uint64_t arg) {
  // Acquire pairs with Enable's release: a thread that sees enabled also
  // sees the allocated ring.
  if (!enabled_.load(std::memory_order_acquire)) return;
  const uint64_t ticket = tickets_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (capacity_ - 1)];
  // Seqlock discipline over individually-atomic fields: readers skip a
  // slot whose seq is odd or changes across the field reads. Two writers
  // can race the same slot only after a full ring lap; the loser's seq
  // wins and readers discard the mix.
  slot.seq.store(ticket * 2 + 1, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.span.store(span, std::memory_order_relaxed);
  slot.parent.store(parent, std::memory_order_relaxed);
  slot.start_ns.store(start_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.tid.store(ThisThreadId(), std::memory_order_relaxed);
  slot.seq.store(ticket * 2 + 2, std::memory_order_release);
}

std::vector<TraceEventView> Tracer::Snapshot() const {
  std::vector<TraceEventView> out;
  if (!enabled_.load(std::memory_order_acquire)) return out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (seq == 0 || (seq & 1) != 0) continue;
    TraceEventView ev;
    ev.name = slot.name.load(std::memory_order_relaxed);
    ev.span = slot.span.load(std::memory_order_relaxed);
    ev.parent = slot.parent.load(std::memory_order_relaxed);
    ev.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    ev.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
    ev.arg = slot.arg.load(std::memory_order_relaxed);
    ev.tid = slot.tid.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    if (ev.name == nullptr) continue;
    out.push_back(ev);
  }
  return out;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::vector<TraceEventView> events = Snapshot();
  std::sort(events.begin(), events.end(),
            [](const TraceEventView& a, const TraceEventView& b) {
              return a.start_ns < b.start_ns;
            });
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output: " + path);
  }
  std::fputs("{\"traceEvents\":[\n", f);
  bool first = true;
  for (const TraceEventView& ev : events) {
    std::fprintf(
        f,
        "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"span\":%llu,"
        "\"parent\":%llu,\"arg\":%llu}}",
        first ? "" : ",\n", ev.name, ev.tid,
        static_cast<double>(ev.start_ns) / 1e3,
        static_cast<double>(ev.dur_ns) / 1e3,
        static_cast<unsigned long long>(ev.span),
        static_cast<unsigned long long>(ev.parent),
        static_cast<unsigned long long>(ev.arg));
    first = false;
  }
  std::fputs("\n]}\n", f);
  if (std::fclose(f) != 0) {
    return Status::IOError("cannot write trace output: " + path);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TraceContext

namespace {
thread_local uint64_t t_current_span = 0;
}  // namespace

uint64_t TraceContext::Current() { return t_current_span; }

TraceContext::Scope::Scope(uint64_t span) : saved_(t_current_span) {
  t_current_span = span;
}

TraceContext::Scope::~Scope() { t_current_span = saved_; }

// ---------------------------------------------------------------------------
// SlowScratch

namespace {

struct SlowEntry {
  const char* name = nullptr;  ///< aggregation key (static literal)
  uint64_t total_ns = 0;
  uint32_t count = 0;
};

struct SlowBuffer {
  static constexpr size_t kMax = 8;
  SlowEntry entries[kMax];
  size_t used = 0;
  bool active = false;
};

thread_local SlowBuffer t_slow;

}  // namespace

void SlowScratch::BeginRequest() {
  t_slow.used = 0;
  t_slow.active = true;
}

void SlowScratch::AddChild(const char* name, uint64_t dur_ns) {
  SlowBuffer& b = t_slow;
  if (!b.active) return;
  for (size_t i = 0; i < b.used; ++i) {
    if (b.entries[i].name == name) {
      b.entries[i].total_ns += dur_ns;
      b.entries[i].count += 1;
      return;
    }
  }
  if (b.used < SlowBuffer::kMax) {
    b.entries[b.used++] = SlowEntry{name, dur_ns, 1};
  }
}

std::string SlowScratch::Breakdown() {
  SlowBuffer& b = t_slow;
  std::string out;
  char buf[96];
  for (size_t i = 0; i < b.used; ++i) {
    const SlowEntry& e = b.entries[i];
    std::snprintf(buf, sizeof buf, "%s%s=%ux %.3fms", i == 0 ? "" : " ",
                  e.name, e.count,
                  static_cast<double>(e.total_ns) / 1e6);
    out += buf;
  }
  b.used = 0;
  b.active = false;
  return out;
}

// ---------------------------------------------------------------------------
// TraceSpan

TraceSpan::TraceSpan(const char* name, uint64_t arg)
    : TraceSpan(name, TraceContext::Current(), arg) {}

TraceSpan::TraceSpan(const char* name, uint64_t parent, uint64_t arg) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  name_ = name;
  parent_ = parent;
  arg_ = arg;
  id_ = tracer.NewSpanId();
  start_ = MonotonicNanos();
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t dur = MonotonicNanos() - start_;
  Tracer::Global().Record(name_, id_, parent_, start_, dur, arg_);
  SlowScratch::AddChild(name_, dur);
}

}  // namespace obs
}  // namespace rpe
