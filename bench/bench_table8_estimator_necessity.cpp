// Table 8 / §6.6: how many estimators do we need? For every candidate
// estimator: (a) the fraction of pipelines where it is "(close to) optimal"
// (optimal, or within 0.01 absolute or 1% relative of optimal), and (b) the
// fraction where it "significantly outperforms" all others (strictly best
// by more than 0.01 absolute and 1% relative).
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Table 8: estimator necessity (all workloads) ===\n";
  const auto records = AllPaperRecords();

  TablePrinter table(
      {"Estimator", "% (close to) optimal", "% significantly outperforms"});
  for (int e = 0; e < kNumSelectableEstimators; ++e) {
    size_t close = 0, dominates = 0;
    for (const auto& r : records) {
      const double mine = r.l1[static_cast<size_t>(e)];
      double best = 1e100, second = 1e100;
      for (int o = 0; o < kNumSelectableEstimators; ++o) {
        const double v = r.l1[static_cast<size_t>(o)];
        if (o == e) continue;
        if (v < best) {
          second = best;
          best = v;
        } else if (v < second) {
          second = v;
        }
      }
      (void)second;
      const double overall_best = std::min(mine, best);
      // (a) close to optimal.
      if (mine <= overall_best + 1e-9 || mine - overall_best < 0.01 ||
          mine <= overall_best * 1.01) {
        ++close;
      }
      // (b) significantly outperforms all others.
      if (mine < best && best - mine > 0.01 && mine < best * 0.99) {
        ++dominates;
      }
    }
    const double n = static_cast<double>(records.size());
    table.AddRow({EstimatorName(static_cast<EstimatorKind>(e)),
                  TablePrinter::Pct(static_cast<double>(close) / n),
                  TablePrinter::Pct(static_cast<double>(dominates) / n)});
  }
  table.Print();
  std::cout
      << "\nPaper's Table 8: no estimator is close-to-optimal for even 50%\n"
         "of pipelines (max: DNESEEK at 45.5%); only DNE and PMAX fail to\n"
         "significantly outperform the rest on >=2% of pipelines (DNE\n"
         "because BATCHDNE/DNESEEK subsume it when no batch sort / seek\n"
         "is present).\n";
  return 0;
}
