#include "optimizer/tuning.h"

namespace rpe {

const char* TuningLevelName(TuningLevel level) {
  switch (level) {
    case TuningLevel::kUntuned: return "untuned";
    case TuningLevel::kPartiallyTuned: return "partially tuned";
    case TuningLevel::kFullyTuned: return "fully tuned";
  }
  return "unknown";
}

Status ApplyPhysicalDesign(Catalog* catalog, const PhysicalDesign& design) {
  catalog->DropAllIndexes();
  for (const auto& ix : design.indexes) {
    RPE_RETURN_NOT_OK(catalog->CreateIndex(ix.table, ix.column));
  }
  return Status::OK();
}

}  // namespace rpe
