// End-to-end tests of the online-learning loop over the wire: a loopback
// TcpServer wired to a RecordIngestQueue + TrainerLoop, driven by real
// sockets. What must hold:
//   * ingest frames stream records into the trainer, a retrain publishes
//     mid-connection (kStats shows the generation bump), and sessions
//     pinned before the swap stay bit-identical to the old stack;
//   * saturation is answered with kStatusBusy — watermark sheds are
//     whole-frame and exact, in-flight-budget sheds keep FIFO response
//     order, and accepted + dropped + shed == offered always;
//   * an abrupt disconnect mid-frame leaves no partial record behind;
//   * a seeded chaos storm (sessions + ingest + disconnects + injected
//     ingest faults) reconciles every counter exactly. Runs under TSan in
//     CI (ServerOnline* is in the TSan job's filter).
// Synchronization is failpoint-based (FailPoints::Observe + WaitForHits
// on trainer.retrain.done / server.ingest), not sleep-based.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "exec/executor.h"
#include "serving/server.h"
#include "serving/shard_router.h"
#include "serving/trainer_loop.h"
#include "serving/wire.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t EnvCount(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

/// Minimal blocking client (mirrors the one in wire_test.cpp; the
/// production client lives in tools/rpe_loadgen.cc).
class TestClient {
 public:
  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  bool SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  Result<WireFrame> Receive() {
    while (true) {
      WireFrame frame;
      RPE_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
      if (complete) return frame;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv failed");
      }
      if (n == 0) return Status::IOError("server closed the connection");
      decoder_.Feed(chunk, static_cast<size_t>(n));
    }
  }

  Result<WireFrame> Call(const std::string& request) {
    if (!SendRaw(request)) return Status::IOError("send failed");
    return Receive();
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

MartParams SmallParams() {
  MartParams params;
  params.num_trees = 6;
  params.tree.max_leaves = 8;
  params.seed = 7;
  return params;
}

TrainerLoop::Options FastTrainerOptions() {
  TrainerLoop::Options options;
  options.retrain_min_records = 32;
  options.min_corpus = 8;
  options.max_corpus = 256;
  options.poll_interval = std::chrono::milliseconds(1);
  options.pool = PoolOriginalThree();
  options.params = SmallParams();
  return options;
}

class ServerOnlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    runs_ = new std::vector<QueryRunResult>();
    plans_ = new std::vector<std::unique_ptr<PhysicalPlan>>();
    AddRun(MakeTableScan("t_fact"));
    AddRun(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1));
    AddRun(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
    stack_ = std::make_shared<const SelectorStack>(SelectorStack::Train(
        RandomRecords(80, 11), PoolOriginalThree(), SmallParams()));
    records_ = new std::vector<PipelineRecord>(RandomRecords(64, 23));
  }
  static void TearDownTestSuite() {
    delete records_;
    delete runs_;
    delete plans_;
    delete catalog_;
    stack_.reset();
    records_ = nullptr;
    runs_ = nullptr;
    plans_ = nullptr;
    catalog_ = nullptr;
  }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  static void AddRun(std::unique_ptr<PlanNode> root) {
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans_->push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_->back(), *catalog_);
    ASSERT_TRUE(result.ok());
    runs_->push_back(std::move(result).ValueOrDie());
  }

  static std::vector<const QueryRunResult*> RunPtrs() {
    std::vector<const QueryRunResult*> out;
    for (const QueryRunResult& run : *runs_) out.push_back(&run);
    return out;
  }

  /// Encode one kIngestBatch frame of `n` corpus records.
  static std::string BatchFrame(size_t n, uint64_t* rng) {
    IngestBatchRequest batch;
    for (size_t i = 0; i < n; ++i) {
      batch.records.push_back(
          (*records_)[SplitMix64(rng) % records_->size()]);
    }
    return EncodeIngestBatchRequest(batch);
  }

  static Catalog* catalog_;
  static std::vector<QueryRunResult>* runs_;
  static std::vector<std::unique_ptr<PhysicalPlan>>* plans_;
  static std::shared_ptr<const SelectorStack> stack_;
  static std::vector<PipelineRecord>* records_;
};

Catalog* ServerOnlineTest::catalog_ = nullptr;
std::vector<QueryRunResult>* ServerOnlineTest::runs_ = nullptr;
std::vector<std::unique_ptr<PhysicalPlan>>* ServerOnlineTest::plans_ =
    nullptr;
std::shared_ptr<const SelectorStack> ServerOnlineTest::stack_;
std::vector<PipelineRecord>* ServerOnlineTest::records_ = nullptr;

TEST_F(ServerOnlineTest, IngestOverTheWireRetrainsAndKeepsPinnedSessions) {
  ShardedMonitorService::Options service_options;
  service_options.num_shards = 2;
  ShardedMonitorService service(stack_, service_options);
  RecordIngestQueue queue(256);
  TrainerLoop trainer(&queue, &service, FastTrainerOptions());
  service.SetIngestStatsProvider([&trainer] { return trainer.GetStats(); });
  FailPoints::Observe("trainer.retrain.done");
  trainer.Start();

  TcpServer server(&service, RunPtrs(), &queue, TcpServer::Options{});
  ASSERT_TRUE(server.Start().ok());

  // Reference series with the *initial* stack — the session opened before
  // the swap pins it and must stay bit-identical across the retrain.
  ProgressMonitor sequential(&stack_->static_selector,
                             &stack_->dynamic_selector);
  const std::vector<double> expected =
      sequential.ReplayQueryProgress((*runs_)[0]);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  auto opened_frame = client.Call(EncodeOpenRequest({0}));
  ASSERT_TRUE(opened_frame.ok() && opened_frame->ok());
  auto opened = DecodeOpenResponse(opened_frame->payload);
  ASSERT_TRUE(opened.ok());

  auto initial_frame = client.Call(EncodeStatsRequest());
  ASSERT_TRUE(initial_frame.ok() && initial_frame->ok());
  auto initial = DecodeStatsResponse(initial_frame->payload);
  ASSERT_TRUE(initial.ok());
  EXPECT_EQ(initial->retrains, 0u);

  // Walk half the replay on the pinned session before any swap.
  AdvanceRequest step;
  step.session_id = opened->session_id;
  step.max_steps = 1;
  const size_t half = expected.size() / 2;
  for (size_t obs = 0; obs < half; ++obs) {
    auto frame = client.Call(EncodeAdvanceRequest(step));
    ASSERT_TRUE(frame.ok() && frame->ok());
    auto advanced = DecodeAdvanceResponse(frame->payload);
    ASSERT_TRUE(advanced.ok());
    ASSERT_EQ(
        std::memcmp(&advanced->progress, &expected[obs], sizeof(double)), 0)
        << "observation " << obs << " diverges before the swap";
  }

  // Stream enough records to trip the row-count trigger, then block on
  // the trainer's sync failpoint until the publish happened.
  uint64_t rng = 31;
  uint64_t accepted = 0;
  for (size_t i = 0; i < 3; ++i) {
    auto frame = client.Call(BatchFrame(16, &rng));
    ASSERT_TRUE(frame.ok() && frame->ok()) << "ingest batch " << i;
    auto resp = DecodeIngestResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->dropped, 0u);
    accepted += resp->accepted;
  }
  EXPECT_EQ(accepted, 48u);
  ASSERT_TRUE(FailPoints::WaitForHits("trainer.retrain.done", 1,
                                      std::chrono::seconds(30)));

  // The generation bump is visible over the same connection.
  auto after_frame = client.Call(EncodeStatsRequest());
  ASSERT_TRUE(after_frame.ok() && after_frame->ok());
  auto after = DecodeStatsResponse(after_frame->payload);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->model_generation, initial->model_generation);
  EXPECT_GE(after->retrains, 1u);
  EXPECT_EQ(after->records_ingested, 48u);
  EXPECT_EQ(after->ingest_pushed, 48u);
  EXPECT_EQ(after->records_ingest_dropped, 0u);
  EXPECT_EQ(after->records_ingest_shed, 0u);

  // The pinned session finishes on the old stack, bit for bit.
  for (size_t obs = half; obs < expected.size(); ++obs) {
    auto frame = client.Call(EncodeAdvanceRequest(step));
    ASSERT_TRUE(frame.ok() && frame->ok());
    auto advanced = DecodeAdvanceResponse(frame->payload);
    ASSERT_TRUE(advanced.ok());
    ASSERT_EQ(
        std::memcmp(&advanced->progress, &expected[obs], sizeof(double)), 0)
        << "observation " << obs << " diverges after the swap";
  }
  auto closed = client.Call(EncodeCloseRequest({opened->session_id}));
  ASSERT_TRUE(closed.ok() && closed->ok());

  server.Stop();
  queue.Close();
  trainer.Stop();
  FailPoints::DisarmAll();

  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.pushed, 48u);
  EXPECT_EQ(stats.drained, stats.pushed);
  EXPECT_EQ(stats.queue_size, 0u);
}

TEST_F(ServerOnlineTest, WatermarkShedsAreBusyWholeFrameAndExact) {
  ShardedMonitorService::Options service_options;
  service_options.num_shards = 2;
  ShardedMonitorService service(stack_, service_options);
  // No trainer: the queue only moves when the test drains it, so every
  // admission decision below is deterministic.
  RecordIngestQueue queue(32);
  TcpServer::Options server_options;
  server_options.ingest_shed_watermark = 8;
  TcpServer server(&service, RunPtrs(), &queue, server_options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  uint64_t rng = 5;

  // A batch bigger than the watermark is refused whole — no partial
  // acceptance — with kStatusBusy, and counted in records.
  auto busy = client.Call(BatchFrame(16, &rng));
  ASSERT_TRUE(busy.ok());
  EXPECT_FALSE(busy->ok());
  EXPECT_EQ(busy->status, kStatusBusy);
  EXPECT_EQ(busy->ToStatus().code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.pushed(), 0u);

  // Under the watermark: accepted in full.
  auto ok1 = client.Call(BatchFrame(4, &rng));
  ASSERT_TRUE(ok1.ok() && ok1->ok());
  auto resp1 = DecodeIngestResponse(ok1->payload);
  ASSERT_TRUE(resp1.ok());
  EXPECT_EQ(resp1->accepted, 4u);

  // 4 queued + 8 offered > 8: shed again, still whole-frame.
  auto busy2 = client.Call(BatchFrame(8, &rng));
  ASSERT_TRUE(busy2.ok());
  EXPECT_EQ(busy2->status, kStatusBusy);
  EXPECT_EQ(queue.pushed(), 4u);

  // Draining the queue lifts the watermark: ingest resumes, no restart.
  std::vector<PipelineRecord> drained;
  EXPECT_EQ(queue.DrainBatch(&drained, 32), 4u);
  auto ok2 = client.Call(BatchFrame(8, &rng));
  ASSERT_TRUE(ok2.ok() && ok2->ok());
  auto resp2 = DecodeIngestResponse(ok2->payload);
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->accepted, 8u);

  // Exact shed accounting: 16 + 8 refused, 4 + 8 accepted, 0 dropped.
  const WireStats stats = server.BuildWireStats();
  EXPECT_EQ(stats.records_ingest_shed, 24u);
  EXPECT_EQ(stats.records_ingested, 12u);
  EXPECT_EQ(stats.records_ingest_dropped, 0u);
  EXPECT_EQ(stats.requests_shed, 0u);
  server.Stop();
}

TEST_F(ServerOnlineTest, InflightBudgetShedsPipelinedFramesInFifoOrder) {
  ShardedMonitorService::Options service_options;
  service_options.num_shards = 2;
  ShardedMonitorService service(stack_, service_options);
  RecordIngestQueue queue(4096);
  TcpServer::Options server_options;
  server_options.max_inflight_per_conn = 2;
  TcpServer server(&service, RunPtrs(), &queue, server_options);
  ASSERT_TRUE(server.Start().ok());

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Pipelined bursts: many single-record frames in one write, so the IO
  // thread's read loop outruns dispatch and the inbox budget trips. How
  // many frames land before the shed line depends on TCP chunking, so the
  // assertion is the exactness identity, not a fixed split; bursts repeat
  // until at least one shed is observed.
  constexpr size_t kBurst = 64;
  uint64_t rng = 17;
  uint64_t accepted_total = 0;
  uint64_t busy_total = 0;
  for (int attempt = 0; attempt < 8 && busy_total == 0; ++attempt) {
    std::string burst;
    for (size_t i = 0; i < kBurst; ++i) {
      IngestRecordRequest req;
      req.record = (*records_)[SplitMix64(&rng) % records_->size()];
      burst += EncodeIngestRecordRequest(req);
    }
    ASSERT_TRUE(client.SendRaw(burst));
    // Every frame gets exactly one response, in request order: either an
    // IngestResponse or a kStatusBusy error — never silence.
    for (size_t i = 0; i < kBurst; ++i) {
      auto frame = client.Receive();
      ASSERT_TRUE(frame.ok()) << frame.status().ToString();
      ASSERT_EQ(frame->type, MsgType::kIngestRecord) << "response " << i;
      if (frame->ok()) {
        auto resp = DecodeIngestResponse(frame->payload);
        ASSERT_TRUE(resp.ok());
        accepted_total += resp->accepted;
      } else {
        ASSERT_EQ(frame->status, kStatusBusy) << "response " << i;
        ++busy_total;
      }
    }
  }
  ASSERT_GT(busy_total, 0u) << "pipelined bursts never tripped the budget";

  const WireStats stats = server.BuildWireStats();
  EXPECT_EQ(stats.records_ingested, accepted_total);
  EXPECT_EQ(stats.records_ingest_shed, busy_total);
  EXPECT_EQ(stats.records_ingested, queue.pushed());
  // Single-record frames: shed records == shed frames; no session frames
  // were shed.
  EXPECT_EQ(stats.requests_shed, 0u);
  server.Stop();
}

TEST_F(ServerOnlineTest, AbruptDisconnectLeavesNoPartialRecords) {
  ShardedMonitorService::Options service_options;
  service_options.num_shards = 2;
  ShardedMonitorService service(stack_, service_options);
  RecordIngestQueue queue(256);
  TcpServer server(&service, RunPtrs(), &queue, TcpServer::Options{});
  ASSERT_TRUE(server.Start().ok());
  FailPoints::Observe("server.ingest");

  uint64_t rng = 41;
  {
    // Half an ingest frame — a complete header promising more payload
    // than ever arrives — then an abrupt close. Nothing may reach the
    // queue: records are parsed from complete frames only.
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    const std::string frame_bytes = BatchFrame(3, &rng);
    ASSERT_TRUE(client.SendRaw(
        std::string_view(frame_bytes).substr(0, frame_bytes.size() / 2)));
    client.Close();
  }
  // Wait for the server to observe the hangup (counter poll: there is no
  // failpoint on the close edge).
  for (int i = 0; i < 2000 && server.GetStats().connections_closed < 1;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(server.GetStats().connections_closed, 1u);
  EXPECT_EQ(queue.pushed(), 0u);
  EXPECT_EQ(server.GetStats().records_ingested, 0u);
  EXPECT_EQ(FailPoints::Hits("server.ingest"), 0u);

  {
    // A complete frame followed by a disconnect before reading the
    // response: all-or-nothing the other way — every record lands.
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    ASSERT_TRUE(client.SendRaw(BatchFrame(5, &rng)));
    ASSERT_TRUE(FailPoints::WaitForHits("server.ingest", 5,
                                        std::chrono::seconds(10)));
    client.Close();
  }
  // The 5th hit fires just before its Push; give that one store a bounded
  // moment to land.
  for (int i = 0; i < 2000 && queue.pushed() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(queue.pushed(), 5u);

  FailPoints::DisarmAll();
  server.Stop();
  EXPECT_EQ(server.GetStats().records_ingested, 5u);
  EXPECT_EQ(service.num_open_sessions(), 0u);
}

TEST_F(ServerOnlineTest, SeededIngestStormReconcilesEveryCounterExactly) {
  const uint64_t seed = EnvCount("RPE_CHAOS_SEED", 1);
  const uint64_t rounds = EnvCount("RPE_CHAOS_ROUNDS", 150);
  std::cout << "server chaos: RPE_CHAOS_SEED=" << seed
            << " RPE_CHAOS_ROUNDS=" << rounds << "\n";

  // Probabilistic record drops at the server's ingest edge, plus the
  // observe-only shed hook so busy responses can be cross-checked against
  // the failpoint hit count.
  ASSERT_TRUE(FailPoints::ArmFromSpec("server.ingest=prob:0.03:seed=" +
                                      std::to_string(seed))
                  .ok());
  FailPoints::Observe("server.shed");

  ShardedMonitorService::Options service_options;
  service_options.num_shards = 2;
  ShardedMonitorService service(stack_, service_options);
  RecordIngestQueue queue(128);
  TrainerLoop::Options trainer_options = FastTrainerOptions();
  trainer_options.retrain_min_records = 48;
  TrainerLoop trainer(&queue, &service, trainer_options);
  service.SetIngestStatsProvider([&trainer] { return trainer.GetStats(); });
  trainer.Start();

  TcpServer::Options server_options;
  server_options.max_inflight_per_conn = 4;
  server_options.ingest_shed_watermark = 64;
  TcpServer server(&service, RunPtrs(), &queue, server_options);
  ASSERT_TRUE(server.Start().ok());

  // Client-side tallies, summed across threads, reconciled at the end.
  std::atomic<uint64_t> ingest_offered{0}, ingest_accepted{0},
      ingest_dropped{0}, ingest_shed_records{0}, ingest_shed_frames{0},
      session_busy{0};

  constexpr size_t kThreads = 3;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t rng = seed * 0x9E3779B97F4A7C15ull + t;
      std::optional<TestClient> client;
      client.emplace();
      ASSERT_TRUE(client->Connect(server.port()));
      std::vector<uint64_t> mine;  // session ids on the live connection
      for (uint64_t i = 0; i < rounds; ++i) {
        switch (SplitMix64(&rng) % 8) {
          case 0: {  // open
            auto frame = client->Call(EncodeOpenRequest(
                {static_cast<uint32_t>(SplitMix64(&rng) % runs_->size())}));
            ASSERT_TRUE(frame.ok());
            if (frame->ok()) {
              auto opened = DecodeOpenResponse(frame->payload);
              ASSERT_TRUE(opened.ok());
              mine.push_back(opened->session_id);
            } else if (frame->status == kStatusBusy) {
              session_busy.fetch_add(1);
            }
            break;
          }
          case 1:
          case 2: {  // advance a random owned session
            if (mine.empty()) break;
            AdvanceRequest step;
            step.session_id = mine[SplitMix64(&rng) % mine.size()];
            step.max_steps = 1 + static_cast<uint32_t>(SplitMix64(&rng) % 8);
            auto frame = client->Call(EncodeAdvanceRequest(step));
            ASSERT_TRUE(frame.ok());
            if (!frame->ok() && frame->status == kStatusBusy) {
              session_busy.fetch_add(1);
            }
            break;
          }
          case 3: {  // close a random owned session
            if (mine.empty()) break;
            const size_t at = SplitMix64(&rng) % mine.size();
            auto frame = client->Call(EncodeCloseRequest({mine[at]}));
            ASSERT_TRUE(frame.ok());
            if (!frame->ok() && frame->status == kStatusBusy) {
              session_busy.fetch_add(1);
              break;  // still open; retryable
            }
            mine.erase(mine.begin() + static_cast<long>(at));
            break;
          }
          case 4: {  // single-record ingest
            IngestRecordRequest req;
            req.record = (*records_)[SplitMix64(&rng) % records_->size()];
            ingest_offered.fetch_add(1);
            auto frame = client->Call(EncodeIngestRecordRequest(req));
            ASSERT_TRUE(frame.ok());
            if (frame->ok()) {
              auto resp = DecodeIngestResponse(frame->payload);
              ASSERT_TRUE(resp.ok());
              ingest_accepted.fetch_add(resp->accepted);
              ingest_dropped.fetch_add(resp->dropped);
            } else if (frame->status == kStatusBusy) {
              ingest_shed_records.fetch_add(1);
              ingest_shed_frames.fetch_add(1);
            }
            break;
          }
          case 5: {  // batch ingest
            const size_t n = 1 + SplitMix64(&rng) % 8;
            IngestBatchRequest batch;
            for (size_t r = 0; r < n; ++r) {
              batch.records.push_back(
                  (*records_)[SplitMix64(&rng) % records_->size()]);
            }
            ingest_offered.fetch_add(n);
            auto frame = client->Call(EncodeIngestBatchRequest(batch));
            ASSERT_TRUE(frame.ok());
            if (frame->ok()) {
              auto resp = DecodeIngestResponse(frame->payload);
              ASSERT_TRUE(resp.ok());
              ingest_accepted.fetch_add(resp->accepted);
              ingest_dropped.fetch_add(resp->dropped);
            } else if (frame->status == kStatusBusy) {
              ingest_shed_records.fetch_add(n);
              ingest_shed_frames.fetch_add(1);
            }
            break;
          }
          case 6: {  // pipelined progress burst: trips the inbox budget
            if (mine.empty()) break;
            const uint64_t id = mine[SplitMix64(&rng) % mine.size()];
            std::string burst;
            constexpr size_t kBurst = 8;
            for (size_t b = 0; b < kBurst; ++b) {
              burst += EncodeProgressRequest({id});
            }
            ASSERT_TRUE(client->SendRaw(burst));
            for (size_t b = 0; b < kBurst; ++b) {
              auto frame = client->Receive();
              ASSERT_TRUE(frame.ok()) << frame.status().ToString();
              if (!frame->ok() && frame->status == kStatusBusy) {
                session_busy.fetch_add(1);
              }
            }
            break;
          }
          default: {  // abrupt disconnect mid-frame, then reconnect
            IngestRecordRequest req;
            req.record = (*records_)[SplitMix64(&rng) % records_->size()];
            const std::string frame_bytes = EncodeIngestRecordRequest(req);
            // The torn frame contributes to neither side of the ledger.
            ASSERT_TRUE(client->SendRaw(std::string_view(frame_bytes)
                                            .substr(0, frame_bytes.size() / 2)));
            client.emplace();
            ASSERT_TRUE(client->Connect(server.port()));
            mine.clear();  // the old connection's sessions died with it
            break;
          }
        }
      }
      for (const uint64_t id : mine) {
        auto frame = client->Call(EncodeCloseRequest({id}));
        ASSERT_TRUE(frame.ok());
      }
    });
  }
  for (auto& w : workers) w.join();

  // All requests answered (the workers are synchronous), so the wire
  // counters are settled before Stop.
  const WireStats wire = server.BuildWireStats();
  server.Stop();
  queue.Close();
  trainer.Stop();

  EXPECT_EQ(wire.records_ingested, ingest_accepted.load());
  EXPECT_EQ(wire.records_ingest_dropped, ingest_dropped.load());
  EXPECT_EQ(wire.records_ingest_shed, ingest_shed_records.load());
  EXPECT_EQ(wire.requests_shed, session_busy.load());
  EXPECT_EQ(ingest_accepted.load() + ingest_dropped.load() +
                ingest_shed_records.load(),
            ingest_offered.load());
  // Every busy response is one server.shed hit — session or ingest alike.
  EXPECT_EQ(FailPoints::Hits("server.shed"),
            session_busy.load() + ingest_shed_frames.load());
  // Injected drops are a subset of reported drops (queue-full races may
  // add more); both stay inside the exact response-level accounting.
  EXPECT_LE(FailPoints::Trips("server.ingest"), ingest_dropped.load());

  // The wire is the queue's only producer, and Stop drained it dry.
  const IngestStats ingest = trainer.GetStats();
  EXPECT_EQ(ingest.pushed, ingest_accepted.load());
  EXPECT_EQ(ingest.drained, ingest.pushed);
  EXPECT_EQ(ingest.queue_size, 0u);

  const TcpServerStats tcp = server.GetStats();
  EXPECT_EQ(tcp.connections_accepted, tcp.connections_closed);
  EXPECT_EQ(tcp.wire_sessions_opened, tcp.wire_sessions_closed);
  EXPECT_EQ(service.num_open_sessions(), 0u);
  EXPECT_EQ(service.model_generation(), ingest.last_swap_generation);

  FailPoints::DisarmAll();
}

}  // namespace
}  // namespace rpe
