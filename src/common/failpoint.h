// Deterministic fault injection for the serving tier. A failpoint is a
// named site in production code where a test (or an operator, via the
// RPE_FAILPOINTS environment variable) can force the failure path to run:
//
//   if (RPE_INJECT_FAULT("snapshot.write")) {
//     return Status::IOError("injected failure: snapshot.write");
//   }
//
// Failpoints are off by default and cost one relaxed atomic load of a
// process-global "anything armed" counter on the hot path — the branch is
// never taken in a production process that arms nothing. Building with
// -DRPE_FAILPOINTS=OFF (the RPE_DISABLE_FAILPOINTS macro) compiles every
// site down to a constant-false branch the optimizer deletes.
//
// Trigger modes (FailPointSpec):
//   * kAlways      — every hit trips.
//   * kProbability — each hit trips with probability p, driven by a
//     per-failpoint PRNG seeded at arm time, so a given (p, seed) pair
//     trips on the exact same hit sequence in every run.
//   * kNth         — exactly the nth hit (1-based) trips, once.
//   * kNever       — never trips, but hits are still counted. This is the
//     sync-hook mode: a test arms a site observe-only and blocks in
//     WaitForHits until the code under test has reached it, replacing
//     sleep-based synchronization.
//
// Activation: programmatic (FailPoints::Arm/Observe/Disarm) or the
// RPE_FAILPOINTS env var, parsed once on first registry use:
//
//   RPE_FAILPOINTS="snapshot.write=always;arena.mmap=prob:0.5:seed=7;ingest.push=nth:3"
//
// Threading contract: all registry operations are thread-safe; Hit() of
// distinct failpoints serializes on one registry mutex (failpoints sit on
// failure edges, not scoring hot loops). WaitForHits may be called from
// any thread and wakes on every counted hit.
//
// The failpoint catalog (which names exist and what tripping them
// simulates) lives in docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rpe {

/// \brief How an armed failpoint decides whether a hit trips.
struct FailPointSpec {
  enum class Mode {
    kNever,        ///< count hits only (sync hook)
    kAlways,       ///< every hit trips
    kProbability,  ///< seeded Bernoulli(p) per hit
    kNth,          ///< exactly the nth hit (1-based) trips, once
  };
  Mode mode = Mode::kNever;
  double probability = 0.0;  ///< kProbability: P(trip) per hit
  uint64_t seed = 0;         ///< kProbability: PRNG seed (determinism)
  uint64_t nth = 0;          ///< kNth: the 1-based hit index that trips

  static FailPointSpec Always() { return {Mode::kAlways, 0.0, 0, 0}; }
  static FailPointSpec Never() { return {Mode::kNever, 0.0, 0, 0}; }
  static FailPointSpec Probability(double p, uint64_t seed) {
    return {Mode::kProbability, p, seed, 0};
  }
  static FailPointSpec Nth(uint64_t n) { return {Mode::kNth, 0.0, 0, n}; }
};

/// \brief Point-in-time counters of one armed failpoint.
struct FailPointCounters {
  uint64_t hits = 0;   ///< times the site was reached while armed
  uint64_t trips = 0;  ///< times the site was forced to fail
};

/// \brief One armed failpoint with its counters — the unit of the
/// metrics export (rpe_failpoint_hits_total / rpe_failpoint_trips_total
/// in the /metrics scrape; see docs/OBSERVABILITY.md).
struct FailPointSnapshot {
  std::string name;
  uint64_t hits = 0;
  uint64_t trips = 0;
};

/// \brief Process-global failpoint registry (all methods static and
/// thread-safe). Unarmed names cost one relaxed atomic load at the site.
class FailPoints {
 public:
  /// Arm (or re-arm, resetting counters and PRNG state) a failpoint.
  static void Arm(const std::string& name, FailPointSpec spec);
  /// Arm observe-only: hits are counted, nothing ever trips.
  static void Observe(const std::string& name);
  static void Disarm(const std::string& name);
  static void DisarmAll();

  /// Parse an RPE_FAILPOINTS-style spec list ("a=always;b=prob:0.5:seed=7;
  /// c=nth:3;d=never", ';' or ',' separated) and arm every entry.
  static Status ArmFromSpec(const std::string& spec_list);

  /// Counters of an armed failpoint (zeros when not armed).
  static FailPointCounters Counters(const std::string& name);
  static uint64_t Hits(const std::string& name);
  static uint64_t Trips(const std::string& name);

  /// Block until the named failpoint has been hit at least `n` times (it
  /// must be armed — use Observe for pure sync). Returns false on timeout.
  static bool WaitForHits(const std::string& name, uint64_t n,
                          std::chrono::milliseconds timeout);

  /// Names of every armed failpoint, for diagnostics banners.
  static std::vector<std::string> Armed();

  /// Every armed failpoint with its point-in-time counters, for the
  /// metrics export (chaos/smoke runs assert fault coverage from the
  /// scrape instead of parsing stderr).
  static std::vector<FailPointSnapshot> Snapshot();
};

namespace failpoint_internal {

/// Count of armed failpoints; the macro's cheap gate.
extern std::atomic<int> g_armed_count;

inline bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}

/// Slow path: count the hit and evaluate the spec. False for unarmed names.
bool Hit(const char* name);

}  // namespace failpoint_internal

}  // namespace rpe

#ifdef RPE_DISABLE_FAILPOINTS
#define RPE_INJECT_FAULT(name) false
#else
/// True when the named failpoint is armed and its spec says this hit must
/// fail. One relaxed atomic load when nothing is armed anywhere.
#define RPE_INJECT_FAULT(name)                     \
  (::rpe::failpoint_internal::AnyArmed() &&        \
   ::rpe::failpoint_internal::Hit(name))
#endif
