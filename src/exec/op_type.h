// Physical operator vocabulary. This is the fixed operator alphabet used by
// the executor, the planner, and the static plan-encoding features of paper
// §4.3 (Count_op / Card_op / SelAt_op / SelAbove_op / SelBelow_op).
#pragma once

#include <cstddef>
#include <string>

namespace rpe {

enum class OpType : int {
  kTableScan = 0,
  kIndexScan,        ///< full scan in index (key) order
  kIndexSeek,        ///< parameterized lookup on the inner side of a NLJ
  kFilter,
  kNestedLoopJoin,
  kHashJoin,
  kMergeJoin,
  kSort,             ///< fully blocking sort
  kBatchSort,        ///< partial batch sort feeding nested iteration (§5.1)
  kHashAggregate,
  kStreamAggregate,
  kTop,
};

/// Number of distinct operator types (size of the feature vocabulary).
inline constexpr size_t kNumOpTypes = 12;

/// Stable human-readable name ("HashJoin", ...).
const char* OpTypeName(OpType op);

/// True for operators that fully materialize their input before producing
/// output (pipeline breakers): Sort and HashAggregate, plus the build side
/// of HashJoin (handled specially during pipeline decomposition).
bool IsFullyBlocking(OpType op);

/// True for source operators that read base data.
bool IsLeaf(OpType op);

}  // namespace rpe
