#include "serving/wire.h"

#include <type_traits>

namespace rpe {
namespace {

/// Sequential little-endian writer. All wire integers are encoded with
/// memcpy so the codec is alignment- and strict-aliasing-safe.
class Writer {
 public:
  explicit Writer(size_t reserve) { out_.reserve(reserve); }

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    out_.append(raw, sizeof(T));
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Sequential bounds-checked reader over an untrusted payload.
class Reader {
 public:
  explicit Reader(std::string_view payload) : payload_(payload) {}

  template <typename T>
  Status Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload_.size() - pos_ < sizeof(T)) {
      return Status::InvalidArgument("wire payload truncated");
    }
    std::memcpy(out, payload_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  /// Typed payloads are fixed-size: trailing bytes are as much a protocol
  /// violation as missing ones (a lying encoder, not a storage fault).
  Status ExpectEnd() const {
    if (pos_ != payload_.size()) {
      return Status::InvalidArgument(
          "wire payload has " + std::to_string(payload_.size() - pos_) +
          " trailing byte(s)");
    }
    return Status::OK();
  }

 private:
  std::string_view payload_;
  size_t pos_ = 0;
};

std::string FinishFrame(MsgType type, uint8_t status, Writer* payload) {
  return EncodeFrame(type, status, payload->Take());
}

}  // namespace

Status WireFrame::ToStatus() const {
  if (status == 0) return Status::OK();
  const auto code = static_cast<StatusCode>(status);
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
    case StatusCode::kIOError:
      return Status(code, payload);
    case StatusCode::kOk:
      break;
  }
  return Status::Internal("unknown wire status code " +
                          std::to_string(int{status}) + ": " + payload);
}

std::string EncodeFrame(MsgType type, uint8_t status,
                        std::string_view payload) {
  Writer w(kFrameHeaderBytes + payload.size());
  w.Put(static_cast<uint32_t>(payload.size()));
  w.Put(static_cast<uint8_t>(type));
  w.Put(status);
  w.Put(static_cast<uint16_t>(0));  // reserved
  std::string out = w.Take();
  out.append(payload);
  return out;
}

std::string EncodeErrorFrame(MsgType type, const Status& error) {
  return EncodeFrame(type, static_cast<uint8_t>(error.code()),
                     error.message());
}

std::string EncodeOpenRequest(const OpenRequest& m) {
  Writer w(4);
  w.Put(m.run_index);
  return FinishFrame(MsgType::kOpen, 0, &w);
}

std::string EncodeOpenResponse(const OpenResponse& m) {
  Writer w(16);
  w.Put(m.session_id);
  w.Put(m.run_index);
  w.Put(m.num_observations);
  return FinishFrame(MsgType::kOpen, 0, &w);
}

std::string EncodeAdvanceRequest(const AdvanceRequest& m) {
  Writer w(12);
  w.Put(m.session_id);
  w.Put(m.max_steps);
  return FinishFrame(MsgType::kAdvance, 0, &w);
}

std::string EncodeAdvanceResponse(const AdvanceResponse& m) {
  Writer w(13);
  w.Put(m.progress);
  w.Put(m.steps);
  w.Put(m.done);
  return FinishFrame(MsgType::kAdvance, 0, &w);
}

std::string EncodeProgressRequest(const ProgressRequest& m) {
  Writer w(8);
  w.Put(m.session_id);
  return FinishFrame(MsgType::kProgress, 0, &w);
}

std::string EncodeProgressResponse(const ProgressResponse& m) {
  Writer w(9);
  w.Put(m.progress);
  w.Put(m.done);
  return FinishFrame(MsgType::kProgress, 0, &w);
}

std::string EncodeCloseRequest(const CloseRequest& m) {
  Writer w(8);
  w.Put(m.session_id);
  return FinishFrame(MsgType::kClose, 0, &w);
}

std::string EncodeCloseResponse() {
  return EncodeFrame(MsgType::kClose, 0, {});
}

std::string EncodeStatsRequest() {
  return EncodeFrame(MsgType::kStats, 0, {});
}

std::string EncodeStatsResponse(const WireStats& m) {
  Writer w(16 * 8 + 2 * 8);
  w.Put(m.sessions_opened);
  w.Put(m.sessions_completed);
  w.Put(m.decisions);
  w.Put(m.observations_scored);
  w.Put(m.model_generation);
  w.Put(m.connections_accepted);
  w.Put(m.connections_closed);
  w.Put(m.frames_received);
  w.Put(m.frames_sent);
  w.Put(m.bytes_received);
  w.Put(m.bytes_sent);
  w.Put(m.protocol_errors);
  w.Put(m.io_errors);
  w.Put(m.wire_sessions_opened);
  w.Put(m.wire_sessions_closed);
  w.Put(m.advance_steps);
  w.Put(m.p50_replay_ms);
  w.Put(m.p95_replay_ms);
  return FinishFrame(MsgType::kStats, 0, &w);
}

Result<OpenRequest> DecodeOpenRequest(std::string_view payload) {
  Reader r(payload);
  OpenRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.run_index));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<OpenResponse> DecodeOpenResponse(std::string_view payload) {
  Reader r(payload);
  OpenResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.Get(&m.run_index));
  RPE_RETURN_NOT_OK(r.Get(&m.num_observations));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<AdvanceRequest> DecodeAdvanceRequest(std::string_view payload) {
  Reader r(payload);
  AdvanceRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.Get(&m.max_steps));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  if (m.max_steps == 0 || m.max_steps > kMaxAdvanceSteps) {
    return Status::InvalidArgument(
        "AdvanceRequest.max_steps " + std::to_string(m.max_steps) +
        " outside [1, " + std::to_string(kMaxAdvanceSteps) + "]");
  }
  return m;
}

Result<AdvanceResponse> DecodeAdvanceResponse(std::string_view payload) {
  Reader r(payload);
  AdvanceResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.progress));
  RPE_RETURN_NOT_OK(r.Get(&m.steps));
  RPE_RETURN_NOT_OK(r.Get(&m.done));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<ProgressRequest> DecodeProgressRequest(std::string_view payload) {
  Reader r(payload);
  ProgressRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<ProgressResponse> DecodeProgressResponse(std::string_view payload) {
  Reader r(payload);
  ProgressResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.progress));
  RPE_RETURN_NOT_OK(r.Get(&m.done));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<CloseRequest> DecodeCloseRequest(std::string_view payload) {
  Reader r(payload);
  CloseRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<WireStats> DecodeStatsResponse(std::string_view payload) {
  Reader r(payload);
  WireStats m;
  RPE_RETURN_NOT_OK(r.Get(&m.sessions_opened));
  RPE_RETURN_NOT_OK(r.Get(&m.sessions_completed));
  RPE_RETURN_NOT_OK(r.Get(&m.decisions));
  RPE_RETURN_NOT_OK(r.Get(&m.observations_scored));
  RPE_RETURN_NOT_OK(r.Get(&m.model_generation));
  RPE_RETURN_NOT_OK(r.Get(&m.connections_accepted));
  RPE_RETURN_NOT_OK(r.Get(&m.connections_closed));
  RPE_RETURN_NOT_OK(r.Get(&m.frames_received));
  RPE_RETURN_NOT_OK(r.Get(&m.frames_sent));
  RPE_RETURN_NOT_OK(r.Get(&m.bytes_received));
  RPE_RETURN_NOT_OK(r.Get(&m.bytes_sent));
  RPE_RETURN_NOT_OK(r.Get(&m.protocol_errors));
  RPE_RETURN_NOT_OK(r.Get(&m.io_errors));
  RPE_RETURN_NOT_OK(r.Get(&m.wire_sessions_opened));
  RPE_RETURN_NOT_OK(r.Get(&m.wire_sessions_closed));
  RPE_RETURN_NOT_OK(r.Get(&m.advance_steps));
  RPE_RETURN_NOT_OK(r.Get(&m.p50_replay_ms));
  RPE_RETURN_NOT_OK(r.Get(&m.p95_replay_ms));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<bool> FrameDecoder::Next(WireFrame* frame) {
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    // Reclaim the consumed prefix while idle so a long-lived connection
    // does not grow the buffer without bound.
    if (pos_ > 0 && avail == 0) {
      buf_.clear();
      pos_ = 0;
    }
    return false;
  }
  uint32_t payload_len = 0;
  uint8_t type = 0;
  uint8_t status = 0;
  uint16_t reserved = 0;
  const char* head = buf_.data() + pos_;
  std::memcpy(&payload_len, head, 4);
  std::memcpy(&type, head + 4, 1);
  std::memcpy(&status, head + 5, 1);
  std::memcpy(&reserved, head + 6, 2);
  if (payload_len > max_payload_) {
    return Status::InvalidArgument(
        "wire frame payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(max_payload_) + "-byte cap");
  }
  if (type < kMinMsgType || type > kMaxMsgType) {
    return Status::InvalidArgument("unknown wire message type " +
                                   std::to_string(int{type}));
  }
  if (reserved != 0) {
    return Status::InvalidArgument(
        "wire frame reserved bits are nonzero (version mismatch?)");
  }
  if (avail < kFrameHeaderBytes + payload_len) return false;
  frame->type = static_cast<MsgType>(type);
  frame->status = status;
  frame->payload.assign(head + kFrameHeaderBytes, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  // Compact once the consumed prefix dominates the buffer: amortized O(1)
  // per byte, keeps the resident footprint near the unread tail.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

}  // namespace rpe
