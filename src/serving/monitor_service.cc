#include "serving/monitor_service.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace rpe {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

uint64_t CountDecisions(
    const std::vector<ProgressMonitor::PipelineDecision>& decisions) {
  uint64_t n = 0;
  for (const auto& d : decisions) {
    n += 1 + (d.revised_choice.has_value() ? 1 : 0);
  }
  return n;
}

}  // namespace

MonitorService::Session::Session(std::shared_ptr<const SelectorStack> stack,
                                 const QueryRunResult* r, double marker_pct)
    : pinned(std::move(stack)),
      monitor(&pinned->static_selector, &pinned->dynamic_selector, marker_pct),
      run(r) {}

MonitorService::MonitorService(std::shared_ptr<const SelectorStack> models)
    : MonitorService(std::move(models), Options()) {}

MonitorService::MonitorService(std::shared_ptr<const SelectorStack> models,
                               Options options)
    : options_(options), models_(std::move(models)) {
  RPE_CHECK(models_ != nullptr);
}

uint64_t MonitorService::SwapModels(
    std::shared_ptr<const SelectorStack> models) {
  RPE_CHECK(models != nullptr);
  std::lock_guard<std::mutex> lock(models_mu_);
  models_ = std::move(models);
  return ++model_generation_;
}

std::shared_ptr<const SelectorStack> MonitorService::models() const {
  std::lock_guard<std::mutex> lock(models_mu_);
  return models_;
}

uint64_t MonitorService::model_generation() const {
  std::lock_guard<std::mutex> lock(models_mu_);
  return model_generation_;
}

void MonitorService::SetIngestStatsProvider(
    std::function<IngestStats()> provider) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  ingest_provider_ = std::move(provider);
}

Result<MonitorService::SessionId> MonitorService::OpenSession(
    const QueryRunResult* run) {
  if (run == nullptr) {
    return Status::InvalidArgument("OpenSession: null run");
  }
  const auto start = Clock::now();
  auto session = std::make_shared<Session>(models(), run,
                                           options_.revision_marker_pct);
  // The estimator decisions — the selector scoring — happen at open, once,
  // exactly as a live monitor decides when the query is admitted.
  session->decisions = session->monitor.DecideForRun(*run);
  session->elapsed_sec = SecondsSince(start);
  const double session_elapsed = session->elapsed_sec;
  const uint64_t decisions = CountDecisions(session->decisions);
  SessionId id = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    id = next_id_++;
    sessions_.emplace(id, std::move(session));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++sessions_opened_;
    decisions_ += decisions;
    scoring_time_sec_ += session_elapsed;
  }
  return id;
}

Result<std::vector<MonitorService::SessionId>> MonitorService::OpenSessions(
    std::span<const QueryRunResult* const> runs) {
  for (const QueryRunResult* run : runs) {
    if (run == nullptr) {
      return Status::InvalidArgument("OpenSessions: null run");
    }
  }
  std::vector<SessionId> ids(runs.size());
  if (runs.empty()) return ids;
  const auto start = Clock::now();
  const std::shared_ptr<const SelectorStack> stack = models();
  std::vector<std::shared_ptr<Session>> opened;
  opened.reserve(runs.size());
  for (const QueryRunResult* run : runs) {
    opened.push_back(
        std::make_shared<Session>(stack, run, options_.revision_marker_pct));
  }
  // One batched decision pass across every pipeline of every run — the
  // same choices OpenSession makes per run, scored in full SIMD tiles.
  auto decided = opened.front()->monitor.DecideForRuns(runs);
  const double elapsed = SecondsSince(start);
  const double per_session = elapsed / static_cast<double>(runs.size());
  uint64_t total_decisions = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total_decisions += CountDecisions(decided[i]);
    opened[i]->decisions = std::move(decided[i]);
    opened[i]->elapsed_sec = per_session;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (size_t i = 0; i < runs.size(); ++i) {
      ids[i] = next_id_++;
      sessions_.emplace(ids[i], std::move(opened[i]));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    sessions_opened_ += runs.size();
    decisions_ += total_decisions;
    scoring_time_sec_ += elapsed;
  }
  return ids;
}

Result<std::shared_ptr<MonitorService::Session>> MonitorService::Find(
    SessionId id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no open session " + std::to_string(id));
  }
  return it->second;
}

double MonitorService::StepLocked(Session* s) {
  const auto start = Clock::now();
  s->last_progress =
      s->monitor.QueryProgressAt(*s->run, s->decisions, s->next_obs);
  ++s->next_obs;
  const double dt = SecondsSince(start);
  s->elapsed_sec += dt;
  return dt;
}

Result<double> MonitorService::Advance(SessionId id) {
  // Parents to the wire request being advanced when the TCP front-end
  // set a TraceContext; one relaxed load when tracing is off.
  obs::TraceSpan span("advance.step", /*arg=*/id);
  RPE_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  double progress = 0.0;
  double dt = 0.0;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->next_obs >= s->run->observations.size()) {
      return Status::OutOfRange("session " + std::to_string(id) +
                                " replay complete");
    }
    dt = StepLocked(s.get());
    progress = s->last_progress;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++observations_scored_;
  scoring_time_sec_ += dt;
  return progress;
}

Result<double> MonitorService::Progress(SessionId id) const {
  RPE_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  std::lock_guard<std::mutex> lock(s->mu);
  return s->last_progress;
}

Result<bool> MonitorService::Done(SessionId id) const {
  RPE_ASSIGN_OR_RETURN(std::shared_ptr<Session> s, Find(id));
  std::lock_guard<std::mutex> lock(s->mu);
  return s->next_obs >= s->run->observations.size();
}

void MonitorService::PushLatencyLocked(double latency_ms) {
  if (replay_latency_ms_.size() < kLatencyWindow) {
    replay_latency_ms_.push_back(latency_ms);
  } else {
    replay_latency_ms_[latency_next_] = latency_ms;  // overwrite the oldest
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

void MonitorService::RecordCompletion(const Session& s) {
  // Scoring time already accrued live (at open and per step); only the
  // completion latency sample and count are recorded here.
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++sessions_completed_;
  PushLatencyLocked(s.elapsed_sec * 1e3);
}

Status MonitorService::CloseSession(SessionId id) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
      return Status::NotFound("no open session " + std::to_string(id));
    }
    s = std::move(it->second);
    sessions_.erase(it);
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->next_obs >= s->run->observations.size()) RecordCompletion(*s);
  return Status::OK();
}

size_t MonitorService::num_open_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

size_t MonitorService::Tick(size_t max_steps) {
  // One serialized scheduling pass: snapshot the active set in session-id
  // order (deterministic regardless of hash-map iteration order), pick the
  // sessions to advance, then shard the per-observation scoring. Each
  // stepped session writes only its own state, so the tick is
  // deterministic at any thread count.
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  std::vector<std::pair<SessionId, std::shared_ptr<Session>>> active;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    active.reserve(sessions_.size());
    for (auto& [id, s] : sessions_) active.emplace_back(id, s);
  }
  std::sort(active.begin(), active.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // `selected` is the set the parallel pass steps; skipped eligible
  // sessions are unfinished by definition and enter the remaining count
  // directly, so no post-pass lock round is needed.
  std::vector<size_t> selected;  // indices into `active`
  size_t skipped_unfinished = 0;
  if (max_steps == 0) {
    // Unbudgeted: step every session (finished ones no-op inside the
    // parallel pass) — no scheduling pass, exactly the pre-budget path.
    selected.resize(active.size());
    for (size_t i = 0; i < active.size(); ++i) selected[i] = i;
  } else {
    std::vector<size_t> eligible;  // indices into `active`, id order
    eligible.reserve(active.size());
    for (size_t i = 0; i < active.size(); ++i) {
      Session* s = active[i].second.get();
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->next_obs < s->run->observations.size()) eligible.push_back(i);
    }
    if (max_steps >= eligible.size()) {
      selected = eligible;
    } else {
      // Deficit round-robin: every unfinished session earns one credit,
      // the max_steps highest-credit sessions (ties by session id)
      // advance and reset. Skipped sessions keep accumulating, so the
      // serviced set rotates and no session waits more than
      // ceil(eligible / max_steps) ticks.
      for (size_t i : eligible) ++active[i].second->deficit;
      selected = eligible;
      std::stable_sort(selected.begin(), selected.end(),
                       [&](size_t a, size_t b) {
                         return active[a].second->deficit >
                                active[b].second->deficit;
                       });
      selected.resize(max_steps);
      skipped_unfinished = eligible.size() - selected.size();
    }
  }

  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Global();
  std::vector<uint8_t> stepped(selected.size(), 0);
  std::vector<uint8_t> unfinished(selected.size(), 0);
  std::vector<double> step_sec(selected.size(), 0.0);
  pool->ParallelFor(selected.size(), [&](size_t si) {
    Session* s = active[selected[si]].second.get();
    std::lock_guard<std::mutex> lock(s->mu);
    // Re-check under the session lock: a concurrent Advance may have
    // finished the session since the scheduling pass.
    if (s->next_obs < s->run->observations.size()) {
      step_sec[si] = StepLocked(s);
      stepped[si] = 1;
    }
    unfinished[si] = s->next_obs < s->run->observations.size() ? 1 : 0;
    // Serviced sessions clear their fairness credit (each worker writes
    // only its own session; tick_mu_ excludes competing schedulers).
    s->deficit = 0;
  });

  size_t scored = 0;
  size_t remaining = skipped_unfinished;
  double elapsed = 0.0;
  for (size_t si = 0; si < selected.size(); ++si) {
    scored += stepped[si];
    remaining += unfinished[si];
    elapsed += step_sec[si];
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  observations_scored_ += scored;
  scoring_time_sec_ += elapsed;
  return remaining;
}

std::vector<std::vector<double>> MonitorService::ReplayAll(
    std::span<const QueryRunResult* const> runs) {
  const std::shared_ptr<const SelectorStack> stack = models();
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : &ThreadPool::Global();
  std::vector<std::vector<double>> out(runs.size());
  if (runs.empty()) return out;
  // Decisions for every run score in one batched pass (full SIMD tiles
  // across runs) before the per-observation replay shards across the
  // pool. DecideForRuns is bit-identical to per-run DecideForRun, so each
  // series stays bit-identical to the sequential
  // ProgressMonitor::ReplayQueryProgress regardless of sharding.
  const auto decide_start = Clock::now();
  ProgressMonitor monitor(&stack->static_selector, &stack->dynamic_selector,
                          options_.revision_marker_pct);
  const auto decided = monitor.DecideForRuns(runs);
  const double decide_ms_per_run =
      SecondsSince(decide_start) * 1e3 / static_cast<double>(runs.size());
  std::vector<double> latency_ms(runs.size(), 0.0);
  std::vector<uint64_t> decisions(runs.size(), 0);
  std::vector<uint64_t> scored(runs.size(), 0);
  pool->ParallelFor(runs.size(), [&](size_t i) {
    const QueryRunResult& run = *runs[i];
    const auto start = Clock::now();
    std::vector<double>& series = out[i];
    series.reserve(run.observations.size());
    for (size_t oi = 0; oi < run.observations.size(); ++oi) {
      series.push_back(monitor.QueryProgressAt(run, decided[i], oi));
    }
    latency_ms[i] = decide_ms_per_run + SecondsSince(start) * 1e3;
    decisions[i] = CountDecisions(decided[i]);
    scored[i] = run.observations.size();
  });
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (size_t i = 0; i < runs.size(); ++i) {
    ++sessions_opened_;
    ++sessions_completed_;
    decisions_ += decisions[i];
    observations_scored_ += scored[i];
    scoring_time_sec_ += latency_ms[i] / 1e3;
    PushLatencyLocked(latency_ms[i]);
  }
  return out;
}

MonitorService::Stats MonitorService::GetStats(
    std::vector<double>* latency_samples) const {
  // The ingest provider is fetched and called outside the service locks:
  // it reaches into the TrainerLoop, which itself calls back into the
  // service (SwapModels), so holding stats_mu_ across it could deadlock.
  std::function<IngestStats()> provider;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    provider = ingest_provider_;
  }
  Stats stats;
  if (provider) stats.ingest = provider();
  stats.model_generation = model_generation();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.sessions_opened = sessions_opened_;
  stats.sessions_completed = sessions_completed_;
  stats.decisions = decisions_;
  stats.observations_scored = observations_scored_;
  stats.p50_replay_ms = Percentile(replay_latency_ms_, 50.0);
  stats.p95_replay_ms = Percentile(replay_latency_ms_, 95.0);
  stats.scoring_time_sec = scoring_time_sec_;
  if (latency_samples != nullptr) *latency_samples = replay_latency_ms_;
  if (scoring_time_sec_ > 0.0) {
    // Throughput over cumulative scoring time (accrued live at every
    // decision and observation tick, so open or early-closed sessions
    // are counted): per-core rates comparable across thread counts.
    stats.decisions_per_sec =
        static_cast<double>(decisions_) / scoring_time_sec_;
    stats.observations_per_sec =
        static_cast<double>(observations_scored_) / scoring_time_sec_;
  }
  return stats;
}

}  // namespace rpe
