// Pipeline / segment decomposition (paper §3.2, following [6] and [13]):
// maximal subtrees of concurrently executing nodes, split at fully blocking
// operators (Sort, HashAggregate) and at the build side of hash joins.
// The sources feeding a pipeline — leaf scans outside nested-loop inner
// subtrees, plus blocking operators emitting into it — are its driver nodes
// ("dominant inputs").
#pragma once

#include <string>
#include <vector>

#include "exec/plan.h"

namespace rpe {

/// \brief One pipeline: a set of plan-node ids executing concurrently.
struct Pipeline {
  int id = 0;
  std::vector<int> nodes;         ///< all member node ids
  std::vector<int> driver_nodes;  ///< DNodes(P) — see Eq. 4
  int sink = -1;                  ///< topmost node id of the pipeline

  /// Filled post-execution from the observation stream: the half-open range
  /// of observation indices during which the pipeline was active, and the
  /// virtual-time window.
  int first_obs = -1;
  int last_obs = -1;
  double start_time = 0.0;
  double end_time = 0.0;

  bool ContainsNode(int node_id) const;
  bool IsDriver(int node_id) const;
};

/// Decompose a plan into pipelines. Pipelines are returned in discovery
/// (preorder) order; the pipeline containing the plan root is first.
std::vector<Pipeline> DecomposePipelines(const PhysicalPlan& plan);

/// Debug rendering: "P0{nodes=[...] drivers=[...]}".
std::string PipelinesToString(const std::vector<Pipeline>& pipelines);

}  // namespace rpe
