#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpe {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::vector<double> xs, double p) {
  std::sort(xs.begin(), xs.end());
  return PercentileSorted(xs, p);
}

double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  RPE_CHECK_GE(p, 0.0);
  RPE_CHECK_LE(p, 100.0);
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  RPE_CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double LpError(const std::vector<double>& a, const std::vector<double>& b,
               double p) {
  RPE_CHECK_EQ(a.size(), b.size());
  RPE_CHECK_GT(p, 0.0);
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::pow(std::abs(a[i] - b[i]), p);
  }
  return std::pow(s / static_cast<double>(a.size()), 1.0 / p);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace rpe
