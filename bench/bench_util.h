// Shared infrastructure for the paper-reproduction bench binaries: cached
// record sets for the six evaluation workloads and the TPC-H sensitivity
// variants, plus the MART parameters used in the experiments.
//
// All bench binaries are standalone executables that print the paper's
// tables/figures as aligned text; expensive workload executions are cached
// as CSV under RPE_CACHE_DIR (default ./rpe_record_cache), so the first
// binary pays the cost and the rest reuse it.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table_printer.h"
#include "harness/experiment.h"
#include "harness/runner.h"

namespace rpe::bench {

/// MART parameters for the experiment benches: the paper's 30-leaf trees
/// with a reduced number of boosting iterations (the accuracy plateau is
/// reached well before M=200 on these dataset sizes; Table 7 still sweeps
/// the full M range for the training-time reproduction).
inline MartParams ExperimentParams() {
  MartParams params;
  params.num_trees = 100;
  params.tree.max_leaves = 30;
  params.learning_rate = 0.1;
  return params;
}

inline RunOptions DefaultRunOptions() {
  RunOptions options;
  options.progress_every = 200;
  return options;
}

/// Records of all six paper workloads (cached), workload label preserved.
inline std::vector<PipelineRecord> AllPaperRecords() {
  std::vector<PipelineRecord> all;
  for (const WorkloadConfig& config : PaperWorkloadConfigs()) {
    std::cerr << "== workload " << config.name << " ==\n";
    auto records =
        CachedRecords("paper_" + config.name, config, DefaultRunOptions());
    RPE_CHECK(records.ok()) << records.status().ToString();
    all.insert(all.end(), records->begin(), records->end());
  }
  return all;
}

inline std::vector<std::string> PaperWorkloadNames() {
  std::vector<std::string> names;
  for (const WorkloadConfig& config : PaperWorkloadConfigs()) {
    names.push_back(config.name);
  }
  return names;
}

/// TPC-H variant records for the sensitivity experiments; `dimension` is
/// "design", "skew" or "size". Records are tagged with the variant label.
inline std::vector<PipelineRecord> TpchVariantRecords(
    const std::string& dimension) {
  struct Variant {
    std::string tag;
    double scale;
    double zipf;
    TuningLevel tuning;
    uint64_t seed;
  };
  std::vector<Variant> variants;
  if (dimension == "design") {
    variants = {{"fully", 10.0, 1.0, TuningLevel::kFullyTuned, 51},
                {"partially", 10.0, 1.0, TuningLevel::kPartiallyTuned, 52},
                {"untuned", 10.0, 1.0, TuningLevel::kUntuned, 53}};
  } else if (dimension == "skew") {
    variants = {{"z0", 10.0, 0.0, TuningLevel::kPartiallyTuned, 61},
                {"z1", 10.0, 1.0, TuningLevel::kPartiallyTuned, 62},
                {"z2", 10.0, 2.0, TuningLevel::kPartiallyTuned, 63}};
  } else if (dimension == "size") {
    variants = {{"sf2", 2.0, 1.0, TuningLevel::kPartiallyTuned, 71},
                {"sf5", 5.0, 1.0, TuningLevel::kPartiallyTuned, 72},
                {"sf10", 10.0, 1.0, TuningLevel::kPartiallyTuned, 73}};
  } else {
    RPE_CHECK(false) << "unknown sensitivity dimension " << dimension;
  }
  std::vector<PipelineRecord> all;
  for (const Variant& v : variants) {
    WorkloadConfig config;
    config.kind = WorkloadKind::kTpch;
    config.name = "tpch-" + dimension + "-" + v.tag;
    config.scale = v.scale;
    config.zipf = v.zipf;
    config.tuning = v.tuning;
    config.num_queries = 300;
    config.seed = v.seed;
    std::cerr << "== workload " << config.name << " ==\n";
    auto records = CachedRecords("sens_" + config.name, config,
                                 DefaultRunOptions(), v.tag);
    RPE_CHECK(records.ok()) << records.status().ToString();
    all.insert(all.end(), records->begin(), records->end());
  }
  return all;
}

/// \brief The §6.2 ad-hoc experiment: leave one workload out, train the
/// selector on the other five, evaluate on the held-out one. Choices are
/// aligned with `records` order (every record is tested exactly once, when
/// its workload is held out).
struct AdHocResult {
  std::vector<PipelineRecord> records;
  std::vector<size_t> static3;   ///< static features, {DNE,TGN,LUO} pool
  std::vector<size_t> dynamic3;  ///< + dynamic features
  std::vector<size_t> static6;   ///< static features, six-estimator pool
  std::vector<size_t> dynamic6;  ///< + dynamic features
};

inline AdHocResult RunAdHocExperiment() {
  AdHocResult result;
  result.records = AllPaperRecords();
  const size_t n = result.records.size();
  result.static3.assign(n, 0);
  result.dynamic3.assign(n, 0);
  result.static6.assign(n, 0);
  result.dynamic6.assign(n, 0);

  for (const std::string& name : PaperWorkloadNames()) {
    std::vector<size_t> test_idx;
    std::vector<PipelineRecord> train, test;
    for (size_t i = 0; i < n; ++i) {
      if (result.records[i].workload == name) {
        test_idx.push_back(i);
        test.push_back(result.records[i]);
      } else {
        train.push_back(result.records[i]);
      }
    }
    if (test.empty()) continue;
    std::cerr << "ad-hoc: holding out " << name << " (" << test.size()
              << " test pipelines)\n";
    struct Config {
      std::vector<size_t>* out;
      std::vector<size_t> pool;
      bool dynamic;
    };
    const Config configs[] = {
        {&result.static3, PoolOriginalThree(), false},
        {&result.dynamic3, PoolOriginalThree(), true},
        {&result.static6, PoolSix(), false},
        {&result.dynamic6, PoolSix(), true},
    };
    for (const Config& c : configs) {
      auto eval = TrainAndEvaluate(train, test, c.pool, c.dynamic,
                                   ExperimentParams());
      for (size_t j = 0; j < test_idx.size(); ++j) {
        (*c.out)[test_idx[j]] = eval.choices[j];
      }
    }
  }
  return result;
}

/// One leave-one-tag-out sensitivity experiment (Tables 3/4/5 pattern):
/// for each tag, train the selector on the other tags and report the
/// %-optimal of DNE/TGN/LUO and of selection on the held-out tag.
inline void RunSensitivityTable(const std::string& dimension,
                                const std::vector<std::string>& tags,
                                const std::vector<PipelineRecord>& records,
                                const std::string& caption) {
  std::cout << caption << "\n";
  TablePrinter table({"Estimator", "test: " + tags[0], "test: " + tags[1],
                      "test: " + tags[2]});
  const std::vector<size_t> pool = PoolOriginalThree();
  std::vector<std::vector<std::string>> rows(4);
  rows[0].push_back("DNE");
  rows[1].push_back("TGN");
  rows[2].push_back("LUO");
  rows[3].push_back("EST. SEL.");
  for (const std::string& tag : tags) {
    auto test = FilterByTag(records, tag);
    auto train = FilterByTag(records, tag, /*invert=*/true);
    for (size_t i = 0; i < 3; ++i) {
      rows[i].push_back(TablePrinter::Pct(FractionOptimal(test, pool[i], pool)));
    }
    auto eval = TrainAndEvaluate(train, test, pool, /*use_dynamic=*/false,
                                 ExperimentParams());
    rows[3].push_back(TablePrinter::Pct(eval.metrics.pct_optimal));
  }
  for (auto& r : rows) table.AddRow(std::move(r));
  table.Print();
  std::cout << "(" << dimension
            << " sensitivity: selection trained on the two other variants)\n";
}

}  // namespace rpe::bench
