#include "mart/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace rpe {

Status Dataset::AddExample(const std::vector<double>& features,
                           double target) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
  return Status::OK();
}

std::vector<double> Dataset::ExampleFeatures(size_t example) const {
  RPE_CHECK_LT(example, num_examples());
  return {features_.begin() +
              static_cast<ptrdiff_t>(example * num_features_),
          features_.begin() +
              static_cast<ptrdiff_t>((example + 1) * num_features_)};
}

BinnedDataset::BinnedDataset(const Dataset& data, int max_bins)
    : data_(&data) {
  RPE_CHECK_GT(max_bins, 1);
  // Bin ids must fit uint8; 255 (not 256) so histogram code may index with
  // any uint8 value + 1 without overflow anywhere.
  RPE_CHECK_LE(max_bins, 255);
  const size_t n = data.num_examples();
  const size_t nf = data.num_features();
  boundaries_.resize(nf);
  bins_.resize(n * nf);

  std::vector<double> values(n);
  for (size_t f = 0; f < nf; ++f) {
    for (size_t i = 0; i < n; ++i) values[i] = data.feature(i, f);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    std::vector<double>& bounds = boundaries_[f];
    if (sorted.size() <= static_cast<size_t>(max_bins)) {
      // One bin per distinct value; boundaries between consecutive values.
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        bounds.push_back(sorted[i]);
      }
    } else {
      // Quantile boundaries over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const size_t idx =
            std::min(sorted.size() - 1,
                     sorted.size() * static_cast<size_t>(b) /
                         static_cast<size_t>(max_bins));
        const double v = sorted[idx];
        if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
      }
    }
    // Column-major: feature f's bin ids are one contiguous slab.
    uint8_t* col = bins_.data() + f * n;
    for (size_t i = 0; i < n; ++i) {
      const auto it =
          std::lower_bound(bounds.begin(), bounds.end(), values[i]);
      col[i] = static_cast<uint8_t>(it - bounds.begin());
    }
  }

  hist_offset_.resize(nf + 1);
  hist_offset_[0] = 0;
  for (size_t f = 0; f < nf; ++f) {
    hist_offset_[f + 1] = hist_offset_[f] + num_bins(f);
    max_num_bins_ = std::max(max_num_bins_, num_bins(f));
  }
}

std::vector<uint8_t> BinnedDataset::RowMajorBins() const {
  const size_t n = num_examples();
  const size_t nf = num_features();
  std::vector<uint8_t> rows(n * nf);
  for (size_t f = 0; f < nf; ++f) {
    const uint8_t* col = bins_.data() + f * n;
    for (size_t i = 0; i < n; ++i) rows[i * nf + f] = col[i];
  }
  return rows;
}

void HistogramSet::SubtractChild(const HistogramSet& child, size_t begin,
                                 size_t end) {
  RPE_CHECK_EQ(child.size(), size());
  RPE_CHECK_LE(end, size());
  for (size_t i = begin; i < end; ++i) {
    sum_[i] -= child.sum_[i];
    cnt_[i] -= child.cnt_[i];
  }
}

}  // namespace rpe
