#include "mart/mart.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rpe {

namespace {
/// Below this many example×tree steps the pool hand-off costs more than
/// the prediction-update loop it parallelizes.
constexpr size_t kMinParallelPredict = 1 << 13;
}  // namespace

MartModel MartModel::Train(const Dataset& data, const MartParams& params) {
  MartModel model;
  model.learning_rate_ = params.learning_rate;
  model.feature_gains_.assign(data.num_features(), 0.0);
  const size_t n = data.num_examples();
  if (n == 0) return model;
  ThreadPool* pool =
      params.pool != nullptr ? params.pool : &ThreadPool::Global();

  // F_0: the mean target.
  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += data.target(i);
  mean /= static_cast<double>(n);
  model.bias_ = mean;

  const BinnedDataset binned(data, params.max_bins);
  std::vector<double> predictions(n, mean);
  std::vector<double> residuals(n, 0.0);
  Rng rng(params.seed);

  for (int m = 0; m < params.num_trees; ++m) {
    // Squared loss: the negative gradient is the plain residual.
    double mse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      residuals[i] = data.target(i) - predictions[i];
      mse += residuals[i] * residuals[i];
    }
    model.training_curve_.push_back(mse / static_cast<double>(n));

    std::vector<uint32_t> sample;
    if (params.subsample < 1.0) {
      sample.reserve(static_cast<size_t>(
          static_cast<double>(n) * params.subsample) + 1);
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextBool(params.subsample)) {
          sample.push_back(static_cast<uint32_t>(i));
        }
      }
      if (sample.empty()) sample.push_back(0);
    }

    RegressionTree tree = RegressionTree::Fit(
        binned, residuals, sample, params.tree, &model.feature_gains_, pool);
    // Each index writes only predictions[i], so the parallel update is
    // bitwise identical to the sequential loop.
    const auto update = [&](size_t i) {
      predictions[i] +=
          params.learning_rate * tree.Predict(data.ExampleSpan(i));
    };
    if (pool->num_threads() > 1 && n >= kMinParallelPredict) {
      pool->ParallelFor(n, update);
    } else {
      for (size_t i = 0; i < n; ++i) update(i);
    }
    model.trees_.push_back(std::move(tree));
  }
  return model;
}

double MartModel::Predict(std::span<const double> features) const {
  double f = bias_;
  for (const auto& tree : trees_) {
    f += learning_rate_ * tree.Predict(features);
  }
  return f;
}

double MartModel::MeanSquaredError(const Dataset& data) const {
  if (data.num_examples() == 0) return 0.0;
  double mse = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    const double d = Predict(data.ExampleSpan(i)) - data.target(i);
    mse += d * d;
  }
  return mse / static_cast<double>(data.num_examples());
}

MartModel MartModel::FromParts(double bias, double learning_rate,
                               std::vector<RegressionTree> trees,
                               std::vector<double> feature_gains) {
  MartModel model;
  model.bias_ = bias;
  model.learning_rate_ = learning_rate;
  model.trees_ = std::move(trees);
  model.feature_gains_ = std::move(feature_gains);
  return model;
}

std::string MartModel::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << "MART " << bias_ << " " << learning_rate_ << " " << trees_.size()
      << " " << feature_gains_.size() << "\n";
  for (double g : feature_gains_) out << g << " ";
  out << "\n";
  for (const auto& tree : trees_) out << tree.Serialize();
  return out.str();
}

Result<MartModel> MartModel::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  MartModel model;
  size_t num_trees = 0, num_features = 0;
  if (!(in >> magic >> model.bias_ >> model.learning_rate_ >> num_trees >>
        num_features) ||
      magic != "MART") {
    return Status::InvalidArgument("bad MART header");
  }
  model.feature_gains_.resize(num_features);
  for (size_t i = 0; i < num_features; ++i) {
    if (!(in >> model.feature_gains_[i])) {
      return Status::InvalidArgument("bad MART gains");
    }
  }
  // Re-serialize remaining stream per tree: trees are line-structured, so
  // hand the rest of the stream to each tree in turn.
  for (size_t t = 0; t < num_trees; ++t) {
    size_t count = 0;
    if (!(in >> count)) return Status::InvalidArgument("bad tree count");
    std::ostringstream tree_text;
    tree_text.precision(17);
    tree_text << count << "\n";
    for (size_t i = 0; i < count; ++i) {
      int feature, left, right;
      double threshold, value;
      if (!(in >> feature >> threshold >> left >> right >> value)) {
        return Status::InvalidArgument("bad tree body");
      }
      tree_text << feature << " " << threshold << " " << left << " " << right
                << " " << value << "\n";
    }
    RPE_ASSIGN_OR_RETURN(RegressionTree tree,
                         RegressionTree::Deserialize(tree_text.str()));
    model.trees_.push_back(std::move(tree));
  }
  return model;
}

}  // namespace rpe
