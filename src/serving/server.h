// TcpServer: the epoll TCP front-end of the serving tier. Untrusted
// clients speak the length-prefixed wire protocol (serving/wire.h) —
// Open/Advance/Progress/Close/Stats — against a ShardedMonitorService;
// this file turns "traffic enters via in-process replay" into "traffic
// enters via a socket" without adding a single lock to the scoring path.
//
// Threading / pinning model: N IO threads, each owning one epoll
// instance and a disjoint set of connections. Accepted connections are
// handed out round-robin and never migrate. IO thread t opens its
// connections' sessions on monitor shard (t % num_shards) via
// ShardedMonitorService::OpenSessionOnShard, so with io_threads ==
// num_shards (the default) the event loops align 1:1 with shards and a
// request never crosses a shard lock it didn't need — the only
// contention on a session's shard comes from the one IO thread that owns
// the session, plus the service-level Tick/publish machinery.
//
// Batched decode → deficit-fair advance: an IO thread drains every
// readable connection first, decoding all complete frames, answering
// cheap requests inline and deferring Advance work into a per-iteration
// batch. The batch then runs as a deficit round-robin — one observation
// step per pending request per round, exactly the service Tick's
// fairness discipline — so a connection asking for 4096 steps cannot
// starve one asking for 1. Per-connection FIFO response order is
// preserved: a connection's later frames are not dispatched until its
// deferred Advance has been answered.
//
// Backpressure: a connection's pending responses accumulate in a bounded
// write buffer. When it exceeds Options::max_write_buffer the server
// stops reading (and stops dispatching) from that connection until the
// buffer drains below half — a slow reader throttles itself, never the
// event loop or other connections.
//
// Online ingest + admission control: kIngestRecord / kIngestBatch frames
// stream PipelineRecords into the RecordIngestQueue handed to the
// constructor (the TrainerLoop drains it, retrains, and hot-swaps —
// generation bumps are visible in kStats responses mid-connection).
// Saturation is shed, never queued unboundedly and never dropped
// silently: a frame that exceeds the per-connection or global in-flight
// budget, or an ingest frame that would push the queue past its
// watermark, is answered with a kStatusBusy error frame in FIFO order
// and counted exactly (TcpServerStats::requests_shed /
// records_ingest_shed). Shed decisions happen at read time — the frame's
// payload is released immediately, so a flood costs inbox slots, not
// payload bytes — but the busy response still goes out in request order.
//
// Shutdown: Stop() closes the listen socket, wakes every IO thread,
// flushes pending write buffers for up to Options::drain_timeout, closes
// every connection (closing its sessions), and joins the threads — a
// SIGTERM'd server exits 0 with reconciled counters. Failure edges are
// failpoint-instrumented (server.accept / server.read / server.write /
// server.frame — see docs/ROBUSTNESS.md) so fault drills can hit the
// wire the same way they hit snapshots and the trainer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serving/ingest.h"
#include "serving/shard_router.h"
#include "serving/wire.h"

namespace rpe {

/// \brief Exact counters of the TCP front-end, summed over IO threads.
/// (The serving-tier counters live in ShardedMonitorService::Stats; a
/// StatsResponse over the wire carries both.)
struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t protocol_errors = 0;  ///< hostile frames / payloads
  uint64_t io_errors = 0;        ///< read/write/accept failures
  uint64_t wire_sessions_opened = 0;
  uint64_t wire_sessions_closed = 0;
  uint64_t advance_steps = 0;  ///< observation steps taken for Advance
  // Admission control / online ingest. Every record offered over the wire
  // is accounted exactly once: ingested + ingest_dropped + ingest_shed ==
  // records offered; every shed frame (session or ingest) was answered
  // with kStatusBusy, never silently discarded.
  uint64_t requests_shed = 0;           ///< session frames answered busy
  uint64_t records_ingested = 0;        ///< records accepted into the queue
  uint64_t records_ingest_dropped = 0;  ///< records refused at the queue edge
  uint64_t records_ingest_shed = 0;     ///< records answered busy
};

/// \brief Epoll event-loop TCP server over a ShardedMonitorService.
/// Start/Stop are not thread-safe against each other; everything the IO
/// threads do internally is.
class TcpServer {
 public:
  struct Options {
    /// TCP port to bind (loopback); 0 picks an ephemeral port — read it
    /// back with port() after Start().
    uint16_t port = 0;
    /// IO threads (event loops); 0 = one per monitor shard (the 1:1
    /// pinning the header comment describes).
    size_t io_threads = 0;
    /// Per-connection write-buffer cap; beyond it the connection's reads
    /// pause until the buffer drains below half (backpressure).
    size_t max_write_buffer = 1 << 20;
    /// How long Stop() keeps flushing pending responses before closing
    /// connections that still have unread bytes.
    std::chrono::milliseconds drain_timeout{2000};
    /// Admission control: max undispatched frames per connection before
    /// new sheddable frames are answered kStatusBusy.
    size_t max_inflight_per_conn = 128;
    /// Global cap on undispatched frames across all connections.
    size_t max_inflight_total = 4096;
    /// Ingest-queue watermark: an ingest frame whose records would push
    /// the queue past this is answered kStatusBusy. 0 = the queue's
    /// capacity (shed exactly when Push would start dropping).
    size_t ingest_shed_watermark = 0;
    /// Registry the server's counters and request-latency histogram live
    /// in (also the source a kMetricsDump frame and the /metrics endpoint
    /// render). nullptr = a server-private registry, so tests that assert
    /// exact per-server counters stay isolated from each other.
    obs::MetricsRegistry* metrics = nullptr;
    /// Port of the HTTP /metrics exposition listener (loopback, GET
    /// only): -1 disables it, 0 picks an ephemeral port — read it back
    /// with metrics_port() after Start().
    int metrics_port = -1;
  };

  /// `service` and the runs behind `runs` must outlive the server. `runs`
  /// is the replay corpus OpenRequest.run_index indexes into (modulo).
  /// Without an ingest queue, ingest frames are answered NotImplemented.
  TcpServer(ShardedMonitorService* service,
            std::vector<const QueryRunResult*> runs, Options options);
  /// `ingest` (may be null) must outlive the server; it is the wire →
  /// TrainerLoop edge for kIngestRecord / kIngestBatch frames.
  TcpServer(ShardedMonitorService* service,
            std::vector<const QueryRunResult*> runs,
            RecordIngestQueue* ingest, Options options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Bind + listen + spawn the acceptor and IO threads. Fails with a
  /// Status (nothing spawned) if the socket setup fails.
  Status Start();

  /// Drain and stop everything; idempotent, called by the destructor.
  void Stop();

  /// Bound port (after a successful Start()).
  uint16_t port() const { return port_; }

  /// Bound /metrics port (after Start(), when Options::metrics_port >= 0;
  /// 0 otherwise).
  uint16_t metrics_port() const { return metrics_port_; }

  /// The registry the server's counters live in (Options::metrics, or
  /// the server-private one).
  obs::MetricsRegistry& metrics_registry() { return *registry_; }

  TcpServerStats GetStats() const;

  /// The WireStats a StatsRequest returns right now (service + front-end
  /// counters merged) — shared with the stats handler so tests and the
  /// CLI summary read exactly what clients see.
  WireStats BuildWireStats() const;

 private:
  struct Connection;
  struct InboxEntry;
  struct AdvanceWork;
  struct IoThread;

  void AcceptLoop();
  void IoLoop(IoThread* io);
  /// Read until EAGAIN, decode frames into the connection inbox. False =
  /// the connection died (already cleaned up).
  bool ReadInto(IoThread* io, Connection* conn);
  /// Dispatch queued frames in FIFO order until an Advance defers or the
  /// write buffer fills. Appends deferred Advance work to io->batch.
  void DispatchInbox(IoThread* io, Connection* conn);
  /// Run the deferred Advance batch deficit-fairly, answer each request.
  void RunAdvanceBatch(IoThread* io);
  /// Flush the write buffer; arms EPOLLOUT on partial writes, resumes
  /// paused reads once drained. False = the connection died.
  bool FlushWrites(IoThread* io, Connection* conn);
  void SendFrame(IoThread* io, Connection* conn, std::string frame);
  void CloseConnection(IoThread* io, Connection* conn);
  void HandleFrame(IoThread* io, Connection* conn, const InboxEntry& entry);
  /// Close out one answered request: record its end-to-end latency in
  /// the request histogram, emit the root trace span, and write the
  /// slow-request log line when the latency crosses the --slow-ms
  /// threshold.
  void FinishRequest(const char* name, uint64_t trace_id, uint64_t recv_ns,
                     uint64_t arg);
  /// Serve one accepted /metrics HTTP connection inline (blocking with
  /// short timeouts; runs on the acceptor thread).
  void HandleMetricsConn(int fd);
  /// Answer a frame shed at read time with kStatusBusy (FIFO order) and
  /// bump the exact shed counter (records for ingest, frames otherwise).
  void AnswerShed(IoThread* io, Connection* conn, const InboxEntry& entry);
  /// Push decoded records into the ingest queue (watermark shed, per-record
  /// `server.ingest` failpoint) and answer with an IngestResponse.
  void IngestRecords(IoThread* io, Connection* conn, MsgType type,
                     std::vector<PipelineRecord> records);
  bool UpdateEpoll(IoThread* io, Connection* conn);

  ShardedMonitorService* const service_;
  const std::vector<const QueryRunResult*> runs_;
  RecordIngestQueue* const ingest_;  ///< may be null (replay-only server)
  const Options options_;

  /// The server's counters are registry-owned obs::Counters (one relaxed
  /// sharded fetch_add per accrual, summed only on scrape) — the same
  /// objects back GetStats, the exit table, kMetricsDump, and /metrics.
  struct Counters {
    obs::Counter* connections_accepted = nullptr;
    obs::Counter* connections_closed = nullptr;
    obs::Counter* frames_received = nullptr;
    obs::Counter* frames_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* io_errors = nullptr;
    obs::Counter* wire_sessions_opened = nullptr;
    obs::Counter* wire_sessions_closed = nullptr;
    obs::Counter* advance_steps = nullptr;
    obs::Counter* requests_shed = nullptr;
    obs::Counter* records_ingested = nullptr;
    obs::Counter* records_ingest_dropped = nullptr;
    obs::Counter* records_ingest_shed = nullptr;
  };

  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::MetricsRegistry* registry_ = nullptr;
  Counters c_;
  obs::Histogram* request_latency_ = nullptr;  ///< end-to-end, ns

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  int metrics_fd_ = -1;  ///< /metrics HTTP listener (-1 = disabled)
  uint16_t metrics_port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool joined_ = false;

  std::vector<std::unique_ptr<IoThread>> io_threads_;
  std::thread acceptor_;
  int acceptor_wake_fd_ = -1;  ///< eventfd that interrupts the acceptor
  std::atomic<uint64_t> next_io_thread_{0};
  /// Undispatched (non-shed) frames across all connections — the global
  /// in-flight budget admission control checks at read time.
  std::atomic<uint64_t> inflight_total_{0};
};

}  // namespace rpe
