// Execution-engine tests: operator correctness against brute-force
// reference results, counter semantics, pipeline decomposition, and the
// observation stream.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "exec/executor.h"
#include "exec/plan_resolver.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;

class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeSmallCatalog(); }

  QueryRunResult Run(std::unique_ptr<PlanNode> root) {
    auto plan = FinalizePlan(std::move(root), *catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).ValueOrDie();
    auto result = ExecutePlan(*plan_, *catalog_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  }

  const Table& fact() { return **catalog_->GetTable("t_fact"); }
  const Table& dim() { return **catalog_->GetTable("t_dim"); }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PhysicalPlan> plan_;
};

TEST_F(ExecTest, TableScanProducesAllRows) {
  auto run = Run(MakeTableScan("t_fact"));
  EXPECT_EQ(run.rows_out, 1000u);
  EXPECT_EQ(run.true_n[0], 1000.0);
  EXPECT_GT(run.total_time, 0.0);
}

TEST_F(ExecTest, FilterMatchesBruteForce) {
  auto root = MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 10));
  auto run = Run(std::move(root));
  uint64_t expected = 0;
  for (const auto& row : fact().rows()) {
    if (row[2] <= 10) ++expected;
  }
  EXPECT_EQ(run.rows_out, expected);
}

TEST_F(ExecTest, FilterBetween) {
  auto root =
      MakeFilter(MakeTableScan("t_fact"), Predicate::Between(2, 10, 20));
  auto run = Run(std::move(root));
  uint64_t expected = 0;
  for (const auto& row : fact().rows()) {
    if (row[2] >= 10 && row[2] <= 20) ++expected;
  }
  EXPECT_EQ(run.rows_out, expected);
}

TEST_F(ExecTest, IndexScanIsSortedAndComplete) {
  auto run = Run(MakeIndexScan("t_fact", "f_fk"));
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecTest, HashJoinMatchesBruteForce) {
  // dim JOIN fact ON d_id = f_fk (build = dim).
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                           /*build_key=*/0, /*probe_key=*/1);
  auto run = Run(std::move(root));
  // Every fact row joins exactly one dim row (FK in [0,100)).
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecTest, HashJoinDuplicateKeysCrossProduct) {
  // fact JOIN fact ON f_fk = f_fk would explode; use dim attr instead:
  // join dim with itself on d_attr (10 distinct values).
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_dim"),
                           1, 1);
  auto run = Run(std::move(root));
  std::map<int64_t, uint64_t> counts;
  for (const auto& row : dim().rows()) counts[row[1]]++;
  uint64_t expected = 0;
  for (const auto& [attr, c] : counts) expected += c * c;
  EXPECT_EQ(run.rows_out, expected);
}

TEST_F(ExecTest, NestedLoopIndexSeekMatchesHashJoin) {
  // fact NLJ seek(dim.d_id) on f_fk: same cardinality as the hash join.
  auto root = MakeNestedLoopJoin(MakeTableScan("t_fact"),
                                 MakeIndexSeek("t_dim", "d_id"),
                                 /*outer_key=*/1);
  auto run = Run(std::move(root));
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecTest, NaiveNestedLoopWithParamFilter) {
  auto inner = MakeFilter(MakeTableScan("t_dim"), Predicate::EqParam(0));
  auto root =
      MakeNestedLoopJoin(MakeTableScan("t_fact"), std::move(inner), 1);
  auto run = Run(std::move(root));
  EXPECT_EQ(run.rows_out, 1000u);
  // The rescanned inner table-scan node must have issued 1000 * 100 calls.
  // Node ids: 0=NLJ, 1=outer scan, 2=filter, 3=inner scan.
  EXPECT_EQ(run.true_n[3], 1000.0 * 100.0);
}

TEST_F(ExecTest, MergeJoinMatchesHashJoin) {
  // Sort both sides explicitly, then merge-join on the key.
  auto left = MakeSort(MakeTableScan("t_dim"), 0);
  auto right = MakeSort(MakeTableScan("t_fact"), 1);
  auto root = MakeMergeJoin(std::move(left), std::move(right), 0, 1);
  auto run = Run(std::move(root));
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecTest, MergeJoinManyToMany) {
  auto left = MakeSort(MakeTableScan("t_dim"), 1);
  auto right = MakeSort(MakeTableScan("t_dim"), 1);
  auto root = MakeMergeJoin(std::move(left), std::move(right), 1, 1);
  auto run = Run(std::move(root));
  std::map<int64_t, uint64_t> counts;
  for (const auto& row : dim().rows()) counts[row[1]]++;
  uint64_t expected = 0;
  for (const auto& [attr, c] : counts) expected += c * c;
  EXPECT_EQ(run.rows_out, expected);
}

TEST_F(ExecTest, SortIsOrderedAndComplete) {
  auto run = Run(MakeSort(MakeTableScan("t_fact"), 2));
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecTest, BatchSortPreservesMultiset) {
  auto run = Run(MakeBatchSort(MakeTableScan("t_fact"), 1, 64));
  EXPECT_EQ(run.rows_out, 1000u);
}

TEST_F(ExecTest, HashAggregateCountsGroups) {
  auto root = MakeHashAggregate(MakeTableScan("t_dim"), {1});
  auto run = Run(std::move(root));
  std::set<int64_t> distinct;
  for (const auto& row : dim().rows()) distinct.insert(row[1]);
  EXPECT_EQ(run.rows_out, distinct.size());
}

TEST_F(ExecTest, StreamAggregateOverSortedInput) {
  auto root =
      MakeStreamAggregate(MakeSort(MakeTableScan("t_dim"), 1), {1});
  auto run = Run(std::move(root));
  std::set<int64_t> distinct;
  for (const auto& row : dim().rows()) distinct.insert(row[1]);
  EXPECT_EQ(run.rows_out, distinct.size());
}

TEST_F(ExecTest, StreamAggEqualsHashAggGroupCounts) {
  auto hash_run = Run(MakeHashAggregate(MakeTableScan("t_fact"), {1}));
  auto stream_run =
      Run(MakeStreamAggregate(MakeSort(MakeTableScan("t_fact"), 1), {1}));
  EXPECT_EQ(hash_run.rows_out, stream_run.rows_out);
}

TEST_F(ExecTest, TopLimitsOutput) {
  auto run = Run(MakeTop(MakeTableScan("t_fact"), 17));
  EXPECT_EQ(run.rows_out, 17u);
}

TEST_F(ExecTest, CountersMonotonicallyIncrease) {
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                           0, 1);
  auto run = Run(std::move(root));
  ASSERT_GE(run.observations.size(), 2u);
  for (size_t oi = 1; oi < run.observations.size(); ++oi) {
    EXPECT_GE(run.observations[oi].vtime, run.observations[oi - 1].vtime);
    for (size_t node = 0; node < run.true_n.size(); ++node) {
      EXPECT_GE(run.observations[oi].k[node],
                run.observations[oi - 1].k[node]);
    }
  }
}

TEST_F(ExecTest, FinalObservationMatchesTrueN) {
  auto root = MakeFilter(MakeTableScan("t_fact"), Predicate::Ge(2, 25));
  auto run = Run(std::move(root));
  const Observation& last = run.observations.back();
  for (size_t node = 0; node < run.true_n.size(); ++node) {
    EXPECT_DOUBLE_EQ(last.k[node], run.true_n[node]);
  }
}

TEST_F(ExecTest, BoundsContainTrueN) {
  auto root = MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 30));
  auto run = Run(std::move(root));
  for (const auto& obs : run.observations) {
    for (size_t node = 0; node < run.true_n.size(); ++node) {
      EXPECT_LE(obs.lb[node], run.true_n[node] + 1e-9)
          << "node " << node;
      EXPECT_GE(obs.ub[node], run.true_n[node] - 1e-9)
          << "node " << node;
    }
  }
}

TEST_F(ExecTest, EstimateWithinBounds) {
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                           0, 1);
  auto run = Run(std::move(root));
  for (const auto& obs : run.observations) {
    for (size_t node = 0; node < run.true_n.size(); ++node) {
      EXPECT_GE(obs.e[node], obs.lb[node] - 1e-9);
      EXPECT_LE(obs.e[node], obs.ub[node] + 1e-9);
    }
  }
}

// --- pipeline decomposition -------------------------------------------

TEST_F(ExecTest, ScanFilterIsOnePipeline) {
  auto root = MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 10));
  auto plan = FinalizePlan(std::move(root), *catalog_);
  ASSERT_TRUE(plan.ok());
  auto pipelines = DecomposePipelines(**plan);
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines[0].nodes.size(), 2u);
  ASSERT_EQ(pipelines[0].driver_nodes.size(), 1u);
  EXPECT_EQ((*plan)->node(pipelines[0].driver_nodes[0])->op,
            OpType::kTableScan);
}

TEST_F(ExecTest, HashJoinSplitsBuildPipeline) {
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                           0, 1);
  auto plan = FinalizePlan(std::move(root), *catalog_);
  ASSERT_TRUE(plan.ok());
  auto pipelines = DecomposePipelines(**plan);
  ASSERT_EQ(pipelines.size(), 2u);
  // Root pipeline: join + probe scan; build pipeline: build scan only.
  EXPECT_EQ(pipelines[0].nodes.size(), 2u);
  EXPECT_EQ(pipelines[1].nodes.size(), 1u);
}

TEST_F(ExecTest, SortActsAsDriverOfParentPipeline) {
  auto root = MakeStreamAggregate(MakeSort(MakeTableScan("t_fact"), 1), {1});
  auto plan = FinalizePlan(std::move(root), *catalog_);
  ASSERT_TRUE(plan.ok());
  auto pipelines = DecomposePipelines(**plan);
  ASSERT_EQ(pipelines.size(), 2u);
  // Parent pipeline: agg + sort, driver = sort node.
  ASSERT_EQ(pipelines[0].driver_nodes.size(), 1u);
  EXPECT_EQ((*plan)->node(pipelines[0].driver_nodes[0])->op, OpType::kSort);
}

TEST_F(ExecTest, NljInnerNodesAreNotDrivers) {
  auto root = MakeNestedLoopJoin(MakeTableScan("t_fact"),
                                 MakeIndexSeek("t_dim", "d_id"), 1);
  auto plan = FinalizePlan(std::move(root), *catalog_);
  ASSERT_TRUE(plan.ok());
  auto pipelines = DecomposePipelines(**plan);
  ASSERT_EQ(pipelines.size(), 1u);
  ASSERT_EQ(pipelines[0].driver_nodes.size(), 1u);
  EXPECT_EQ((*plan)->node(pipelines[0].driver_nodes[0])->op,
            OpType::kTableScan);
}

TEST_F(ExecTest, PipelineWindowsAreOrdered) {
  auto root = MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                           0, 1);
  auto run = Run(std::move(root));
  ASSERT_EQ(run.pipelines.size(), 2u);
  for (const auto& p : run.pipelines) {
    ASSERT_GE(p.first_obs, 0) << "pipeline " << p.id << " never active";
    EXPECT_LE(p.first_obs, p.last_obs);
    EXPECT_LT(p.start_time, p.end_time);
  }
  // The build pipeline must start before the probe pipeline ends.
  EXPECT_LE(run.pipelines[1].start_time, run.pipelines[0].end_time);
}

TEST_F(ExecTest, SpillChargesExtraBytesAndCalls) {
  // Force a spill with a tiny memory budget.
  ExecOptions opts;
  opts.memory_limit_bytes = 1024;
  auto root = MakeHashJoin(MakeTableScan("t_fact"), MakeTableScan("t_dim"),
                           1, 0);
  auto plan = FinalizePlan(std::move(root), *catalog_);
  ASSERT_TRUE(plan.ok());
  auto run = ExecutePlan(**plan, *catalog_, opts);
  ASSERT_TRUE(run.ok());
  // Hash join node is the root (id 0): spills surface as written bytes.
  EXPECT_GT(run->final_bytes_written[0], 0.0);
  // And as extra GetNext calls beyond the pure join output.
  EXPECT_GT(run->true_n[0], 100.0);
}

TEST_F(ExecTest, DeterministicAcrossRuns) {
  auto make = [&] {
    return MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1);
  };
  auto run1 = Run(make());
  auto plan2 = FinalizePlan(make(), *catalog_);
  ASSERT_TRUE(plan2.ok());
  auto run2 = ExecutePlan(**plan2, *catalog_);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run1.total_time, run2->total_time);
  EXPECT_EQ(run1.observations.size(), run2->observations.size());
}

}  // namespace
}  // namespace rpe
