// TPC-DS-like workload: a two-fact star schema (store_sales / web_sales with
// shared dimensions), aggregation-heavy query mix — the paper's workload (1).
#include <cmath>

#include "workload/build_util.h"
#include "workload/workload.h"

namespace rpe {

namespace {

constexpr double kDateRows = 730;
constexpr double kStoreRows = 40;
constexpr double kPromoRows = 120;

double ItemRows(double sf) { return 60 * sf; }
double DsCustomerRows(double sf) { return 100 * sf; }
double StoreSalesRows(double sf) { return 5000 * sf; }
double WebSalesRows(double sf) { return 2500 * sf; }

Status BuildTpcdsTables(Catalog* catalog, double sf, double z, Rng* rng) {
  const uint64_t items = ScaledRows(ItemRows(sf), 1.0, 50);
  const uint64_t customers = ScaledRows(DsCustomerRows(sf), 1.0, 50);
  const uint64_t store_sales = ScaledRows(StoreSalesRows(sf), 1.0, 500);
  const uint64_t web_sales = ScaledRows(WebSalesRows(sf), 1.0, 250);

  RPE_RETURN_NOT_OK(TableBuilder("date_dim", 730)
                        .Col("d_datekey", 8, ColumnGen::Sequential())
                        .Col("d_month", 8, ColumnGen::Correlated(0, 30, 0))
                        .Col("d_year", 8, ColumnGen::Correlated(0, 365, 0))
                        .Col("d_pad", 24, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("item", items)
                        .Col("i_itemkey", 8, ColumnGen::Sequential())
                        .Col("i_category", 8, ColumnGen::Zipf(10, 0.6, false))
                        .Col("i_brand", 8, ColumnGen::Zipf(100, z))
                        .Col("i_price", 8, ColumnGen::Uniform(1, 1000))
                        .Col("i_pad", 60, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("ds_customer", customers)
                        .Col("dc_custkey", 8, ColumnGen::Sequential())
                        .Col("dc_state", 8, ColumnGen::Zipf(50, 0.8, false))
                        .Col("dc_income", 8, ColumnGen::Uniform(1, 20))
                        .Col("dc_pad", 70, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("store", ScaledRows(kStoreRows, 1.0))
                        .Col("st_storekey", 8, ColumnGen::Sequential())
                        .Col("st_state", 8, ColumnGen::Uniform(1, 50))
                        .Col("st_pad", 40, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("promotion", ScaledRows(kPromoRows, 1.0))
                        .Col("pr_promokey", 8, ColumnGen::Sequential())
                        .Col("pr_channel", 8, ColumnGen::Uniform(1, 6))
                        .Col("pr_pad", 30, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("store_sales", store_sales)
          .Col("ss_itemkey", 8, ColumnGen::FkZipf(items, z))
          .Col("ss_custkey", 8, ColumnGen::FkZipf(customers, z * 0.8))
          .Col("ss_datekey", 8, ColumnGen::FkUniform(730))
          .Col("ss_storekey", 8, ColumnGen::FkZipf(ScaledRows(kStoreRows, 1.0),
                                                   0.8))
          .Col("ss_promokey", 8,
               ColumnGen::FkUniform(ScaledRows(kPromoRows, 1.0)))
          .Col("ss_quantity", 8, ColumnGen::Zipf(100, 1.0, false))
          .Col("ss_price", 8, ColumnGen::Uniform(1, 1000))
          .Col("ss_pad", 16, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("web_sales", web_sales)
          .Col("ws_itemkey", 8, ColumnGen::FkZipf(items, z))
          .Col("ws_custkey", 8, ColumnGen::FkZipf(customers, z))
          .Col("ws_datekey", 8, ColumnGen::FkUniform(730))
          .Col("ws_quantity", 8, ColumnGen::Zipf(100, 1.0, false))
          .Col("ws_price", 8, ColumnGen::Uniform(1, 1000))
          .Col("ws_pad", 16, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  return Status::OK();
}

SchemaGraph TpcdsGraph(double sf) {
  SchemaGraph g;
  g.tables = {"date_dim", "item",       "ds_customer", "store",
              "promotion", "store_sales", "web_sales"};
  g.table_rows = {kDateRows,  ItemRows(sf),       DsCustomerRows(sf),
                  kStoreRows, kPromoRows,         StoreSalesRows(sf),
                  WebSalesRows(sf)};
  auto edge = [&](size_t a, const char* ca, size_t b, const char* cb) {
    JoinPath e;
    e.table_a = a;
    e.col_a = ca;
    e.table_b = b;
    e.col_b = cb;
    e.fanout_ab = std::max(1.0, g.table_rows[b] / g.table_rows[a]);
    e.fanout_ba = std::max(1.0, g.table_rows[a] / g.table_rows[b]);
    g.edges.push_back(e);
  };
  edge(0, "d_datekey", 5, "ss_datekey");
  edge(1, "i_itemkey", 5, "ss_itemkey");
  edge(2, "dc_custkey", 5, "ss_custkey");
  edge(3, "st_storekey", 5, "ss_storekey");
  edge(4, "pr_promokey", 5, "ss_promokey");
  edge(0, "d_datekey", 6, "ws_datekey");
  edge(1, "i_itemkey", 6, "ws_itemkey");
  edge(2, "dc_custkey", 6, "ws_custkey");

  g.filters = {
      {0, "d_month", 0, 24, 0.5},
      {0, "d_year", 0, 2, 0.6},
      {1, "i_category", 1, 10, 0.85},
      {1, "i_brand", 1, 100, 0.7},
      {1, "i_price", 1, 1000, 0.0},
      {2, "dc_state", 1, 50, 0.8},
      {2, "dc_income", 1, 20, 0.4},
      {3, "st_state", 1, 50, 0.7},
      {4, "pr_channel", 1, 6, 0.8},
      {5, "ss_quantity", 1, 100, 0.2},
      {5, "ss_price", 1, 1000, 0.0},
      {6, "ws_quantity", 1, 100, 0.2},
  };
  g.group_cols = {
      {0, "d_month"},     {0, "d_year"},    {1, "i_category"},
      {2, "dc_state"},    {3, "st_state"},  {4, "pr_channel"},
      {5, "ss_quantity"}, {6, "ws_quantity"},
  };
  return g;
}

}  // namespace

Result<Workload> BuildTpcdsWorkload(const WorkloadConfig& config) {
  Workload w;
  w.config = config;
  w.catalog = std::make_unique<Catalog>();
  Rng data_rng(config.seed * 7919ULL + 101);
  RPE_RETURN_NOT_OK(
      BuildTpcdsTables(w.catalog.get(), config.scale, config.zipf, &data_rng));
  w.design = DesignFor(WorkloadKind::kTpcds, config.tuning);
  RPE_RETURN_NOT_OK(ApplyPhysicalDesign(w.catalog.get(), w.design));
  w.graph = TpcdsGraph(config.scale);

  QueryGenParams params;
  params.min_joins = 1;
  params.max_joins = 4;
  params.filter_prob = 0.7;
  params.agg_prob = 0.6;  // DS is aggregation-heavy
  params.top_prob = 0.25;
  Rng query_rng(config.seed * 60013ULL + 7);
  RPE_ASSIGN_OR_RETURN(w.queries,
                       GenerateQueries(w.graph, params, config.name + "_q",
                                       config.num_queries, &query_rng));
  return w;
}

}  // namespace rpe
