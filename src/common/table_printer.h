// Console table formatting used by the benchmark harness to print the
// paper's tables/figures as aligned text.
#pragma once

#include <string>
#include <vector>

namespace rpe {

/// \brief Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string Fmt(double v, int precision = 4);
  /// Convenience: format as percentage with one decimal, e.g. "63.9%".
  static std::string Pct(double fraction, int precision = 1);

  /// Render to a string (header, separator, rows).
  std::string ToString() const;
  /// Render to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rpe
