// Table 6: percentage of pipelines where the ratio of a policy's estimation
// error to the minimum error (among DNE/TGN/LUO) exceeds 2x / 5x / 10x,
// under the ad-hoc leave-one-workload-out setup.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Table 6: error-ratio tails (ad-hoc setup) ===\n";
  AdHocResult adhoc = RunAdHocExperiment();
  const auto& records = adhoc.records;
  const std::vector<size_t> pool = PoolOriginalThree();

  struct Row {
    std::string name;
    std::vector<size_t> choices;
  };
  const std::vector<Row> rows = {
      {"DNE", FixedChoice(records, pool[0])},
      {"TGN", FixedChoice(records, pool[1])},
      {"LUO", FixedChoice(records, pool[2])},
      {"EST. SEL. (ST)", adhoc.static3},
      {"EST. SEL. (DY)", adhoc.dynamic3},
  };
  TablePrinter table({"Policy", ">2x", ">5x", ">10x"});
  for (const Row& row : rows) {
    const auto m = EvaluateChoices(records, row.choices, pool);
    table.AddRow({row.name, TablePrinter::Pct(m.frac_ratio_gt2),
                  TablePrinter::Pct(m.frac_ratio_gt5),
                  TablePrinter::Pct(m.frac_ratio_gt10)});
  }
  table.Print();
  std::cout << "\nPaper's Table 6: selection shrinks the >5x tail from\n"
               "7.8%-14.5% (single estimators) to 3.7% (static) and 0.8%\n"
               "(dynamic).\n";
  return 0;
}
