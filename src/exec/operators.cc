#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "exec/cost_model.h"

namespace rpe {

namespace {

Row ConcatRows(const Row& a, const Row& b) {
  Row out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

/// Deterministic sort comparator: primary key column, full-row tiebreak.
struct RowKeyLess {
  size_t key;
  bool operator()(const Row& a, const Row& b) const {
    if (a[key] != b[key]) return a[key] < b[key];
    return a < b;
  }
};

/// The single base table fed into an inner NLJ subtree (for the
/// matches-per-outer-row bound used in cardinality refinement).
const PlanNode* InnerLeaf(const PlanNode* node) {
  while (node->num_children() > 0) node = node->child(0);
  return node;
}

}  // namespace

Operator::Operator(const PlanNode* node, ExecContext* ctx)
    : node_(node),
      ctx_(ctx),
      width_(static_cast<double>(node->output_schema.row_width_bytes())) {}

void Operator::ReOpen() {
  Close();
  Open();
}

bool Operator::Next(Row* out) {
  if (!NextImpl(out)) return false;
  ctx_->OnRowProduced(node_->id, node_->op, width_);
  return true;
}

// --- TableScanOp ------------------------------------------------------------

TableScanOp::TableScanOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {}

void TableScanOp::Open() {
  table_ = *ctx_->catalog().GetTable(node_->table);
  pos_ = 0;
  if (!node_->nlj_inner) {
    // Driver-node input sizes are known exactly at pipeline start (§3.4).
    NodeCounters& c = counters();
    const double n = static_cast<double>(table_->num_rows());
    c.e = n;
    c.lb = std::max(c.lb, 0.0);
    c.ub = n;
  }
}

void TableScanOp::ReOpen() {
  // Rescan (naive nested-loop inner): position resets, counters accumulate.
  // A nested-loop join re-opens its inner subtree lazily, so the first
  // ReOpen may arrive before any Open.
  if (table_ == nullptr) {
    Open();
    return;
  }
  pos_ = 0;
}

bool TableScanOp::NextImpl(Row* out) {
  if (pos_ >= table_->num_rows()) return false;
  *out = table_->row(pos_++);
  ctx_->Charge(width_ * kReadCostPerByte);  // physical read
  return true;
}

// --- IndexScanOp ------------------------------------------------------------

IndexScanOp::IndexScanOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {}

void IndexScanOp::Open() {
  table_ = *ctx_->catalog().GetTable(node_->table);
  index_ = ctx_->catalog().GetIndex(node_->table, node_->index_column);
  RPE_CHECK(index_ != nullptr) << "missing index for IndexScan";
  pos_ = 0;
  if (!node_->nlj_inner) {
    NodeCounters& c = counters();
    const double n = static_cast<double>(index_->num_entries());
    c.e = n;
    c.ub = n;
  }
}

void IndexScanOp::ReOpen() {
  if (index_ == nullptr) {
    Open();
    return;
  }
  pos_ = 0;
}

bool IndexScanOp::NextImpl(Row* out) {
  if (pos_ >= index_->entries().size()) return false;
  *out = table_->row(index_->entries()[pos_++].second);
  ctx_->Charge(width_ * kReadCostPerByte);
  return true;
}

// --- IndexSeekOp ------------------------------------------------------------

IndexSeekOp::IndexSeekOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {}

void IndexSeekOp::Open() {
  table_ = *ctx_->catalog().GetTable(node_->table);
  index_ = ctx_->catalog().GetIndex(node_->table, node_->index_column);
  RPE_CHECK(index_ != nullptr) << "missing index for IndexSeek";
  matches_ = index_->SeekEqual(ctx_->correlated_key());
  pos_ = 0;
  ctx_->Charge(kSeekOpenCost);  // B-tree descent
}

void IndexSeekOp::ReOpen() { Open(); }

bool IndexSeekOp::NextImpl(Row* out) {
  if (pos_ >= matches_.size()) return false;
  *out = table_->row(matches_[pos_++]);
  ctx_->Charge(width_ * kReadCostPerByte);
  return true;
}

// --- FilterOp ---------------------------------------------------------------

FilterOp::FilterOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  child_ = Operator::Create(node->child(0), ctx);
}

void FilterOp::Open() {
  child_->Open();
  // Capture the correlated parameter at open time: a nested-loop join deeper
  // in this subtree may overwrite the context's key while we are draining.
  param_ = ctx_->correlated_key();
}

void FilterOp::ReOpen() {
  child_->ReOpen();
  param_ = ctx_->correlated_key();
}

void FilterOp::Close() { child_->Close(); }

bool FilterOp::NextImpl(Row* out) {
  Row row;
  while (child_->Next(&row)) {
    if (node_->pred.Eval(row, param_)) {
      *out = std::move(row);
      return true;
    }
  }
  return false;
}

// --- NestedLoopJoinOp -------------------------------------------------------

NestedLoopJoinOp::NestedLoopJoinOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  outer_ = Operator::Create(node->child(0), ctx);
  inner_ = Operator::Create(node->child(1), ctx);
}

void NestedLoopJoinOp::Open() {
  outer_->Open();
  have_outer_ = false;
  // Bound on matches per outer row: the size of the inner base table.
  const PlanNode* leaf = InnerLeaf(node_->child(1));
  if (!leaf->table.empty()) {
    auto t = ctx_->catalog().GetTable(leaf->table);
    if (t.ok()) {
      counters().max_join_group = static_cast<double>((*t)->num_rows());
    }
  }
}

void NestedLoopJoinOp::Close() {
  outer_->Close();
  inner_->Close();
}

bool NestedLoopJoinOp::NextImpl(Row* out) {
  Row inner_row;
  while (true) {
    if (!have_outer_) {
      if (!outer_->Next(&outer_row_)) return false;
      ctx_->SetCorrelatedKey(outer_row_[node_->left_key]);
      inner_->ReOpen();
      have_outer_ = true;
    }
    if (inner_->Next(&inner_row)) {
      *out = ConcatRows(outer_row_, inner_row);
      return true;
    }
    have_outer_ = false;
  }
}

// --- HashJoinOp -------------------------------------------------------------

HashJoinOp::HashJoinOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  build_ = Operator::Create(node->child(0), ctx);
  probe_ = Operator::Create(node->child(1), ctx);
}

void HashJoinOp::Open() {
  table_.clear();
  matches_ = nullptr;
  match_pos_ = 0;

  build_->Open();
  const double build_width =
      static_cast<double>(node_->child(0)->output_schema.row_width_bytes());
  const double mem_limit = ctx_->options().memory_limit_bytes;
  double build_bytes = 0.0;
  double spilled_rows = 0.0;
  Row row;
  while (build_->Next(&row)) {
    const int64_t key = row[node_->left_key];
    table_[key].push_back(std::move(row));
    ctx_->Charge(BuildCostPerRow(OpType::kHashJoin));
    build_bytes += build_width;
    if (build_bytes > mem_limit) {
      // Spill: this row's partition goes to (virtual) disk.
      spilled_rows += 1.0;
      ctx_->ChargeWrite(node_->id, build_width);
    }
  }
  if (spilled_rows > 0.0) {
    // Re-read pass over spilled partitions; per §3.1 spills surface as
    // additional GetNext calls at the node.
    NodeCounters& c = counters();
    for (double i = 0.0; i < spilled_rows; i += 1.0) {
      c.k += 1.0;
      ctx_->ChargeRead(node_->id, build_width);
    }
  }
  double max_group = 0.0;
  for (const auto& [key, rows] : table_) {
    max_group = std::max(max_group, static_cast<double>(rows.size()));
  }
  NodeCounters& c = counters();
  c.max_join_group = max_group;
  c.input_done = true;

  probe_->Open();
}

void HashJoinOp::Close() {
  build_->Close();
  probe_->Close();
  table_.clear();
}

bool HashJoinOp::NextImpl(Row* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = ConcatRows((*matches_)[match_pos_++], probe_row_);
      return true;
    }
    matches_ = nullptr;
    if (!probe_->Next(&probe_row_)) return false;
    auto it = table_.find(probe_row_[node_->right_key]);
    if (it != table_.end()) {
      matches_ = &it->second;
      match_pos_ = 0;
    }
  }
}

// --- MergeJoinOp ------------------------------------------------------------

MergeJoinOp::MergeJoinOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  left_ = Operator::Create(node->child(0), ctx);
  right_ = Operator::Create(node->child(1), ctx);
}

void MergeJoinOp::Open() {
  left_->Open();
  right_->Open();
  have_left_ = AdvanceLeft();
  have_right_ = AdvanceRight();
  right_group_.clear();
  emitting_ = false;
}

void MergeJoinOp::Close() {
  left_->Close();
  right_->Close();
}

bool MergeJoinOp::AdvanceLeft() {
  have_left_ = left_->Next(&left_row_);
  return have_left_;
}

bool MergeJoinOp::AdvanceRight() {
  have_right_ = right_->Next(&right_row_);
  return have_right_;
}

bool MergeJoinOp::NextImpl(Row* out) {
  while (true) {
    if (emitting_) {
      if (group_pos_ < right_group_.size()) {
        *out = ConcatRows(left_row_, right_group_[group_pos_++]);
        return true;
      }
      emitting_ = false;
      if (!AdvanceLeft()) return false;
      if (left_row_[node_->left_key] == group_key_) {
        group_pos_ = 0;
        emitting_ = true;
        continue;
      }
    }
    if (!have_left_ || !have_right_) return false;
    const int64_t lk = left_row_[node_->left_key];
    const int64_t rk = right_row_[node_->right_key];
    if (lk < rk) {
      if (!AdvanceLeft()) return false;
    } else if (lk > rk) {
      if (!AdvanceRight()) return false;
    } else {
      group_key_ = lk;
      right_group_.clear();
      while (have_right_ && right_row_[node_->right_key] == group_key_) {
        right_group_.push_back(right_row_);
        AdvanceRight();
      }
      group_pos_ = 0;
      emitting_ = true;
    }
  }
}

// --- SortOp -----------------------------------------------------------------

SortOp::SortOp(const PlanNode* node, ExecContext* ctx) : Operator(node, ctx) {
  child_ = Operator::Create(node->child(0), ctx);
}

void SortOp::Open() {
  rows_.clear();
  pos_ = 0;
  child_->Open();
  const double mem_limit = ctx_->options().memory_limit_bytes;
  double buffered_bytes = 0.0;
  Row row;
  while (child_->Next(&row)) {
    rows_.push_back(std::move(row));
    ctx_->Charge(BuildCostPerRow(OpType::kSort));
    buffered_bytes += width_;
    if (buffered_bytes > mem_limit) {
      // External sort: run written to (virtual) disk.
      ctx_->ChargeWrite(node_->id, width_);
    }
  }
  std::sort(rows_.begin(), rows_.end(), RowKeyLess{node_->sort_key});
  // Comparison work, charged in chunks so the observation sampler can see
  // time passing during long sorts.
  const double n = static_cast<double>(rows_.size());
  const double sort_cpu = 0.3 * n * std::log2(n + 2.0);
  const int chunks = 32;
  for (int i = 0; i < chunks; ++i) ctx_->Charge(sort_cpu / chunks);
  NodeCounters& c = counters();
  c.input_done = true;
  c.e = n;
  c.ub = n;
}

void SortOp::Close() {
  child_->Close();
  rows_.clear();
}

bool SortOp::NextImpl(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

// --- BatchSortOp ------------------------------------------------------------

BatchSortOp::BatchSortOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  child_ = Operator::Create(node->child(0), ctx);
}

void BatchSortOp::Open() {
  child_->Open();
  batch_.clear();
  pos_ = 0;
  child_done_ = false;
}

void BatchSortOp::ReOpen() {
  child_->ReOpen();
  batch_.clear();
  pos_ = 0;
  child_done_ = false;
}

void BatchSortOp::Close() {
  child_->Close();
  batch_.clear();
}

bool BatchSortOp::Refill() {
  batch_.clear();
  pos_ = 0;
  if (child_done_) return false;
  Row row;
  while (batch_.size() < node_->batch_size) {
    if (!child_->Next(&row)) {
      child_done_ = true;
      break;
    }
    batch_.push_back(std::move(row));
    ctx_->Charge(BuildCostPerRow(OpType::kBatchSort));
  }
  if (batch_.empty()) return false;
  std::sort(batch_.begin(), batch_.end(), RowKeyLess{node_->sort_key});
  return true;
}

bool BatchSortOp::NextImpl(Row* out) {
  if (pos_ >= batch_.size()) {
    if (!Refill()) return false;
  }
  *out = batch_[pos_++];
  return true;
}

// --- HashAggregateOp --------------------------------------------------------

HashAggregateOp::HashAggregateOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  child_ = Operator::Create(node->child(0), ctx);
}

void HashAggregateOp::Open() {
  groups_.clear();
  pos_ = 0;
  child_->Open();
  // Ordered map for deterministic emission order across platforms.
  std::map<std::vector<int64_t>, int64_t> agg;
  Row row;
  std::vector<int64_t> key(node_->group_cols.size());
  while (child_->Next(&row)) {
    for (size_t i = 0; i < node_->group_cols.size(); ++i) {
      key[i] = row[node_->group_cols[i]];
    }
    agg[key] += 1;
    ctx_->Charge(BuildCostPerRow(OpType::kHashAggregate));
  }
  groups_.reserve(agg.size());
  for (const auto& [k, count] : agg) {
    Row g = k;
    g.push_back(count);
    groups_.push_back(std::move(g));
  }
  NodeCounters& c = counters();
  c.input_done = true;
  c.e = static_cast<double>(groups_.size());
  c.ub = c.e;
}

void HashAggregateOp::Close() {
  child_->Close();
  groups_.clear();
}

bool HashAggregateOp::NextImpl(Row* out) {
  if (pos_ >= groups_.size()) return false;
  *out = groups_[pos_++];
  return true;
}

// --- StreamAggregateOp ------------------------------------------------------

StreamAggregateOp::StreamAggregateOp(const PlanNode* node, ExecContext* ctx)
    : Operator(node, ctx) {
  child_ = Operator::Create(node->child(0), ctx);
}

void StreamAggregateOp::Open() {
  child_->Open();
  have_pending_ = false;
}

void StreamAggregateOp::ReOpen() {
  child_->ReOpen();
  have_pending_ = false;
}

void StreamAggregateOp::Close() { child_->Close(); }

bool StreamAggregateOp::NextImpl(Row* out) {
  if (!have_pending_) {
    if (!child_->Next(&pending_)) return false;
    have_pending_ = true;
  }
  auto group_of = [&](const Row& r) {
    std::vector<int64_t> g(node_->group_cols.size());
    for (size_t i = 0; i < node_->group_cols.size(); ++i) {
      g[i] = r[node_->group_cols[i]];
    }
    return g;
  };
  const std::vector<int64_t> group = group_of(pending_);
  int64_t count = 1;
  Row row;
  while (child_->Next(&row)) {
    ctx_->Charge(0.4);  // per-input aggregation work
    if (group_of(row) == group) {
      ++count;
    } else {
      pending_ = std::move(row);
      Row g = group;
      g.push_back(count);
      *out = std::move(g);
      return true;
    }
  }
  have_pending_ = false;
  Row g = group;
  g.push_back(count);
  *out = std::move(g);
  return true;
}

// --- TopOp ------------------------------------------------------------------

TopOp::TopOp(const PlanNode* node, ExecContext* ctx) : Operator(node, ctx) {
  child_ = Operator::Create(node->child(0), ctx);
}

void TopOp::Open() {
  child_->Open();
  emitted_ = 0;
}

void TopOp::ReOpen() {
  child_->ReOpen();
  emitted_ = 0;
}

void TopOp::Close() { child_->Close(); }

bool TopOp::NextImpl(Row* out) {
  if (emitted_ >= node_->limit) return false;
  if (!child_->Next(out)) return false;
  ++emitted_;
  return true;
}

// --- Factory ----------------------------------------------------------------

std::unique_ptr<Operator> Operator::Create(const PlanNode* node,
                                           ExecContext* ctx) {
  switch (node->op) {
    case OpType::kTableScan: return std::make_unique<TableScanOp>(node, ctx);
    case OpType::kIndexScan: return std::make_unique<IndexScanOp>(node, ctx);
    case OpType::kIndexSeek: return std::make_unique<IndexSeekOp>(node, ctx);
    case OpType::kFilter: return std::make_unique<FilterOp>(node, ctx);
    case OpType::kNestedLoopJoin:
      return std::make_unique<NestedLoopJoinOp>(node, ctx);
    case OpType::kHashJoin: return std::make_unique<HashJoinOp>(node, ctx);
    case OpType::kMergeJoin: return std::make_unique<MergeJoinOp>(node, ctx);
    case OpType::kSort: return std::make_unique<SortOp>(node, ctx);
    case OpType::kBatchSort: return std::make_unique<BatchSortOp>(node, ctx);
    case OpType::kHashAggregate:
      return std::make_unique<HashAggregateOp>(node, ctx);
    case OpType::kStreamAggregate:
      return std::make_unique<StreamAggregateOp>(node, ctx);
    case OpType::kTop: return std::make_unique<TopOp>(node, ctx);
  }
  RPE_CHECK(false) << "unknown operator";
  return nullptr;
}

}  // namespace rpe
