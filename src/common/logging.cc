#include "common/logging.h"

#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace rpe {

uint64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

namespace {

uint64_t ProcessStartNanos() {
  static const uint64_t start = MonotonicNanos();
  return start;
}

}  // namespace

double MonotonicSecondsSinceStart() {
  // Anchor first: operand order of `-` is unspecified, and on the very
  // first call reading the clock before initializing the anchor would
  // underflow the unsigned difference.
  const uint64_t start = ProcessStartNanos();
  return static_cast<double>(MonotonicNanos() - start) / 1e9;
}

uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

LogLevel ParseLevel(const char* spec) {
  if (spec == nullptr || *spec == '\0') return LogLevel::kInfo;
  if (std::strcmp(spec, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(spec, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(spec, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(spec, "error") == 0) return LogLevel::kError;
  if (std::strcmp(spec, "off") == 0) return LogLevel::kOff;
  // An unknown spec must not silently mute diagnostics: warn and default.
  std::fprintf(stderr, "RPE_LOG ignored: unknown level '%s'\n", spec);
  return LogLevel::kInfo;
}

std::atomic<int>& ThresholdCell() {
  static std::atomic<int> threshold{
      static_cast<int>(ParseLevel(std::getenv("RPE_LOG")))};
  return threshold;
}

}  // namespace

LogLevel LogThreshold() {
  return static_cast<LogLevel>(
      ThresholdCell().load(std::memory_order_relaxed));
}

void SetLogThreshold(LogLevel level) {
  ThresholdCell().store(static_cast<int>(level),
                        std::memory_order_relaxed);
}

namespace internal {

LogMessage::~LogMessage() {
  static const char kLetters[] = {'D', 'I', 'W', 'E'};
  const int idx = static_cast<int>(level_);
  char prefix[48];
  const int n = std::snprintf(
      prefix, sizeof prefix, "[%12.6f] %c %u ",
      MonotonicSecondsSinceStart(),
      kLetters[idx < 0 ? 0 : (idx > 3 ? 3 : idx)], ThisThreadId());
  std::string line;
  line.reserve(static_cast<size_t>(n) + 80);
  line.append(prefix, static_cast<size_t>(n));
  line += stream_.str();
  line += '\n';
  // One write() per message: concurrent threads cannot interleave
  // mid-line (stderr is unbuffered; a single write is atomic enough for
  // the pipe sizes log lines come in).
  [[maybe_unused]] ssize_t w =
      ::write(STDERR_FILENO, line.data(), line.size());
}

}  // namespace internal

}  // namespace rpe
