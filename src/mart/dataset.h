// Training data containers for the MART learner: a dense feature matrix
// plus per-feature quantile binning (LightGBM-style uint8 bins) that makes
// split search a histogram scan instead of a sort.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace rpe {

/// \brief Dense (examples x features) matrix with regression targets.
class Dataset {
 public:
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  Status AddExample(const std::vector<double>& features, double target);

  size_t num_examples() const { return targets_.size(); }
  size_t num_features() const { return num_features_; }
  double feature(size_t example, size_t f) const {
    return features_[example * num_features_ + f];
  }
  double target(size_t example) const { return targets_[example]; }
  const std::vector<double>& targets() const { return targets_; }

  /// Zero-copy row view — the hot-path accessor: prediction and training
  /// loops read features through this without materializing a vector.
  std::span<const double> ExampleSpan(size_t example) const {
    return {features_.data() + example * num_features_, num_features_};
  }

  /// Row accessor (copy) — convenience for tests.
  std::vector<double> ExampleFeatures(size_t example) const;

 private:
  size_t num_features_;
  std::vector<double> features_;  // row-major
  std::vector<double> targets_;
};

/// \brief Quantile-binned view of a Dataset: every feature value mapped to
/// a uint8 bin id; bin upper boundaries retained as raw thresholds so the
/// trained trees predict directly from raw feature vectors.
class BinnedDataset {
 public:
  BinnedDataset(const Dataset& data, int max_bins = 255);

  const Dataset& data() const { return *data_; }
  size_t num_examples() const { return data_->num_examples(); }
  size_t num_features() const { return data_->num_features(); }

  uint8_t bin(size_t example, size_t f) const {
    return bins_[example * data_->num_features() + f];
  }
  /// Number of bins actually used for feature f.
  size_t num_bins(size_t f) const { return boundaries_[f].size() + 1; }
  /// Raw threshold of bin b for feature f: values <= threshold fall in bins
  /// 0..b. Requires b < num_bins(f) - 1.
  double bin_upper(size_t f, size_t b) const { return boundaries_[f][b]; }

 private:
  const Dataset* data_;
  std::vector<std::vector<double>> boundaries_;  // per feature, sorted
  std::vector<uint8_t> bins_;                    // row-major
};

}  // namespace rpe
