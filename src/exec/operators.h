// Volcano-style physical operators. Every produced row updates the node's
// GetNext counter K_i, its logical bytes, and the virtual clock; blocking
// phases (sort build, hash build, aggregation) charge build costs and may
// spill when the memory budget is exceeded (spills charge extra bytes
// written/read and extra GetNext calls, per paper §3.1).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/plan.h"
#include "storage/index.h"
#include "storage/table.h"

namespace rpe {

/// \brief Base class of all physical operators.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepare for execution; blocking operators consume their input here.
  virtual void Open() = 0;
  /// Re-execute with the current correlated parameter (nested iteration).
  /// Default: Close + Open.
  virtual void ReOpen();
  /// Produce the next row; false on end of stream. Wraps NextImpl with the
  /// counter/clock bookkeeping.
  bool Next(Row* out);
  virtual void Close() {}

  const PlanNode* node() const { return node_; }

  /// Build an operator tree for a resolved plan.
  static std::unique_ptr<Operator> Create(const PlanNode* node,
                                          ExecContext* ctx);

 protected:
  Operator(const PlanNode* node, ExecContext* ctx);

  virtual bool NextImpl(Row* out) = 0;

  NodeCounters& counters() { return ctx_->counters(node_->id); }

  const PlanNode* node_;
  ExecContext* ctx_;
  double width_;  ///< output row width in bytes
};

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Heap scan over a base table in insertion order.
class TableScanOp : public Operator {
 public:
  TableScanOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  const Table* table_ = nullptr;
  uint64_t pos_ = 0;
};

/// Full scan in index-key order.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  const Table* table_ = nullptr;
  const SortedIndex* index_ = nullptr;
  size_t pos_ = 0;
};

/// Parameterized equality lookup: reads the correlated key from the context
/// at (Re)Open and emits matching rows. Always the inner side of a NLJ.
class IndexSeekOp : public Operator {
 public:
  IndexSeekOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  const Table* table_ = nullptr;
  const SortedIndex* index_ = nullptr;
  std::vector<RowId> matches_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Filters
// ---------------------------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  int64_t param_ = 0;  ///< correlated key captured at (re)open
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Tuple-at-a-time nested-loop join; re-opens the inner subtree per outer
/// row with the outer key as correlated parameter.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> outer_;
  std::unique_ptr<Operator> inner_;
  Row outer_row_;
  bool have_outer_ = false;
};

/// Hash join: blocking build of child(0), streaming probe of child(1).
/// Builds exceeding the memory budget spill (extra W/R bytes and extra
/// GetNext calls during the re-read pass).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> build_;
  std::unique_ptr<Operator> probe_;
  std::unordered_map<int64_t, std::vector<Row>> table_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// Merge join over inputs sorted on the join keys (many-to-many).
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  bool AdvanceLeft();
  bool AdvanceRight();

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  Row left_row_, right_row_;
  bool have_left_ = false, have_right_ = false;
  std::vector<Row> right_group_;
  int64_t group_key_ = 0;
  size_t group_pos_ = 0;
  bool emitting_ = false;
};

// ---------------------------------------------------------------------------
// Sorts
// ---------------------------------------------------------------------------

/// Fully blocking sort; spills to (virtual) disk when the buffer exceeds the
/// memory budget.
class SortOp : public Operator {
 public:
  SortOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Partial batch sort (§5.1): sorts fixed-size batches of its input to
/// localize inner-side references of a nested iteration. Partially blocking:
/// consumes up to batch_size rows ahead of what it has emitted.
class BatchSortOp : public Operator {
 public:
  BatchSortOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  bool Refill();

  std::unique_ptr<Operator> child_;
  std::vector<Row> batch_;
  size_t pos_ = 0;
  bool child_done_ = false;
};

// ---------------------------------------------------------------------------
// Aggregates / Top
// ---------------------------------------------------------------------------

/// Blocking hash aggregation: group-by columns + COUNT(*).
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  std::vector<Row> groups_;  // materialized (group cols..., count)
  size_t pos_ = 0;
};

/// Streaming aggregation over input sorted by the group columns.
class StreamAggregateOp : public Operator {
 public:
  StreamAggregateOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  Row pending_;
  bool have_pending_ = false;
};

/// Emits the first `limit` input rows.
class TopOp : public Operator {
 public:
  TopOp(const PlanNode* node, ExecContext* ctx);
  void Open() override;
  void ReOpen() override;
  void Close() override;

 protected:
  bool NextImpl(Row* out) override;

 private:
  std::unique_ptr<Operator> child_;
  uint64_t emitted_ = 0;
};

}  // namespace rpe
