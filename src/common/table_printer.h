// Console table formatting used by the benchmark harness to print the
// paper's tables/figures as aligned text.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rpe {

/// \brief Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: format a double with the given precision.
  static std::string Fmt(double v, int precision = 4);
  /// Convenience: format as percentage with one decimal, e.g. "63.9%".
  static std::string Pct(double fraction, int precision = 1);

  /// Render to a string (header, separator, rows).
  std::string ToString() const;
  /// Render to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief The registry-driven CLI stats table: one {"Metric", "Value"}
/// row per Sample with a non-empty table_label, in sample order. This is
/// the single formatter behind the serve-replay / serve-tcp /
/// serve-online exit tables — the row set IS the metrics scrape, so the
/// table and /metrics can never disagree. Integral values print exactly
/// (scripts compare them as integers); non-integral values print with 3
/// decimals. Callers may AddRow extra non-metric rows (e.g. the SIMD
/// kernel report) before Print.
TablePrinter MetricsTable(const std::vector<obs::Sample>& samples);

}  // namespace rpe
