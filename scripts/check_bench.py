#!/usr/bin/env python3
"""Bench regression guard: diff a google-benchmark JSON run against the
committed baseline (bench/baseline_ci.json).

Raw times are machine-dependent — a CI runner is not the laptop that
committed the baseline — so the comparison is *normalized*: compute each
common row's current/baseline ratio, take the geometric mean of those
ratios as the machine-speed factor, and flag rows whose ratio deviates
from that factor by more than the tolerance. A uniformly 2x-slower
machine has factor 2.0 and every normalized ratio 1.0; a single kernel
that regressed 2x sticks out at normalized 2.0 regardless of host speed.

Noisy rows (allocation-bound, sub-microsecond) can be excluded via the
allowlist; they are reported informationally but never fail the gate.
Rows present on only one side are reported (new rows are fine; vanished
rows fail — a deleted benchmark must update the baseline).

Usage:
  check_bench.py CURRENT.json [--baseline bench/baseline_ci.json]
                 [--tolerance 0.30] [--allowlist name-substr ...]

Refreshing the baseline after an intentional perf change:
  ./build/bench_micro --benchmark_min_time=0.05 \
      --benchmark_format=json > bench/baseline_ci.json
"""

import argparse
import json
import math
import sys


def load_rows(path):
    """name -> cpu_time (ns) for aggregate-free benchmark rows."""
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) from repeated runs.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        time = float(bench.get("cpu_time", bench.get("real_time", 0.0)))
        if time > 0.0:
            rows[name] = time
    return rows


def fmt_table(header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for row in [header] + rows:
        lines.append(
            "| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |"
        )
    lines.insert(1, "|" + "|".join("-" * (w + 2) for w in widths) + "|")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(
        description="Normalized bench regression guard"
    )
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--baseline",
        default="bench/baseline_ci.json",
        help="committed baseline JSON (default: bench/baseline_ci.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional deviation of a row's normalized ratio "
        "(default 0.30 = +/-30%%)",
    )
    parser.add_argument(
        "--allowlist",
        nargs="*",
        # Sub-microsecond rows jitter with frequency scaling; the snapshot
        # loads are page-cache-bound rather than CPU-bound. The SIMD rows
        # (BM_PredictAllBatch, BM_AccumulateColumnDense, BM_Crc32HW)
        # depend on the *detected* instruction-set tier, which differs
        # between the baseline host and CI runners — their ratio measures
        # the machine, not the change.
        default=[
            "BM_ZipfSample",
            "BM_IngestQueuePush",
            "BM_FlatPredict",
            "BM_MartPredict",
            "BM_SnapshotMmapLoad",
            "BM_SnapshotReadLoad",
            "BM_PredictAllBatch",
            "BM_AccumulateColumnDense",
            "BM_Crc32HW",
        ],
        help="benchmarks excluded from the gate (noisy rows); an entry "
        "matches a whole name or an arg-family prefix (BM_Foo matches "
        "BM_Foo and BM_Foo/8, not BM_FooBar); reported but never failing",
    )
    args = parser.parse_args()

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)
    if not baseline:
        print(f"error: baseline {args.baseline} has no benchmark rows")
        return 1
    if not current:
        print(f"error: {args.current} has no benchmark rows")
        return 1

    def allowlisted(name):
        return any(
            name == pat or name.startswith(pat + "/")
            for pat in args.allowlist
        )

    common = sorted(set(current) & set(baseline))
    gated = [n for n in common if not allowlisted(n)]
    vanished = sorted(set(baseline) - set(current))
    added = sorted(set(current) - set(baseline))

    if not gated:
        print("error: no common non-allowlisted rows between baseline and "
              "current run — the gate would be vacuous")
        return 1

    # Machine-speed factor: geometric mean of current/baseline over the
    # gated rows. Uniform speed differences cancel out of every row.
    ratios = {n: current[n] / baseline[n] for n in common}
    factor = math.exp(
        sum(math.log(ratios[n]) for n in gated) / len(gated)
    )

    failures = []
    report = []
    for name in common:
        normalized = ratios[name] / factor
        drift = normalized - 1.0
        flag = ""
        if abs(drift) > args.tolerance:
            if allowlisted(name):
                flag = "noisy (allowlisted)"
            else:
                flag = "REGRESSED" if drift > 0 else "improved*"
                failures.append((name, normalized))
        report.append(
            (
                name,
                f"{baseline[name]:.1f}",
                f"{current[name]:.1f}",
                f"{drift:+.1%}".replace("%", " %"),
                flag,
            )
        )

    print(f"machine-speed factor (geomean over {len(gated)} rows): "
          f"{factor:.3f}x")
    print(
        fmt_table(
            ["benchmark", "baseline ns", "current ns", "norm drift", ""],
            report,
        )
    )
    if added:
        print(f"\nnew rows (not in baseline, informational): "
              f"{', '.join(added)}")
    if vanished:
        print(f"\nerror: rows vanished from the bench run: "
              f"{', '.join(vanished)}")
        print("(deleting a benchmark requires refreshing "
              "bench/baseline_ci.json in the same change)")
        return 1

    if failures:
        print(f"\n{len(failures)} row(s) outside the "
              f"+/-{args.tolerance:.0%} normalized tolerance:")
        for name, normalized in failures:
            print(f"  {name}: {normalized:.2f}x the machine-adjusted "
                  "baseline")
        print("\nIf intentional, refresh the baseline (see --help). "
              "(*an improvement outside tolerance also requires a "
              "baseline refresh, so the gate keeps teeth)")
        return 1
    print("\nbench guard: all rows within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
