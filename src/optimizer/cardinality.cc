#include "optimizer/cardinality.h"

#include <algorithm>

namespace rpe {

Result<const EquiDepthHistogram*> CardinalityEstimator::GetHistogram(
    const std::string& table, const std::string& column) {
  const std::string key = table + "." + column;
  auto it = cache_.find(key);
  if (it != cache_.end()) return static_cast<const EquiDepthHistogram*>(it->second.get());
  RPE_ASSIGN_OR_RETURN(const Table* t, catalog_->GetTable(table));
  RPE_ASSIGN_OR_RETURN(size_t col, t->schema().ColumnIndex(column));
  auto hist = std::make_unique<EquiDepthHistogram>(*t, col);
  const EquiDepthHistogram* ptr = hist.get();
  cache_[key] = std::move(hist);
  return ptr;
}

Result<double> CardinalityEstimator::TableRows(const std::string& table) const {
  RPE_ASSIGN_OR_RETURN(const Table* t, catalog_->GetTable(table));
  return static_cast<double>(t->num_rows());
}

Result<double> CardinalityEstimator::FilterSelectivity(
    const std::string& table, const FilterSpec& filter) {
  if (filter.kind == Predicate::Kind::kTrue) return 1.0;
  RPE_ASSIGN_OR_RETURN(const EquiDepthHistogram* h,
                       GetHistogram(table, filter.column));
  int kind = 0;
  switch (filter.kind) {
    case Predicate::Kind::kTrue: kind = 0; break;
    case Predicate::Kind::kEq: kind = 1; break;
    case Predicate::Kind::kLe: kind = 2; break;
    case Predicate::Kind::kGe: kind = 3; break;
    case Predicate::Kind::kBetween: kind = 4; break;
    case Predicate::Kind::kNe: kind = 5; break;
    case Predicate::Kind::kEqParam:
      return Status::InvalidArgument(
          "kEqParam is a join residual, not a base filter");
  }
  return h->EstimateSelectivity(kind, filter.v1, filter.v2);
}

Result<double> CardinalityEstimator::JoinSelectivity(
    const std::string& table_a, const std::string& col_a,
    const std::string& table_b, const std::string& col_b) {
  RPE_ASSIGN_OR_RETURN(double da, DistinctCount(table_a, col_a));
  RPE_ASSIGN_OR_RETURN(double db, DistinctCount(table_b, col_b));
  const double d = std::max({da, db, 1.0});
  return 1.0 / d;
}

Result<double> CardinalityEstimator::DistinctCount(const std::string& table,
                                                   const std::string& column) {
  RPE_ASSIGN_OR_RETURN(const EquiDepthHistogram* h,
                       GetHistogram(table, column));
  return static_cast<double>(std::max<uint64_t>(1, h->distinct_count()));
}

double CardinalityEstimator::GroupCount(
    double input_rows, const std::vector<double>& column_distincts) const {
  double prod = 1.0;
  for (double d : column_distincts) {
    prod *= std::max(1.0, d);
    if (prod > input_rows) break;
  }
  return std::max(1.0, std::min(prod, input_rows));
}

}  // namespace rpe
