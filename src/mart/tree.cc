#include "mart/tree.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/simd.h"
#include "common/thread_pool.h"

#if defined(__x86_64__)
#define RPE_ACCUM_AVX2 1
#include <immintrin.h>
#endif

namespace rpe {

namespace {

/// Candidate split of one growable leaf.
struct SplitCandidate {
  bool valid = false;
  size_t feature = 0;
  size_t bin = 0;        ///< left gets bins <= bin
  double threshold = 0;  ///< raw value boundary
  double gain = 0.0;
  double left_sum = 0.0, right_sum = 0.0;
  size_t left_count = 0, right_count = 0;
};

struct GrowableLeaf {
  std::vector<uint32_t> indices;
  double sum = 0.0;
  int node_id = 0;
  SplitCandidate best;
  /// This leaf's full HistogramSet, present while the leaf is a split
  /// candidate; released (recycled) as soon as the leaf is known terminal
  /// or has been split.
  std::unique_ptr<HistogramSet> hist;
};

/// Don't fan histogram work out unless the accumulation amortizes the pool
/// hand-off (leaf examples × features touched, or slab entries swept).
constexpr size_t kMinParallelWork = 1 << 14;
/// Derive a sibling by subtraction only when the direct build it replaces
/// (examples × features accumulations) clearly outweighs the elementwise
/// slab pass the subtraction costs — for small leaves (or narrow datasets
/// with many bins) the O(total_bins) subtraction plus the canonicalization
/// it forces is slower than just re-accumulating. Either path fits
/// byte-identical trees, so this is purely a throughput heuristic.
constexpr size_t kSubtractionPayoff = 2;
/// Features per parallel task: one ParallelFor index covers a block of
/// adjacent features, so the per-index atomic hand-off amortizes over
/// several full-column scans instead of costing one claim per feature.
constexpr size_t kHistFeatureBlock = 8;

size_t NumFeatureBlocks(size_t nf) {
  return (nf + kHistFeatureBlock - 1) / kHistFeatureBlock;
}

bool ShouldParallelize(ThreadPool* pool, size_t work, size_t nblocks) {
  return pool != nullptr && pool->num_threads() > 1 && nblocks > 1 &&
         work >= kMinParallelWork;
}

#ifdef RPE_ACCUM_AVX2

/// AVX2 variant of AccumulateColumnDense: one vpcmpeqb classifies each
/// 32-byte chunk of the bin column as uniform or mixed, guarded by a
/// cheap col[i] == col[i+31] probe so mixed data (where the probe almost
/// never passes) pays one predictable scalar compare per chunk instead of
/// a vector check. A uniform run keeps its single bin's accumulator in a
/// register — the adds stay in ascending-i order into the same bin, so
/// the sum is the same FP operation sequence as the scalar loop,
/// bit-identical by construction — and retires the counts in one add.
/// (The one carve-out is NaN payload bits: IEEE leaves NaN propagation
/// through `+` to the operand order the compiler emits, which no two
/// builds of even the scalar loop pin down. Training data is NaN-free;
/// tests/simd_test.cpp compares NaNs as a class.)
/// Constant columns and binned near-monotone features (long runs) go
/// 3-4x faster; uniform-random columns match the scalar loop.
__attribute__((target("avx2"))) void AccumulateColumnDenseAvx2(
    const uint8_t* __restrict col, const double* __restrict res, size_t n,
    double* __restrict sum, uint32_t* __restrict cnt) {
  size_t i = 0;
  while (i + 32 <= n) {
    if (col[i] == col[i + 31]) {
      const __m256i chunk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
      const __m256i first = _mm256_set1_epi8(static_cast<char>(col[i]));
      if (static_cast<unsigned>(_mm256_movemask_epi8(
              _mm256_cmpeq_epi8(chunk, first))) == 0xFFFFFFFFu) {
        const uint8_t b = col[i];
        size_t e = i + 32;
        while (e + 32 <= n && col[e] == col[e + 31]) {
          const __m256i next =
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + e));
          if (static_cast<unsigned>(_mm256_movemask_epi8(
                  _mm256_cmpeq_epi8(next, first))) != 0xFFFFFFFFu) {
            break;
          }
          e += 32;
        }
        double acc = sum[b];
        for (size_t k = i; k < e; ++k) acc += res[k];
        sum[b] = acc;
        cnt[b] += static_cast<uint32_t>(e - i);
        i = e;
        continue;
      }
    }
    for (size_t k = i; k < i + 32; ++k) {
      const uint8_t b = col[k];
      sum[b] += res[k];
      cnt[b] += 1;
    }
    i += 32;
  }
  for (; i < n; ++i) {
    const uint8_t b = col[i];
    sum[b] += res[i];
    cnt[b] += 1;
  }
}

#endif  // RPE_ACCUM_AVX2

using AccumulateFn = void (*)(const uint8_t*, const double*, size_t,
                              double*, uint32_t*);

std::atomic<AccumulateFn> g_accumulate{&AccumulateColumnDenseScalar};

const char* BindAccumulate(simd::Tier tier) {
#ifdef RPE_ACCUM_AVX2
  if (tier >= simd::Tier::kAvx2) {
    g_accumulate.store(&AccumulateColumnDenseAvx2,
                       std::memory_order_relaxed);
    return "avx2";
  }
#else
  (void)tier;
#endif
  g_accumulate.store(&AccumulateColumnDenseScalar,
                     std::memory_order_relaxed);
  return "scalar";
}

const simd::internal::KernelRegistrar kAccumulateRegistrar("accumulate",
                                                           &BindAccumulate);

}  // namespace

// One feature's histogram over a dense leaf (`indices` covers every
// example): both the bin column and the residuals stream sequentially.
void AccumulateColumnDenseScalar(const uint8_t* __restrict col,
                                 const double* __restrict res, size_t n,
                                 double* __restrict sum,
                                 uint32_t* __restrict cnt) {
  for (size_t i = 0; i < n; ++i) {
    const uint8_t b = col[i];
    sum[b] += res[i];
    cnt[b] += 1;
  }
}

void AccumulateColumnDense(const uint8_t* col, const double* res, size_t n,
                           double* sum, uint32_t* cnt) {
  g_accumulate.load(std::memory_order_relaxed)(col, res, n, sum, cnt);
}

namespace {

/// One feature's histogram over a sparse leaf: `ordered[k]` is the
/// (pre-gathered) residual of example `idx[k]`, so only the bin column is
/// gathered per feature.
inline void AccumulateColumnSparse(const uint8_t* __restrict col,
                                   const uint32_t* __restrict idx,
                                   const double* __restrict ordered,
                                   size_t n, double* __restrict sum,
                                   uint32_t* __restrict cnt) {
  for (size_t k = 0; k < n; ++k) {
    const uint8_t b = col[idx[k]];
    sum[b] += ordered[k];
    cnt[b] += 1;
  }
}

/// Best split of one feature, read off its histogram slab: the cumulative
/// left-to-right sweep over bin boundaries. Pure function of the slab and
/// the leaf totals, so feature sweeps can run concurrently and reduce in
/// feature order afterwards.
SplitCandidate SweepFeature(const BinnedDataset& data, size_t f,
                            const double* sum, const uint32_t* cnt,
                            double total_sum, size_t n,
                            const TreeParams& params) {
  SplitCandidate best;
  const size_t nbins = data.num_bins(f);
  if (nbins < 2) return best;
  const double parent_score = total_sum * total_sum / static_cast<double>(n);

  double left_sum = 0.0;
  size_t left_cnt = 0;
  for (size_t b = 0; b + 1 < nbins; ++b) {
    left_sum += sum[b];
    left_cnt += cnt[b];
    const size_t right_cnt = n - left_cnt;
    if (left_cnt < static_cast<size_t>(params.min_examples_per_leaf) ||
        right_cnt < static_cast<size_t>(params.min_examples_per_leaf)) {
      continue;
    }
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / static_cast<double>(left_cnt) +
        right_sum * right_sum / static_cast<double>(right_cnt);
    const double gain = score - parent_score;
    if (gain > best.gain && gain > params.min_gain) {
      best.valid = true;
      best.feature = f;
      best.bin = b;
      best.threshold = data.bin_upper(f, b);
      best.gain = gain;
      best.left_sum = left_sum;
      best.right_sum = right_sum;
      best.left_count = left_cnt;
      best.right_count = right_cnt;
    }
  }
  return best;
}

/// Re-accumulate feature f's histogram directly from the leaf's examples
/// and sweep it: the canonical (subtraction-free) statistics for this
/// feature. The winning split of a subtracted HistogramSet is rebased onto
/// this, so every threshold, gain and child sum entering the tree is
/// exactly what direct accumulation would produce — subtraction ulps never
/// reach the model and never compound across split levels.
SplitCandidate CanonicalFeatureSweep(const BinnedDataset& data,
                                     const std::vector<double>& residuals,
                                     const GrowableLeaf& leaf, size_t f,
                                     const TreeParams& params) {
  const size_t nbins = data.num_bins(f);
  std::vector<double> sum(nbins, 0.0);
  std::vector<uint32_t> cnt(nbins, 0);
  const uint8_t* col = data.feature_bins(f).data();
  for (uint32_t idx : leaf.indices) {
    const uint8_t b = col[idx];
    sum[b] += residuals[idx];
    cnt[b] += 1;
  }
  return SweepFeature(data, f, sum.data(), cnt.data(), leaf.sum,
                      leaf.indices.size(), params);
}

/// How a leaf's histogram contents come to exist before the sweep.
enum class HistSource {
  kBuild,      ///< zero + accumulate directly from the leaf's examples
  kSubtract,   ///< derive in place as parent − child (leaf.hist holds the
               ///< parent's slabs, `child` the already-built sibling)
  kSweepOnly,  ///< slabs already filled; just sweep
};

/// Fill (or derive) the leaf's histograms and sweep every feature for its
/// best split — fused per feature, so each histogram region is still hot
/// in cache when its sweep runs. Two storage modes: with `leaf.hist` set,
/// accumulation lands in the leaf's retained HistogramSet slabs (so a
/// child may later derive its sibling by subtraction); with `leaf.hist`
/// null, each feature reuses a compact per-block scratch sized
/// max_num_bins() — the cheap path for leaves too small for any
/// descendant to ever clear the subtraction-payoff bar. Feature blocks
/// process in parallel and the reduction runs in ascending feature order
/// with strict comparisons: the same winner as a sequential scan
/// (earliest feature and bin on gain ties), so the fitted tree is
/// thread-count invariant. When the leaf's histograms came from
/// subtraction, the winner is canonicalized via CanonicalFeatureSweep; in
/// the (ulp-tie) event that the canonical sweep no longer clears the
/// guards, the whole set is rebuilt directly once.
SplitCandidate FindBestSplit(const BinnedDataset& data,
                             const std::vector<double>& residuals,
                             GrowableLeaf& leaf, const HistogramSet* child,
                             const TreeParams& params, ThreadPool* pool) {
  const size_t n = leaf.indices.size();
  if (n < 2 * static_cast<size_t>(params.min_examples_per_leaf)) return {};
  RPE_CHECK(child == nullptr || leaf.hist != nullptr);
  const size_t nf = data.num_features();
  const bool dense = n == data.num_examples();
  // The one gather pass over the leaf's examples (direct sparse builds
  // only): every feature afterwards streams `ordered` sequentially.
  std::vector<double> ordered;
  if (child == nullptr && !dense) {
    ordered.resize(n);
    for (size_t k = 0; k < n; ++k) ordered[k] = residuals[leaf.indices[k]];
  }

  std::vector<SplitCandidate> per_feature(nf);
  const auto run = [&](HistSource source) {
    double* const sums =
        leaf.hist != nullptr ? leaf.hist->sums().data() : nullptr;
    uint32_t* const cnts =
        leaf.hist != nullptr ? leaf.hist->counts().data() : nullptr;
    const size_t work =
        source == HistSource::kBuild ? n * nf : data.total_bins();
    const size_t nblocks = NumFeatureBlocks(nf);
    const bool fan_out = ShouldParallelize(pool, work, nblocks);
    // Scratch for slab-less accumulation, reused per feature so it stays
    // L1-hot. One pair serves the whole sequential sweep; concurrent
    // blocks get their own pair inside process_block.
    std::vector<double> seq_sum;
    std::vector<uint32_t> seq_cnt;
    if (sums == nullptr && !fan_out) {
      seq_sum.resize(data.max_num_bins());
      seq_cnt.resize(data.max_num_bins());
    }
    const auto process_block = [&](size_t blk) {
      std::vector<double> blk_sum;
      std::vector<uint32_t> blk_cnt;
      double* scratch_sum = seq_sum.data();
      uint32_t* scratch_cnt = seq_cnt.data();
      if (sums == nullptr && fan_out) {
        blk_sum.resize(data.max_num_bins());
        blk_cnt.resize(data.max_num_bins());
        scratch_sum = blk_sum.data();
        scratch_cnt = blk_cnt.data();
      }
      const size_t f0 = blk * kHistFeatureBlock;
      const size_t f1 = std::min(nf, f0 + kHistFeatureBlock);
      for (size_t f = f0; f < f1; ++f) {
        const size_t off = data.hist_offset(f);
        const size_t nbins = data.num_bins(f);
        double* sum = sums != nullptr ? sums + off : scratch_sum;
        uint32_t* cnt = cnts != nullptr ? cnts + off : scratch_cnt;
        if (source == HistSource::kBuild) {
          std::fill(sum, sum + nbins, 0.0);
          std::fill(cnt, cnt + nbins, 0u);
          const uint8_t* col = data.feature_bins(f).data();
          if (dense) {
            AccumulateColumnDense(col, residuals.data(), n, sum, cnt);
          } else {
            AccumulateColumnSparse(col, leaf.indices.data(), ordered.data(),
                                   n, sum, cnt);
          }
        } else if (source == HistSource::kSubtract) {
          leaf.hist->SubtractChild(*child, off, off + nbins);
        }
        per_feature[f] = SweepFeature(data, f, sum, cnt, leaf.sum, n, params);
      }
    };
    if (fan_out) {
      pool->ParallelFor(nblocks, process_block);
    } else {
      for (size_t blk = 0; blk < nblocks; ++blk) process_block(blk);
    }
    SplitCandidate out;
    for (size_t f = 0; f < nf; ++f) {
      if (per_feature[f].valid && per_feature[f].gain > out.gain) {
        out = per_feature[f];
      }
    }
    return out;
  };

  SplitCandidate best =
      run(child != nullptr ? HistSource::kSubtract : HistSource::kBuild);
  if (child == nullptr || !best.valid) return best;
  const SplitCandidate canonical =
      CanonicalFeatureSweep(data, residuals, leaf, best.feature, params);
  if (canonical.valid) return canonical;
  // Rare: subtraction noise elected a feature whose canonical statistics
  // fail the gain or leaf-size guards. Rebuild this leaf directly once and
  // re-sweep — fully canonical, still deterministic.
  BuildLeafHistograms(data, residuals, leaf.indices, leaf.hist.get(), pool);
  return run(HistSource::kSweepOnly);
}

}  // namespace

void BuildLeafHistograms(const BinnedDataset& data,
                         const std::vector<double>& residuals,
                         std::span<const uint32_t> indices,
                         HistogramSet* hist, ThreadPool* pool) {
  RPE_CHECK_EQ(hist->size(), data.total_bins());
  const size_t nf = data.num_features();
  const size_t n = indices.size();
  // Strictly increasing indices covering n == num_examples() can only be
  // the identity, so the gather and the index indirection are skipped.
  const bool dense = n == data.num_examples();
  // The one pass over the leaf's examples: gather its residuals into a
  // compact buffer once, so every feature column afterwards streams
  // `ordered` sequentially instead of re-gathering residuals[idx] per
  // feature.
  std::vector<double> ordered;
  if (!dense) {
    ordered.resize(n);
    for (size_t k = 0; k < n; ++k) ordered[k] = residuals[indices[k]];
  }
  double* const sums = hist->sums().data();
  uint32_t* const cnts = hist->counts().data();
  const auto build_block = [&](size_t blk) {
    const size_t f0 = blk * kHistFeatureBlock;
    const size_t f1 = std::min(nf, f0 + kHistFeatureBlock);
    for (size_t f = f0; f < f1; ++f) {
      const size_t off = data.hist_offset(f);
      const size_t nbins = data.num_bins(f);
      double* sum = sums + off;
      uint32_t* cnt = cnts + off;
      std::fill(sum, sum + nbins, 0.0);
      std::fill(cnt, cnt + nbins, 0u);
      const uint8_t* col = data.feature_bins(f).data();
      if (dense) {
        AccumulateColumnDense(col, residuals.data(), n, sum, cnt);
      } else {
        AccumulateColumnSparse(col, indices.data(), ordered.data(), n, sum,
                               cnt);
      }
    }
  };
  const size_t nblocks = NumFeatureBlocks(nf);
  if (ShouldParallelize(pool, n * nf, nblocks)) {
    pool->ParallelFor(nblocks, build_block);
  } else {
    for (size_t blk = 0; blk < nblocks; ++blk) build_block(blk);
  }
}

RegressionTree RegressionTree::Fit(const BinnedDataset& data,
                                   const std::vector<double>& residuals,
                                   const std::vector<uint32_t>& example_indices,
                                   const TreeParams& params,
                                   std::vector<double>* feature_gains,
                                   ThreadPool* pool) {
  RPE_CHECK_EQ(residuals.size(), data.num_examples());
  if (pool == nullptr) pool = &ThreadPool::Global();
  RegressionTree tree;
  const size_t min_split =
      2 * static_cast<size_t>(params.min_examples_per_leaf);

  // HistogramSet free list: sets are recycled across leaves, so a tree fit
  // allocates only as many slabs as are ever live at once.
  std::vector<std::unique_ptr<HistogramSet>> spare;
  const auto acquire = [&] {
    if (spare.empty()) return std::make_unique<HistogramSet>(data);
    auto h = std::move(spare.back());
    spare.pop_back();
    return h;
  };
  const auto release = [&](std::unique_ptr<HistogramSet>* h) {
    if (*h != nullptr) spare.push_back(std::move(*h));
  };

  GrowableLeaf root;
  if (example_indices.empty()) {
    root.indices.resize(data.num_examples());
    for (size_t i = 0; i < data.num_examples(); ++i) {
      root.indices[i] = static_cast<uint32_t>(i);
    }
  } else {
    root.indices = example_indices;
  }
  for (uint32_t idx : root.indices) root.sum += residuals[idx];

  Node root_node;
  root_node.value = root.indices.empty()
                        ? 0.0
                        : root.sum / static_cast<double>(root.indices.size());
  tree.nodes_.push_back(root_node);
  root.node_id = 0;
  // A leaf's slabs are only ever consumed by a child deriving its sibling
  // via subtraction, and a child can clear the payoff bar only if the leaf
  // itself does — so leaves below it sweep through compact scratch and
  // never materialize a HistogramSet at all.
  const auto wants_hist = [&](size_t n_leaf) {
    return !params.force_direct_histograms &&
           n_leaf * data.num_features() >=
               kSubtractionPayoff * data.total_bins();
  };

  if (params.max_leaves > 1 && root.indices.size() >= min_split) {
    if (wants_hist(root.indices.size())) root.hist = acquire();
    root.best = FindBestSplit(data, residuals, root, nullptr, params, pool);
  }
  if (!root.best.valid) release(&root.hist);

  std::vector<GrowableLeaf> leaves;
  leaves.push_back(std::move(root));

  int num_leaves = 1;
  while (num_leaves < params.max_leaves) {
    // Best-first: split the growable leaf with the highest gain.
    int best_leaf = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (!leaves[i].best.valid) continue;
      if (best_leaf < 0 ||
          leaves[i].best.gain >
              leaves[static_cast<size_t>(best_leaf)].best.gain) {
        best_leaf = static_cast<int>(i);
      }
    }
    if (best_leaf < 0) break;

    GrowableLeaf leaf = std::move(leaves[static_cast<size_t>(best_leaf)]);
    leaves.erase(leaves.begin() + best_leaf);
    const SplitCandidate split = leaf.best;
    if (feature_gains != nullptr) {
      (*feature_gains)[split.feature] += split.gain;
    }

    GrowableLeaf left, right;
    left.indices.reserve(split.left_count);
    right.indices.reserve(split.right_count);
    const uint8_t* col = data.feature_bins(split.feature).data();
    for (uint32_t idx : leaf.indices) {
      if (col[idx] <= split.bin) {
        left.indices.push_back(idx);
      } else {
        right.indices.push_back(idx);
      }
    }
    left.sum = split.left_sum;
    right.sum = split.right_sum;

    Node left_node, right_node;
    left_node.value = split.left_sum / static_cast<double>(split.left_count);
    right_node.value =
        split.right_sum / static_cast<double>(split.right_count);
    left.node_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(left_node);
    right.node_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(right_node);

    Node& parent = tree.nodes_[static_cast<size_t>(leaf.node_id)];
    parent.feature = static_cast<int>(split.feature);
    parent.threshold = split.threshold;
    parent.left = left.node_id;
    parent.right = right.node_id;
    ++num_leaves;

    // A child needs histograms only if the tree may still grow and the
    // child is large enough to split. The smaller child accumulates
    // directly; when it pays (kSubtractionPayoff), the larger child
    // derives its slabs as parent − smaller (O(slab) instead of
    // O(examples × features)) — per split level at most half the
    // examples are then ever re-accumulated.
    const bool may_grow = num_leaves < params.max_leaves;
    GrowableLeaf& small =
        left.indices.size() <= right.indices.size() ? left : right;
    GrowableLeaf& big = (&small == &left) ? right : left;
    const bool small_can = may_grow && small.indices.size() >= min_split;
    const bool big_can = may_grow && big.indices.size() >= min_split;
    // If the big child clears the payoff bar the parent necessarily did
    // too, so its slabs are guaranteed to be retained in leaf.hist.
    const bool subtract = big_can && wants_hist(big.indices.size());
    if (subtract) {
      small.hist = acquire();
      if (small_can) {
        small.best =
            FindBestSplit(data, residuals, small, nullptr, params, pool);
      } else {
        // Built only to serve as the subtrahend for the sibling.
        BuildLeafHistograms(data, residuals, small.indices, small.hist.get(),
                            pool);
      }
    } else if (small_can) {
      small.best =
          FindBestSplit(data, residuals, small, nullptr, params, pool);
    }
    if (big_can) {
      if (subtract) {
        big.hist = std::move(leaf.hist);
        big.best = FindBestSplit(data, residuals, big, small.hist.get(),
                                 params, pool);
      } else {
        big.best =
            FindBestSplit(data, residuals, big, nullptr, params, pool);
      }
    }
    release(&leaf.hist);  // no-op when moved into the sibling above
    if (!small.best.valid) release(&small.hist);
    if (!big.best.valid) release(&big.hist);

    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
  }
  return tree;
}

double RegressionTree::Predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0.0;
  size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = static_cast<size_t>(
        features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right);
  }
  return nodes_[cur].value;
}

size_t RegressionTree::num_leaves() const {
  size_t leaves = 0;
  for (const auto& n : nodes_) {
    if (n.feature < 0) ++leaves;
  }
  return leaves;
}

Result<RegressionTree> RegressionTree::FromNodes(std::vector<Node> nodes) {
  if (nodes.empty()) return Status::InvalidArgument("tree without nodes");
  const int count = static_cast<int>(nodes.size());
  // The array must encode a proper tree rooted at slot 0: tree growth
  // appends children after their parent (child indices strictly greater)
  // and every non-root node is the child of exactly one split. Anything
  // looser — cycles, self-references, DAGs with shared children — would
  // send Predict or the flat-ensemble compiler into unbounded (or
  // exponential) recursion, so hostile node arrays are rejected here.
  std::vector<uint8_t> referenced(nodes.size(), 0);
  for (int i = 0; i < count; ++i) {
    const Node& n = nodes[static_cast<size_t>(i)];
    if (n.feature < 0) continue;
    if (n.left <= i || n.left >= count || n.right <= i || n.right >= count) {
      return Status::InvalidArgument("tree node child index out of order");
    }
    for (int child : {n.left, n.right}) {
      if (referenced[static_cast<size_t>(child)]++ != 0) {
        return Status::InvalidArgument("tree node referenced twice");
      }
    }
  }
  for (int i = 1; i < count; ++i) {
    if (referenced[static_cast<size_t>(i)] == 0) {
      return Status::InvalidArgument("unreachable tree node");
    }
  }
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

std::string RegressionTree::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << nodes_.size() << "\n";
  for (const auto& n : nodes_) {
    out << n.feature << " " << n.threshold << " " << n.left << " " << n.right
        << " " << n.value << "\n";
  }
  return out.str();
}

Result<RegressionTree> RegressionTree::Deserialize(const std::string& text) {
  std::istringstream in(text);
  size_t count = 0;
  if (!(in >> count)) return Status::InvalidArgument("bad tree header");
  RegressionTree tree;
  tree.nodes_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    Node& n = tree.nodes_[i];
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.value)) {
      return Status::InvalidArgument("bad tree node");
    }
  }
  return tree;
}

}  // namespace rpe
