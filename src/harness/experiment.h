// Shared experiment drivers: train-and-evaluate for one split, and the
// selectivity-bucket grouping of the Table 2 sensitivity experiment.
#pragma once

#include <string>
#include <vector>

#include "harness/metrics.h"
#include "selection/selector.h"

namespace rpe {

/// \brief Result of training a selector on one split and testing on another.
struct SelectionEvaluation {
  AggregateMetrics metrics;
  std::vector<size_t> choices;  ///< per test record
};

/// Train on `train`, choose per record of `test`, evaluate.
SelectionEvaluation TrainAndEvaluate(
    const std::vector<PipelineRecord>& train,
    const std::vector<PipelineRecord>& test, const std::vector<size_t>& pool,
    bool use_dynamic_features,
    const MartParams& params = EstimatorSelector::DefaultParams());

/// Structural signature of a pipeline (its operator multiset), used to group
/// "instances of the same operator pipeline" for Table 2.
std::string PipelineSignature(const PipelineRecord& record);

/// Table 2 grouping: within every signature occurring at least `min_group`
/// times, sort instances by total GetNext calls and split into three
/// equal-sized buckets (0 = small, 1 = medium, 2 = large). Records in rarer
/// signatures get bucket -1 (excluded).
std::vector<int> SelectivityBuckets(const std::vector<PipelineRecord>& records,
                                    size_t min_group = 6);

/// Records whose bucket equals (or differs from) `bucket`.
std::vector<PipelineRecord> FilterByBucket(
    const std::vector<PipelineRecord>& records, const std::vector<int>& buckets,
    int bucket, bool invert = false);

}  // namespace rpe
