#include "mart/tree.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rpe {

namespace {

/// Candidate split of one growable leaf.
struct SplitCandidate {
  bool valid = false;
  size_t feature = 0;
  size_t bin = 0;        ///< left gets bins <= bin
  double threshold = 0;  ///< raw value boundary
  double gain = 0.0;
  double left_sum = 0.0, right_sum = 0.0;
  size_t left_count = 0, right_count = 0;
};

struct GrowableLeaf {
  std::vector<uint32_t> indices;
  double sum = 0.0;
  int node_id = 0;
  SplitCandidate best;
};

/// Histogram scan of one feature: the best split of `leaf` on feature `f`
/// alone. Pure function of (data, residuals, leaf, f), so feature scans
/// can run concurrently and reduce in feature order afterwards.
SplitCandidate ScanFeature(const BinnedDataset& data,
                           const std::vector<double>& residuals,
                           const GrowableLeaf& leaf, size_t f,
                           const TreeParams& params) {
  SplitCandidate best;
  const size_t nbins = data.num_bins(f);
  if (nbins < 2) return best;
  const size_t n = leaf.indices.size();
  const double total_sum = leaf.sum;
  const double parent_score = total_sum * total_sum / static_cast<double>(n);

  double hist_sum[256];
  uint32_t hist_cnt[256];
  std::fill(hist_sum, hist_sum + nbins, 0.0);
  std::fill(hist_cnt, hist_cnt + nbins, 0u);
  for (uint32_t idx : leaf.indices) {
    const uint8_t b = data.bin(idx, f);
    hist_sum[b] += residuals[idx];
    hist_cnt[b] += 1;
  }
  double left_sum = 0.0;
  size_t left_cnt = 0;
  for (size_t b = 0; b + 1 < nbins; ++b) {
    left_sum += hist_sum[b];
    left_cnt += hist_cnt[b];
    const size_t right_cnt = n - left_cnt;
    if (left_cnt < static_cast<size_t>(params.min_examples_per_leaf) ||
        right_cnt < static_cast<size_t>(params.min_examples_per_leaf)) {
      continue;
    }
    const double right_sum = total_sum - left_sum;
    const double score =
        left_sum * left_sum / static_cast<double>(left_cnt) +
        right_sum * right_sum / static_cast<double>(right_cnt);
    const double gain = score - parent_score;
    if (gain > best.gain && gain > params.min_gain) {
      best.valid = true;
      best.feature = f;
      best.bin = b;
      best.threshold = data.bin_upper(f, b);
      best.gain = gain;
      best.left_sum = left_sum;
      best.right_sum = right_sum;
      best.left_count = left_cnt;
      best.right_count = right_cnt;
    }
  }
  return best;
}

/// Don't fan a scan out unless the histogram accumulation amortizes the
/// pool hand-off (indices × features touched).
constexpr size_t kMinParallelWork = 1 << 14;

SplitCandidate FindBestSplit(const BinnedDataset& data,
                             const std::vector<double>& residuals,
                             const GrowableLeaf& leaf,
                             const TreeParams& params, ThreadPool* pool) {
  SplitCandidate best;
  const size_t n = leaf.indices.size();
  if (n < 2 * static_cast<size_t>(params.min_examples_per_leaf)) return best;
  const size_t nf = data.num_features();

  std::vector<SplitCandidate> per_feature(nf);
  if (pool != nullptr && pool->num_threads() > 1 && nf > 1 &&
      n * nf >= kMinParallelWork) {
    pool->ParallelFor(nf, [&](size_t f) {
      per_feature[f] = ScanFeature(data, residuals, leaf, f, params);
    });
  } else {
    for (size_t f = 0; f < nf; ++f) {
      per_feature[f] = ScanFeature(data, residuals, leaf, f, params);
    }
  }
  // Ordered reduction: ascending feature id with a strict comparison keeps
  // the same winner as the sequential single-loop scan (earliest feature
  // and bin on gain ties), so the fitted tree is thread-count invariant.
  for (size_t f = 0; f < nf; ++f) {
    if (per_feature[f].valid && per_feature[f].gain > best.gain) {
      best = per_feature[f];
    }
  }
  return best;
}

}  // namespace

RegressionTree RegressionTree::Fit(const BinnedDataset& data,
                                   const std::vector<double>& residuals,
                                   const std::vector<uint32_t>& example_indices,
                                   const TreeParams& params,
                                   std::vector<double>* feature_gains,
                                   ThreadPool* pool) {
  RPE_CHECK_EQ(residuals.size(), data.num_examples());
  if (pool == nullptr) pool = &ThreadPool::Global();
  RegressionTree tree;

  GrowableLeaf root;
  if (example_indices.empty()) {
    root.indices.resize(data.num_examples());
    for (size_t i = 0; i < data.num_examples(); ++i) {
      root.indices[i] = static_cast<uint32_t>(i);
    }
  } else {
    root.indices = example_indices;
  }
  for (uint32_t idx : root.indices) root.sum += residuals[idx];

  Node root_node;
  root_node.value = root.indices.empty()
                        ? 0.0
                        : root.sum / static_cast<double>(root.indices.size());
  tree.nodes_.push_back(root_node);
  root.node_id = 0;
  root.best = FindBestSplit(data, residuals, root, params, pool);

  std::vector<GrowableLeaf> leaves;
  leaves.push_back(std::move(root));

  int num_leaves = 1;
  while (num_leaves < params.max_leaves) {
    // Best-first: split the growable leaf with the highest gain.
    int best_leaf = -1;
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (!leaves[i].best.valid) continue;
      if (best_leaf < 0 ||
          leaves[i].best.gain >
              leaves[static_cast<size_t>(best_leaf)].best.gain) {
        best_leaf = static_cast<int>(i);
      }
    }
    if (best_leaf < 0) break;

    GrowableLeaf leaf = std::move(leaves[static_cast<size_t>(best_leaf)]);
    leaves.erase(leaves.begin() + best_leaf);
    const SplitCandidate& split = leaf.best;
    if (feature_gains != nullptr) {
      (*feature_gains)[split.feature] += split.gain;
    }

    GrowableLeaf left, right;
    left.indices.reserve(split.left_count);
    right.indices.reserve(split.right_count);
    for (uint32_t idx : leaf.indices) {
      if (data.bin(idx, split.feature) <= split.bin) {
        left.indices.push_back(idx);
      } else {
        right.indices.push_back(idx);
      }
    }
    left.sum = split.left_sum;
    right.sum = split.right_sum;

    Node left_node, right_node;
    left_node.value = split.left_sum / static_cast<double>(split.left_count);
    right_node.value =
        split.right_sum / static_cast<double>(split.right_count);
    left.node_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(left_node);
    right.node_id = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back(right_node);

    Node& parent = tree.nodes_[static_cast<size_t>(leaf.node_id)];
    parent.feature = static_cast<int>(split.feature);
    parent.threshold = split.threshold;
    parent.left = left.node_id;
    parent.right = right.node_id;

    left.best = FindBestSplit(data, residuals, left, params, pool);
    right.best = FindBestSplit(data, residuals, right, params, pool);
    leaves.push_back(std::move(left));
    leaves.push_back(std::move(right));
    ++num_leaves;
  }
  return tree;
}

double RegressionTree::Predict(std::span<const double> features) const {
  if (nodes_.empty()) return 0.0;
  size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const Node& n = nodes_[cur];
    cur = static_cast<size_t>(
        features[static_cast<size_t>(n.feature)] <= n.threshold ? n.left
                                                                : n.right);
  }
  return nodes_[cur].value;
}

size_t RegressionTree::num_leaves() const {
  size_t leaves = 0;
  for (const auto& n : nodes_) {
    if (n.feature < 0) ++leaves;
  }
  return leaves;
}

Result<RegressionTree> RegressionTree::FromNodes(std::vector<Node> nodes) {
  if (nodes.empty()) return Status::InvalidArgument("tree without nodes");
  const int count = static_cast<int>(nodes.size());
  // The array must encode a proper tree rooted at slot 0: tree growth
  // appends children after their parent (child indices strictly greater)
  // and every non-root node is the child of exactly one split. Anything
  // looser — cycles, self-references, DAGs with shared children — would
  // send Predict or the flat-ensemble compiler into unbounded (or
  // exponential) recursion, so hostile node arrays are rejected here.
  std::vector<uint8_t> referenced(nodes.size(), 0);
  for (int i = 0; i < count; ++i) {
    const Node& n = nodes[static_cast<size_t>(i)];
    if (n.feature < 0) continue;
    if (n.left <= i || n.left >= count || n.right <= i || n.right >= count) {
      return Status::InvalidArgument("tree node child index out of order");
    }
    for (int child : {n.left, n.right}) {
      if (referenced[static_cast<size_t>(child)]++ != 0) {
        return Status::InvalidArgument("tree node referenced twice");
      }
    }
  }
  for (int i = 1; i < count; ++i) {
    if (referenced[static_cast<size_t>(i)] == 0) {
      return Status::InvalidArgument("unreachable tree node");
    }
  }
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

std::string RegressionTree::Serialize() const {
  std::ostringstream out;
  out.precision(17);
  out << nodes_.size() << "\n";
  for (const auto& n : nodes_) {
    out << n.feature << " " << n.threshold << " " << n.left << " " << n.right
        << " " << n.value << "\n";
  }
  return out.str();
}

Result<RegressionTree> RegressionTree::Deserialize(const std::string& text) {
  std::istringstream in(text);
  size_t count = 0;
  if (!(in >> count)) return Status::InvalidArgument("bad tree header");
  RegressionTree tree;
  tree.nodes_.resize(count);
  for (size_t i = 0; i < count; ++i) {
    Node& n = tree.nodes_[i];
    if (!(in >> n.feature >> n.threshold >> n.left >> n.right >> n.value)) {
      return Status::InvalidArgument("bad tree node");
    }
  }
  return tree;
}

}  // namespace rpe
