// The per-node execution counters of paper §3.1 and the observation
// snapshots that progress estimators consume.
//
//   K_i  — GetNext calls issued at node i so far (spills count as extra calls)
//   N_i  — true total GetNext calls (known only after the query finishes)
//   E_i  — current estimate of N_i (optimizer estimate, refined online)
//   LB_i/UB_i — absolute bounds on N_i, refined as the query executes
//   R_i / W_i — bytes logically read / written at node i
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace rpe {

inline constexpr double kCardinalityInf = 1e15;

/// \brief Live counters of one plan node.
struct NodeCounters {
  double k = 0.0;            ///< GetNext calls so far
  double e0 = 0.0;           ///< initial optimizer estimate of N
  double e = 0.0;            ///< current (refined) estimate of N
  double lb = 0.0;           ///< lower bound on N
  double ub = kCardinalityInf;  ///< upper bound on N
  double bytes_read = 0.0;   ///< R_i
  double bytes_written = 0.0;  ///< W_i
  double est_bytes = 0.0;    ///< estimated total bytes processed at node

  // Auxiliary operator-published facts used for bound refinement.
  bool input_done = false;   ///< blocking input fully consumed (sort/hash)
  double max_join_group = 0.0;  ///< hash join: largest build-side key group
  double row_width = 8.0;    ///< bytes per output row
};

/// \brief Snapshot of all node counters at one observation point t.
/// Stored as parallel arrays indexed by node id.
struct Observation {
  double vtime = 0.0;        ///< virtual clock at the observation
  std::vector<double> k;
  std::vector<double> e;     ///< refined estimates at time t
  std::vector<double> lb;
  std::vector<double> ub;
  std::vector<double> bytes_read;
  std::vector<double> bytes_written;
};

}  // namespace rpe
