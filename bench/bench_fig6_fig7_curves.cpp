// Figures 6 and 7: example progress-estimation error curves.
//
// Figure 6: a nested-loop-join pipeline behind a partial batch sort — the
// batch sort's blocking bursts make driver-node-based estimators (DNE)
// overshoot while BATCHDNE tracks the truth.
//
// Figure 7: a complex hash-join query whose correlated filter breaks the
// optimizer's cardinality estimate — TGN cannot recover from the bad E_i,
// while interpolating/driver-based estimators adjust late in the query.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

namespace {

void PrintCurves(const char* title, const OwnedRun& run,
                 const std::vector<EstimatorKind>& kinds) {
  // Pick the pipeline with the longest activity window.
  const Pipeline* best = nullptr;
  for (const auto& p : run.result.pipelines) {
    if (p.first_obs < 0) continue;
    if (best == nullptr ||
        (p.end_time - p.start_time) > (best->end_time - best->start_time)) {
      best = &p;
    }
  }
  RPE_CHECK(best != nullptr);
  PipelineView view{&run.result, best};

  std::cout << title << "\n";
  std::vector<std::string> header = {"elapsed%", "true"};
  for (EstimatorKind k : kinds) header.push_back(EstimatorName(k));
  TablePrinter table(header);
  const int points = 15;
  for (int i = 0; i <= points; ++i) {
    const size_t oi = static_cast<size_t>(
        best->first_obs +
        (best->last_obs - best->first_obs) * i / points);
    std::vector<std::string> row;
    row.push_back(TablePrinter::Pct(view.TrueProgress(oi), 0));
    row.push_back(TablePrinter::Fmt(view.TrueProgress(oi), 3));
    for (EstimatorKind k : kinds) {
      row.push_back(TablePrinter::Fmt(GetEstimator(k).Estimate(view, oi), 3));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::cout << "\n";
}

}  // namespace

int main() {
  WorkloadConfig config;
  config.kind = WorkloadKind::kTpch;
  config.name = "tpch-curves";
  config.scale = 10.0;
  config.zipf = 1.5;
  config.tuning = TuningLevel::kFullyTuned;
  config.num_queries = 0;
  config.seed = 5;
  auto workload = BuildWorkload(config);
  RPE_CHECK(workload.ok()) << workload.status().ToString();

  // Figure 6: lineitem NLJ part behind a batch sort (forced via planner
  // thresholds: the big outer triggers the batch sort automatically).
  {
    QuerySpec spec;
    spec.name = "fig6";
    spec.tables = {"lineitem", "part"};
    JoinEdge e;
    e.left_idx = 0;
    e.left_col = "l_partkey";
    e.right_col = "p_partkey";
    e.hint = JoinHint::kNestedLoop;
    spec.joins.push_back(e);
    auto run = RunQuery(*workload, spec);
    RPE_CHECK(run.ok()) << run.status().ToString();
    std::cout << "plan:\n" << run->plan->ToString() << "\n";
    PrintCurves(
        "=== Figure 6: nested-loop + batch sort pipeline ===",
        *run, {EstimatorKind::kDne, EstimatorKind::kTgn,
               EstimatorKind::kBatchDne, EstimatorKind::kDneSeek});
  }

  // Figure 7: hash join with a correlated range filter (l_shipdate
  // correlates with l_orderkey, so independence-based estimates are off).
  {
    QuerySpec spec;
    spec.name = "fig7";
    spec.tables = {"orders", "lineitem"};
    JoinEdge e;
    e.left_idx = 0;
    e.left_col = "o_orderkey";
    e.right_col = "l_orderkey";
    e.hint = JoinHint::kHash;
    spec.joins.push_back(e);
    FilterSpec f1;
    f1.table_idx = 0;
    f1.column = "o_orderdate";
    f1.kind = Predicate::Kind::kLe;
    f1.v1 = 700;
    spec.filters.push_back(f1);
    FilterSpec f2;
    f2.table_idx = 1;
    f2.column = "l_shipdate";
    f2.kind = Predicate::Kind::kLe;
    f2.v1 = 900;
    spec.filters.push_back(f2);
    auto run = RunQuery(*workload, spec);
    RPE_CHECK(run.ok()) << run.status().ToString();
    std::cout << "plan:\n" << run->plan->ToString() << "\n";
    PrintCurves(
        "=== Figure 7: hash join with correlated-filter cardinality error "
        "===",
        *run, {EstimatorKind::kDne, EstimatorKind::kTgn,
               EstimatorKind::kTgnInt, EstimatorKind::kLuo});
  }
  std::cout << "Expected: in Fig. 6 DNE runs ahead of true progress once the\n"
               "batch sort drains the driver early (BATCHDNE corrects); in\n"
               "Fig. 7 TGN is persistently off due to the cardinality error\n"
               "while TGNINT/DNE adjust as the driver input is consumed.\n";
  return 0;
}
