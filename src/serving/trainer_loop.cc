#include "serving/trainer_loop.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace rpe {

namespace {
using Clock = std::chrono::steady_clock;

/// Exponential backoff with a 64x cap: base, 2*base, 4*base, ...
std::chrono::milliseconds BackoffDelay(std::chrono::milliseconds base,
                                       uint64_t attempt) {
  const uint64_t factor = uint64_t{1} << std::min<uint64_t>(attempt, 6);
  return base * factor;
}
}  // namespace

TrainerLoop::TrainerLoop(RecordIngestQueue* queue, ModelPublisher* service,
                         Options options)
    : queue_(queue), service_(service), options_(std::move(options)) {
  RPE_CHECK(queue_ != nullptr);
  RPE_CHECK(service_ != nullptr);
  RPE_CHECK(!options_.pool.empty());
  RPE_CHECK(options_.min_corpus > 0);
  RPE_CHECK(options_.max_corpus >= options_.min_corpus);
  last_retrain_time_ = Clock::now();
}

TrainerLoop::~TrainerLoop() { Stop(); }

void TrainerLoop::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return;
  started_ = true;
  stop_.store(false);
  thread_ = std::thread([this] { ThreadMain(); });
}

void TrainerLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    stop_.store(true);
    // Close before joining: it both shuts the intake (so live producers
    // cannot refill the queue and stall the final drain below) and wakes
    // a consumer thread sleeping in WaitAndDrain immediately instead of
    // after a full poll_interval.
    queue_->Close();
    if (thread_.joinable()) thread_.join();
    started_ = false;
  }
  // Drain what was accepted so pushed == drained and a pending threshold
  // can still fire.
  size_t drained;
  do {
    drained = RunOnce();
  } while (drained > 0);
}

void TrainerLoop::SeedCorpus(std::vector<PipelineRecord> records) {
  std::lock_guard<std::mutex> lock(run_mu_);
  for (auto& r : records) corpus_.push_back(std::move(r));
  while (corpus_.size() > options_.max_corpus) corpus_.pop_front();
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  corpus_size_ = corpus_.size();
}

void TrainerLoop::ThreadMain() {
  while (!stop_.load()) {
    std::vector<PipelineRecord> batch;
    // Block on the queue outside run_mu_ so RunOnce callers never wait on
    // the poll interval.
    queue_->WaitAndDrain(&batch, options_.drain_batch,
                         options_.poll_interval);
    std::lock_guard<std::mutex> lock(run_mu_);
    MergeBatchLocked(&batch);
    MaybeRetrainLocked();
  }
}

size_t TrainerLoop::RunOnce() {
  std::vector<PipelineRecord> batch;
  const size_t n = queue_->DrainBatch(&batch, options_.drain_batch);
  std::lock_guard<std::mutex> lock(run_mu_);
  MergeBatchLocked(&batch);
  MaybeRetrainLocked();
  return n;
}

void TrainerLoop::MergeBatchLocked(std::vector<PipelineRecord>* batch) {
  if (batch->empty()) return;
  new_since_retrain_ += batch->size();
  has_pending_since_ = true;
  for (auto& r : *batch) corpus_.push_back(std::move(r));
  while (corpus_.size() > options_.max_corpus) corpus_.pop_front();
  std::lock_guard<std::mutex> lock(stats_mu_);
  corpus_size_ = corpus_.size();
}

void TrainerLoop::MaybeRetrainLocked() {
  // Both triggers require at least one new record, so a zero threshold
  // means "retrain on any new record", never an idle retrain storm.
  const bool rows_trip = new_since_retrain_ > 0 &&
                         new_since_retrain_ >= options_.retrain_min_records;
  const bool staleness_trip =
      options_.max_staleness.count() > 0 && has_pending_since_ &&
      Clock::now() - last_retrain_time_ >= options_.max_staleness;
  if (!(rows_trip || staleness_trip)) return;
  if (corpus_.size() < options_.min_corpus) return;
  // Quarantine after a failed cycle: serve the previous generation and
  // defer the next attempt — a persistent fault must not become a retrain
  // hot loop. The pending counters stay set, so leaving quarantine
  // retries without waiting for fresh records.
  if (consecutive_failures_ > 0 && Clock::now() < quarantine_until_) return;

  const auto start = Clock::now();
  // Spans the whole retrain → snapshot → publish cycle; the publish leg
  // below gets its own child span so a swap is attributable in a trace
  // dump even when the training step dominates.
  obs::TraceSpan retrain_span("trainer.retrain",
                              static_cast<uint64_t>(corpus_.size()));

  // "trainer.retrain" stands in for a failed training cycle (OOM, a bad
  // corpus, a crashed worker): nothing is published, the loop quarantines.
  if (RPE_INJECT_FAULT("trainer.retrain")) {
    FailCycleLocked("retrain failed");
    return;
  }
  const std::vector<PipelineRecord> snapshot(corpus_.begin(), corpus_.end());
  auto stack = std::make_shared<const SelectorStack>(
      SelectorStack::Train(snapshot, options_.pool, options_.params));

  uint64_t snapshot_failures = 0, snapshot_retries = 0;
  if (!options_.snapshot_path.empty()) {
    Status saved;
    for (size_t attempt = 0;; ++attempt) {
      saved = SaveSelectorStack(*stack, options_.snapshot_path);
      if (saved.ok() || attempt >= options_.snapshot_write_retries) break;
      ++snapshot_retries;
      std::this_thread::sleep_for(
          BackoffDelay(options_.retry_backoff, attempt));
    }
    if (!saved.ok()) {
      // Exhausted: losing the on-disk copy is survivable, losing the
      // publish is not — the fresh models still go out.
      RPE_LOG_WARN << "trainer_loop: snapshot write failed after "
                   << options_.snapshot_write_retries
                   << " retries: " << saved.ToString();
      snapshot_failures = 1;
    }
  }

  // "trainer.publish" stands in for a publish edge that cannot accept the
  // swap (a shard wedged mid-restart, a torn fan-out). Bounded retries,
  // then the stack is dropped and the loop quarantines.
  uint64_t generation = 0;
  bool published = false;
  uint64_t publish_retries = 0;
  {
    obs::TraceSpan publish_span("trainer.publish", retrain_span.id(),
                                /*arg=*/0);
    for (size_t attempt = 0;; ++attempt) {
      if (!RPE_INJECT_FAULT("trainer.publish")) {
        generation = service_->SwapModels(stack);
        published = true;
        break;
      }
      if (attempt >= options_.publish_retries) break;
      ++publish_retries;
      std::this_thread::sleep_for(
          BackoffDelay(options_.retry_backoff, attempt));
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    snapshot_write_failures_ += snapshot_failures;
    snapshot_write_retries_ += snapshot_retries;
    publish_retries_ += publish_retries;
  }
  if (!published) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++publish_failures_;
    }
    FailCycleLocked("publish failed");
    return;
  }

  new_since_retrain_ = 0;
  has_pending_since_ = false;
  last_retrain_time_ = Clock::now();
  const double retrain_ms =
      std::chrono::duration<double, std::milli>(last_retrain_time_ - start)
          .count();
  const bool recovered = consecutive_failures_ > 0;
  consecutive_failures_ = 0;

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++retrains_;
    if (recovered) ++retrain_recoveries_;
    last_swap_generation_ = generation;
    corpus_size_ = corpus_.size();
    last_retrain_ms_ = retrain_ms;
  }
  // Observe-only sync hook: tests wait for the nth successful publish
  // here (FailPoints::WaitForHits) instead of polling retrains().
  (void)RPE_INJECT_FAULT("trainer.retrain.done");
}

void TrainerLoop::FailCycleLocked(const char* what) {
  ++consecutive_failures_;
  quarantine_until_ =
      Clock::now() + BackoffDelay(options_.retrain_quarantine,
                                  consecutive_failures_ - 1);
  RPE_LOG_WARN << "trainer_loop: " << what << " (failure streak "
               << consecutive_failures_
               << "); serving the previous generation, quarantined";
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++retrain_failures_;
}

uint64_t TrainerLoop::retrains() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return retrains_;
}

uint64_t TrainerLoop::last_swap_generation() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_swap_generation_;
}

IngestStats TrainerLoop::GetStats() const {
  IngestStats stats = queue_->GetStats();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats.retrains = retrains_;
  stats.last_swap_generation = last_swap_generation_;
  stats.retrain_failures = retrain_failures_;
  stats.retrain_recoveries = retrain_recoveries_;
  stats.snapshot_write_failures = snapshot_write_failures_;
  stats.snapshot_write_retries = snapshot_write_retries_;
  stats.publish_failures = publish_failures_;
  stats.publish_retries = publish_retries_;
  stats.last_retrain_ms = last_retrain_ms_;
  // Live corpus size when the loop is idle; the post-retrain size while a
  // retrain is in flight (run_mu_ is not taken here so stats never stall
  // behind training).
  stats.corpus_size = corpus_size_;
  return stats;
}

}  // namespace rpe
