#include "storage/table.h"

#include <algorithm>

namespace rpe {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

int64_t Table::ColumnMin(size_t col) const {
  int64_t m = 0;
  bool first = true;
  for (const auto& r : rows_) {
    if (first || r[col] < m) m = r[col];
    first = false;
  }
  return m;
}

int64_t Table::ColumnMax(size_t col) const {
  int64_t m = 0;
  bool first = true;
  for (const auto& r : rows_) {
    if (first || r[col] > m) m = r[col];
    first = false;
  }
  return m;
}

}  // namespace rpe
