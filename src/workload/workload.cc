#include "workload/workload.h"

namespace rpe {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kTpch: return "tpch";
    case WorkloadKind::kTpcds: return "tpcds";
    case WorkloadKind::kReal1: return "real1";
    case WorkloadKind::kReal2: return "real2";
  }
  return "unknown";
}

PhysicalDesign DesignFor(WorkloadKind kind, TuningLevel level) {
  PhysicalDesign d;
  d.name = std::string(WorkloadKindName(kind)) + "-" + TuningLevelName(level);
  auto add = [&](const char* table, const char* column) {
    d.indexes.push_back(IndexSpec{table, column});
  };
  switch (kind) {
    case WorkloadKind::kTpch: {
      // Untuned: primary-key indexes only (integrity constraints).
      add("region", "r_regionkey");
      add("nation", "n_nationkey");
      add("supplier", "s_suppkey");
      add("customer", "c_custkey");
      add("part", "p_partkey");
      add("orders", "o_orderkey");
      if (level == TuningLevel::kUntuned) break;
      // Partially tuned: the highest-benefit foreign-key indexes.
      add("lineitem", "l_orderkey");
      add("lineitem", "l_partkey");
      add("orders", "o_custkey");
      if (level == TuningLevel::kPartiallyTuned) break;
      // Fully tuned: everything DTA would recommend for this workload.
      add("lineitem", "l_suppkey");
      add("lineitem", "l_shipdate");
      add("customer", "c_nationkey");
      add("supplier", "s_nationkey");
      add("partsupp", "ps_partkey");
      add("partsupp", "ps_suppkey");
      add("nation", "n_regionkey");
      add("orders", "o_orderdate");
      break;
    }
    case WorkloadKind::kTpcds: {
      add("date_dim", "d_datekey");
      add("item", "i_itemkey");
      add("ds_customer", "dc_custkey");
      add("store", "st_storekey");
      add("promotion", "pr_promokey");
      if (level == TuningLevel::kUntuned) break;
      add("store_sales", "ss_itemkey");
      add("store_sales", "ss_datekey");
      if (level == TuningLevel::kPartiallyTuned) break;
      add("store_sales", "ss_custkey");
      add("store_sales", "ss_storekey");
      add("store_sales", "ss_promokey");
      add("web_sales", "ws_itemkey");
      add("web_sales", "ws_custkey");
      add("web_sales", "ws_datekey");
      break;
    }
    case WorkloadKind::kReal1: {
      add("category", "cat_key");
      add("product", "prod_key");
      add("geography", "geo_key");
      add("store_dim", "std_key");
      add("time_dim", "t_key");
      add("promotion_r1", "pm_key");
      if (level == TuningLevel::kUntuned) break;
      add("sales_fact", "sf_prodkey");
      add("sales_fact", "sf_timekey");
      if (level == TuningLevel::kPartiallyTuned) break;
      add("sales_fact", "sf_storekey");
      add("sales_fact", "sf_promokey");
      add("inventory_fact", "inv_prodkey");
      add("inventory_fact", "inv_timekey");
      add("store_dim", "std_geokey");
      add("product", "prod_catkey");
      break;
    }
    case WorkloadKind::kReal2: {
      add("region2", "rg_key");
      add("policyholder", "ph_key");
      add("agency", "agc_key");
      add("agent", "ag_key");
      add("product_line", "pl_key");
      add("product2", "pd_key");
      add("date_dim2", "dd_key");
      add("office", "of_key");
      add("adjuster", "adj_key");
      add("vendor", "vn_key");
      add("coverage", "cv_key");
      add("policy", "po_key");
      if (level == TuningLevel::kUntuned) break;
      add("claims_fact", "cl_policykey");
      add("claims_fact", "cl_datekey");
      add("policy", "po_holderkey");
      if (level == TuningLevel::kPartiallyTuned) break;
      add("claims_fact", "cl_adjusterkey");
      add("claims_fact", "cl_vendorkey");
      add("payment_fact", "pay_policykey");
      add("policy", "po_agentkey");
      add("policy", "po_prodkey");
      add("agent", "ag_agencykey");
      add("adjuster", "adj_officekey");
      break;
    }
  }
  return d;
}

Result<Workload> BuildWorkload(const WorkloadConfig& config) {
  switch (config.kind) {
    case WorkloadKind::kTpch: return BuildTpchWorkload(config);
    case WorkloadKind::kTpcds: return BuildTpcdsWorkload(config);
    case WorkloadKind::kReal1: return BuildReal1Workload(config);
    case WorkloadKind::kReal2: return BuildReal2Workload(config);
  }
  return Status::InvalidArgument("unknown workload kind");
}

std::vector<WorkloadConfig> PaperWorkloadConfigs() {
  // Paper counts: TPC-DS ~200, TPC-H 1000 x 3 designs, Real-1 477,
  // Real-2 632. Query counts here are scaled down ~2.5x so the full
  // six-workload sweep runs in minutes (documented in EXPERIMENTS.md).
  std::vector<WorkloadConfig> configs;
  {
    WorkloadConfig c;
    c.kind = WorkloadKind::kTpcds;
    c.name = "tpcds";
    c.scale = 10.0;
    c.zipf = 1.0;
    c.tuning = TuningLevel::kPartiallyTuned;
    c.num_queries = 150;
    c.seed = 11;
    configs.push_back(c);
  }
  const TuningLevel levels[3] = {TuningLevel::kUntuned,
                                 TuningLevel::kPartiallyTuned,
                                 TuningLevel::kFullyTuned};
  const char* level_tag[3] = {"untuned", "parttuned", "fulltuned"};
  for (int i = 0; i < 3; ++i) {
    WorkloadConfig c;
    c.kind = WorkloadKind::kTpch;
    c.name = std::string("tpch-") + level_tag[i];
    c.scale = 10.0;
    c.zipf = 1.0;
    c.tuning = levels[i];
    c.num_queries = 400;
    c.seed = 21 + static_cast<uint64_t>(i);
    configs.push_back(c);
  }
  {
    WorkloadConfig c;
    c.kind = WorkloadKind::kReal1;
    c.name = "real1";
    c.scale = 10.0;
    c.zipf = 1.2;
    c.tuning = TuningLevel::kPartiallyTuned;
    c.num_queries = 190;
    c.seed = 31;
    configs.push_back(c);
  }
  {
    WorkloadConfig c;
    c.kind = WorkloadKind::kReal2;
    c.name = "real2";
    c.scale = 10.0;
    c.zipf = 1.0;
    c.tuning = TuningLevel::kFullyTuned;
    c.num_queries = 250;
    c.seed = 41;
    configs.push_back(c);
  }
  return configs;
}

}  // namespace rpe
