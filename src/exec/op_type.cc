#include "exec/op_type.h"

namespace rpe {

const char* OpTypeName(OpType op) {
  switch (op) {
    case OpType::kTableScan: return "TableScan";
    case OpType::kIndexScan: return "IndexScan";
    case OpType::kIndexSeek: return "IndexSeek";
    case OpType::kFilter: return "Filter";
    case OpType::kNestedLoopJoin: return "NestedLoopJoin";
    case OpType::kHashJoin: return "HashJoin";
    case OpType::kMergeJoin: return "MergeJoin";
    case OpType::kSort: return "Sort";
    case OpType::kBatchSort: return "BatchSort";
    case OpType::kHashAggregate: return "HashAggregate";
    case OpType::kStreamAggregate: return "StreamAggregate";
    case OpType::kTop: return "Top";
  }
  return "Unknown";
}

bool IsFullyBlocking(OpType op) {
  return op == OpType::kSort || op == OpType::kHashAggregate;
}

bool IsLeaf(OpType op) {
  return op == OpType::kTableScan || op == OpType::kIndexScan ||
         op == OpType::kIndexSeek;
}

}  // namespace rpe
