#include "optimizer/histogram.h"

#include <algorithm>

#include "common/logging.h"

namespace rpe {

EquiDepthHistogram::EquiDepthHistogram(const Table& table, size_t column,
                                       size_t max_buckets) {
  RPE_CHECK_LT(column, table.schema().num_columns());
  RPE_CHECK_GT(max_buckets, 0u);
  std::vector<int64_t> values;
  values.reserve(table.num_rows());
  for (const auto& row : table.rows()) values.push_back(row[column]);
  std::sort(values.begin(), values.end());
  total_rows_ = values.size();
  if (values.empty()) return;
  min_ = values.front();
  max_ = values.back();

  const uint64_t per_bucket =
      std::max<uint64_t>(1, (total_rows_ + max_buckets - 1) / max_buckets);
  size_t i = 0;
  while (i < values.size()) {
    Bucket b;
    b.lo = values[i];
    uint64_t taken = 0;
    uint64_t distinct = 0;
    int64_t prev = values[i] - 1;
    while (i < values.size() && taken < per_bucket) {
      if (values[i] != prev) {
        ++distinct;
        prev = values[i];
      }
      ++taken;
      ++i;
    }
    // Extend to the end of the current value run so equal values never
    // straddle a bucket boundary.
    while (i < values.size() && values[i] == prev) {
      ++taken;
      ++i;
    }
    b.hi = values[i - 1];
    b.rows = taken;
    b.distinct = distinct;
    buckets_.push_back(b);
    distinct_ += distinct;
  }
}

double EquiDepthHistogram::EstimateEqual(int64_t v) const {
  if (total_rows_ == 0 || v < min_ || v > max_) return 0.0;
  for (const auto& b : buckets_) {
    if (v >= b.lo && v <= b.hi) {
      return static_cast<double>(b.rows) /
             static_cast<double>(std::max<uint64_t>(1, b.distinct));
    }
  }
  return 0.0;
}

double EquiDepthHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  if (total_rows_ == 0 || lo > hi || hi < min_ || lo > max_) return 0.0;
  double est = 0.0;
  for (const auto& b : buckets_) {
    if (b.hi < lo || b.lo > hi) continue;
    const double bucket_span =
        static_cast<double>(b.hi - b.lo) + 1.0;
    const int64_t olo = std::max(lo, b.lo);
    const int64_t ohi = std::min(hi, b.hi);
    const double overlap = static_cast<double>(ohi - olo) + 1.0;
    est += static_cast<double>(b.rows) * (overlap / bucket_span);
  }
  return std::min(est, static_cast<double>(total_rows_));
}

double EquiDepthHistogram::EstimateSelectivity(int kind, int64_t v1,
                                               int64_t v2) const {
  if (total_rows_ == 0) return 0.0;
  const double n = static_cast<double>(total_rows_);
  switch (kind) {
    case 0:  // true
      return 1.0;
    case 1:  // eq
      return EstimateEqual(v1) / n;
    case 2:  // le
      return EstimateRange(min_, v1) / n;
    case 3:  // ge
      return EstimateRange(v1, max_) / n;
    case 4:  // between
      return EstimateRange(v1, v2) / n;
    case 5:  // ne
      return 1.0 - EstimateEqual(v1) / n;
    default:
      return 1.0;
  }
}

}  // namespace rpe
