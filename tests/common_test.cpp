// Tests for the common utilities: Status/Result, RNG + Zipf, statistics
// and the table printer.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/crc32.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace rpe {
namespace {

// --- Status / Result --------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ("NotFound", Status::CodeName(StatusCode::kNotFound).c_str());
  EXPECT_STREQ("Internal", Status::CodeName(StatusCode::kInternal).c_str());
  EXPECT_STREQ("IOError", Status::CodeName(StatusCode::kIOError).c_str());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, HoldsValue) {
  auto r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
}

TEST(ResultTest, HoldsError) {
  auto r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status UsesAssignOrReturn(int x, int* out) {
  RPE_ASSIGN_OR_RETURN(int half, Half(x));
  RPE_ASSIGN_OR_RETURN(int quarter, Half(half));
  *out = quarter;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(12, &out).ok());
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(UsesAssignOrReturn(10, &out).ok());  // 5 is odd
}

// --- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextUIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUInt(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.NextGaussian());
  EXPECT_NEAR(Mean(xs), 0.0, 0.03);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.Shuffle(&w);
  std::multiset<int> sv(v.begin(), v.end()), sw(w.begin(), w.end());
  EXPECT_EQ(sv, sw);
}

// --- Zipf --------------------------------------------------------------

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(6);
  std::vector<int> counts(11, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[zipf.Next(&rng)]++;
  for (int v = 1; v <= 10; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / n, 0.1, 0.01);
  }
}

TEST(ZipfTest, HighSkewConcentratesOnHead) {
  ZipfGenerator zipf(1000, 2.0);
  Rng rng(7);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(&rng) <= 3) ++head;
  }
  // For z=2, P(1)+P(2)+P(3) ~ (1 + 1/4 + 1/9) / zeta(2) ~ 0.83.
  EXPECT_GT(static_cast<double>(head) / n, 0.7);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfGenerator zipf(50, 1.0);
  double total = 0.0;
  for (uint64_t v = 1; v <= 50; ++v) total += zipf.Pmf(v);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotoneDecreasing) {
  ZipfGenerator zipf(20, 1.5);
  for (uint64_t v = 2; v <= 20; ++v) {
    EXPECT_LE(zipf.Pmf(v), zipf.Pmf(v - 1) + 1e-12);
  }
}

// --- stats --------------------------------------------------------------

TEST(StatsTest, MeanVarianceBasics) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25);
}

TEST(StatsTest, PearsonCorrelation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> zs = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, zs), -1.0, 1e-12);
  std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, flat), 0.0);
}

TEST(StatsTest, LpErrors) {
  std::vector<double> a = {0.0, 1.0};
  std::vector<double> b = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(LpError(a, b, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(LpError(a, b, 2.0), std::sqrt(0.5));
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  std::vector<double> xs = {3.5, -1.0, 2.25, 8.0, 0.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 8.0);
}

// --- table printer -------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"xxxxxx", "1"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a      | long_header |"), std::string::npos);
  EXPECT_NE(s.find("| xxxxxx | 1           |"), std::string::npos);
}

TEST(TablePrinterTest, Formatting) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Pct(0.639), "63.9%");
}

// --- crc32 ---------------------------------------------------------------

TEST(Crc32Test, KnownVectorsAndSeedChaining) {
  // The IEEE 802.3 check value; pins the sliced kernel to the reference
  // byte-at-a-time definition.
  const char* check = "123456789";
  EXPECT_EQ(Crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);

  // Chaining through the seed must equal one shot, at every split point
  // (the sliced kernel has 8-byte and tail paths to cover).
  Rng rng(5);
  std::vector<unsigned char> data(1027);
  for (auto& b : data) b = static_cast<unsigned char>(rng.Next() & 0xFF);
  const uint32_t whole = Crc32(data.data(), data.size());
  for (size_t split : {size_t{1}, size_t{7}, size_t{8}, size_t{9},
                       size_t{64}, size_t{1000}}) {
    const uint32_t head = Crc32(data.data(), split);
    EXPECT_EQ(Crc32(data.data() + split, data.size() - split, head), whole)
        << "split " << split;
  }
}

}  // namespace
}  // namespace rpe
