// Optimizer tests: equi-depth histograms, cardinality estimation formulas,
// physical designs, and the planner's strategy selection.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "optimizer/cardinality.h"
#include "optimizer/planner.h"
#include "optimizer/tuning.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;

TEST(HistogramTest, TotalAndBounds) {
  auto catalog = MakeSmallCatalog();
  const Table* fact = *catalog->GetTable("t_fact");
  EquiDepthHistogram h(*fact, 2);  // f_val in [0, 49]
  EXPECT_EQ(h.total_rows(), 1000u);
  EXPECT_GE(h.min_value(), 0);
  EXPECT_LE(h.max_value(), 49);
  EXPECT_EQ(h.distinct_count(), 50u);
}

TEST(HistogramTest, RangeEstimateAccuracyOnUniform) {
  auto catalog = MakeSmallCatalog();
  const Table* fact = *catalog->GetTable("t_fact");
  EquiDepthHistogram h(*fact, 2);
  uint64_t actual = 0;
  for (const auto& row : fact->rows()) {
    if (row[2] >= 10 && row[2] <= 29) ++actual;
  }
  const double est = h.EstimateRange(10, 29);
  EXPECT_NEAR(est, static_cast<double>(actual),
              0.15 * static_cast<double>(actual) + 20.0);
}

TEST(HistogramTest, FullRangeCoversAllRows) {
  auto catalog = MakeSmallCatalog();
  const Table* fact = *catalog->GetTable("t_fact");
  EquiDepthHistogram h(*fact, 1);  // f_fk
  EXPECT_NEAR(h.EstimateRange(h.min_value(), h.max_value()), 1000.0, 1.0);
}

TEST(HistogramTest, EqualEstimateAveragesBucket) {
  auto catalog = MakeSmallCatalog();
  const Table* dim = *catalog->GetTable("t_dim");
  EquiDepthHistogram h(*dim, 0);  // d_id: 100 distinct sequential values
  // Perfectly uniform unique column: estimate should be ~1 per key.
  EXPECT_NEAR(h.EstimateEqual(50), 1.0, 0.5);
  EXPECT_DOUBLE_EQ(h.EstimateEqual(1000), 0.0);  // out of domain
}

TEST(HistogramTest, SelectivityKinds) {
  auto catalog = MakeSmallCatalog();
  const Table* fact = *catalog->GetTable("t_fact");
  EquiDepthHistogram h(*fact, 2);
  EXPECT_DOUBLE_EQ(h.EstimateSelectivity(0, 0, 0), 1.0);         // true
  EXPECT_NEAR(h.EstimateSelectivity(2, 24, 0), 0.5, 0.1);        // le
  EXPECT_NEAR(h.EstimateSelectivity(3, 25, 0), 0.5, 0.1);        // ge
  EXPECT_NEAR(h.EstimateSelectivity(4, 10, 19), 0.2, 0.07);      // between
  const double ne = h.EstimateSelectivity(5, 7, 0);
  EXPECT_GT(ne, 0.9);
  EXPECT_LE(ne, 1.0);
}

TEST(CardinalityTest, TableRowsAndDistinct) {
  auto catalog = MakeSmallCatalog();
  CardinalityEstimator card(catalog.get());
  EXPECT_DOUBLE_EQ(*card.TableRows("t_fact"), 1000.0);
  EXPECT_DOUBLE_EQ(*card.DistinctCount("t_dim", "d_id"), 100.0);
  EXPECT_FALSE(card.TableRows("missing").ok());
}

TEST(CardinalityTest, FkPkJoinSelectivity) {
  auto catalog = MakeSmallCatalog();
  CardinalityEstimator card(catalog.get());
  // 1/max(distinct(fk), distinct(pk)) = 1/100.
  auto sel = card.JoinSelectivity("t_fact", "f_fk", "t_dim", "d_id");
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(*sel, 0.01, 0.001);
  // Estimated join size = 1000 * 100 * 0.01 = 1000 (exact for FK-PK).
  EXPECT_NEAR(1000.0 * 100.0 * *sel, 1000.0, 100.0);
}

TEST(CardinalityTest, GroupCountCappedByInput) {
  auto catalog = MakeSmallCatalog();
  CardinalityEstimator card(catalog.get());
  EXPECT_DOUBLE_EQ(card.GroupCount(50.0, {100.0, 100.0}), 50.0);
  EXPECT_DOUBLE_EQ(card.GroupCount(1e6, {10.0, 7.0}), 70.0);
  EXPECT_DOUBLE_EQ(card.GroupCount(100.0, {}), 1.0);
}

TEST(CardinalityTest, FilterSelectivityMatchesHistogram) {
  auto catalog = MakeSmallCatalog();
  CardinalityEstimator card(catalog.get());
  FilterSpec f;
  f.table_idx = 0;
  f.column = "f_val";
  f.kind = Predicate::Kind::kLe;
  f.v1 = 24;
  auto sel = card.FilterSelectivity("t_fact", f);
  ASSERT_TRUE(sel.ok());
  EXPECT_NEAR(*sel, 0.5, 0.1);
}

TEST(TuningTest, ApplyDesignReplacesIndexes) {
  auto catalog = MakeSmallCatalog();
  PhysicalDesign design;
  design.name = "test";
  design.indexes = {{"t_dim", "d_attr"}};
  ASSERT_TRUE(ApplyPhysicalDesign(catalog.get(), design).ok());
  EXPECT_TRUE(catalog->HasIndex("t_dim", "d_attr"));
  EXPECT_FALSE(catalog->HasIndex("t_dim", "d_id"));  // dropped
  EXPECT_EQ(catalog->num_indexes(), 1u);
}

TEST(TuningTest, LevelNames) {
  EXPECT_STREQ(TuningLevelName(TuningLevel::kUntuned), "untuned");
  EXPECT_STREQ(TuningLevelName(TuningLevel::kFullyTuned), "fully tuned");
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeSmallCatalog();
    card_ = std::make_unique<CardinalityEstimator>(catalog_.get());
    planner_ = std::make_unique<Planner>(catalog_.get(), card_.get());
  }

  QuerySpec JoinSpec(JoinHint hint) {
    QuerySpec spec;
    spec.name = "q";
    spec.tables = {"t_fact", "t_dim"};
    JoinEdge e;
    e.left_idx = 0;
    e.left_col = "f_fk";
    e.right_col = "d_id";
    e.hint = hint;
    spec.joins.push_back(e);
    return spec;
  }

  bool PlanHasOp(const PhysicalPlan& plan, OpType op) {
    for (const auto* n : plan.nodes()) {
      if (n->op == op) return true;
    }
    return false;
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<CardinalityEstimator> card_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(PlannerTest, AutoPicksIndexNestedLoopWhenIndexed) {
  auto plan = planner_->Plan(JoinSpec(JoinHint::kAuto));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(PlanHasOp(**plan, OpType::kNestedLoopJoin));
  EXPECT_TRUE(PlanHasOp(**plan, OpType::kIndexSeek));
}

TEST_F(PlannerTest, HashHintProducesHashJoin) {
  auto plan = planner_->Plan(JoinSpec(JoinHint::kHash));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(PlanHasOp(**plan, OpType::kHashJoin));
}

TEST_F(PlannerTest, MergeHintSortsUnorderedSide) {
  auto plan = planner_->Plan(JoinSpec(JoinHint::kMerge));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(PlanHasOp(**plan, OpType::kMergeJoin));
  // Left side (fact) is unordered on the join key: needs a sort; right
  // side has an index and is delivered via ordered index scan.
  EXPECT_TRUE(PlanHasOp(**plan, OpType::kSort));
  EXPECT_TRUE(PlanHasOp(**plan, OpType::kIndexScan));
}

TEST_F(PlannerTest, EstimatesAnnotatedEverywhere) {
  auto plan = planner_->Plan(JoinSpec(JoinHint::kAuto));
  ASSERT_TRUE(plan.ok());
  for (const auto* n : (*plan)->nodes()) {
    EXPECT_GT(n->est_rows, 0.0) << OpTypeName(n->op);
  }
}

TEST_F(PlannerTest, FkPkJoinEstimateIsAccurate) {
  auto plan = planner_->Plan(JoinSpec(JoinHint::kHash));
  ASSERT_TRUE(plan.ok());
  // The join root's estimate should be close to the true 1000 rows.
  EXPECT_NEAR((*plan)->root()->est_rows, 1000.0, 250.0);
}

TEST_F(PlannerTest, FiltersArePushedToScans) {
  QuerySpec spec = JoinSpec(JoinHint::kHash);
  FilterSpec f;
  f.table_idx = 0;
  f.column = "f_val";
  f.kind = Predicate::Kind::kLe;
  f.v1 = 9;
  spec.filters.push_back(f);
  auto plan = planner_->Plan(spec);
  ASSERT_TRUE(plan.ok());
  // Find the filter node: its child must be the fact scan.
  bool found = false;
  for (const auto* n : (*plan)->nodes()) {
    if (n->op == OpType::kFilter) {
      EXPECT_EQ(n->child(0)->op, OpType::kTableScan);
      EXPECT_EQ(n->child(0)->table, "t_fact");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(PlannerTest, AggregationChoosesStreamWhenSorted) {
  QuerySpec spec;
  spec.name = "agg";
  spec.tables = {"t_fact"};
  AggSpec agg;
  agg.group_cols = {{0, "f_val"}};
  agg.prefer_sort_stream = true;
  spec.agg = agg;
  auto plan = planner_->Plan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->root()->op, OpType::kStreamAggregate);
  EXPECT_EQ((*plan)->root()->child(0)->op, OpType::kSort);
}

TEST_F(PlannerTest, AggregationDefaultsToHash) {
  QuerySpec spec;
  spec.name = "agg";
  spec.tables = {"t_fact"};
  AggSpec agg;
  agg.group_cols = {{0, "f_val"}};
  spec.agg = agg;
  auto plan = planner_->Plan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->root()->op, OpType::kHashAggregate);
}

TEST_F(PlannerTest, TopAndOrderBy) {
  QuerySpec spec;
  spec.name = "top";
  spec.tables = {"t_fact"};
  spec.order_by = {{0, "f_val"}};
  spec.top_limit = 5;
  auto plan = planner_->Plan(spec);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->root()->op, OpType::kTop);
  EXPECT_EQ((*plan)->root()->child(0)->op, OpType::kSort);
  EXPECT_LE((*plan)->root()->est_rows, 5.0);
}

TEST_F(PlannerTest, RejectsMalformedSpecs) {
  QuerySpec empty;
  EXPECT_FALSE(planner_->Plan(empty).ok());

  QuerySpec bad_join;
  bad_join.tables = {"t_fact", "t_dim"};
  // Missing join edge.
  EXPECT_FALSE(planner_->Plan(bad_join).ok());

  QuerySpec bad_filter = JoinSpec(JoinHint::kAuto);
  FilterSpec f;
  f.table_idx = 7;
  bad_filter.filters.push_back(f);
  EXPECT_FALSE(planner_->Plan(bad_filter).ok());
}

TEST_F(PlannerTest, PlannedQueryExecutes) {
  QuerySpec spec = JoinSpec(JoinHint::kAuto);
  AggSpec agg;
  agg.group_cols = {{1, "d_attr"}};
  spec.agg = agg;
  auto plan = planner_->Plan(spec);
  ASSERT_TRUE(plan.ok());
  auto run = ExecutePlan(**plan, *catalog_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->rows_out, 10u);  // d_attr has 10 distinct values
}

}  // namespace
}  // namespace rpe
