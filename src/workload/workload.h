// Workload registry: the six databases + query workloads of the paper's
// evaluation (§6, "Databases and Workloads"), at laptop scale:
//
//  (1) TPC-DS-like, ~200 random queries
//  (2)-(4) TPC-H-like with Zipf z=1 data under three physical designs
//  (5) "Real-1": sales/reporting star-snowflake, 5-8 way joins
//  (6) "Real-2": larger snowflake, ~9-12 way joins
//
// Row counts are the TPC ratios scaled down ~1000x so that full workloads
// execute in seconds; skew (z), scale factor and tuning level are the knobs
// the sensitivity experiments (Tables 2-5) vary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "optimizer/query_spec.h"
#include "optimizer/tuning.h"
#include "storage/catalog.h"
#include "workload/schema_graph.h"

namespace rpe {

enum class WorkloadKind {
  kTpch,
  kTpcds,
  kReal1,
  kReal2,
};

const char* WorkloadKindName(WorkloadKind kind);

/// \brief Knobs for building one workload instance.
struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kTpch;
  std::string name = "tpch";
  /// Scale factor: base-table row counts scale linearly (TPC-H SF analog).
  double scale = 10.0;
  /// Zipf skew of fact-table foreign keys and categorical columns.
  double zipf = 1.0;
  TuningLevel tuning = TuningLevel::kPartiallyTuned;
  size_t num_queries = 400;
  uint64_t seed = 1;
};

/// \brief A built workload: populated catalog + logical queries + metadata.
struct Workload {
  WorkloadConfig config;
  std::unique_ptr<Catalog> catalog;
  std::vector<QuerySpec> queries;
  SchemaGraph graph;
  PhysicalDesign design;
};

/// Build the database (deterministically from config.seed), apply the
/// physical design for config.tuning, and generate the query workload.
Result<Workload> BuildWorkload(const WorkloadConfig& config);

/// The paper's six evaluation workloads (scaled): TPC-DS, TPC-H x three
/// designs, Real-1, Real-2.
std::vector<WorkloadConfig> PaperWorkloadConfigs();

// Internal per-family builders (exposed for tests).
Result<Workload> BuildTpchWorkload(const WorkloadConfig& config);
Result<Workload> BuildTpcdsWorkload(const WorkloadConfig& config);
Result<Workload> BuildReal1Workload(const WorkloadConfig& config);
Result<Workload> BuildReal2Workload(const WorkloadConfig& config);

/// The physical design (index set) for a workload family at a tuning level.
PhysicalDesign DesignFor(WorkloadKind kind, TuningLevel level);

}  // namespace rpe
