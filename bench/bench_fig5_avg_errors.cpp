// Figure 5: average L1 and L2 progress-estimation error under the ad-hoc
// setup: the three prior estimators vs. estimator selection with static /
// dynamic features, with the {DNE,TGN,LUO} pool and with the six-estimator
// pool (adding BATCHDNE, DNESEEK, TGNINT); plus the selection-oracle floor
// (§6.2) and the worst-case-optimal SAFE/PMAX estimators the paper rules
// out.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Figure 5: average progress-estimation error (ad-hoc "
               "setup) ===\n";
  AdHocResult adhoc = RunAdHocExperiment();
  const auto& records = adhoc.records;

  auto pool_oracle = [&](const std::vector<size_t>& pool) {
    std::vector<size_t> choices;
    choices.reserve(records.size());
    for (const auto& r : records) choices.push_back(BestInPool(r, pool));
    return choices;
  };

  struct Row {
    std::string name;
    std::vector<size_t> choices;
  };
  const std::vector<Row> rows = {
      {"DNE", FixedChoice(records, size_t(EstimatorKind::kDne))},
      {"TGN", FixedChoice(records, size_t(EstimatorKind::kTgn))},
      {"LUO", FixedChoice(records, size_t(EstimatorKind::kLuo))},
      {"Est.Sel. (static, 3 est.)", adhoc.static3},
      {"Est.Sel. (dynamic, 3 est.)", adhoc.dynamic3},
      {"Est.Sel. (static, 6 est.)", adhoc.static6},
      {"Est.Sel. (dynamic, 6 est.)", adhoc.dynamic6},
      {"Oracle selection (3 est.)", pool_oracle(PoolOriginalThree())},
      {"Oracle selection (6 est.)", pool_oracle(PoolSix())},
      {"SAFE", FixedChoice(records, size_t(EstimatorKind::kSafe))},
      {"PMAX", FixedChoice(records, size_t(EstimatorKind::kPmax))},
  };
  TablePrinter table({"Policy", "avg L1", "avg L2"});
  for (const Row& row : rows) {
    const auto m = EvaluateChoices(records, row.choices);
    table.AddRow({row.name, TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Fmt(m.avg_l2, 4)});
  }
  table.Print();
  std::cout
      << "\nPaper's Figure 5 (L1): DNE .1748, TGN .1463, LUO .1616;\n"
         "selection .1410 (st,3) / .1294 (dy,3) / .1275 (st,6) / .1271\n"
         "(dy,6); oracle .109 (3 est.) / .099 (6 est.). SAFE .40, PMAX .50\n"
         "(\"ruled out for practical applications\").\n";
  return 0;
}
