#include "serving/mmap_arena.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <iostream>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/logging.h"
#include "mart/flat_ensemble.h"
#include "selection/features.h"

namespace rpe {

Result<std::shared_ptr<MmapArena>> MmapArena::Map(const std::string& path) {
  const int fd = RPE_INJECT_FAULT("arena.open") ? -1
                                                : ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open for mmap: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot mmap empty snapshot: " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (RPE_INJECT_FAULT("arena.mmap")) {
    if (addr != MAP_FAILED) ::munmap(addr, size);
    addr = MAP_FAILED;
  }
  if (addr == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }
  // Prefault hint: the loader CRC-sweeps the whole file immediately, so
  // ask the kernel to read it ahead instead of faulting page by page.
  // Advisory only — a refusal costs throughput, not correctness.
  const bool prefaulted = !RPE_INJECT_FAULT("arena.madvise") &&
                          ::madvise(addr, size, MADV_WILLNEED) == 0;
  if (!prefaulted) {
    std::cerr << "madvise(MADV_WILLNEED) failed for " << path
              << "; continuing without prefault\n";
  }
  return std::shared_ptr<MmapArena>(new MmapArena(addr, size, prefaulted));
}

MmapArena::~MmapArena() { ::munmap(addr_, size_); }

namespace {

constexpr size_t kMaxSlabElems = size_t{1} << 28;

/// Bounds-checked cursor over the aux section, mirroring the writer in
/// snapshot.cc (AuxWriter): scalars are memcpy'd (they may be unaligned),
/// slab data is 8-aligned relative to the payload start and borrowed in
/// place. Callers only construct a cursor over an 8-aligned payload base
/// with an 8-aligned aux offset (anything else degrades to the copy
/// decoder up front), so Align8 keeps every borrowed slab on its natural
/// alignment by construction.
class AuxCursor {
 public:
  AuxCursor(std::string_view payload, size_t pos)
      : payload_(payload), pos_(pos) {}

  Status U32(uint32_t* v) { return Raw(v, sizeof *v); }
  Status U64(uint64_t* v) { return Raw(v, sizeof *v); }
  Status I32(int32_t* v) { return Raw(v, sizeof *v); }
  Status F64(double* v) { return Raw(v, sizeof *v); }

  Status Align8() {
    const size_t aligned = (pos_ + 7) & ~size_t{7};
    if (aligned > payload_.size()) return Truncated();
    pos_ = aligned;
    return Status::OK();
  }

  template <typename T>
  Status BorrowSlab(Slab<T>* out) {
    static_assert(alignof(T) <= 8);
    uint64_t count = 0;
    RPE_RETURN_NOT_OK(U64(&count));
    RPE_RETURN_NOT_OK(Align8());
    if (count > kMaxSlabElems || count * sizeof(T) > Remaining()) {
      return Truncated();
    }
    const char* p = payload_.data() + pos_;
    RPE_DCHECK(reinterpret_cast<uintptr_t>(p) % alignof(T) == 0);
    *out = Slab<T>::Borrow(reinterpret_cast<const T*>(p),
                           static_cast<size_t>(count));
    pos_ += static_cast<size_t>(count) * sizeof(T);
    return Status::OK();
  }

  size_t Remaining() const { return payload_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  Status Raw(void* v, size_t size) {
    if (size > Remaining()) return Truncated();
    if (size != 0) std::memcpy(v, payload_.data() + pos_, size);
    pos_ += size;
    return Status::OK();
  }
  static Status Truncated() {
    return Status::InvalidArgument("flat snapshot section truncated");
  }

  std::string_view payload_;
  size_t pos_;
};

Status DecodeQsTables(AuxCursor* c, flat_internal::QuickScorerModel* qs) {
  RPE_RETURN_NOT_OK(c->F64(&qs->bias));
  RPE_RETURN_NOT_OK(c->I32(&qs->num_trees));
  RPE_RETURN_NOT_OK(c->I32(&qs->num_features));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->feat_begin));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->threshold));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->entry_tree));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->entry_mask));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->init_mask));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->leaf_base));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&qs->leaf_value));
  qs->usable = true;
  return Status::OK();
}

/// One selector's flat section → a model-free EstimatorSelector whose
/// scoring slabs alias the mapping. Structural validation happens in
/// FlatEnsembleSet::FromParts / EstimatorSelector::FromFlat.
Result<EstimatorSelector> DecodeFlatSelector(AuxCursor* c,
                                             bool expect_dynamic) {
  RPE_RETURN_NOT_OK(c->Align8());
  uint32_t magic = 0, use_dynamic = 0;
  uint64_t num_models = 0, num_inputs = 0;
  RPE_RETURN_NOT_OK(c->U32(&magic));
  if (magic != kFlatSectionMagic) {
    return Status::InvalidArgument("flat snapshot section has bad magic");
  }
  RPE_RETURN_NOT_OK(c->U32(&use_dynamic));
  if ((use_dynamic != 0) != expect_dynamic) {
    return Status::InvalidArgument(
        "flat snapshot section has the wrong feature mode");
  }
  RPE_RETURN_NOT_OK(c->U64(&num_models));
  RPE_RETURN_NOT_OK(c->U64(&num_inputs));
  const FeatureSchema& schema = FeatureSchema::Get();
  const size_t expected_inputs = expect_dynamic
                                     ? schema.num_features()
                                     : schema.num_static_features();
  if (num_models > 4096 || num_inputs != expected_inputs) {
    return Status::InvalidArgument(
        "flat snapshot section model count or input width out of range");
  }

  Slab<uint64_t> pool_slab;
  RPE_RETURN_NOT_OK(c->BorrowSlab(&pool_slab));
  if (pool_slab.size() != num_models) {
    return Status::InvalidArgument("flat snapshot pool size mismatch");
  }

  FlatEnsembleSet::Parts parts;
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.bias));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.tree_begin));
  if (parts.bias.size() != num_models) {
    return Status::InvalidArgument("flat snapshot bias size mismatch");
  }

  Slab<uint64_t> gain_lens;
  Slab<double> gain_concat;
  RPE_RETURN_NOT_OK(c->BorrowSlab(&gain_lens));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&gain_concat));

  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.store.roots));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.store.depth));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.store.sched));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.store.topo));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.store.split));
  RPE_RETURN_NOT_OK(c->BorrowSlab(&parts.store.leaf));

  for (uint64_t m = 0; m < num_models; ++m) {
    uint32_t usable = 0;
    RPE_RETURN_NOT_OK(c->U32(&usable));
    flat_internal::QuickScorerModel qs;
    if (usable != 0) RPE_RETURN_NOT_OK(DecodeQsTables(c, &qs));
    parts.qs.push_back(std::move(qs));
  }
  uint32_t merged_usable = 0;
  RPE_RETURN_NOT_OK(c->U32(&merged_usable));
  if (merged_usable != 0) {
    auto& merged = parts.merged;
    RPE_RETURN_NOT_OK(c->I32(&merged.num_features));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.feat_begin));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.threshold));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.entry_tree));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.entry_mask));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.init_mask));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.leaf_base));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.leaf_value));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.model_tree_begin));
    RPE_RETURN_NOT_OK(c->BorrowSlab(&merged.bias));
    merged.usable = true;
  }

  // Gains are tiny (one double per feature per model): copy them out of
  // the mapping so FeatureImportance needs no arena bookkeeping.
  if (gain_lens.size() != num_models) {
    return Status::InvalidArgument("flat snapshot gain table mismatch");
  }
  std::vector<std::vector<double>> gains;
  size_t gain_pos = 0;
  for (uint64_t m = 0; m < num_models; ++m) {
    const uint64_t len = gain_lens[m];
    if (len > gain_concat.size() - gain_pos) {
      return Status::InvalidArgument("flat snapshot gain table mismatch");
    }
    gains.emplace_back(gain_concat.begin() + gain_pos,
                       gain_concat.begin() + gain_pos + len);
    gain_pos += len;
  }
  if (gain_pos != gain_concat.size()) {
    return Status::InvalidArgument("flat snapshot gain table mismatch");
  }

  RPE_ASSIGN_OR_RETURN(
      FlatEnsembleSet flat,
      FlatEnsembleSet::FromParts(std::move(parts), expected_inputs));
  std::vector<size_t> pool(pool_slab.begin(), pool_slab.end());
  return EstimatorSelector::FromFlat(std::move(pool), expect_dynamic,
                                     std::move(flat), std::move(gains));
}

/// Keeps the mapping alive exactly as long as the aliased stack: the
/// public shared_ptr<const SelectorStack> aliases `stack` while owning
/// this holder.
struct ArenaBackedStack {
  std::shared_ptr<MmapArena> arena;
  SelectorStack stack;
};

}  // namespace

Result<ArenaStackLoad> LoadSelectorStackMmap(const std::string& path) {
  RPE_ASSIGN_OR_RETURN(std::shared_ptr<MmapArena> arena, MmapArena::Map(path));
  std::string_view bytes = arena->bytes();
  // "arena.short_map": the mapping comes up shorter than the file (disk
  // shrank underneath us, or a short read on a copying filesystem). The
  // frame's payload-size check must reject it before anything decodes.
  if (RPE_INJECT_FAULT("arena.short_map")) bytes = bytes.substr(0, bytes.size() / 2);
  RPE_ASSIGN_OR_RETURN(SnapshotFrame frame, UnframeSnapshot(bytes));
  if (frame.kind != SnapshotKind::kSelectorStack) {
    return Status::InvalidArgument("snapshot holds a different payload kind");
  }

  ArenaStackLoad out;
  out.mapped_bytes = arena->size();

  // An aux section at an unaligned offset (or a payload whose base is not
  // 8-aligned — impossible for a fresh mmap, but bytes() could be fed from
  // elsewhere one day) was written under different alignment rules:
  // degrade to the copy decoder rather than borrow misaligned slabs. With
  // both 8-aligned, every slab the cursor borrows is on its natural
  // alignment by construction, so any aux parse failure past this point
  // is structural damage and errors out.
  const bool aligned =
      reinterpret_cast<uintptr_t>(frame.payload.data()) % 8 == 0 &&
      frame.aux_offset % 8 == 0;
  if (frame.version != kSnapshotVersionLegacy && frame.aux_offset != 0 &&
      aligned) {
    RPE_RETURN_NOT_OK(snapshot_internal::CheckSchemaPrefix(frame.payload));
    auto holder = std::make_shared<ArenaBackedStack>();
    holder->arena = arena;
    AuxCursor cursor(frame.payload, frame.aux_offset);
    RPE_ASSIGN_OR_RETURN(
        holder->stack.static_selector,
        DecodeFlatSelector(&cursor, /*expect_dynamic=*/false));
    RPE_ASSIGN_OR_RETURN(
        holder->stack.dynamic_selector,
        DecodeFlatSelector(&cursor, /*expect_dynamic=*/true));
    if (cursor.Remaining() != 0) {
      return Status::InvalidArgument(
          "flat snapshot section has trailing bytes");
    }
    out.stack = std::shared_ptr<const SelectorStack>(holder, &holder->stack);
    out.zero_copy = true;
    return out;
  }

  // Copy fallback (legacy v1, no aux section, or unaligned slabs): decode
  // straight from the mapping into heap-owned structures; the mapping is
  // released when `arena` goes out of scope.
  RPE_ASSIGN_OR_RETURN(SelectorStack stack, DecodeSelectorStack(bytes));
  out.stack = std::make_shared<const SelectorStack>(std::move(stack));
  out.zero_copy = false;
  return out;
}

}  // namespace rpe
