// Minimal CHECK/DCHECK logging macros (Arrow/RocksDB-style). CHECK failures
// abort with a message; they guard internal invariants, not user errors
// (user errors travel through Status).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rpe {
namespace internal {

class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[FATAL] " << file << ":" << line << ": ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rpe

#define RPE_CHECK(cond)                                      \
  if (!(cond))                                               \
  ::rpe::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define RPE_CHECK_OK(expr)                                   \
  do {                                                       \
    ::rpe::Status _st = (expr);                              \
    RPE_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

#define RPE_CHECK_EQ(a, b) RPE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_NE(a, b) RPE_CHECK((a) != (b))
#define RPE_CHECK_LT(a, b) RPE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_LE(a, b) RPE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_GT(a, b) RPE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_GE(a, b) RPE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define RPE_DCHECK(cond) \
  while (false) RPE_CHECK(cond)
#else
#define RPE_DCHECK(cond) RPE_CHECK(cond)
#endif
