// Storage-layer tests: schema, tables, sorted indexes, catalog, and the
// declarative data generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "storage/catalog.h"
#include "storage/datagen.h"

namespace rpe {
namespace {

TEST(SchemaTest, WidthAndLookup) {
  Schema s({{"a", 8}, {"b", 32}, {"c", 8}});
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.row_width_bytes(), 48u);
  ASSERT_TRUE(s.ColumnIndex("b").ok());
  EXPECT_EQ(*s.ColumnIndex("b"), 1u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
}

TEST(SchemaTest, ConcatPreservesOrderAndWidth) {
  Schema a({{"x", 8}});
  Schema b({{"y", 16}, {"z", 8}});
  Schema c = a.Concat(b);
  EXPECT_EQ(c.num_columns(), 3u);
  EXPECT_EQ(c.row_width_bytes(), 32u);
  EXPECT_EQ(c.column(1).name, "y");
}

TEST(TableTest, AppendAndMinMax) {
  Table t("t", Schema({{"a", 8}, {"b", 8}}));
  EXPECT_TRUE(t.Append({1, 5}).ok());
  EXPECT_TRUE(t.Append({3, -2}).ok());
  EXPECT_TRUE(t.Append({2, 9}).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.ColumnMin(0), 1);
  EXPECT_EQ(t.ColumnMax(0), 3);
  EXPECT_EQ(t.ColumnMin(1), -2);
  EXPECT_EQ(t.ColumnMax(1), 9);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t("t", Schema({{"a", 8}}));
  EXPECT_FALSE(t.Append({1, 2}).ok());
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("t", Schema({{"k", 8}, {"v", 8}}));
    // Keys with duplicates: 5, 3, 5, 1, 3, 5.
    const int64_t keys[] = {5, 3, 5, 1, 3, 5};
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(table_->Append({keys[i], i}).ok());
    }
    index_ = std::make_unique<SortedIndex>(table_.get(), 0);
  }
  std::unique_ptr<Table> table_;
  std::unique_ptr<SortedIndex> index_;
};

TEST_F(IndexTest, SeekEqualFindsAllDuplicates) {
  EXPECT_EQ(index_->SeekEqual(5).size(), 3u);
  EXPECT_EQ(index_->SeekEqual(3).size(), 2u);
  EXPECT_EQ(index_->SeekEqual(1).size(), 1u);
  EXPECT_TRUE(index_->SeekEqual(7).empty());
}

TEST_F(IndexTest, CountMatchesSeek) {
  for (int64_t k = 0; k <= 6; ++k) {
    EXPECT_EQ(index_->CountEqual(k), index_->SeekEqual(k).size());
  }
}

TEST_F(IndexTest, SeekRangeInKeyOrder) {
  const auto rows = index_->SeekRange(2, 5);
  EXPECT_EQ(rows.size(), 5u);  // two 3s + three 5s
  int64_t prev = -1;
  for (RowId id : rows) {
    EXPECT_GE(table_->row(id)[0], prev);
    prev = table_->row(id)[0];
  }
  EXPECT_EQ(index_->CountRange(2, 5), 5u);
  EXPECT_EQ(index_->CountRange(6, 10), 0u);
}

TEST_F(IndexTest, EntriesAreSorted) {
  const auto& e = index_->entries();
  EXPECT_TRUE(std::is_sorted(e.begin(), e.end()));
}

TEST(CatalogTest, TableAndIndexLifecycle) {
  Catalog catalog;
  auto t = std::make_unique<Table>("t", Schema({{"a", 8}}));
  ASSERT_TRUE(t->Append({1}).ok());
  ASSERT_TRUE(catalog.AddTable(std::move(t)).ok());
  EXPECT_TRUE(catalog.HasTable("t"));
  EXPECT_FALSE(catalog.HasTable("u"));
  // Duplicate names rejected.
  EXPECT_FALSE(
      catalog.AddTable(std::make_unique<Table>("t", Schema({{"a", 8}})))
          .ok());

  EXPECT_FALSE(catalog.HasIndex("t", "a"));
  ASSERT_TRUE(catalog.CreateIndex("t", "a").ok());
  EXPECT_TRUE(catalog.HasIndex("t", "a"));
  EXPECT_EQ(catalog.num_indexes(), 1u);
  // Idempotent.
  ASSERT_TRUE(catalog.CreateIndex("t", "a").ok());
  EXPECT_EQ(catalog.num_indexes(), 1u);
  // Unknown table/column fail.
  EXPECT_FALSE(catalog.CreateIndex("u", "a").ok());
  EXPECT_FALSE(catalog.CreateIndex("t", "b").ok());

  catalog.DropAllIndexes();
  EXPECT_EQ(catalog.num_indexes(), 0u);
}

TEST(DatagenTest, SequentialAndConstant) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 10;
  spec.columns = {{"id", 8}, {"c", 8}};
  spec.generators = {ColumnGen::Sequential(), ColumnGen::Constant(42)};
  Rng rng(1);
  auto t = GenerateTable(spec, &rng);
  ASSERT_TRUE(t.ok());
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ((*t)->row(i)[0], static_cast<int64_t>(i));
    EXPECT_EQ((*t)->row(i)[1], 42);
  }
}

TEST(DatagenTest, UniformWithinBounds) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 2000;
  spec.columns = {{"u", 8}};
  spec.generators = {ColumnGen::Uniform(-5, 5)};
  Rng rng(2);
  auto t = GenerateTable(spec, &rng);
  ASSERT_TRUE(t.ok());
  EXPECT_GE((*t)->ColumnMin(0), -5);
  EXPECT_LE((*t)->ColumnMax(0), 5);
}

TEST(DatagenTest, FkZipfSkewsParentPopularity) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 20000;
  spec.columns = {{"fk", 8}};
  spec.generators = {ColumnGen::FkZipf(100, 1.5)};
  Rng rng(3);
  auto t = GenerateTable(spec, &rng);
  ASSERT_TRUE(t.ok());
  std::map<int64_t, int> counts;
  for (const auto& row : (*t)->rows()) counts[row[0]]++;
  // The hottest parent should dwarf the median one.
  int max_count = 0;
  for (const auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000 / 100 * 5);
  EXPECT_GE((*t)->ColumnMin(0), 0);
  EXPECT_LT((*t)->ColumnMax(0), 100);
}

TEST(DatagenTest, CorrelatedFollowsSource) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 500;
  spec.columns = {{"id", 8}, {"day", 8}};
  spec.generators = {ColumnGen::Sequential(), ColumnGen::Correlated(0, 10, 3)};
  Rng rng(4);
  auto t = GenerateTable(spec, &rng);
  ASSERT_TRUE(t.ok());
  for (const auto& row : (*t)->rows()) {
    EXPECT_GE(row[1], row[0] / 10);
    EXPECT_LE(row[1], row[0] / 10 + 3);
  }
}

TEST(DatagenTest, RejectsForwardCorrelation) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 5;
  spec.columns = {{"a", 8}, {"b", 8}};
  spec.generators = {ColumnGen::Correlated(1, 1, 0), ColumnGen::Sequential()};
  Rng rng(5);
  EXPECT_FALSE(GenerateTable(spec, &rng).ok());
}

TEST(DatagenTest, RejectsArityMismatch) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 5;
  spec.columns = {{"a", 8}};
  spec.generators = {};
  Rng rng(6);
  EXPECT_FALSE(GenerateTable(spec, &rng).ok());
}

TEST(DatagenTest, ZipfShuffleScattersHotValues) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 10000;
  spec.columns = {{"z", 8}};
  spec.generators = {ColumnGen::Zipf(1000, 1.5, /*shuffle=*/true)};
  Rng rng(7);
  auto t = GenerateTable(spec, &rng);
  ASSERT_TRUE(t.ok());
  // With shuffling, the hottest value is (with overwhelming probability)
  // not rank 1 itself.
  std::map<int64_t, int> counts;
  for (const auto& row : (*t)->rows()) counts[row[0]]++;
  int64_t hottest = 0;
  int max_count = 0;
  for (const auto& [v, c] : counts) {
    if (c > max_count) {
      max_count = c;
      hottest = v;
    }
  }
  EXPECT_GT(max_count, 500);  // skew present
  EXPECT_NE(hottest, 1);      // but remapped away from rank order
}

TEST(DatagenTest, DeterministicForSeed) {
  TableGenSpec spec;
  spec.name = "g";
  spec.num_rows = 100;
  spec.columns = {{"u", 8}};
  spec.generators = {ColumnGen::Uniform(0, 1000)};
  Rng rng1(8), rng2(8);
  auto t1 = GenerateTable(spec, &rng1);
  auto t2 = GenerateTable(spec, &rng2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*t1)->row(i), (*t2)->row(i));
  }
}

}  // namespace
}  // namespace rpe
