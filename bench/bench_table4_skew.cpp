// Table 4: sensitivity to data skew between training and test workloads
// (TPC-H with Zipf z = 0 / 1 / 2; train on two skews, test on the third).
#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  const auto records = TpchVariantRecords("skew");
  RunSensitivityTable(
      "data skew", {"z0", "z1", "z2"}, records,
      "=== Table 4: varying the data skew between test/training sets ===");
  return 0;
}
