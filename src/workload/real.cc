// The two "real-life decision support" workloads of the paper's evaluation,
// rebuilt as synthetic schemas matched to their described shapes:
//
//  Real-1 (paper: 9GB sales DB, 477 queries, 5-8 way joins + nested
//  sub-queries): a sales/reporting snowflake with eight tables.
//
//  Real-2 (paper: 12GB, 632 queries, ~12-way joins): a larger insurance-style
//  snowflake with thirteen tables supporting long join chains.
//
// What matters for the estimator-selection experiments is that these plans
// are structurally out-of-distribution w.r.t. TPC-H/DS (deeper chains,
// different operator mixes), which is what these schemas deliver.
#include <cmath>

#include "workload/build_util.h"
#include "workload/workload.h"

namespace rpe {

namespace {

void AddEdge(SchemaGraph* g, size_t a, const char* ca, size_t b,
             const char* cb) {
  JoinPath e;
  e.table_a = a;
  e.col_a = ca;
  e.table_b = b;
  e.col_b = cb;
  e.fanout_ab = std::max(1.0, g->table_rows[b] / g->table_rows[a]);
  e.fanout_ba = std::max(1.0, g->table_rows[a] / g->table_rows[b]);
  g->edges.push_back(e);
}

// --- Real-1 ------------------------------------------------------------

double R1SalesRows(double sf) { return 4000 * sf; }
double R1InventoryRows(double sf) { return 1600 * sf; }
double R1ProductRows(double sf) { return 250 * sf; }

Status BuildReal1Tables(Catalog* catalog, double sf, double z, Rng* rng) {
  const uint64_t products = ScaledRows(R1ProductRows(sf), 1.0, 40);
  const uint64_t sales = ScaledRows(R1SalesRows(sf), 1.0, 400);
  const uint64_t inventory = ScaledRows(R1InventoryRows(sf), 1.0, 200);

  RPE_RETURN_NOT_OK(TableBuilder("category", 40)
                        .Col("cat_key", 8, ColumnGen::Sequential())
                        .Col("cat_dept", 8, ColumnGen::Uniform(1, 8))
                        .Col("cat_pad", 30, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("product", products)
                        .Col("prod_key", 8, ColumnGen::Sequential())
                        .Col("prod_catkey", 8, ColumnGen::FkUniform(40))
                        .Col("prod_price", 8, ColumnGen::Uniform(1, 5000))
                        .Col("prod_margin", 8, ColumnGen::Correlated(2, 10, 20))
                        .Col("prod_pad", 50, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("geography", 60)
                        .Col("geo_key", 8, ColumnGen::Sequential())
                        .Col("geo_region", 8, ColumnGen::Uniform(1, 10))
                        .Col("geo_pad", 36, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("store_dim", 300)
                        .Col("std_key", 8, ColumnGen::Sequential())
                        .Col("std_geokey", 8, ColumnGen::FkUniform(60))
                        .Col("std_size", 8, ColumnGen::Uniform(1, 5))
                        .Col("std_pad", 40, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("time_dim", 1095)
                        .Col("t_key", 8, ColumnGen::Sequential())
                        .Col("t_month", 8, ColumnGen::Correlated(0, 30, 0))
                        .Col("t_quarter", 8, ColumnGen::Correlated(0, 91, 0))
                        .Col("t_pad", 20, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("promotion_r1", 400)
                        .Col("pm_key", 8, ColumnGen::Sequential())
                        .Col("pm_type", 8, ColumnGen::Zipf(12, 0.9, false))
                        .Col("pm_pad", 28, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("sales_fact", sales)
          .Col("sf_prodkey", 8, ColumnGen::FkZipf(products, z))
          .Col("sf_storekey", 8, ColumnGen::FkZipf(300, z * 0.7))
          .Col("sf_timekey", 8, ColumnGen::FkUniform(1095))
          .Col("sf_promokey", 8, ColumnGen::FkZipf(400, z))
          .Col("sf_amount", 8, ColumnGen::Uniform(1, 10000))
          .Col("sf_units", 8, ColumnGen::Zipf(30, 1.0, false))
          .Col("sf_pad", 16, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("inventory_fact", inventory)
          .Col("inv_prodkey", 8, ColumnGen::FkZipf(products, z * 0.8))
          .Col("inv_storekey", 8, ColumnGen::FkUniform(300))
          .Col("inv_timekey", 8, ColumnGen::FkUniform(1095))
          .Col("inv_onhand", 8, ColumnGen::Uniform(0, 2000))
          .Col("inv_pad", 12, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  return Status::OK();
}

SchemaGraph Real1Graph(double sf) {
  SchemaGraph g;
  g.tables = {"category", "product",     "geography",  "store_dim",
              "time_dim", "promotion_r1", "sales_fact", "inventory_fact"};
  g.table_rows = {40,   R1ProductRows(sf), 60,   300,
                  1095, 400,               R1SalesRows(sf),
                  R1InventoryRows(sf)};
  AddEdge(&g, 0, "cat_key", 1, "prod_catkey");
  AddEdge(&g, 1, "prod_key", 6, "sf_prodkey");
  AddEdge(&g, 2, "geo_key", 3, "std_geokey");
  AddEdge(&g, 3, "std_key", 6, "sf_storekey");
  AddEdge(&g, 4, "t_key", 6, "sf_timekey");
  AddEdge(&g, 5, "pm_key", 6, "sf_promokey");
  AddEdge(&g, 1, "prod_key", 7, "inv_prodkey");
  AddEdge(&g, 3, "std_key", 7, "inv_storekey");
  AddEdge(&g, 4, "t_key", 7, "inv_timekey");
  g.filters = {
      {0, "cat_dept", 1, 8, 0.7},
      {1, "prod_price", 1, 5000, 0.0},
      {2, "geo_region", 1, 10, 0.8},
      {3, "std_size", 1, 5, 0.7},
      {4, "t_month", 0, 36, 0.4},
      {4, "t_quarter", 0, 12, 0.6},
      {5, "pm_type", 1, 12, 0.8},
      {6, "sf_amount", 1, 10000, 0.0},
      {6, "sf_units", 1, 30, 0.3},
      {7, "inv_onhand", 0, 2000, 0.0},
  };
  g.group_cols = {
      {0, "cat_dept"},  {2, "geo_region"}, {3, "std_size"},
      {4, "t_quarter"}, {5, "pm_type"},    {6, "sf_units"},
  };
  return g;
}

// --- Real-2 ------------------------------------------------------------

double R2ClaimsRows(double sf) { return 4500 * sf; }
double R2PolicyRows(double sf) { return 500 * sf; }

Status BuildReal2Tables(Catalog* catalog, double sf, double z, Rng* rng) {
  const uint64_t policies = ScaledRows(R2PolicyRows(sf), 1.0, 100);
  const uint64_t claims = ScaledRows(R2ClaimsRows(sf), 1.0, 500);
  const uint64_t holders = ScaledRows(300 * sf, 1.0, 60);

  RPE_RETURN_NOT_OK(TableBuilder("region2", 40)
                        .Col("rg_key", 8, ColumnGen::Sequential())
                        .Col("rg_zone", 8, ColumnGen::Uniform(1, 6))
                        .Col("rg_pad", 24, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("policyholder", holders)
                        .Col("ph_key", 8, ColumnGen::Sequential())
                        .Col("ph_regionkey", 8, ColumnGen::FkUniform(40))
                        .Col("ph_age", 8, ColumnGen::Uniform(18, 90))
                        .Col("ph_pad", 56, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("agency", 120)
                        .Col("agc_key", 8, ColumnGen::Sequential())
                        .Col("agc_tier", 8, ColumnGen::Uniform(1, 4))
                        .Col("agc_pad", 32, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("agent", 800)
                        .Col("ag_key", 8, ColumnGen::Sequential())
                        .Col("ag_agencykey", 8, ColumnGen::FkUniform(120))
                        .Col("ag_rating", 8, ColumnGen::Uniform(1, 10))
                        .Col("ag_pad", 40, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("product_line", 25)
                        .Col("pl_key", 8, ColumnGen::Sequential())
                        .Col("pl_class", 8, ColumnGen::Uniform(1, 5))
                        .Col("pl_pad", 24, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("product2", 200)
                        .Col("pd_key", 8, ColumnGen::Sequential())
                        .Col("pd_linekey", 8, ColumnGen::FkUniform(25))
                        .Col("pd_premium", 8, ColumnGen::Uniform(100, 5000))
                        .Col("pd_pad", 36, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("date_dim2", 1825)
                        .Col("dd_key", 8, ColumnGen::Sequential())
                        .Col("dd_month", 8, ColumnGen::Correlated(0, 30, 0))
                        .Col("dd_year", 8, ColumnGen::Correlated(0, 365, 0))
                        .Col("dd_pad", 20, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("office", 60)
                        .Col("of_key", 8, ColumnGen::Sequential())
                        .Col("of_regionkey", 8, ColumnGen::FkUniform(40))
                        .Col("of_pad", 28, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("adjuster", 500)
                        .Col("adj_key", 8, ColumnGen::Sequential())
                        .Col("adj_officekey", 8, ColumnGen::FkUniform(60))
                        .Col("adj_grade", 8, ColumnGen::Uniform(1, 6))
                        .Col("adj_pad", 32, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("vendor", 350)
                        .Col("vn_key", 8, ColumnGen::Sequential())
                        .Col("vn_kind", 8, ColumnGen::Zipf(8, 0.9, false))
                        .Col("vn_pad", 30, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(TableBuilder("coverage", 150)
                        .Col("cv_key", 8, ColumnGen::Sequential())
                        .Col("cv_level", 8, ColumnGen::Uniform(1, 5))
                        .Col("cv_pad", 26, ColumnGen::Constant(0))
                        .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("policy", policies)
          .Col("po_key", 8, ColumnGen::Sequential())
          .Col("po_holderkey", 8, ColumnGen::FkZipf(holders, z * 0.6))
          .Col("po_agentkey", 8, ColumnGen::FkZipf(800, z))
          .Col("po_prodkey", 8, ColumnGen::FkUniform(200))
          .Col("po_coveragekey", 8, ColumnGen::FkUniform(150))
          .Col("po_pad", 40, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("claims_fact", claims)
          .Col("cl_policykey", 8, ColumnGen::FkZipf(policies, z))
          .Col("cl_datekey", 8, ColumnGen::FkUniform(1825))
          .Col("cl_adjusterkey", 8, ColumnGen::FkZipf(500, z * 0.8))
          .Col("cl_vendorkey", 8, ColumnGen::FkZipf(350, z))
          .Col("cl_amount", 8, ColumnGen::Uniform(100, 100000))
          .Col("cl_status", 8, ColumnGen::Zipf(6, 1.0, false))
          .Col("cl_pad", 16, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  RPE_RETURN_NOT_OK(
      TableBuilder("payment_fact", ScaledRows(2000 * sf, 1.0, 200))
          .Col("pay_policykey", 8, ColumnGen::FkZipf(policies, z * 0.7))
          .Col("pay_datekey", 8, ColumnGen::FkUniform(1825))
          .Col("pay_amount", 8, ColumnGen::Uniform(10, 5000))
          .Col("pay_pad", 12, ColumnGen::Constant(0))
          .AddTo(catalog, rng));
  return Status::OK();
}

SchemaGraph Real2Graph(double sf) {
  SchemaGraph g;
  g.tables = {"region2",   "policyholder", "agency",    "agent",
              "product_line", "product2",  "date_dim2", "office",
              "adjuster",  "vendor",       "coverage",  "policy",
              "claims_fact", "payment_fact"};
  g.table_rows = {40,  300 * sf, 120,  800, 25,
                  200, 1825,     60,   500, 350,
                  150, R2PolicyRows(sf), R2ClaimsRows(sf), 2000 * sf};
  AddEdge(&g, 0, "rg_key", 1, "ph_regionkey");
  AddEdge(&g, 0, "rg_key", 7, "of_regionkey");
  AddEdge(&g, 1, "ph_key", 11, "po_holderkey");
  AddEdge(&g, 2, "agc_key", 3, "ag_agencykey");
  AddEdge(&g, 3, "ag_key", 11, "po_agentkey");
  AddEdge(&g, 4, "pl_key", 5, "pd_linekey");
  AddEdge(&g, 5, "pd_key", 11, "po_prodkey");
  AddEdge(&g, 10, "cv_key", 11, "po_coveragekey");
  AddEdge(&g, 11, "po_key", 12, "cl_policykey");
  AddEdge(&g, 6, "dd_key", 12, "cl_datekey");
  AddEdge(&g, 7, "of_key", 8, "adj_officekey");
  AddEdge(&g, 8, "adj_key", 12, "cl_adjusterkey");
  AddEdge(&g, 9, "vn_key", 12, "cl_vendorkey");
  AddEdge(&g, 11, "po_key", 13, "pay_policykey");
  AddEdge(&g, 6, "dd_key", 13, "pay_datekey");
  g.filters = {
      {0, "rg_zone", 1, 6, 0.8},
      {1, "ph_age", 18, 90, 0.1},
      {2, "agc_tier", 1, 4, 0.8},
      {3, "ag_rating", 1, 10, 0.5},
      {4, "pl_class", 1, 5, 0.8},
      {5, "pd_premium", 100, 5000, 0.0},
      {6, "dd_month", 0, 60, 0.3},
      {6, "dd_year", 0, 5, 0.6},
      {8, "adj_grade", 1, 6, 0.7},
      {9, "vn_kind", 1, 8, 0.8},
      {10, "cv_level", 1, 5, 0.8},
      {12, "cl_amount", 100, 100000, 0.0},
      {12, "cl_status", 1, 6, 0.8},
      {13, "pay_amount", 10, 5000, 0.0},
  };
  g.group_cols = {
      {0, "rg_zone"},   {2, "agc_tier"}, {4, "pl_class"},
      {6, "dd_year"},   {8, "adj_grade"}, {9, "vn_kind"},
      {10, "cv_level"}, {12, "cl_status"},
  };
  return g;
}

}  // namespace

Result<Workload> BuildReal1Workload(const WorkloadConfig& config) {
  Workload w;
  w.config = config;
  w.catalog = std::make_unique<Catalog>();
  Rng data_rng(config.seed * 48271ULL + 11);
  RPE_RETURN_NOT_OK(
      BuildReal1Tables(w.catalog.get(), config.scale, config.zipf, &data_rng));
  w.design = DesignFor(WorkloadKind::kReal1, config.tuning);
  RPE_RETURN_NOT_OK(ApplyPhysicalDesign(w.catalog.get(), w.design));
  w.graph = Real1Graph(config.scale);

  QueryGenParams params;
  params.min_joins = 4;  // paper: typical query joins 5-8 tables
  params.max_joins = 7;
  params.filter_prob = 0.55;
  params.agg_prob = 0.5;
  params.top_prob = 0.2;
  Rng query_rng(config.seed * 69997ULL + 13);
  RPE_ASSIGN_OR_RETURN(w.queries,
                       GenerateQueries(w.graph, params, config.name + "_q",
                                       config.num_queries, &query_rng));
  return w;
}

Result<Workload> BuildReal2Workload(const WorkloadConfig& config) {
  Workload w;
  w.config = config;
  w.catalog = std::make_unique<Catalog>();
  Rng data_rng(config.seed * 16807ULL + 23);
  RPE_RETURN_NOT_OK(
      BuildReal2Tables(w.catalog.get(), config.scale, config.zipf, &data_rng));
  w.design = DesignFor(WorkloadKind::kReal2, config.tuning);
  RPE_RETURN_NOT_OK(ApplyPhysicalDesign(w.catalog.get(), w.design));
  w.graph = Real2Graph(config.scale);

  QueryGenParams params;
  params.min_joins = 8;  // paper: a typical query involves 12 joins
  params.max_joins = 12;
  params.filter_prob = 0.5;
  params.agg_prob = 0.45;
  params.top_prob = 0.15;
  Rng query_rng(config.seed * 104729ULL + 29);
  RPE_ASSIGN_OR_RETURN(w.queries,
                       GenerateQueries(w.graph, params, config.name + "_q",
                                       config.num_queries, &query_rng));
  return w;
}

}  // namespace rpe
