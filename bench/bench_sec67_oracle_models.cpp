// §6.7: validating the Total GetNext and Bytes Processed models — the two
// idealized progress models evaluated with *exact* cardinalities / byte
// totals (obtained post-execution). The GetNext model should correlate far
// better with (virtual) time than the bytes model, supporting its use as
// the theoretical basis of progress estimation.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Section 6.7: idealized progress models with true "
               "cardinalities ===\n";
  const auto records = AllPaperRecords();

  TablePrinter table({"Model", "avg L1", "avg L2"});
  const auto gn = EvaluateChoices(
      records,
      FixedChoice(records, static_cast<size_t>(EstimatorKind::kOracleGetNext)));
  const auto bytes = EvaluateChoices(
      records,
      FixedChoice(records, static_cast<size_t>(EstimatorKind::kOracleBytes)));
  const auto tgn = EvaluateChoices(
      records, FixedChoice(records, static_cast<size_t>(EstimatorKind::kTgn)));
  table.AddRow({"GetNext model (true N_i)", TablePrinter::Fmt(gn.avg_l1, 4),
                TablePrinter::Fmt(gn.avg_l2, 4)});
  table.AddRow({"Bytes model (true totals)",
                TablePrinter::Fmt(bytes.avg_l1, 4),
                TablePrinter::Fmt(bytes.avg_l2, 4)});
  table.AddRow({"TGN (estimated E_i, reference)",
                TablePrinter::Fmt(tgn.avg_l1, 4),
                TablePrinter::Fmt(tgn.avg_l2, 4)});
  table.Print();
  std::cout << "\nPaper §6.7: GetNext model L1 = 0.062 (L2 0.073); bytes\n"
               "model L1 = 0.12 (L2 0.142) — the GetNext model with exact\n"
               "cardinalities is ~2x more accurate and clearly better than\n"
               "any practical estimator, validating it as the theoretical\n"
               "gold standard.\n";
  return 0;
}
