// Compiled inference layout for trained MART ensembles. A FlatEnsemble
// re-packs a MartModel's pointer-chased per-tree Node vectors into one
// contiguous structure-of-arrays buffer: per-node packed topology words
// (feature id + right-child offset in one int32), split thresholds, leaf
// values, and per-tree roots/depths; nodes in preorder so the left child
// is always the next slot, with the learning rate pre-folded into the
// leaf values. Leaves are self-looping (NaN split, right = self), so
// scoring walks a fixed per-tree depth with no leaf test, and eight trees
// walk concurrently as independent dependency chains to hide load
// latency; trees are walked depth-sorted within 16-tree blocks so the
// chains finish together instead of idling at the block's deepest tree.
// This is what makes the per-candidate scoring of the selection stack
// (selector × pool × observation) cheap enough for continuous
// monitoring. Predictions are bit-exact with MartModel::Predict: leaf
// values land in a block buffer and accumulate in original tree order
// from the bias, so only the walk schedule differs, never the summation
// order.
//
// FlatEnsembleSet packs several models (the per-candidate error
// regressors of EstimatorSelector) into a single buffer for multi-model
// scoring of one feature vector without per-model call overhead.
//
// Storage: every table is a Slab — owned when compiled in memory
// (Compile), borrowed when rebuilt over a zero-copy snapshot mapping
// (FromParts, fed by serving/mmap_arena.h). Scoring reads only through
// the slab views, so both forms score bit-identically. FromParts is the
// untrusted-input gate for borrowed tables: every index a scoring walk
// can follow is bounds-checked there, so a hostile snapshot yields a
// Status, never UB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/slab.h"
#include "common/status.h"
#include "mart/mart.h"

namespace rpe {

namespace flat_internal {

/// QuickScorer-style evaluation tables for one model (Lucchese et al.,
/// SIGIR'15 idiom): per feature, the model's split nodes sorted by
/// threshold; each carries a bitmask clearing its left subtree's leaves.
/// Scoring scans each feature's list while x[f] > threshold (a false
/// node means the walk would go right, abandoning the left subtree) and
/// ANDs the masks into per-tree leaf bitvectors; the exit leaf of every
/// tree is then the lowest surviving bit. Sequential streaming replaces
/// the pointer-chased walk entirely; the chosen leaf — and therefore the
/// scored value — is identical, and leaves accumulate in tree order, so
/// results stay bit-exact with MartModel::Predict. Only usable when every
/// tree has at most 64 leaves (one uint64 bitvector per tree).
struct QuickScorerModel {
  /// Build from `model`; sets usable = false (leaving the store's walk
  /// path in charge) if a tree exceeds 64 leaves.
  static QuickScorerModel Build(const MartModel& model);

  double Score(const double* x, std::vector<uint64_t>* bits_scratch) const;

  bool usable = false;
  double bias = 0.0;
  int32_t num_trees = 0;
  int32_t num_features = 0;  ///< max split feature id + 1

  /// Per feature f: entries [feat_begin[f], feat_begin[f+1]) sorted by
  /// ascending threshold (parallel arrays).
  Slab<uint64_t> feat_begin;
  Slab<double> threshold;
  Slab<int32_t> entry_tree;
  Slab<uint64_t> entry_mask;

  Slab<uint64_t> init_mask;  ///< per tree: one bit per leaf
  Slab<int32_t> leaf_base;   ///< per tree, into leaf_value
  Slab<double> leaf_value;   ///< lr * leaf, left-to-right per tree
};

/// Per-feature evaluation tables merged across ALL models of a set: the
/// feature-f split nodes of every model concatenated and sorted by
/// threshold, so scoring the whole pool scans one merged list per feature
/// behind a single shared feature loop — x[f] is loaded (and its NaN test
/// done) once per feature for the entire set instead of once per model.
/// Bit-exact with scoring each model's own QuickScorerModel: per model the
/// same entry set fires (mask ANDs commute), and leaf values accumulate in
/// the same per-model tree order from the bias. Only built when every
/// model of the set is QuickScorer-usable.
struct MergedQuickScorer {
  static MergedQuickScorer Build(const std::vector<QuickScorerModel>& models);

  /// out[m] = model m's prediction for x; out.size() must equal the model
  /// count. `bits_scratch` is reused across calls (resized to the global
  /// tree count), keeping the hot path allocation-free.
  void ScoreAll(const double* x, std::vector<uint64_t>* bits_scratch,
                std::span<double> out) const;

  /// Rows scored together by PredictAllBatch's vector kernel; the batch
  /// facade tiles any row count into groups of this many.
  static constexpr size_t kBatchRows = 8;

  /// Reusable scratch for PredictAllBatch (SoA feature tile + per-lane
  /// leaf bitvectors); allocation-free after the first call.
  struct BatchScratch {
    std::vector<double> x;          ///< tile: x[f * kBatchRows + lane]
    std::vector<uint64_t> bits;     ///< bits[tree * kBatchRows + lane]
    std::vector<uint64_t> row_bits; ///< ScoreAll scratch for tail rows
  };

  /// Batched ScoreAll, dispatched through common/simd.h: out is row-major,
  /// out[r * num_models + m] = model m's prediction for rows[r] (each row
  /// a feature vector of at least num_features values); out.size() must be
  /// rows.size() * num_models. The AVX2 kernel gathers kBatchRows rows
  /// into an SoA tile and runs the threshold compares and bitmask ANDs
  /// over all lanes at once; per lane the same entries fire and leaves
  /// accumulate in the same order as ScoreAll, so every output double is
  /// bit-identical to the per-row path on every tier
  /// (tests/simd_test.cpp).
  void PredictAllBatch(std::span<const double* const> rows,
                       BatchScratch* scratch, std::span<double> out) const;

  bool usable = false;
  int32_t num_features = 0;  ///< max over models

  /// Per feature f: entries [feat_begin[f], feat_begin[f+1]) sorted by
  /// ascending threshold (parallel arrays); trees are global ids.
  Slab<uint64_t> feat_begin;
  Slab<double> threshold;
  Slab<int32_t> entry_tree;
  Slab<uint64_t> entry_mask;

  Slab<uint64_t> init_mask;  ///< per global tree: one bit per leaf
  Slab<int32_t> leaf_base;   ///< per global tree, into leaf_value
  Slab<double> leaf_value;   ///< concatenated per-model leaf tables
  Slab<int32_t> model_tree_begin;  ///< per model + 1, global tree ids
  Slab<double> bias;               ///< per model
};

/// The shared structure-of-arrays node store; one instance holds every
/// tree of one ensemble (or of a whole model set) back to back.
struct NodeStore {
  /// Append `tree` in preorder; returns its root slot. Leaves carry
  /// lr * value in `leaf` and self-loop (NaN split / right = self).
  int32_t EmitTree(const RegressionTree& tree, double learning_rate);

  /// Build the depth-sorted walk schedule for the tree range [t0, t1)
  /// (one range per model). Call once per range after its EmitTree calls.
  void ScheduleRange(size_t t0, size_t t1);

  /// Walk trees [t0, t1) for `x`, accumulating onto `init` in tree order
  /// (bit-exact with the sequential per-tree sum). [t0, t1) must be a
  /// scheduled range or a kBlock-aligned sub-range of one.
  double Score(const double* x, size_t t0, size_t t1, double init) const;

  /// Feature id (low 10 bits) and the right child's forward distance
  /// (upper 22 bits, preorder ⇒ always in (0, subtree size)) packed so one
  /// 4-byte load fetches a node's topology; the left child is always
  /// slot + 1. Leaves pack feature 0 and distance 0 (right = self).
  static constexpr int kFeatureBits = 10;
  static int32_t PackTopo(int32_t feature, int32_t right_delta) {
    return right_delta << kFeatureBits | feature;
  }

  /// Trees are depth-sorted and leaf-buffered in blocks of this many
  /// trees (two 8-chain groups); PredictBatch tiles must align to it.
  static constexpr size_t kBlock = 16;

  Slab<int32_t> roots;  ///< per tree: root node slot
  Slab<int32_t> depth;  ///< per tree: exact walk length
  /// Walk order: per kBlock-aligned block of each scheduled range, tree
  /// ids sorted by depth so concurrently walked trees have similar
  /// depths. A permutation within each block.
  Slab<int32_t> sched;
  Slab<int32_t> topo;  ///< packed (feature id, right-child delta)
  /// Split threshold; quiet NaN at leaves so any comparison sends the
  /// walk right, i.e. back to the leaf itself.
  Slab<double> split;
  /// learning_rate * leaf value (folding the multiply is bit-exact: FP
  /// multiplication is deterministic, only computed once); 0 elsewhere.
  Slab<double> leaf;

 private:
  struct Emitted {
    int32_t slot;
    int32_t depth;
  };
  Emitted EmitSubtree(const std::vector<RegressionTree::Node>& nodes,
                      int old_idx, double learning_rate);
};

}  // namespace flat_internal

/// \brief One MartModel compiled for fast scoring.
class FlatEnsemble {
 public:
  FlatEnsemble() = default;

  static FlatEnsemble Compile(const MartModel& model);

  /// Bit-exact equivalent of MartModel::Predict.
  double Predict(std::span<const double> features) const;

  /// Score every example of `data`; out.size() must equal
  /// data.num_examples().
  void PredictBatch(const Dataset& data, std::span<double> out) const;

  size_t num_trees() const { return store_.roots.size(); }
  size_t num_nodes() const { return store_.topo.size(); }
  double bias() const { return bias_; }

 private:
  double bias_ = 0.0;
  flat_internal::NodeStore store_;
};

/// \brief Several models packed into one buffer, scored together — the
/// selection-stack hot path (one error regressor per pool candidate).
class FlatEnsembleSet {
 public:
  FlatEnsembleSet() = default;

  static FlatEnsembleSet Compile(const std::vector<MartModel>& models);

  /// The full compiled state, exposed so a snapshot writer can persist it
  /// and the zero-copy loader can rebuild a set over borrowed slabs.
  struct Parts {
    Slab<double> bias;          ///< per model
    Slab<uint64_t> tree_begin;  ///< per model + 1, into store.roots
    flat_internal::NodeStore store;
    std::vector<flat_internal::QuickScorerModel> qs;  ///< per model
    flat_internal::MergedQuickScorer merged;
  };

  /// Rebuild a set from persisted parts (zero-copy snapshot load path).
  /// This is the untrusted-input gate: the slabs may alias raw file bytes,
  /// so every index scoring can reach — tree ranges, walk topology,
  /// schedule permutations, QuickScorer entry/leaf tables — is
  /// bounds-checked against `num_inputs` (the feature-vector width scoring
  /// will be called with) before anything is walked. Returns
  /// InvalidArgument instead of invoking UB on a hostile or truncated
  /// snapshot. Validation is structural only, so a set that passes scores
  /// without further checks; it scores bit-identically to the Compile'd
  /// set its parts were persisted from.
  static Result<FlatEnsembleSet> FromParts(Parts parts, size_t num_inputs);

  /// Read access for the snapshot writer (mirrors Parts).
  const Slab<double>& bias_slab() const { return bias_; }
  const Slab<uint64_t>& tree_begin_slab() const { return tree_begin_; }
  const flat_internal::NodeStore& store() const { return store_; }
  const std::vector<flat_internal::QuickScorerModel>& quickscorers() const {
    return qs_;
  }
  const flat_internal::MergedQuickScorer& merged() const { return merged_; }

  size_t num_models() const { return bias_.size(); }
  size_t num_nodes() const { return store_.topo.size(); }

  /// out[m] = prediction of model m; out.size() must equal num_models().
  /// Bit-exact with calling MartModel::Predict per model. When every model
  /// is QuickScorer-usable, all models are scored behind one shared
  /// feature loop (MergedQuickScorer), touching x once per feature.
  void PredictAll(std::span<const double> features,
                  std::span<double> out) const;

  /// Batched PredictAll over many feature vectors: out is row-major,
  /// out[r * num_models() + m] = model m's prediction for rows[r];
  /// out.size() must be rows.size() * num_models(). When the merged
  /// QuickScorer is usable this runs the SIMD-dispatched batch kernel
  /// (groups of MergedQuickScorer::kBatchRows rows per tile); every
  /// output double is bit-identical to PredictAll on the same row.
  void PredictAllBatch(std::span<const double* const> rows,
                       std::span<double> out) const;

  /// Index of the model with the smallest prediction (first on ties);
  /// requires num_models() > 0. Allocation-free after the first call on
  /// each thread.
  size_t ArgMin(std::span<const double> features) const;

  /// Batched ArgMin: out[r] = ArgMin(rows[r]), scored through
  /// PredictAllBatch (same first-on-ties election, so the chosen indices
  /// are identical to the per-row path at every tier).
  void ArgMinBatch(std::span<const double* const> rows,
                   std::span<size_t> out) const;

 private:
  double ScoreModel(size_t m, const double* x) const;

  Slab<double> bias_;          ///< per model
  Slab<uint64_t> tree_begin_;  ///< per model, index into roots; +1 slot
  flat_internal::NodeStore store_;
  /// QuickScorer tables per model; the scoring path of choice whenever
  /// usable (store_ remains the fallback for >64-leaf trees).
  std::vector<flat_internal::QuickScorerModel> qs_;
  /// Cross-model merged tables: the PredictAll/ArgMin path of choice when
  /// every model is usable (per-model qs_/store_ remain the fallback).
  flat_internal::MergedQuickScorer merged_;
};

}  // namespace rpe
