// Training data containers for the MART learner: a dense feature matrix
// plus per-feature quantile binning (LightGBM-style uint8 bins) that makes
// split search a histogram scan instead of a sort. Bins are stored
// column-major (one contiguous uint8 array per feature), so leaf-histogram
// accumulation streams each feature's bin column sequentially instead of
// striding across rows; HistogramSet holds the per-leaf accumulation slabs
// that split search sweeps. See docs/TRAINING.md for the full pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace rpe {

/// \brief Dense (examples x features) matrix with regression targets.
class Dataset {
 public:
  explicit Dataset(size_t num_features) : num_features_(num_features) {}

  Status AddExample(const std::vector<double>& features, double target);

  size_t num_examples() const { return targets_.size(); }
  size_t num_features() const { return num_features_; }
  double feature(size_t example, size_t f) const {
    return features_[example * num_features_ + f];
  }
  double target(size_t example) const { return targets_[example]; }
  const std::vector<double>& targets() const { return targets_; }

  /// Zero-copy row view — the hot-path accessor: prediction and training
  /// loops read features through this without materializing a vector.
  std::span<const double> ExampleSpan(size_t example) const {
    return {features_.data() + example * num_features_, num_features_};
  }

  /// Row accessor (copy) — convenience for tests.
  std::vector<double> ExampleFeatures(size_t example) const;

 private:
  size_t num_features_;
  std::vector<double> features_;  // row-major
  std::vector<double> targets_;
};

/// \brief Quantile-binned view of a Dataset: every feature value mapped to
/// a uint8 bin id; bin upper boundaries retained as raw thresholds so the
/// trained trees predict directly from raw feature vectors.
///
/// Layout: bins are stored **column-major** — feature f's bin ids for all
/// examples occupy one contiguous slab (`feature_bins(f)`), which is what
/// makes one-pass leaf-histogram accumulation stream sequentially. The
/// per-feature histogram slab geometry (`hist_offset`/`total_bins`) is
/// derived here so HistogramSet can size itself exactly: no bin count is
/// ever assumed, and `max_bins <= 255` is checked at construction (bin ids
/// must fit uint8 with bin `b` meaning "value <= bin_upper(f, b)" for
/// b < num_bins(f) - 1 and the last bin catching the rest).
class BinnedDataset {
 public:
  /// Requires 2 <= max_bins <= 255 (checked): bin ids live in uint8 and
  /// every feature uses at most max_bins of them.
  explicit BinnedDataset(const Dataset& data, int max_bins = 255);

  const Dataset& data() const { return *data_; }
  size_t num_examples() const { return data_->num_examples(); }
  size_t num_features() const { return data_->num_features(); }

  /// Bin id of one example for feature f. Bounds contract: requires
  /// `example < num_examples()` and `f < num_features()` — unchecked on
  /// this hot path. The result is always `< num_bins(f) <= 255`.
  uint8_t bin(size_t example, size_t f) const {
    return bins_[f * data_->num_examples() + example];
  }
  /// Feature f's bin ids for every example, contiguous (the column-major
  /// slab the histogram builder streams).
  std::span<const uint8_t> feature_bins(size_t f) const {
    return {bins_.data() + f * data_->num_examples(),
            data_->num_examples()};
  }
  /// Number of bins actually used for feature f (<= max_bins <= 255).
  size_t num_bins(size_t f) const { return boundaries_[f].size() + 1; }
  /// Raw threshold of bin b for feature f: values <= threshold fall in bins
  /// 0..b. Requires b < num_bins(f) - 1.
  double bin_upper(size_t f, size_t b) const { return boundaries_[f][b]; }

  /// Histogram slab geometry: feature f's histogram occupies entries
  /// [hist_offset(f), hist_offset(f) + num_bins(f)) of a HistogramSet.
  size_t hist_offset(size_t f) const { return hist_offset_[f]; }
  /// Total histogram entries across all features (= hist_offset(nf)).
  size_t total_bins() const { return hist_offset_.back(); }
  /// Largest per-feature bin count (<= 255) — sizes compact per-feature
  /// sweep scratch without any fixed-capacity assumption.
  size_t max_num_bins() const { return max_num_bins_; }

  /// Row-major copy of the bin matrix (`out[example * nf + f]`) — kept
  /// only for layout-equivalence tests and the rescan baseline benchmark;
  /// the training path never materializes it.
  std::vector<uint8_t> RowMajorBins() const;

 private:
  const Dataset* data_;
  std::vector<std::vector<double>> boundaries_;  // per feature, sorted
  std::vector<uint8_t> bins_;     // column-major: feature-contiguous
  std::vector<size_t> hist_offset_;  // per feature + 1, prefix sums
  size_t max_num_bins_ = 0;
};

/// \brief Per-leaf histogram slabs (structure-of-arrays): for feature f and
/// bin b, `sums()[hist_offset(f) + b]` is the residual sum and
/// `counts()[...]` the example count of the leaf's examples whose feature-f
/// value falls in bin b. Sized exactly from the BinnedDataset's slab
/// geometry — there is no fixed 256-bin assumption anywhere.
///
/// The subtraction trick (`SubtractChild`) derives a sibling's histograms
/// from parent − child without touching example data: counts are integers
/// (exact); sums are one FP subtraction per bin, deterministic but not
/// necessarily bit-equal to direct accumulation — which is why split
/// search canonicalizes the winning feature (see tree.cc / TRAINING.md).
class HistogramSet {
 public:
  HistogramSet() = default;
  explicit HistogramSet(const BinnedDataset& data)
      : sum_(data.total_bins(), 0.0), cnt_(data.total_bins(), 0) {}

  size_t size() const { return sum_.size(); }
  std::span<double> sums() { return sum_; }
  std::span<const double> sums() const { return sum_; }
  std::span<uint32_t> counts() { return cnt_; }
  std::span<const uint32_t> counts() const { return cnt_; }

  /// In-place sibling derivation over one slab range [begin, end):
  /// *this := *this − child. Ranges let the caller fuse the subtraction
  /// into its per-feature-block parallel loop.
  void SubtractChild(const HistogramSet& child, size_t begin, size_t end);
  /// Whole-slab convenience form of the range overload.
  void SubtractChild(const HistogramSet& child) {
    SubtractChild(child, 0, size());
  }

 private:
  std::vector<double> sum_;
  std::vector<uint32_t> cnt_;
};

}  // namespace rpe
