// Observability-layer tests (suites are Obs* so the CI TSan job picks
// them up). Registry side: sharded counters/gauges stay exact under
// concurrent hammering, histogram quantiles stay inside the documented
// ~12.5% bucket error against a sorted reference, Prometheus rendering
// and the registry-driven CLI table keep their contracts. Trace side:
// the lock-free ring wraps without losing the recorded-count, spans
// parent through TraceContext, and the slow-request machinery gates on
// the threshold. Scrape side: a real loopback TcpServer answers
// kMetricsDump and HTTP GET /metrics with counters that reconcile
// exactly with what the client offered (ingested + dropped + shed ==
// offered).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/table_printer.h"
#include "exec/executor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/ingest.h"
#include "serving/server.h"
#include "serving/shard_router.h"
#include "serving/wire.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

// ---------------------------------------------------------------------------
// Registry: counters / gauges / ordering

TEST(ObsRegistryTest, ConcurrentIncrementsSumExactly) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("obs_test_hits_total");
  obs::Gauge* gauge = registry.GetGauge("obs_test_depth");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter->Inc();
        gauge->Add(1);
      }
      counter->Inc(5);
      gauge->Add(-int64_t{5});
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * (kPerThread + 5));
  EXPECT_EQ(gauge->Value(),
            static_cast<int64_t>(kThreads * kPerThread) - kThreads * 5);
}

TEST(ObsRegistryTest, FindOrCreateReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("obs_test_total", "first label");
  // Second registration: same object, the first table label wins.
  obs::Counter* b = registry.GetCounter("obs_test_total", "second label");
  EXPECT_EQ(a, b);
  a->Inc(3);
  const std::vector<obs::Sample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "obs_test_total");
  EXPECT_EQ(samples[0].table_label, "first label");
  EXPECT_EQ(samples[0].value, 3.0);
}

TEST(ObsRegistryTest, CollectOrdersOwnedMetricsBeforeCollectors) {
  obs::MetricsRegistry registry;
  // Collector registered FIRST must still render after owned metrics:
  // the CLI table regexes rely on the server-owned rows coming first.
  registry.AddCollector([](std::vector<obs::Sample>* out) {
    out->push_back(obs::Sample::GaugeSample("obs_collected", 7.0, "row b"));
  });
  registry.GetCounter("obs_owned_total", "row a")->Inc();
  const std::vector<obs::Sample> samples = registry.Collect();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "obs_owned_total");
  EXPECT_EQ(samples[1].name, "obs_collected");
}

TEST(ObsRegistryTest, RemovedCollectorStopsExporting) {
  obs::MetricsRegistry registry;
  const int id = registry.AddCollector([](std::vector<obs::Sample>* out) {
    out->push_back(obs::Sample::CounterSample("obs_gone", 1.0));
  });
  EXPECT_EQ(registry.Collect().size(), 1u);
  registry.RemoveCollector(id);
  EXPECT_TRUE(registry.Collect().empty());
}

TEST(ObsRegistryTest, RenderPrometheusEmitsTypedFamilies) {
  obs::MetricsRegistry registry;
  registry.GetCounter("obs_hits_total")->Inc(42);
  registry.GetGauge("obs_depth")->Set(-3);
  registry.AddCollector([](std::vector<obs::Sample>* out) {
    out->push_back(obs::Sample::GaugeSample("obs_tier_info", 1.0, "",
                                            "tier=\"avx2\""));
  });
  registry.GetHistogram("obs_latency_seconds")->Record(1000);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE obs_hits_total counter\nobs_hits_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_depth gauge\nobs_depth -3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_tier_info{tier=\"avx2\"} 1\n"),
            std::string::npos);
  // Histograms render natively: cumulative le buckets plus _sum/_count.
  EXPECT_NE(text.find("# TYPE obs_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("obs_latency_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_latency_seconds_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Registry: the CLI stats table

TEST(ObsTableTest, MetricsTableRendersLabeledRowsOnly) {
  std::vector<obs::Sample> samples;
  samples.push_back(obs::Sample::CounterSample("a_total", 12.0, "row a"));
  samples.push_back(obs::Sample::CounterSample("hidden_total", 5.0));
  samples.push_back(
      obs::Sample::GaugeSample("b_ms", 1.23456, "latency (ms)"));
  ::testing::internal::CaptureStdout();
  MetricsTable(samples).Print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  // Integral values print as integers (scripts compare them with -eq),
  // non-integral values keep 3 decimals; unlabeled samples are not rows.
  EXPECT_NE(out.find("row a"), std::string::npos);
  EXPECT_NE(out.find("| 12 "), std::string::npos);
  EXPECT_NE(out.find("1.235"), std::string::npos);
  EXPECT_EQ(out.find("hidden"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(ObsHistogramTest, QuantilesTrackSortedReferenceWithinBucketError) {
  obs::Histogram hist;
  // Deterministic LCG spanning several octaves (1..~1M ns).
  std::vector<uint64_t> values;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(1 + x % 1000000);
  }
  for (uint64_t v : values) hist.Record(v);
  std::sort(values.begin(), values.end());
  const obs::Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, values.size());
  uint64_t sum = 0;
  for (uint64_t v : values) sum += v;
  EXPECT_EQ(snap.sum, sum);
  for (double q : {0.10, 0.50, 0.90, 0.99}) {
    const double exact = static_cast<double>(
        values[static_cast<size_t>(q * (values.size() - 1))]);
    const double est = snap.Quantile(q);
    // Bucket width is 1/8 of the lower bound: the estimate must stay
    // within ~12.5% (plus a hair for interpolation at the edges).
    EXPECT_NEAR(est / exact, 1.0, 0.13) << "q=" << q;
  }
}

TEST(ObsHistogramTest, SmallValuesLandInExactBuckets) {
  obs::Histogram hist;
  for (uint64_t v = 0; v < obs::Histogram::kSub; ++v) {
    EXPECT_EQ(obs::Histogram::BucketLower(obs::Histogram::BucketIndex(v)),
              v);
    hist.Record(v);
  }
  const obs::Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, obs::Histogram::kSub);
  // Small values get unit-width buckets: every quantile estimate lands
  // within one bucket (+1) of the exact order statistic.
  for (uint32_t i = 0; i < obs::Histogram::kSub; ++i) {
    const double q =
        static_cast<double>(i) / (obs::Histogram::kSub - 1);
    const double exact = static_cast<double>(i);
    const double est = snap.Quantile(q);
    EXPECT_GE(est, exact);
    EXPECT_LE(est, exact + 1.0) << "q=" << q;
  }
}

TEST(ObsHistogramTest, ConcurrentRecordsKeepExactCountAndSum) {
  obs::Histogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t) * 1000 + i % 997);
      }
    });
  }
  for (auto& t : threads) t.join();
  const obs::Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(ObsTraceTest, RingWrapsWithoutLosingTheRecordedCount) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/128);
  const uint64_t before = tracer.events_recorded();
  constexpr uint64_t kSpans = 1000;
  for (uint64_t i = 0; i < kSpans; ++i) {
    tracer.Record("obs.wrap", tracer.NewSpanId(), 0, i * 10, 5, i);
  }
  EXPECT_EQ(tracer.events_recorded() - before, kSpans);
  const std::vector<obs::TraceEventView> events = tracer.Snapshot();
  // The ring holds at most its capacity; lapped slots are skipped, never
  // torn, so every surviving view is fully formed.
  EXPECT_LE(events.size(), 128u);
  EXPECT_GE(events.size(), 64u);
  for (const obs::TraceEventView& e : events) {
    ASSERT_NE(e.name, nullptr);
    EXPECT_STREQ(e.name, "obs.wrap");
    EXPECT_EQ(e.dur_ns, 5u);
  }
  tracer.Disable();
}

TEST(ObsTraceTest, ConcurrentWritersNeverTearASlot) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/64);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const char* name = t % 2 == 0 ? "obs.even" : "obs.odd";
      for (uint64_t i = 0; i < 20000; ++i) {
        tracer.Record(name, tracer.NewSpanId(), 0, i, /*dur_ns=*/t + 1,
                      i);
        if (i % 4096 == 0) {
          for (const obs::TraceEventView& e : tracer.Snapshot()) {
            // A view read while writers lap the ring must still be
            // internally consistent.
            ASSERT_TRUE(std::strcmp(e.name, "obs.even") == 0 ||
                        std::strcmp(e.name, "obs.odd") == 0);
            ASSERT_GE(e.dur_ns, 1u);
            ASSERT_LE(e.dur_ns, kThreads);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  tracer.Disable();
}

TEST(ObsTraceTest, SpansParentThroughTraceContext) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*capacity=*/64);
  const uint64_t root = tracer.NewSpanId();
  {
    obs::TraceContext::Scope scope(root);
    obs::TraceSpan child("obs.child", /*arg=*/9);
  }
  EXPECT_EQ(obs::TraceContext::Current(), 0u);
  bool found = false;
  for (const obs::TraceEventView& e : tracer.Snapshot()) {
    if (std::strcmp(e.name, "obs.child") == 0) {
      found = true;
      EXPECT_EQ(e.parent, root);
      EXPECT_EQ(e.arg, 9u);
    }
  }
  EXPECT_TRUE(found);
  tracer.Disable();
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  const uint64_t before = tracer.events_recorded();
  { obs::TraceSpan span("obs.disabled"); }
  EXPECT_EQ(tracer.events_recorded(), before);
}

TEST(ObsTraceTest, SlowRequestThresholdGatesTheCounter) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetSlowThresholdNs(5000000);
  EXPECT_EQ(tracer.slow_threshold_ns(), 5000000u);
  const uint64_t before = tracer.slow_requests();
  // The serving tier counts a request only when latency >= threshold;
  // mirror its gate here.
  const uint64_t fast = 100, slow = 6000000;
  if (fast >= tracer.slow_threshold_ns()) tracer.CountSlowRequest();
  if (slow >= tracer.slow_threshold_ns()) tracer.CountSlowRequest();
  EXPECT_EQ(tracer.slow_requests() - before, 1u);
  tracer.SetSlowThresholdNs(0);
}

TEST(ObsTraceTest, SlowScratchBreakdownRendersAndResets) {
  obs::SlowScratch::BeginRequest();
  obs::SlowScratch::AddChild("frame.decode", 40000);
  obs::SlowScratch::AddChild("advance.step", 1000000);
  obs::SlowScratch::AddChild("advance.step", 2000000);
  const std::string breakdown = obs::SlowScratch::Breakdown();
  EXPECT_NE(breakdown.find("frame.decode"), std::string::npos);
  EXPECT_NE(breakdown.find("advance.step"), std::string::npos);
  // Breakdown() resets the scratch: a second render is empty.
  EXPECT_TRUE(obs::SlowScratch::Breakdown().empty());
}

// ---------------------------------------------------------------------------
// Loopback scrape: kMetricsDump + HTTP GET /metrics

/// Minimal blocking wire client (mirror of the one in wire_test.cpp).
class ScrapeClient {
 public:
  ~ScrapeClient() { Close(); }
  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr) == 0;
  }
  bool SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }
  Result<WireFrame> Call(const std::string& request) {
    if (!SendRaw(request)) return Status::IOError("send failed");
    while (true) {
      WireFrame frame;
      RPE_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
      if (complete) return frame;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv failed");
      }
      if (n == 0) return Status::IOError("server closed the connection");
      decoder_.Feed(chunk, static_cast<size_t>(n));
    }
  }
  /// Plain HTTP/1.0 GET; returns the full response (headers + body).
  std::string HttpGet(const std::string& path) {
    if (!SendRaw("GET " + path + " HTTP/1.0\r\n\r\n")) return "";
    std::string response;
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      response.append(chunk, static_cast<size_t>(n));
    }
    return response;
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

/// First value of `name` in a Prometheus text exposition (bare or
/// labeled); -1 when absent.
double PromValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    // Line start, and the name ends at a space or '{'.
    const bool line_start = pos == 0 || text[pos - 1] == '\n';
    const size_t end = pos + name.size();
    if (line_start && end < text.size() &&
        (text[end] == ' ' || text[end] == '{')) {
      const size_t sp = text.find(' ', pos);
      if (sp == std::string::npos) return -1.0;
      return std::stod(text.substr(sp + 1));
    }
    pos = end;
  }
  return -1.0;
}

class ObsScrapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    auto root = MakeTableScan("t_fact");
    root->est_rows = 1000.0;
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).ValueOrDie().release();
    auto result = ExecutePlan(*plan_, *catalog_);
    ASSERT_TRUE(result.ok());
    run_ = new QueryRunResult(std::move(result).ValueOrDie());
    MartParams params;
    params.num_trees = 10;
    params.tree.max_leaves = 8;
    params.seed = 7;
    stack_ = std::make_shared<const SelectorStack>(SelectorStack::Train(
        RandomRecords(80, 11), PoolOriginalThree(), params));
  }
  static void TearDownTestSuite() {
    delete run_;
    delete plan_;
    delete catalog_;
    stack_.reset();
    run_ = nullptr;
    plan_ = nullptr;
    catalog_ = nullptr;
  }

  static Catalog* catalog_;
  static PhysicalPlan* plan_;
  static QueryRunResult* run_;
  static std::shared_ptr<const SelectorStack> stack_;
};

Catalog* ObsScrapeTest::catalog_ = nullptr;
PhysicalPlan* ObsScrapeTest::plan_ = nullptr;
QueryRunResult* ObsScrapeTest::run_ = nullptr;
std::shared_ptr<const SelectorStack> ObsScrapeTest::stack_;

TEST_F(ObsScrapeTest, MetricsDumpAndHttpScrapeReconcileExactly) {
  ShardedMonitorService::Options service_options;
  service_options.num_shards = 2;
  ShardedMonitorService service(stack_, service_options);
  RecordIngestQueue queue(/*capacity=*/4);
  TcpServer::Options server_options;
  server_options.metrics_port = 0;  // ephemeral HTTP /metrics listener
  TcpServer server(&service, {run_}, &queue, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.metrics_port(), 0);

  ScrapeClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // One full session so the latency histogram and session counters move.
  auto opened = client.Call(EncodeOpenRequest({0}));
  ASSERT_TRUE(opened.ok() && opened->ok());
  auto open_response = DecodeOpenResponse(opened->payload);
  ASSERT_TRUE(open_response.ok());
  AdvanceRequest step;
  step.session_id = open_response->session_id;
  step.max_steps = kMaxAdvanceSteps;
  auto advanced = client.Call(EncodeAdvanceRequest(step));
  ASSERT_TRUE(advanced.ok() && advanced->ok());
  auto closed = client.Call(EncodeCloseRequest({step.session_id}));
  ASSERT_TRUE(closed.ok() && closed->ok());

  // Offer more records than the queue fits: every record must come back
  // accepted, dropped, or shed — never silently lost.
  uint64_t offered = 0, accepted = 0, dropped = 0, shed = 0;
  const std::vector<PipelineRecord> records = RandomRecords(3, 21);
  for (int i = 0; i < 4; ++i) {
    IngestBatchRequest batch;
    batch.records = records;
    offered += records.size();
    auto response = client.Call(EncodeIngestBatchRequest(batch));
    ASSERT_TRUE(response.ok());
    if (!response->ok()) {
      // kStatusBusy: the whole frame was shed.
      shed += records.size();
      continue;
    }
    auto decoded = DecodeIngestResponse(response->payload);
    ASSERT_TRUE(decoded.ok());
    accepted += decoded->accepted;
    dropped += decoded->dropped;
  }
  EXPECT_EQ(accepted + dropped + shed, offered);

  // Wire-side scrape.
  auto dump = client.Call(EncodeMetricsDumpRequest());
  ASSERT_TRUE(dump.ok() && dump->ok());
  const std::string text = dump->payload;
  EXPECT_EQ(PromValue(text, "rpe_server_wire_sessions_opened_total"), 1.0);
  EXPECT_EQ(PromValue(text, "rpe_server_wire_sessions_closed_total"), 1.0);
  EXPECT_EQ(PromValue(text, "rpe_server_records_ingested_total"),
            static_cast<double>(accepted));
  EXPECT_EQ(PromValue(text, "rpe_server_records_ingest_dropped_total"),
            static_cast<double>(dropped));
  EXPECT_EQ(PromValue(text, "rpe_server_records_ingest_shed_total"),
            static_cast<double>(shed));
  EXPECT_EQ(PromValue(text, "rpe_server_protocol_errors_total"), 0.0);
  EXPECT_EQ(PromValue(text, "rpe_server_io_errors_total"), 0.0);
  // Every answered request records an end-to-end latency.
  EXPECT_GE(PromValue(text, "rpe_server_request_latency_seconds_count"),
            3.0);

  // HTTP-side scrape of the same registry.
  ScrapeClient http;
  ASSERT_TRUE(http.Connect(server.metrics_port()));
  const std::string response = http.HttpGet("/metrics");
  ASSERT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  const size_t body = response.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  EXPECT_EQ(
      PromValue(response.substr(body + 4), "rpe_server_wire_sessions_opened_total"),
      1.0);

  // Unknown paths 404 without disturbing the server.
  ScrapeClient other;
  ASSERT_TRUE(other.Connect(server.metrics_port()));
  EXPECT_NE(other.HttpGet("/other").find("404"), std::string::npos);

  // A nonempty kMetricsDump payload is a protocol error.
  ScrapeClient hostile;
  ASSERT_TRUE(hostile.Connect(server.port()));
  auto bad = hostile.Call(
      EncodeFrame(MsgType::kMetricsDump, 0, std::string_view("x", 1)));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok());

  server.Stop();
  const TcpServerStats stats = server.GetStats();
  EXPECT_EQ(stats.records_ingested + stats.records_ingest_dropped +
                stats.records_ingest_shed,
            offered);
  EXPECT_EQ(stats.protocol_errors, 1u);
}

TEST_F(ObsScrapeTest, ServersWithoutSharedRegistryStayIsolated) {
  ShardedMonitorService::Options service_options;
  service_options.num_shards = 1;
  ShardedMonitorService service(stack_, service_options);
  // Two servers, no shared registry: each registers its counters in a
  // private one, so per-server assertions cannot bleed across tests.
  TcpServer a(&service, {run_}, TcpServer::Options{});
  TcpServer b(&service, {run_}, TcpServer::Options{});
  EXPECT_NE(&a.metrics_registry(), &b.metrics_registry());
  ASSERT_TRUE(a.Start().ok());
  ScrapeClient client;
  ASSERT_TRUE(client.Connect(a.port()));
  auto stats = client.Call(EncodeStatsRequest());
  ASSERT_TRUE(stats.ok() && stats->ok());
  a.Stop();
  EXPECT_EQ(a.GetStats().frames_received, 1u);
  EXPECT_EQ(b.GetStats().frames_received, 0u);
}

}  // namespace
}  // namespace rpe
