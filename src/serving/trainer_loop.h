// TrainerLoop: the retrain→publish half of the online-learning loop. A
// background thread drains record batches from a RecordIngestQueue, folds
// them into a bounded sliding training corpus (oldest records age out),
// and when the retrain thresholds trip it retrains the full SelectorStack
// on the ThreadPool, optionally writes an .rpsn snapshot, and publishes
// the new stack through MonitorService::SwapModels. In-flight sessions
// keep the snapshot they pinned at open; only new sessions see the fresh
// models — the loop never stops traffic.
//
// Retrain triggers (checked after every drained batch):
//   * row count — at least `retrain_min_records` new records since the
//     last retrain (and a corpus of at least `min_corpus`), or
//   * staleness — `max_staleness` elapsed since the last retrain while at
//     least one new record is pending (0 disables the timer).
//
// Failure semantics (see docs/ROBUSTNESS.md): the loop degrades, it never
// stops serving. A failed snapshot write is retried with bounded
// exponential backoff and, when exhausted, counted — the publish still
// goes out. A failed retrain or publish quarantines the loop (exponential
// deferral of the next attempt) while sessions keep scoring on the last
// published generation; the pending-record counters stay set, so the next
// cycle out of quarantine retries, and a success is counted as a
// recovery. Every failure/retry/recovery is an exact counter in
// IngestStats, surfaced through MonitorService::Stats. Stop() completes
// cleanly under any of these faults. The failure edges carry failpoints
// ("trainer.retrain", "trainer.publish", "snapshot.write" — see
// common/failpoint.h) so every path is deterministically testable.
//
// Threading contract: Start spawns the single consumer thread; Stop joins
// it and then performs one final synchronous drain + threshold check so
// every record accepted by the queue before Close/Stop is accounted for
// (pushed == drained). RunOnce is the same single step the thread
// executes, exposed publicly so tests and shutdown paths can drive the
// loop deterministically; it is serialized against the thread. GetStats /
// generation / retrains are thread-safe at any time.
//
// Determinism: training is thread-count-invariant (see MartParams), so
// for a fixed sequence of drained batches the published stacks are
// byte-identical no matter how the loop is scheduled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serving/ingest.h"
#include "serving/monitor_service.h"

namespace rpe {

class TrainerLoop {
 public:
  struct Options {
    /// New records since the last retrain that trip the row-count trigger.
    size_t retrain_min_records = 64;
    /// Never train on fewer than this many corpus records.
    size_t min_corpus = 16;
    /// Sliding-window corpus bound; oldest records age out beyond it.
    size_t max_corpus = 4096;
    /// Max records pulled from the queue per drain.
    size_t drain_batch = 256;
    /// Consumer wake-up period when the queue is idle.
    std::chrono::milliseconds poll_interval{20};
    /// Staleness trigger: retrain after this long with pending records
    /// even if the row-count threshold has not tripped (0 = disabled).
    std::chrono::milliseconds max_staleness{0};
    /// Candidate estimator pool for the retrained selectors.
    std::vector<size_t> pool;
    /// MART training parameters (params.pool selects the worker pool).
    MartParams params;
    /// When non-empty, every retrained stack is also written here as a
    /// binary .rpsn snapshot. A failed write is retried up to
    /// `snapshot_write_retries` times with exponential backoff; exhausting
    /// the retries is counted but never blocks the publish.
    std::string snapshot_path;
    /// Retry attempts after a failed snapshot write (0 = no retries).
    size_t snapshot_write_retries = 3;
    /// Retry attempts after a failed model publish. Exhausting them drops
    /// the retrained stack and leaves the pending counters set, so a later
    /// cycle retrains and retries.
    size_t publish_retries = 3;
    /// First retry delay; doubles per attempt, capped at 64x. Applies to
    /// snapshot-write and publish retries.
    std::chrono::milliseconds retry_backoff{1};
    /// Quarantine after a failed retrain/publish cycle: the next retrain
    /// attempt is deferred by retrain_quarantine * 2^(consecutive failures
    /// - 1), capped at 64x, while the previous generation keeps serving.
    /// 0 disables the deferral (each trigger may retry immediately).
    std::chrono::milliseconds retrain_quarantine{100};
  };

  /// `queue` and `service` must outlive the loop. `service` is any
  /// publish target — a single MonitorService or the sharded router
  /// (serving/shard_router.h), which fans a publish out to every shard in
  /// one generation step. Nothing is trained or published until records
  /// arrive and thresholds trip.
  TrainerLoop(RecordIngestQueue* queue, ModelPublisher* service,
              Options options);
  ~TrainerLoop();  ///< calls Stop()

  TrainerLoop(const TrainerLoop&) = delete;
  TrainerLoop& operator=(const TrainerLoop&) = delete;

  /// Spawn the background consumer thread (idempotent).
  void Start();

  /// Stop the background thread (if running), Close() the queue so live
  /// producers cannot refill it, then drain whatever was accepted and
  /// run one last threshold check. Idempotent; records offered after
  /// Stop are drop-counted by the queue.
  void Stop();

  /// Seed the sliding corpus (e.g. with the records the initial stack was
  /// trained on) without counting toward the retrain threshold. Must be
  /// called before Start.
  void SeedCorpus(std::vector<PipelineRecord> records);

  /// One synchronous consumer step: drain up to drain_batch records,
  /// merge, retrain + publish if a trigger trips. Returns the number of
  /// records drained. Exposed for deterministic tests; safe to call
  /// while the thread runs (steps are serialized).
  size_t RunOnce();

  uint64_t retrains() const;
  /// MonitorService generation of the most recent publish (0 = none yet).
  uint64_t last_swap_generation() const;

  /// Queue counters merged with the loop's retraining counters — the
  /// Stats::ingest payload (wire via MonitorService::SetIngestStatsProvider).
  IngestStats GetStats() const;

 private:
  void ThreadMain();
  /// Fold a drained batch into the sliding corpus (caller holds run_mu_).
  void MergeBatchLocked(std::vector<PipelineRecord>* batch);
  /// Retrain + publish if a trigger trips (caller holds run_mu_).
  void MaybeRetrainLocked();
  /// Record a failed retrain/publish cycle and enter quarantine (caller
  /// holds run_mu_, not stats_mu_).
  void FailCycleLocked(const char* what);

  RecordIngestQueue* const queue_;
  ModelPublisher* const service_;
  const Options options_;

  /// Serializes consumer steps (background thread vs. RunOnce callers).
  mutable std::mutex run_mu_;
  std::deque<PipelineRecord> corpus_;      // guarded by run_mu_
  size_t new_since_retrain_ = 0;           // guarded by run_mu_
  std::chrono::steady_clock::time_point last_retrain_time_;  // run_mu_
  bool has_pending_since_ = false;         // guarded by run_mu_

  /// Consecutive failed retrain/publish cycles; sets the quarantine
  /// deferral and is reset (counting a recovery) by the next success.
  /// Guarded by run_mu_.
  uint64_t consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point quarantine_until_;  // run_mu_

  mutable std::mutex stats_mu_;
  uint64_t retrains_ = 0;
  uint64_t last_swap_generation_ = 0;
  uint64_t retrain_failures_ = 0;
  uint64_t retrain_recoveries_ = 0;
  uint64_t snapshot_write_failures_ = 0;
  uint64_t snapshot_write_retries_ = 0;
  uint64_t publish_failures_ = 0;
  uint64_t publish_retries_ = 0;
  size_t corpus_size_ = 0;
  double last_retrain_ms_ = 0.0;

  std::atomic<bool> stop_{false};
  bool started_ = false;  // guarded by lifecycle_mu_
  std::mutex lifecycle_mu_;
  std::thread thread_;
};

}  // namespace rpe
