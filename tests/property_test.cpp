// Property-based suites (parameterized gtest): engine-wide invariants swept
// across operator shapes, skew levels, tuning levels, memory budgets and
// seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "exec/executor.h"
#include "harness/runner.h"
#include "progress/error.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;

// ---------------------------------------------------------------------------
// Invariants over plan shapes.
// ---------------------------------------------------------------------------

enum class Shape {
  kScan,
  kFilter,
  kHashJoin,
  kIndexNlj,
  kNaiveNlj,
  kMergeJoin,
  kSortAgg,
  kHashAgg,
  kBatchSortNlj,
  kTopFilter,
};

std::unique_ptr<PlanNode> BuildShape(Shape shape) {
  switch (shape) {
    case Shape::kScan:
      return MakeTableScan("t_fact");
    case Shape::kFilter:
      return MakeFilter(MakeTableScan("t_fact"), Predicate::Between(2, 5, 30));
    case Shape::kHashJoin:
      return MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                          1);
    case Shape::kIndexNlj:
      return MakeNestedLoopJoin(MakeTableScan("t_fact"),
                                MakeIndexSeek("t_dim", "d_id"), 1);
    case Shape::kNaiveNlj:
      return MakeNestedLoopJoin(
          MakeTop(MakeTableScan("t_fact"), 120),
          MakeFilter(MakeTableScan("t_dim"), Predicate::EqParam(0)), 1);
    case Shape::kMergeJoin:
      return MakeMergeJoin(MakeSort(MakeTableScan("t_dim"), 0),
                           MakeSort(MakeTableScan("t_fact"), 1), 0, 1);
    case Shape::kSortAgg:
      return MakeStreamAggregate(MakeSort(MakeTableScan("t_fact"), 2), {2});
    case Shape::kHashAgg:
      return MakeHashAggregate(MakeTableScan("t_fact"), {1});
    case Shape::kBatchSortNlj:
      return MakeNestedLoopJoin(
          MakeBatchSort(MakeTableScan("t_fact"), 1, 128),
          MakeIndexSeek("t_dim", "d_id"), 1);
    case Shape::kTopFilter:
      return MakeTop(
          MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 40)), 200);
  }
  return nullptr;
}

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kScan: return "Scan";
    case Shape::kFilter: return "Filter";
    case Shape::kHashJoin: return "HashJoin";
    case Shape::kIndexNlj: return "IndexNlj";
    case Shape::kNaiveNlj: return "NaiveNlj";
    case Shape::kMergeJoin: return "MergeJoin";
    case Shape::kSortAgg: return "SortAgg";
    case Shape::kHashAgg: return "HashAgg";
    case Shape::kBatchSortNlj: return "BatchSortNlj";
    case Shape::kTopFilter: return "TopFilter";
  }
  return "?";
}

class ShapeInvariantTest : public ::testing::TestWithParam<Shape> {
 protected:
  void SetUp() override {
    catalog_ = MakeSmallCatalog();
    auto plan = FinalizePlan(BuildShape(GetParam()), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).ValueOrDie();
    auto run = ExecutePlan(*plan_, *catalog_);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    run_ = std::move(run).ValueOrDie();
  }

  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PhysicalPlan> plan_;
  QueryRunResult run_;
};

TEST_P(ShapeInvariantTest, CountersMonotone) {
  for (size_t oi = 1; oi < run_.observations.size(); ++oi) {
    for (size_t n = 0; n < run_.true_n.size(); ++n) {
      EXPECT_GE(run_.observations[oi].k[n], run_.observations[oi - 1].k[n]);
      EXPECT_GE(run_.observations[oi].bytes_read[n],
                run_.observations[oi - 1].bytes_read[n]);
    }
  }
}

TEST_P(ShapeInvariantTest, BoundsBracketTruth) {
  for (const auto& obs : run_.observations) {
    for (size_t n = 0; n < run_.true_n.size(); ++n) {
      EXPECT_LE(obs.lb[n], run_.true_n[n] + 1e-9);
      EXPECT_GE(obs.ub[n], run_.true_n[n] - 1e-9);
      EXPECT_GE(obs.e[n], obs.lb[n] - 1e-9);
      EXPECT_LE(obs.e[n], obs.ub[n] + 1e-9);
    }
  }
}

TEST_P(ShapeInvariantTest, EveryNodeInExactlyOnePipeline) {
  std::map<int, int> membership;
  for (const auto& p : run_.pipelines) {
    for (int id : p.nodes) membership[id]++;
  }
  for (size_t n = 0; n < plan_->num_nodes(); ++n) {
    EXPECT_EQ(membership[static_cast<int>(n)], 1) << "node " << n;
  }
}

TEST_P(ShapeInvariantTest, DriversAreMembers) {
  for (const auto& p : run_.pipelines) {
    for (int d : p.driver_nodes) {
      EXPECT_TRUE(p.ContainsNode(d));
    }
    EXPECT_FALSE(p.driver_nodes.empty())
        << "pipeline " << p.id << " has no drivers";
  }
}

TEST_P(ShapeInvariantTest, EstimatesInUnitInterval) {
  for (const auto& p : run_.pipelines) {
    if (p.first_obs < 0) continue;
    PipelineView view{&run_, &p};
    for (int e = 0; e < kNumEstimatorKinds; ++e) {
      const auto& est = GetEstimator(static_cast<EstimatorKind>(e));
      for (int oi = p.first_obs; oi <= p.last_obs; ++oi) {
        const double v = est.Estimate(view, static_cast<size_t>(oi));
        EXPECT_GE(v, 0.0) << est.name() << " " << ShapeName(GetParam());
        EXPECT_LE(v, 1.0) << est.name() << " " << ShapeName(GetParam());
      }
    }
  }
}

TEST_P(ShapeInvariantTest, FinalCountersEqualTrueN) {
  const auto& last = run_.observations.back();
  for (size_t n = 0; n < run_.true_n.size(); ++n) {
    EXPECT_DOUBLE_EQ(last.k[n], run_.true_n[n]);
  }
}

TEST_P(ShapeInvariantTest, VirtualTimeAdvances) {
  EXPECT_GT(run_.total_time, 0.0);
  EXPECT_GE(run_.observations.back().vtime, run_.total_time - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, ShapeInvariantTest,
    ::testing::Values(Shape::kScan, Shape::kFilter, Shape::kHashJoin,
                      Shape::kIndexNlj, Shape::kNaiveNlj, Shape::kMergeJoin,
                      Shape::kSortAgg, Shape::kHashAgg, Shape::kBatchSortNlj,
                      Shape::kTopFilter),
    [](const ::testing::TestParamInfo<Shape>& info) {
      return ShapeName(info.param);
    });

// ---------------------------------------------------------------------------
// Workload-level invariants across (kind, skew, tuning).
// ---------------------------------------------------------------------------

using WorkloadParam = std::tuple<WorkloadKind, double, TuningLevel>;

class WorkloadInvariantTest : public ::testing::TestWithParam<WorkloadParam> {
};

TEST_P(WorkloadInvariantTest, AllQueriesPlanAndRun) {
  const auto [kind, zipf, tuning] = GetParam();
  WorkloadConfig config;
  config.kind = kind;
  config.name = "prop";
  config.scale = 1.0;
  config.zipf = zipf;
  config.tuning = tuning;
  config.num_queries = 12;
  config.seed = 1234;
  auto workload = BuildWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();
  auto records = RunWorkload(*workload);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_GT(records->size(), 0u);
  for (const auto& r : *records) {
    for (double e : r.l1) {
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
    for (double f : r.features) {
      EXPECT_TRUE(std::isfinite(f));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadInvariantTest,
    ::testing::Combine(
        ::testing::Values(WorkloadKind::kTpch, WorkloadKind::kTpcds,
                          WorkloadKind::kReal1, WorkloadKind::kReal2),
        ::testing::Values(0.0, 1.0, 2.0),
        ::testing::Values(TuningLevel::kUntuned, TuningLevel::kFullyTuned)),
    [](const ::testing::TestParamInfo<WorkloadParam>& info) {
      std::string name = WorkloadKindName(std::get<0>(info.param));
      name += "_z";
      name += std::to_string(static_cast<int>(std::get<1>(info.param)));
      name += std::get<2>(info.param) == TuningLevel::kUntuned ? "_untuned"
                                                               : "_tuned";
      return name;
    });

// ---------------------------------------------------------------------------
// Memory-budget sweep: spills must preserve results and invariants.
// ---------------------------------------------------------------------------

class MemoryBudgetTest : public ::testing::TestWithParam<double> {};

TEST_P(MemoryBudgetTest, SpillsPreserveJoinResults) {
  auto catalog = MakeSmallCatalog();
  ExecOptions opts;
  opts.memory_limit_bytes = GetParam();
  auto plan = FinalizePlan(
      MakeHashJoin(MakeTableScan("t_fact"), MakeTableScan("t_dim"), 1, 0),
      *catalog);
  ASSERT_TRUE(plan.ok());
  auto run = ExecutePlan(**plan, *catalog, opts);
  ASSERT_TRUE(run.ok());
  // Join output must be memory-budget independent: 1000 fact rows each
  // matching one dim row.
  EXPECT_EQ(run->rows_out, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, MemoryBudgetTest,
                         ::testing::Values(512.0, 4096.0, 65536.0, 2.0e6,
                                           1.0e9));

// ---------------------------------------------------------------------------
// Determinism across seeds: same seed -> identical records.
// ---------------------------------------------------------------------------

class SeedDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedDeterminismTest, RecordsAreReproducible) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kTpch;
  config.name = "det";
  config.scale = 1.0;
  config.zipf = 1.0;
  config.tuning = TuningLevel::kPartiallyTuned;
  config.num_queries = 6;
  config.seed = GetParam();
  auto w1 = BuildWorkload(config);
  auto w2 = BuildWorkload(config);
  ASSERT_TRUE(w1.ok() && w2.ok());
  auto r1 = RunWorkload(*w1);
  auto r2 = RunWorkload(*w2);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_EQ((*r1)[i].features, (*r2)[i].features);
    EXPECT_EQ((*r1)[i].l1, (*r2)[i].l1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminismTest,
                         ::testing::Values(1u, 7u, 42u, 31337u));

}  // namespace
}  // namespace rpe
