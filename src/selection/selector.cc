#include "selection/selector.h"

#include <algorithm>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace rpe {

MartParams EstimatorSelector::DefaultParams() {
  MartParams params;
  params.num_trees = 200;
  params.tree.max_leaves = 30;
  params.learning_rate = 0.1;
  return params;
}

std::vector<double> EstimatorSelector::ProjectFeatures(
    const std::vector<double>& features) const {
  const std::span<const double> s = ProjectSpan(features);
  return std::vector<double>(s.begin(), s.end());
}

std::span<const double> EstimatorSelector::ProjectSpan(
    std::span<const double> features) const {
  if (use_dynamic_) {
    RPE_CHECK_EQ(features.size(), num_inputs_);
    return features;
  }
  RPE_CHECK_GE(features.size(), num_inputs_);
  return features.first(num_inputs_);
}

EstimatorSelector EstimatorSelector::Train(
    const std::vector<PipelineRecord>& records, std::vector<size_t> pool,
    bool use_dynamic_features, const MartParams& params) {
  EstimatorSelector selector;
  selector.pool_ = std::move(pool);
  selector.use_dynamic_ = use_dynamic_features;
  const FeatureSchema& schema = FeatureSchema::Get();
  selector.num_inputs_ = use_dynamic_features
                             ? schema.num_features()
                             : schema.num_static_features();
  RPE_CHECK(!selector.pool_.empty());

  // The per-candidate error regressors are independent (same features,
  // different labels), so they train concurrently; each lands in its own
  // slot and MartModel::Train is itself deterministic, so the result is
  // identical to the sequential loop.
  ThreadPool* workers =
      params.pool != nullptr ? params.pool : &ThreadPool::Global();
  selector.models_.resize(selector.pool_.size());
  workers->ParallelFor(selector.pool_.size(), [&](size_t k) {
    const size_t est = selector.pool_[k];
    Dataset data(selector.num_inputs_);
    for (const auto& r : records) {
      RPE_CHECK_LT(est, r.l1.size());
      RPE_CHECK_OK(
          data.AddExample(selector.ProjectFeatures(r.features), r.l1[est]));
    }
    selector.models_[k] = MartModel::Train(data, params);
  });
  selector.flat_ = FlatEnsembleSet::Compile(selector.models_);
  return selector;
}

Result<EstimatorSelector> EstimatorSelector::FromModels(
    std::vector<size_t> pool, bool use_dynamic_features,
    std::vector<MartModel> models) {
  if (pool.empty()) return Status::InvalidArgument("empty selector pool");
  if (models.size() != pool.size()) {
    return Status::InvalidArgument("selector pool/model count mismatch");
  }
  const FeatureSchema& schema = FeatureSchema::Get();
  for (size_t est : pool) {
    if (est >= static_cast<size_t>(kNumEstimatorKinds)) {
      return Status::InvalidArgument("selector pool entry out of range");
    }
  }
  EstimatorSelector selector;
  selector.pool_ = std::move(pool);
  selector.use_dynamic_ = use_dynamic_features;
  selector.num_inputs_ = use_dynamic_features ? schema.num_features()
                                              : schema.num_static_features();
  // The models come from persisted bytes: a split on a feature beyond the
  // selector's input width would read past the feature vector at scoring
  // time, so it must be an error here, not a crash later.
  for (const MartModel& model : models) {
    for (const RegressionTree& tree : model.trees()) {
      for (const RegressionTree::Node& n : tree.nodes()) {
        if (n.feature >= static_cast<int>(selector.num_inputs_)) {
          return Status::InvalidArgument(
              "selector model splits on feature " +
              std::to_string(n.feature) + ", beyond its " +
              std::to_string(selector.num_inputs_) + " inputs");
        }
      }
    }
  }
  selector.models_ = std::move(models);
  selector.flat_ = FlatEnsembleSet::Compile(selector.models_);
  return selector;
}

Result<EstimatorSelector> EstimatorSelector::FromFlat(
    std::vector<size_t> pool, bool use_dynamic_features, FlatEnsembleSet flat,
    std::vector<std::vector<double>> feature_gains) {
  if (pool.empty()) return Status::InvalidArgument("empty selector pool");
  if (flat.num_models() != pool.size()) {
    return Status::InvalidArgument(
        "selector pool/compiled-model count mismatch");
  }
  if (!feature_gains.empty() && feature_gains.size() != pool.size()) {
    return Status::InvalidArgument("selector pool/feature-gain mismatch");
  }
  for (size_t est : pool) {
    if (est >= static_cast<size_t>(kNumEstimatorKinds)) {
      return Status::InvalidArgument("selector pool entry out of range");
    }
  }
  const FeatureSchema& schema = FeatureSchema::Get();
  EstimatorSelector selector;
  selector.pool_ = std::move(pool);
  selector.use_dynamic_ = use_dynamic_features;
  selector.num_inputs_ = use_dynamic_features ? schema.num_features()
                                              : schema.num_static_features();
  selector.flat_ = std::move(flat);
  selector.flat_gains_ = std::move(feature_gains);
  return selector;
}

std::vector<double> EstimatorSelector::PredictErrors(
    std::span<const double> features) const {
  std::vector<double> predicted(flat_.num_models());
  flat_.PredictAll(ProjectSpan(features), predicted);
  return predicted;
}

size_t EstimatorSelector::Select(std::span<const double> features) const {
  return pool_[flat_.ArgMin(ProjectSpan(features))];
}

size_t EstimatorSelector::SelectForRecord(
    const PipelineRecord& record) const {
  return Select(record.features);
}

void EstimatorSelector::SelectBatch(
    std::span<const std::vector<double>* const> rows,
    std::span<size_t> out) const {
  RPE_CHECK_EQ(out.size(), rows.size());
  if (rows.empty()) return;
  static thread_local std::vector<const double*> ptrs;
  static thread_local std::vector<size_t> choice;
  ptrs.resize(rows.size());
  choice.resize(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    // Same arity contract as Select: ProjectSpan validates each row, and
    // the projected view is a prefix, so only the pointer survives.
    ptrs[r] = ProjectSpan(*rows[r]).data();
  }
  flat_.ArgMinBatch(ptrs, choice);
  for (size_t r = 0; r < rows.size(); ++r) out[r] = pool_[choice[r]];
}

std::vector<double> EstimatorSelector::FeatureImportance() const {
  std::vector<double> gains(num_inputs_, 0.0);
  if (models_.empty()) {
    // FromFlat selectors carry the persisted gains instead of models.
    for (const auto& g : flat_gains_) {
      for (size_t i = 0; i < g.size() && i < gains.size(); ++i) {
        gains[i] += g[i];
      }
    }
    return gains;
  }
  for (const auto& model : models_) {
    const auto& g = model.feature_gains();
    for (size_t i = 0; i < g.size() && i < gains.size(); ++i) {
      gains[i] += g[i];
    }
  }
  return gains;
}

std::vector<size_t> PoolOriginalThree() {
  return {static_cast<size_t>(EstimatorKind::kDne),
          static_cast<size_t>(EstimatorKind::kTgn),
          static_cast<size_t>(EstimatorKind::kLuo)};
}

std::vector<size_t> PoolSix() {
  return {static_cast<size_t>(EstimatorKind::kDne),
          static_cast<size_t>(EstimatorKind::kTgn),
          static_cast<size_t>(EstimatorKind::kLuo),
          static_cast<size_t>(EstimatorKind::kBatchDne),
          static_cast<size_t>(EstimatorKind::kDneSeek),
          static_cast<size_t>(EstimatorKind::kTgnInt)};
}

std::vector<size_t> PoolAll() {
  std::vector<size_t> pool;
  for (int i = 0; i < kNumSelectableEstimators; ++i) {
    pool.push_back(static_cast<size_t>(i));
  }
  return pool;
}

}  // namespace rpe
