#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

namespace rpe {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreads() {
  const char* env = std::getenv("RPE_NUM_THREADS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 0;
}

/// Shared state of one ParallelFor call. Tasks (and the caller) claim
/// indices from `next` until the range is exhausted; `done` counts
/// completed indices so the caller knows when the whole range drained,
/// including indices claimed by workers.
struct ForJob {
  explicit ForJob(size_t total, const std::function<void(size_t)>& body)
      : n(total), fn(body) {}

  void Drain() {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
      if (done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
  }

  const size_t n;
  const std::function<void(size_t)>& fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int total = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(total > 0 ? total - 1 : 0));
  for (int i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_;
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      --idle_;
      if (queue_.empty()) return;  // shutdown with nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<ForJob>(n, fn);
  // Enqueue helpers only for workers that are actually waiting: the
  // caller drains the whole range itself anyway, and a nested
  // ParallelFor issued from a busy pool (every worker occupied by an
  // outer task) would otherwise flood the queue with closures nobody can
  // pop until long after the range is exhausted.
  size_t helpers = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    helpers = std::min({workers_.size(), n - 1, idle_});
    for (size_t i = 0; i < helpers; ++i) {
      // Keep the job alive in the closure: a helper may run after the
      // caller has already returned (it then finds the range exhausted).
      queue_.push_back([job] { job->Drain(); });
    }
  }
  for (size_t i = 0; i < helpers; ++i) cv_.notify_one();
  job->Drain();
  {
    std::unique_lock<std::mutex> lock(job->mu);
    job->cv.wait(lock, [&job] { return job->done.load() == job->n; });
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
std::mutex& GlobalMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  auto& slot = GlobalSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(EnvThreads());
  return *slot;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  GlobalSlot() = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace rpe
