// Ablation (DESIGN.md): which dynamic-feature family buys the accuracy?
// Trains selectors with feature blocks zeroed out — static only, static +
// pairwise divergences, static + time correlations, and the full set — on
// the benchmark workloads, testing on the (out-of-distribution) Real-1 and
// Real-2 workloads.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

namespace {

/// Zero out features with index >= lo and < hi in a copy of the records.
std::vector<PipelineRecord> ZeroFeatureRange(
    const std::vector<PipelineRecord>& records, size_t lo, size_t hi) {
  std::vector<PipelineRecord> out = records;
  for (auto& r : out) {
    for (size_t f = lo; f < hi && f < r.features.size(); ++f) {
      r.features[f] = 0.0;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: dynamic feature families ===\n";
  const auto records = AllPaperRecords();
  std::vector<PipelineRecord> train, test;
  for (const auto& r : records) {
    if (r.workload == "real1" || r.workload == "real2") {
      test.push_back(r);
    } else {
      train.push_back(r);
    }
  }
  std::cout << "train=" << train.size() << " (tpch x3 + tpcds), test="
            << test.size() << " (real1 + real2)\n\n";

  const FeatureSchema& schema = FeatureSchema::Get();
  const size_t s = schema.num_static_features();
  const size_t pairwise_end = s + 3 * kNumMarkers;  // 3 estimator pairs
  const size_t all = schema.num_features();
  const std::vector<size_t> pool = PoolSix();

  struct Variant {
    const char* name;
    size_t zero_lo, zero_hi;   // feature range zeroed out
    bool use_dynamic;
  };
  const Variant variants[] = {
      {"static features only", 0, 0, false},
      {"static + pairwise divergences", pairwise_end, all, true},
      {"static + time correlations", s, pairwise_end, true},
      {"full feature set", 0, 0, true},
  };

  TablePrinter table({"Feature set", "avg L1", "% optimal", ">5x tail"});
  for (const Variant& v : variants) {
    const auto train_v = v.zero_hi > v.zero_lo
                             ? ZeroFeatureRange(train, v.zero_lo, v.zero_hi)
                             : train;
    const auto test_v = v.zero_hi > v.zero_lo
                            ? ZeroFeatureRange(test, v.zero_lo, v.zero_hi)
                            : test;
    const auto eval = TrainAndEvaluate(train_v, test_v, pool, v.use_dynamic,
                                       ExperimentParams());
    // Evaluate against the unmodified records (errors are unchanged by
    // feature zeroing).
    const auto metrics = EvaluateChoices(test, eval.choices, pool);
    table.AddRow({v.name, TablePrinter::Fmt(metrics.avg_l1, 4),
                  TablePrinter::Pct(metrics.pct_optimal),
                  TablePrinter::Pct(metrics.frac_ratio_gt5)});
    std::cerr << "done: " << v.name << "\n";
  }
  table.Print();
  std::cout << "\nExpected: each dynamic family helps over static-only;\n"
               "time-correlation features carry most of the gain (cf. §6.5:\n"
               "six of the ten next selected features were correlation\n"
               "features).\n";
  return 0;
}
