// Skew study: how Zipfian data skew moves the balance of power between
// estimators (the mechanism behind the paper's Table 4). Sweeps z over
// {0, 0.5, 1, 1.5, 2} and prints, per skew level, each estimator's average
// error and win rate.
//
//   $ ./examples/skew_study
#include <iostream>

#include "common/table_printer.h"
#include "harness/runner.h"

using namespace rpe;

int main() {
  const double skews[] = {0.0, 0.5, 1.0, 1.5, 2.0};
  TablePrinter l1_table({"z", "DNE L1", "TGN L1", "LUO L1", "DNESEEK L1",
                         "best-of-all L1"});
  TablePrinter win_table({"z", "DNE wins", "TGN wins", "LUO wins",
                          "DNESEEK wins"});
  for (double z : skews) {
    WorkloadConfig config;
    config.kind = WorkloadKind::kTpch;
    config.name = "skew-study";
    config.scale = 5.0;
    config.zipf = z;
    config.tuning = TuningLevel::kFullyTuned;
    config.num_queries = 80;
    config.seed = 37;
    std::cout << "running z = " << z << " ...\n";
    auto records = BuildAndRun(config);
    if (!records.ok()) {
      std::cerr << records.status().ToString() << "\n";
      return 1;
    }
    auto avg = [&](EstimatorKind kind) {
      return EvaluateChoices(*records,
                             FixedChoice(*records, static_cast<size_t>(kind)))
          .avg_l1;
    };
    const auto oracle = EvaluateChoices(*records, OracleChoice(*records));
    l1_table.AddRow({TablePrinter::Fmt(z, 1),
                     TablePrinter::Fmt(avg(EstimatorKind::kDne), 4),
                     TablePrinter::Fmt(avg(EstimatorKind::kTgn), 4),
                     TablePrinter::Fmt(avg(EstimatorKind::kLuo), 4),
                     TablePrinter::Fmt(avg(EstimatorKind::kDneSeek), 4),
                     TablePrinter::Fmt(oracle.avg_l1, 4)});
    win_table.AddRow(
        {TablePrinter::Fmt(z, 1),
         TablePrinter::Pct(FractionOptimal(
             *records, static_cast<size_t>(EstimatorKind::kDne))),
         TablePrinter::Pct(FractionOptimal(
             *records, static_cast<size_t>(EstimatorKind::kTgn))),
         TablePrinter::Pct(FractionOptimal(
             *records, static_cast<size_t>(EstimatorKind::kLuo))),
         TablePrinter::Pct(FractionOptimal(
             *records, static_cast<size_t>(EstimatorKind::kDneSeek)))});
  }
  std::cout << "\nAverage L1 error by skew factor:\n";
  l1_table.Print();
  std::cout << "\nWin rate (lowest error among all 8 candidates):\n";
  win_table.Print();
  std::cout << "\nExpected: increasing skew hurts cardinality-estimate-based\n"
               "estimators (TGN) and favors driver-node estimators, matching\n"
               "the paper's Table 4 discussion.\n";
  return 0;
}
