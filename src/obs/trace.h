// Per-request tracing for the serving tier. Span ids are minted where a
// frame is decoded (TcpServer::ReadInto), carried through dispatch into
// the shard route, the service Advance/selector scoring, and — on a
// model swap — the TrainerLoop retrain/publish cycle, and recorded into
// a fixed-capacity lock-free ring. The ring dumps as Chrome trace-event
// JSON (`rpe_cli serve-tcp --trace-out`, load it at chrome://tracing or
// ui.perfetto.dev); a request whose root span exceeds the slow-request
// threshold (`--slow-ms`) is additionally logged with a per-child-span
// breakdown, so one slow Advance is attributable without the dump.
//
// Overhead contract: with tracing disabled (the default), a TraceSpan
// costs one relaxed atomic load. Enabled, a span is two monotonic clock
// reads plus one ring-slot write of relaxed atomics — no lock, no
// allocation, and nothing that can perturb scoring/training determinism
// (the clock feeds only telemetry). The ring overwrites oldest-first on
// wrap; every field of a slot is an individual atomic and slots are
// sequence-stamped, so readers never tear a value even while writers
// lap them (a lapped slot is skipped or re-read, TSan-clean by
// construction).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"  // MonotonicNanos / ThisThreadId timebase
#include "common/status.h"

namespace rpe {
namespace obs {

/// \brief One completed span, as read back from the ring.
struct TraceEventView {
  const char* name = nullptr;  ///< static string literal
  uint64_t span = 0;
  uint64_t parent = 0;  ///< 0 = root
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t arg = 0;  ///< site-defined (session id, shard, step count)
  uint32_t tid = 0;
};

/// \brief Process-global trace sink: span-id mint, the lock-free event
/// ring, the slow-request threshold, and the Chrome dump. Enable() is
/// called once by the CLI when --trace-out / --slow-ms is given; every
/// instrumentation site stays a single relaxed load until then.
class Tracer {
 public:
  static Tracer& Global();

  /// Allocate the ring (capacity rounded up to a power of two, min 64)
  /// and open the sink. Idempotent while enabled.
  void Enable(size_t capacity = 1 << 14);
  /// Drop the ring and close the sink (tests).
  void Disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Fresh nonzero span id.
  uint64_t NewSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Record a completed span. No-op when disabled.
  void Record(const char* name, uint64_t span, uint64_t parent,
              uint64_t start_ns, uint64_t dur_ns, uint64_t arg = 0);

  /// Threshold for the slow-request log; 0 disables it.
  void SetSlowThresholdNs(uint64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  uint64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }
  /// Count (and tally) one request over the threshold.
  void CountSlowRequest() {
    slow_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t slow_requests() const {
    return slow_requests_.load(std::memory_order_relaxed);
  }

  /// Spans ever recorded (wrapped slots included).
  uint64_t events_recorded() const {
    return tickets_.load(std::memory_order_relaxed);
  }

  /// Consistent best-effort copy of the ring, oldest order not
  /// guaranteed — sort by start_ns for display.
  std::vector<TraceEventView> Snapshot() const;

  /// Write the ring as Chrome trace-event JSON ({"traceEvents": [...]})
  /// sorted by start time. ts/dur are microseconds.
  Status WriteChromeTrace(const std::string& path) const;

 private:
  struct Slot {
    /// 0 empty; odd = being written; even nonzero = complete ticket*2+2.
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> span{0};
    std::atomic<uint64_t> parent{0};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> arg{0};
    std::atomic<uint32_t> tid{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_{1};
  std::atomic<uint64_t> tickets_{0};
  std::atomic<uint64_t> slow_threshold_ns_{0};
  std::atomic<uint64_t> slow_requests_{0};
  std::unique_ptr<Slot[]> slots_;
  size_t capacity_ = 0;  ///< power of two; stable while enabled
};

/// \brief Thread-local "current span" used to parent child spans across
/// call boundaries without threading ids through every signature: the
/// server scopes the request's root span around dispatch, and the
/// service/selector sites parent to whatever is current.
class TraceContext {
 public:
  static uint64_t Current();

  class Scope {
   public:
    explicit Scope(uint64_t span);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    uint64_t saved_;
  };
};

/// \brief Per-thread scratch aggregating the current request's completed
/// child spans by site name, so the slow-request log can print a
/// breakdown ("decode=40us route=110us advance.step=32x 3.1ms") without
/// searching the ring. BeginRequest resets it; TraceSpan feeds it.
class SlowScratch {
 public:
  static void BeginRequest();
  static void AddChild(const char* name, uint64_t dur_ns);
  /// Render and reset; empty string when nothing was collected.
  static std::string Breakdown();
};

/// \brief RAII span: captures the clock on entry, records on exit with
/// parent = TraceContext::Current() unless overridden. One relaxed load
/// when tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, uint64_t arg = 0);
  TraceSpan(const char* name, uint64_t parent, uint64_t arg);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }
  uint64_t id() const { return id_; }

 private:
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint64_t start_ = 0;
  uint64_t arg_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace rpe
