// Shared work-queue thread pool for training-time parallelism. The core
// primitive is a caller-participating ParallelFor: the calling thread
// always drains the index range itself alongside the workers, so nested
// ParallelFor calls (selector-level over model-level over feature-level)
// can never deadlock — in the worst case the caller simply runs every
// index inline. Results are deterministic as long as each index writes
// only its own output slot and any reduction happens in index order on
// the caller afterwards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rpe {

class ThreadPool {
 public:
  /// \param num_threads total concurrency including the calling thread;
  ///   the pool spawns num_threads - 1 workers. 0 = hardware concurrency.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the participating caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(i) for every i in [0, n). Blocks until all indices complete;
  /// the caller participates. If any invocation throws, the first
  /// exception (in completion order) is rethrown after the range drains.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueue a single task; the returned future carries its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

  /// Process-wide pool. Size comes from RPE_NUM_THREADS when set, else
  /// hardware concurrency. Created on first use.
  static ThreadPool& Global();
  /// Replace the global pool (e.g. the CLI --threads flag). Must not race
  /// with concurrent use of the old pool.
  static void SetGlobalThreads(int num_threads);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  size_t idle_ = 0;  ///< workers currently waiting for a task (under mu_)
  std::vector<std::thread> workers_;
};

}  // namespace rpe
