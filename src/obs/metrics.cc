#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace rpe {
namespace obs {

namespace internal {

uint32_t ThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Histogram buckets
//
// Values < kSub get one exact bucket each. Above, a value with highest
// set bit e (e >= kSubBits) falls into octave block (e - kSubBits + 1)
// and sub-bucket (next kSubBits bits below the leading one), so the
// bucket width is 2^(e - kSubBits) — at most lower_bound / kSub.

uint32_t Histogram::BucketIndex(uint64_t v) {
  if (v < kSub) return static_cast<uint32_t>(v);
  uint32_t e = 63u - static_cast<uint32_t>(__builtin_clzll(v));
  uint32_t sub =
      static_cast<uint32_t>(v >> (e - kSubBits)) & (kSub - 1);
  return (e - kSubBits + 1) * kSub + sub;
}

uint64_t Histogram::BucketLower(uint32_t i) {
  if (i < kSub) return i;
  const uint32_t block = i / kSub;    // >= 1
  const uint32_t sub = i % kSub;
  return static_cast<uint64_t>(kSub + sub) << (block - 1);
}

uint64_t Histogram::BucketUpper(uint32_t i) {
  if (i < kSub) return i + 1;
  const uint32_t block = i / kSub;
  return BucketLower(i) + (uint64_t{1} << (block - 1));
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank with interpolation inside the bucket: rank r in
  // [1, count], find the bucket whose cumulative count reaches r, place
  // the estimate proportionally between its bounds.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  uint64_t cum = 0;
  for (uint32_t i = 0; i < counts.size(); ++i) {
    const uint64_t c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      const double lower = static_cast<double>(Histogram::BucketLower(i));
      const double upper = static_cast<double>(Histogram::BucketUpper(i));
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(c);
      return lower + (upper - lower) * std::min(1.0, frac);
    }
    cum += c;
  }
  return static_cast<double>(Histogram::BucketUpper(
      static_cast<uint32_t>(counts.size()) - 1));
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.counts.assign(kBuckets, 0);
  for (const Shard& sh : shards_) {
    for (uint32_t i = 0; i < kBuckets; ++i) {
      s.counts[i] += sh.counts[i].load(std::memory_order_relaxed);
    }
    s.sum += sh.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : s.counts) s.count += c;
  return s;
}

// ---------------------------------------------------------------------------
// Samples

Sample Sample::CounterSample(std::string name, double value,
                             std::string table_label, std::string labels) {
  Sample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.table_label = std::move(table_label);
  s.value = value;
  s.kind = Kind::kCounter;
  return s;
}

Sample Sample::GaugeSample(std::string name, double value,
                           std::string table_label, std::string labels) {
  Sample s = CounterSample(std::move(name), value, std::move(table_label),
                           std::move(labels));
  s.kind = Kind::kGauge;
  return s;
}

// ---------------------------------------------------------------------------
// Registry

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view table_label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.table_label = std::string(table_label);
    order_.push_back(it->first);
  }
  if (!it->second.counter) it->second.counter = std::make_unique<Counter>();
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view table_label) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    it->second.table_label = std::string(table_label);
    order_.push_back(it->first);
  }
  if (!it->second.gauge) it->second.gauge = std::make_unique<Gauge>();
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end()) {
    it = families_.emplace(std::string(name), Family{}).first;
    order_.push_back(it->first);
  }
  if (!it->second.histogram) {
    it->second.histogram = std::make_unique<Histogram>();
  }
  return it->second.histogram.get();
}

int MetricsRegistry::AddCollector(Collector fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::RemoveCollector(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [id](const auto& c) { return c.first == id; }),
      collectors_.end());
}

std::vector<Sample> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const std::string& name : order_) {
    const Family& fam = families_.at(name);
    if (fam.counter) {
      out.push_back(Sample::CounterSample(
          name, static_cast<double>(fam.counter->Value()),
          fam.table_label));
    }
    if (fam.gauge) {
      out.push_back(Sample::GaugeSample(
          name, static_cast<double>(fam.gauge->Value()), fam.table_label));
    }
  }
  for (const auto& [id, fn] : collectors_) fn(&out);
  return out;
}

namespace {

void AppendValue(std::string* out, double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%" PRId64,
                  static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", v);
  }
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  const std::vector<Sample> samples = Collect();
  std::string out;
  out.reserve(4096);
  std::string last_family;
  for (const Sample& s : samples) {
    if (s.name != last_family) {
      out += "# TYPE " + s.name + " " +
             (s.kind == Sample::Kind::kCounter ? "counter" : "gauge") +
             "\n";
      last_family = s.name;
    }
    out += s.name;
    if (!s.labels.empty()) out += "{" + s.labels + "}";
    out += " ";
    AppendValue(&out, s.value);
    out += "\n";
  }
  // Owned histograms: cumulative buckets at octave granularity (one `le`
  // per power of two touched), in seconds per Prometheus convention —
  // recorded values are nanoseconds.
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : order_) {
    const Family& fam = families_.at(name);
    if (!fam.histogram) continue;
    const Histogram::Snapshot snap = fam.histogram->Snap();
    out += "# TYPE " + name + " histogram\n";
    uint64_t cum = 0;
    uint64_t octave_end = 1;  // exclusive value bound of the octave
    uint64_t in_octave = 0;
    uint32_t top = 0;
    for (uint32_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] != 0) top = i;
    }
    for (uint32_t i = 0; i <= top; ++i) {
      while (Histogram::BucketLower(i) >= octave_end) {
        if (in_octave > 0 || cum > 0) {
          cum += in_octave;
          in_octave = 0;
          out += name + "_bucket{le=\"";
          AppendValue(&out, static_cast<double>(octave_end) / 1e9);
          out += "\"} ";
          AppendValue(&out, static_cast<double>(cum));
          out += "\n";
        }
        octave_end <<= 1;
      }
      in_octave += snap.counts[i];
    }
    cum += in_octave;
    if (snap.count > 0) {
      out += name + "_bucket{le=\"";
      AppendValue(&out, static_cast<double>(octave_end) / 1e9);
      out += "\"} ";
      AppendValue(&out, static_cast<double>(cum));
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    AppendValue(&out, static_cast<double>(snap.count));
    out += "\n" + name + "_sum ";
    AppendValue(&out, static_cast<double>(snap.sum) / 1e9);
    out += "\n" + name + "_count ";
    AppendValue(&out, static_cast<double>(snap.count));
    out += "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace obs
}  // namespace rpe
