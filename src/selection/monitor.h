// ProgressMonitor: the deployed architecture of paper Figure 3. Holds the
// trained static + dynamic selection models and, for a running query,
// produces the live progress report: per pipeline it selects an estimator
// from static features before execution, revises the choice once the
// dynamic features become available at the 20% driver marker (§4.4), and
// combines pipelines into query-level progress (Eq. 5).
//
// The engine in this repository executes queries synchronously, so the
// monitor exposes a *replay* interface over the recorded observation
// stream: ReplayQueryProgress(oi) returns exactly what a live monitor
// would have reported at observation oi using only information available
// at that time.
#pragma once

#include <optional>
#include <vector>

#include "selection/selector.h"

namespace rpe {

/// \brief Live (replayed) progress reporting with online estimator
/// selection.
class ProgressMonitor {
 public:
  /// Both selectors must be trained on the same estimator pool. The static
  /// selector is used before the revision marker; the dynamic one after.
  ProgressMonitor(const EstimatorSelector* static_selector,
                  const EstimatorSelector* dynamic_selector,
                  double revision_marker_pct = 20.0);

  /// Per-pipeline estimator decisions for one run.
  struct PipelineDecision {
    int pipeline_id = 0;
    size_t initial_choice = 0;  ///< SelectableEstimators index (static)
    std::optional<size_t> revised_choice;  ///< set once the marker is hit
    int revision_obs = -1;      ///< observation index of the revision
  };

  /// Decide (and record) the estimator choices for every pipeline of `run`.
  std::vector<PipelineDecision> DecideForRun(const QueryRunResult& run) const;

  /// Batched DecideForRun over many runs: decisions are bit-identical to
  /// calling DecideForRun per run (same selectors, same first-on-ties
  /// argmin), but every static choice scores through one
  /// EstimatorSelector::SelectBatch call and every dynamic revision
  /// through another, so the SIMD tile kernel (common/simd.h) sees full
  /// batches even when each run has only a few pipelines. The serving
  /// tier's session-open and replay paths feed this
  /// (serving/monitor_service.h).
  std::vector<std::vector<PipelineDecision>> DecideForRuns(
      std::span<const QueryRunResult* const> runs) const;

  /// Progress of one pipeline at observation oi as reported live: the
  /// static choice's estimate before the revision point, the revised
  /// choice's estimate afterwards.
  double PipelineProgress(const QueryRunResult& run,
                          const PipelineDecision& decision, size_t oi) const;

  /// Query-level progress at observation oi (estimate-weighted pipeline
  /// combination; completed pipelines report 1, unstarted ones 0).
  double QueryProgressAt(const QueryRunResult& run,
                         const std::vector<PipelineDecision>& decisions,
                         size_t oi) const;

  /// Full replayed progress series (one value per observation).
  std::vector<double> ReplayQueryProgress(const QueryRunResult& run) const;

  /// Average absolute error of the replayed series against true progress
  /// (elapsed virtual time fraction).
  double ReplayL1Error(const QueryRunResult& run) const;

 private:
  const EstimatorSelector* static_selector_;
  const EstimatorSelector* dynamic_selector_;
  double revision_marker_pct_;
};

}  // namespace rpe
