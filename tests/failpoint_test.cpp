// Fault-injection tests: the failpoint registry itself (trigger modes,
// spec parsing, sync hooks), graceful degradation of the online loop
// under injected retrain/snapshot/publish faults (bounded retry +
// backoff, quarantine, exact failure/recovery counters, clean Stop), and
// the mmap copy-fallback paths under injected open/mmap/short-read
// failures — a load either succeeds bit-identically or returns a Status,
// never a partial stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/failpoint.h"
#include "serving/ingest.h"
#include "serving/mmap_arena.h"
#include "serving/monitor_service.h"
#include "serving/snapshot.h"
#include "serving/trainer_loop.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::RandomRecords;

/// Arm a failpoint for the scope of one test; the disarm is exception-
/// and assertion-failure-safe.
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string name, FailPointSpec spec)
      : name_(std::move(name)) {
    FailPoints::Arm(name_, spec);
  }
  ~ScopedFailPoint() { FailPoints::Disarm(name_); }

 private:
  const std::string name_;
};

std::string TempPath(const std::string& name) {
  return std::filesystem::temp_directory_path().string() + "/" + name;
}

// ---------------------------------------------------------------------------
// Registry: trigger modes

TEST(FailPointRegistryTest, UnarmedSitesNeverTrip) {
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.unarmed"));
  EXPECT_EQ(FailPoints::Hits("fp.test.unarmed"), 0u);
  EXPECT_EQ(FailPoints::Trips("fp.test.unarmed"), 0u);
}

TEST(FailPointRegistryTest, AlwaysTripsEveryHitUntilDisarmed) {
  const ScopedFailPoint fp("fp.test.always", FailPointSpec::Always());
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(RPE_INJECT_FAULT("fp.test.always"));
  EXPECT_EQ(FailPoints::Hits("fp.test.always"), 3u);
  EXPECT_EQ(FailPoints::Trips("fp.test.always"), 3u);

  FailPoints::Disarm("fp.test.always");
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.always"));
  // Disarm dropped the counters with the state.
  EXPECT_EQ(FailPoints::Hits("fp.test.always"), 0u);
}

TEST(FailPointRegistryTest, NthTripsExactlyTheNthHitOnce) {
  const ScopedFailPoint fp("fp.test.nth", FailPointSpec::Nth(3));
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.nth"));
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.nth"));
  EXPECT_TRUE(RPE_INJECT_FAULT("fp.test.nth"));
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.nth"));
  EXPECT_EQ(FailPoints::Hits("fp.test.nth"), 4u);
  EXPECT_EQ(FailPoints::Trips("fp.test.nth"), 1u);
}

TEST(FailPointRegistryTest, ProbabilityIsDeterministicInSeed) {
  constexpr int kHits = 64;
  std::array<std::array<bool, kHits>, 2> rounds;
  for (auto& round : rounds) {
    // Re-arming resets the PRNG stream, so both rounds replay the same
    // Bernoulli sequence — the property the fuzz/chaos harnesses rely on
    // to reproduce a failing seed.
    FailPoints::Arm("fp.test.prob", FailPointSpec::Probability(0.5, 42));
    for (int i = 0; i < kHits; ++i) {
      round[static_cast<size_t>(i)] = RPE_INJECT_FAULT("fp.test.prob");
    }
  }
  EXPECT_EQ(rounds[0], rounds[1]);
  const uint64_t trips = FailPoints::Trips("fp.test.prob");
  // p=0.5 over 64 hits: all-or-nothing would mean a broken PRNG.
  EXPECT_GT(trips, 0u);
  EXPECT_LT(trips, static_cast<uint64_t>(kHits));

  FailPoints::Arm("fp.test.prob", FailPointSpec::Probability(0.5, 43));
  std::array<bool, kHits> other;
  for (int i = 0; i < kHits; ++i) {
    other[static_cast<size_t>(i)] = RPE_INJECT_FAULT("fp.test.prob");
  }
  EXPECT_NE(rounds[0], other);  // a different seed is a different stream
  FailPoints::Disarm("fp.test.prob");
}

TEST(FailPointRegistryTest, ObserveCountsHitsAndWakesWaiters) {
  const ScopedFailPoint fp("fp.test.observe", FailPointSpec::Never());
  std::thread hitter([] {
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.observe"));  // never trips
    }
  });
  EXPECT_TRUE(FailPoints::WaitForHits("fp.test.observe", 5,
                                      std::chrono::seconds(30)));
  hitter.join();
  EXPECT_EQ(FailPoints::Hits("fp.test.observe"), 5u);
  EXPECT_EQ(FailPoints::Trips("fp.test.observe"), 0u);

  // A count that is never reached times out instead of hanging.
  EXPECT_FALSE(FailPoints::WaitForHits("fp.test.observe", 6,
                                       std::chrono::milliseconds(10)));
}

TEST(FailPointRegistryTest, ArmedListsNamesAndDisarmAllClears) {
  FailPoints::Arm("fp.test.a", FailPointSpec::Always());
  FailPoints::Arm("fp.test.b", FailPointSpec::Nth(1));
  const auto armed = FailPoints::Armed();
  EXPECT_GE(armed.size(), 2u);
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fp.test.a"), armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "fp.test.b"), armed.end());
  FailPoints::DisarmAll();
  EXPECT_TRUE(FailPoints::Armed().empty());
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.test.a"));
}

// ---------------------------------------------------------------------------
// Registry: RPE_FAILPOINTS spec grammar

TEST(FailPointSpecTest, ParsesEveryModeFromOneList) {
  ASSERT_TRUE(FailPoints::ArmFromSpec("fp.spec.a=always;fp.spec.b=nth:2,"
                                      "fp.spec.c=prob:0.25:seed=9;"
                                      "fp.spec.d=observe")
                  .ok());
  EXPECT_TRUE(RPE_INJECT_FAULT("fp.spec.a"));
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.spec.b"));
  EXPECT_TRUE(RPE_INJECT_FAULT("fp.spec.b"));
  EXPECT_FALSE(RPE_INJECT_FAULT("fp.spec.d"));
  EXPECT_EQ(FailPoints::Hits("fp.spec.d"), 1u);
  EXPECT_EQ(FailPoints::Armed().size(), 4u);
  FailPoints::DisarmAll();
}

TEST(FailPointSpecTest, MalformedSpecsAreInvalidArgument) {
  for (const char* bad :
       {"fp.bad", "=always", "fp.bad=exploded", "fp.bad=nth:0",
        "fp.bad=nth:x", "fp.bad=prob:1.5", "fp.bad=prob:0.5:seed=x",
        "fp.bad=prob:0.5:sd=1"}) {
    const Status st = FailPoints::ArmFromSpec(bad);
    EXPECT_FALSE(st.ok()) << "accepted: " << bad;
    FailPoints::DisarmAll();  // entries before the bad one may have armed
  }
}

// ---------------------------------------------------------------------------
// TrainerLoop degradation (driven deterministically through RunOnce)

MartParams FpTinyParams() {
  MartParams params;
  params.num_trees = 6;
  params.tree.max_leaves = 8;
  params.seed = 7;
  return params;
}

TrainerLoop::Options FpTrainerOptions() {
  TrainerLoop::Options options;
  options.retrain_min_records = 32;
  options.min_corpus = 8;
  options.max_corpus = 256;
  options.pool = PoolOriginalThree();
  options.params = FpTinyParams();
  options.retry_backoff = std::chrono::milliseconds(0);
  options.retrain_quarantine = std::chrono::milliseconds(0);
  return options;
}

std::shared_ptr<const SelectorStack> FpTinyStack() {
  return std::make_shared<const SelectorStack>(SelectorStack::Train(
      RandomRecords(60, 21), PoolOriginalThree(), FpTinyParams()));
}

void PushThresholdBatch(RecordIngestQueue* queue, size_t base) {
  const auto pool = RandomRecords(8, 11);
  for (size_t i = 0; i < 32; ++i) {
    PipelineRecord r = pool[i % pool.size()];
    r.query = "q" + std::to_string(base + i);
    ASSERT_TRUE(queue->Push(std::move(r)));
  }
}

TEST(TrainerLoopFaultTest, InjectedPushFailureCountsAsDrop) {
  const ScopedFailPoint fp("ingest.push", FailPointSpec::Nth(2));
  const auto pool = RandomRecords(2, 3);
  RecordIngestQueue queue(16);
  EXPECT_TRUE(queue.Push(pool[0]));
  EXPECT_FALSE(queue.Push(pool[1]));  // injected: dropped, counted
  EXPECT_TRUE(queue.Push(pool[0]));
  EXPECT_EQ(queue.pushed(), 2u);
  EXPECT_EQ(queue.dropped(), 1u);  // exact accounting, injected or real
}

TEST(TrainerLoopFaultTest, SnapshotWriteRetryRecoversAndCounts) {
  const std::string path = TempPath("rpe_fp_snapshot_retry.rpsn");
  std::remove(path.c_str());
  MonitorService service(FpTinyStack());
  RecordIngestQueue queue(256);
  TrainerLoop::Options options = FpTrainerOptions();
  options.snapshot_path = path;
  TrainerLoop trainer(&queue, &service, options);

  // First write attempt fails, the first backoff retry succeeds.
  const ScopedFailPoint fp("snapshot.write", FailPointSpec::Nth(1));
  PushThresholdBatch(&queue, 0);
  trainer.RunOnce();

  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.snapshot_write_retries, 1u);
  EXPECT_EQ(stats.snapshot_write_failures, 0u);
  EXPECT_EQ(service.model_generation(), 1u);
  // The retried write really landed: the snapshot round-trips.
  EXPECT_TRUE(LoadSelectorStack(path).ok());
  std::remove(path.c_str());
}

TEST(TrainerLoopFaultTest, SnapshotWriteExhaustionNeverBlocksPublish) {
  const std::string path = TempPath("rpe_fp_snapshot_exhaust.rpsn");
  std::remove(path.c_str());
  MonitorService service(FpTinyStack());
  RecordIngestQueue queue(256);
  TrainerLoop::Options options = FpTrainerOptions();
  options.snapshot_path = path;
  options.snapshot_write_retries = 2;
  TrainerLoop trainer(&queue, &service, options);

  const ScopedFailPoint fp("snapshot.write", FailPointSpec::Always());
  PushThresholdBatch(&queue, 0);
  trainer.RunOnce();

  // Losing the on-disk copy is survivable: the publish still went out and
  // the loss is an exact counter, not a log line.
  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.snapshot_write_failures, 1u);
  EXPECT_EQ(stats.snapshot_write_retries, 2u);
  EXPECT_EQ(stats.retrain_failures, 0u);
  EXPECT_EQ(service.model_generation(), 1u);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TrainerLoopFaultTest, RetrainFailureKeepsPreviousGenerationThenHeals) {
  auto initial = FpTinyStack();
  MonitorService service(initial);
  RecordIngestQueue queue(256);
  TrainerLoop trainer(&queue, &service, FpTrainerOptions());

  const ScopedFailPoint fp("trainer.retrain", FailPointSpec::Nth(1));
  PushThresholdBatch(&queue, 0);
  trainer.RunOnce();

  // The failed cycle published nothing: sessions keep the previous stack.
  IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.retrain_failures, 1u);
  EXPECT_EQ(stats.retrains, 0u);
  EXPECT_EQ(service.model_generation(), 0u);
  EXPECT_EQ(service.models().get(), initial.get());

  // The pending counters survived the failure, so the very next cycle
  // (zero quarantine here) retries without fresh records and heals.
  trainer.RunOnce();
  stats = trainer.GetStats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.retrain_recoveries, 1u);
  EXPECT_EQ(stats.retrain_failures, 1u);
  EXPECT_EQ(service.model_generation(), 1u);
}

TEST(TrainerLoopFaultTest, QuarantineDefersRetryAfterFailure) {
  MonitorService service(FpTinyStack());
  RecordIngestQueue queue(256);
  TrainerLoop::Options options = FpTrainerOptions();
  options.retrain_quarantine = std::chrono::hours(1);
  TrainerLoop trainer(&queue, &service, options);

  const ScopedFailPoint fp("trainer.retrain", FailPointSpec::Nth(1));
  PushThresholdBatch(&queue, 0);
  trainer.RunOnce();
  EXPECT_EQ(trainer.GetStats().retrain_failures, 1u);

  // Inside the quarantine window nothing retrains — a persistent fault
  // must not become a training hot loop — and the failure count is exact:
  // one fault, one counted failure, no matter how often the loop runs.
  for (int i = 0; i < 3; ++i) trainer.RunOnce();
  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.retrains, 0u);
  EXPECT_EQ(stats.retrain_failures, 1u);
  EXPECT_EQ(FailPoints::Hits("trainer.retrain"), 1u);
  EXPECT_EQ(service.model_generation(), 0u);
}

TEST(TrainerLoopFaultTest, PublishRetriesThenDropsStackAndHealsLater) {
  auto initial = FpTinyStack();
  MonitorService service(initial);
  RecordIngestQueue queue(256);
  TrainerLoop::Options options = FpTrainerOptions();
  options.publish_retries = 2;
  TrainerLoop trainer(&queue, &service, options);

  {
    const ScopedFailPoint fp("trainer.publish", FailPointSpec::Always());
    PushThresholdBatch(&queue, 0);
    trainer.RunOnce();
    const IngestStats stats = trainer.GetStats();
    EXPECT_EQ(stats.publish_failures, 1u);
    EXPECT_EQ(stats.publish_retries, 2u);
    EXPECT_EQ(stats.retrain_failures, 1u);
    EXPECT_EQ(stats.retrains, 0u);
    EXPECT_EQ(service.model_generation(), 0u);
    EXPECT_EQ(service.models().get(), initial.get());
  }

  // Fault cleared: the retained pending counters drive a retry, the
  // publish lands, and the heal is counted.
  trainer.RunOnce();
  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.retrain_recoveries, 1u);
  EXPECT_EQ(service.model_generation(), 1u);
}

TEST(TrainerLoopFaultTest, PublishRetryBeforeExhaustionSucceeds) {
  MonitorService service(FpTinyStack());
  RecordIngestQueue queue(256);
  TrainerLoop trainer(&queue, &service, FpTrainerOptions());

  // Trips the first attempt only; the first retry publishes.
  const ScopedFailPoint fp("trainer.publish", FailPointSpec::Nth(1));
  PushThresholdBatch(&queue, 0);
  trainer.RunOnce();
  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.publish_retries, 1u);
  EXPECT_EQ(stats.publish_failures, 0u);
  EXPECT_EQ(service.model_generation(), 1u);
}

TEST(TrainerLoopFaultTest, StopCompletesCleanlyUnderPersistentFault) {
  MonitorService service(FpTinyStack());
  RecordIngestQueue queue(256);
  TrainerLoop::Options options = FpTrainerOptions();
  options.poll_interval = std::chrono::milliseconds(2);
  options.retrain_quarantine = std::chrono::hours(1);
  TrainerLoop trainer(&queue, &service, options);

  const ScopedFailPoint fp("trainer.retrain", FailPointSpec::Always());
  trainer.Start();
  const auto pool = RandomRecords(8, 19);
  for (size_t i = 0; i < 80; ++i) {
    PipelineRecord r = pool[i % pool.size()];
    r.query = "q" + std::to_string(i);
    queue.Push(std::move(r));
  }
  ASSERT_TRUE(FailPoints::WaitForHits("trainer.retrain", 1,
                                      std::chrono::seconds(30)));
  trainer.Stop();  // must return despite the wedged retrain path

  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.pushed, 80u);
  EXPECT_EQ(stats.drained, 80u);  // Stop still drains the tail
  EXPECT_GE(stats.retrain_failures, 1u);
  EXPECT_EQ(stats.retrains, 0u);
  EXPECT_EQ(service.model_generation(), 0u);
}

// ---------------------------------------------------------------------------
// Mmap / snapshot read paths under injected failures (the copy-fallback
// satellite): a load either returns the bit-identical stack or a clean
// Status — never a partial stack, never UB.

class MmapFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<PipelineRecord>(RandomRecords(60, 31));
    stack_ = new SelectorStack(
        SelectorStack::Train(*records_, PoolOriginalThree(), FpTinyParams()));
    path_ = new std::string(TempPath("rpe_fp_mmap.rpsn"));
    RPE_CHECK_OK(SaveSelectorStack(*stack_, *path_));
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete records_;
    delete stack_;
    delete path_;
    records_ = nullptr;
    stack_ = nullptr;
    path_ = nullptr;
  }

  static void ExpectScoresMatchOriginal(const SelectorStack& loaded) {
    for (const PipelineRecord& r : *records_) {
      ASSERT_EQ(stack_->static_selector.PredictErrors(r.features),
                loaded.static_selector.PredictErrors(r.features));
      ASSERT_EQ(stack_->dynamic_selector.PredictErrors(r.features),
                loaded.dynamic_selector.PredictErrors(r.features));
    }
  }

  static std::vector<PipelineRecord>* records_;
  static SelectorStack* stack_;
  static std::string* path_;
};

std::vector<PipelineRecord>* MmapFaultTest::records_ = nullptr;
SelectorStack* MmapFaultTest::stack_ = nullptr;
std::string* MmapFaultTest::path_ = nullptr;

TEST_F(MmapFaultTest, InjectedOpenFailureIsACleanStatus) {
  const ScopedFailPoint fp("arena.open", FailPointSpec::Always());
  auto loaded = LoadSelectorStackMmap(*path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(MmapFaultTest, InjectedMmapFailureIsACleanStatus) {
  const ScopedFailPoint fp("arena.mmap", FailPointSpec::Always());
  auto loaded = LoadSelectorStackMmap(*path_);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(MmapFaultTest, InjectedMadviseFailureDegradesToUnprefaultedLoad) {
  // The MADV_WILLNEED prefault hint is advisory: when it fails, the
  // mapping must come up anyway (prefaulted() == false, a warning on
  // stderr) and load the exact same stack — slower, never wronger.
  const ScopedFailPoint fp("arena.madvise", FailPointSpec::Always());
  auto arena = MmapArena::Map(*path_);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_FALSE(arena.ValueOrDie()->prefaulted());
  auto loaded = LoadSelectorStackMmap(*path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->zero_copy);
  ExpectScoresMatchOriginal(*loaded->stack);
}

TEST_F(MmapFaultTest, MadviseHintIsAppliedOnTheCleanPath) {
  auto arena = MmapArena::Map(*path_);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  EXPECT_TRUE(arena.ValueOrDie()->prefaulted());
}

TEST_F(MmapFaultTest, InjectedShortMapIsRejectedNeverPartiallyLoaded) {
  // A mapping that comes up half-length (torn truncation under the
  // reader) must fail container validation — not decode half a stack.
  const ScopedFailPoint fp("arena.short_map", FailPointSpec::Always());
  auto loaded = LoadSelectorStackMmap(*path_);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(MmapFaultTest, InjectedReadFailuresFailTheHeapLoaderCleanly) {
  {
    const ScopedFailPoint fp("snapshot.read", FailPointSpec::Always());
    auto loaded = LoadSelectorStack(*path_);
    EXPECT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }
  {
    // A short read surfaces as corruption (size/CRC), not as IOError and
    // never as a partially-decoded stack.
    const ScopedFailPoint fp("snapshot.read.short", FailPointSpec::Always());
    EXPECT_FALSE(LoadSelectorStack(*path_).ok());
  }
  {
    const ScopedFailPoint fp("snapshot.crc", FailPointSpec::Always());
    EXPECT_FALSE(LoadSelectorStack(*path_).ok());
    EXPECT_FALSE(LoadSelectorStackMmap(*path_).ok());
  }
}

TEST_F(MmapFaultTest, TransientFaultThenRetryLoadsBitIdentically) {
  // First load fails on the injected open fault; the retry (fault spent)
  // must return the exact same scores as an untouched load — transient
  // faults leave no residue.
  const ScopedFailPoint fp("arena.open", FailPointSpec::Nth(1));
  EXPECT_FALSE(LoadSelectorStackMmap(*path_).ok());
  auto retried = LoadSelectorStackMmap(*path_);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(retried->zero_copy);
  ExpectScoresMatchOriginal(*retried->stack);
}

}  // namespace
}  // namespace rpe
