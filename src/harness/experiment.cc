#include "harness/experiment.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace rpe {

SelectionEvaluation TrainAndEvaluate(const std::vector<PipelineRecord>& train,
                                     const std::vector<PipelineRecord>& test,
                                     const std::vector<size_t>& pool,
                                     bool use_dynamic_features,
                                     const MartParams& params) {
  EstimatorSelector selector =
      EstimatorSelector::Train(train, pool, use_dynamic_features, params);
  SelectionEvaluation eval;
  eval.choices.reserve(test.size());
  for (const auto& r : test) {
    eval.choices.push_back(selector.SelectForRecord(r));
  }
  eval.metrics = EvaluateChoices(test, eval.choices, pool);
  return eval;
}

std::string PipelineSignature(const PipelineRecord& record) {
  // The Count_op static features occupy positions op*5 in the layout of
  // FeatureSchema (Count, Card, SelAt, SelAbove, SelBelow per op).
  std::ostringstream sig;
  for (size_t op = 0; op < kNumOpTypes; ++op) {
    const double count = record.features[op * 5];
    sig << static_cast<int>(count) << ":";
  }
  return sig.str();
}

std::vector<int> SelectivityBuckets(const std::vector<PipelineRecord>& records,
                                    size_t min_group) {
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < records.size(); ++i) {
    groups[PipelineSignature(records[i])].push_back(i);
  }
  std::vector<int> buckets(records.size(), -1);
  for (auto& [sig, idxs] : groups) {
    if (idxs.size() < min_group) continue;
    std::sort(idxs.begin(), idxs.end(), [&](size_t a, size_t b) {
      return records[a].total_n < records[b].total_n;
    });
    const size_t third = idxs.size() / 3;
    for (size_t pos = 0; pos < idxs.size(); ++pos) {
      int bucket = 1;
      if (pos < third) {
        bucket = 0;
      } else if (pos >= idxs.size() - third) {
        bucket = 2;
      }
      buckets[idxs[pos]] = bucket;
    }
  }
  return buckets;
}

std::vector<PipelineRecord> FilterByBucket(
    const std::vector<PipelineRecord>& records,
    const std::vector<int>& buckets, int bucket, bool invert) {
  RPE_CHECK_EQ(records.size(), buckets.size());
  std::vector<PipelineRecord> out;
  for (size_t i = 0; i < records.size(); ++i) {
    if (buckets[i] < 0) continue;
    if ((buckets[i] == bucket) != invert) out.push_back(records[i]);
  }
  return out;
}

}  // namespace rpe
