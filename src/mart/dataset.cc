#include "mart/dataset.h"

#include <algorithm>

#include "common/logging.h"

namespace rpe {

Status Dataset::AddExample(const std::vector<double>& features,
                           double target) {
  if (features.size() != num_features_) {
    return Status::InvalidArgument("feature arity mismatch");
  }
  features_.insert(features_.end(), features.begin(), features.end());
  targets_.push_back(target);
  return Status::OK();
}

std::vector<double> Dataset::ExampleFeatures(size_t example) const {
  RPE_CHECK_LT(example, num_examples());
  return {features_.begin() +
              static_cast<ptrdiff_t>(example * num_features_),
          features_.begin() +
              static_cast<ptrdiff_t>((example + 1) * num_features_)};
}

BinnedDataset::BinnedDataset(const Dataset& data, int max_bins)
    : data_(&data) {
  RPE_CHECK_GT(max_bins, 1);
  RPE_CHECK_LE(max_bins, 256);
  const size_t n = data.num_examples();
  const size_t nf = data.num_features();
  boundaries_.resize(nf);
  bins_.resize(n * nf);

  std::vector<double> values(n);
  for (size_t f = 0; f < nf; ++f) {
    for (size_t i = 0; i < n; ++i) values[i] = data.feature(i, f);
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    std::vector<double>& bounds = boundaries_[f];
    if (sorted.size() <= static_cast<size_t>(max_bins)) {
      // One bin per distinct value; boundaries between consecutive values.
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        bounds.push_back(sorted[i]);
      }
    } else {
      // Quantile boundaries over distinct values.
      for (int b = 1; b < max_bins; ++b) {
        const size_t idx =
            std::min(sorted.size() - 1,
                     sorted.size() * static_cast<size_t>(b) /
                         static_cast<size_t>(max_bins));
        const double v = sorted[idx];
        if (bounds.empty() || v > bounds.back()) bounds.push_back(v);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const auto it =
          std::lower_bound(bounds.begin(), bounds.end(), values[i]);
      bins_[i * nf + f] = static_cast<uint8_t>(it - bounds.begin());
    }
  }
}

}  // namespace rpe
