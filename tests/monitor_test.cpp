// ProgressMonitor tests: the online select-then-revise protocol over
// recorded runs.
#include <gtest/gtest.h>

#include "common/simd.h"
#include "harness/runner.h"
#include "selection/monitor.h"

namespace rpe {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorkloadConfig config;
    config.kind = WorkloadKind::kTpch;
    config.name = "monitor-test";
    config.scale = 2.0;
    config.zipf = 1.0;
    config.tuning = TuningLevel::kFullyTuned;
    config.num_queries = 50;
    config.seed = 55;
    auto workload = BuildWorkload(config);
    ASSERT_TRUE(workload.ok());
    workload_ = new Workload(std::move(workload).ValueOrDie());
    auto records = RunWorkload(*workload_);
    ASSERT_TRUE(records.ok());

    MartParams params;
    params.num_trees = 50;
    params.tree.max_leaves = 16;
    static_selector_ = new EstimatorSelector(EstimatorSelector::Train(
        *records, PoolSix(), /*use_dynamic=*/false, params));
    dynamic_selector_ = new EstimatorSelector(EstimatorSelector::Train(
        *records, PoolSix(), /*use_dynamic=*/true, params));
  }
  static void TearDownTestSuite() {
    delete static_selector_;
    delete dynamic_selector_;
    delete workload_;
    static_selector_ = nullptr;
    dynamic_selector_ = nullptr;
    workload_ = nullptr;
  }

  OwnedRun RunOne(size_t query_idx) {
    auto run = RunQuery(*workload_, workload_->queries[query_idx]);
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return std::move(run).ValueOrDie();
  }

  static Workload* workload_;
  static EstimatorSelector* static_selector_;
  static EstimatorSelector* dynamic_selector_;
};

Workload* MonitorTest::workload_ = nullptr;
EstimatorSelector* MonitorTest::static_selector_ = nullptr;
EstimatorSelector* MonitorTest::dynamic_selector_ = nullptr;

TEST_F(MonitorTest, RejectsMismatchedSelectors) {
  EXPECT_DEATH(ProgressMonitor(dynamic_selector_, dynamic_selector_),
               "uses_dynamic_features");
}

TEST_F(MonitorTest, DecisionsCoverAllPipelines) {
  ProgressMonitor monitor(static_selector_, dynamic_selector_);
  auto run = RunOne(0);
  const auto decisions = monitor.DecideForRun(run.result);
  EXPECT_EQ(decisions.size(), run.result.pipelines.size());
  for (const auto& d : decisions) {
    EXPECT_LT(d.initial_choice,
              static_cast<size_t>(kNumSelectableEstimators));
    if (d.revised_choice.has_value()) {
      EXPECT_GE(d.revision_obs, 0);
      EXPECT_LT(*d.revised_choice,
                static_cast<size_t>(kNumSelectableEstimators));
    }
  }
}

TEST_F(MonitorTest, BatchedDecisionsMatchPerRunDecisions) {
  // DecideForRuns is the SIMD-batched entry the serving tier uses at
  // session open; its choices must equal per-run DecideForRun exactly,
  // field for field, at every active tier.
  ProgressMonitor monitor(static_selector_, dynamic_selector_);
  std::vector<OwnedRun> owned;
  owned.reserve(6);
  for (size_t q = 0; q < 6; ++q) owned.push_back(RunOne(q));
  std::vector<const QueryRunResult*> runs;
  for (const OwnedRun& run : owned) runs.push_back(&run.result);
  for (simd::Tier tier : {simd::Tier::kScalar, simd::Tier::kAvx2}) {
    const simd::Tier prev = simd::ActiveTier();
    simd::ForceTier(tier);
    const auto batched = monitor.DecideForRuns(runs);
    simd::ForceTier(prev);
    ASSERT_EQ(batched.size(), runs.size());
    for (size_t r = 0; r < runs.size(); ++r) {
      const auto single = monitor.DecideForRun(*runs[r]);
      ASSERT_EQ(batched[r].size(), single.size());
      for (size_t p = 0; p < single.size(); ++p) {
        EXPECT_EQ(batched[r][p].pipeline_id, single[p].pipeline_id);
        EXPECT_EQ(batched[r][p].initial_choice, single[p].initial_choice);
        EXPECT_EQ(batched[r][p].revised_choice, single[p].revised_choice);
        EXPECT_EQ(batched[r][p].revision_obs, single[p].revision_obs);
      }
    }
  }
}

TEST_F(MonitorTest, ReplaySeriesIsValidProgress) {
  ProgressMonitor monitor(static_selector_, dynamic_selector_);
  for (size_t q = 0; q < 5; ++q) {
    auto run = RunOne(q);
    const auto series = monitor.ReplayQueryProgress(run.result);
    ASSERT_EQ(series.size(), run.result.observations.size());
    for (double p : series) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    // The final report must be (close to) complete.
    EXPECT_GT(series.back(), 0.95);
  }
}

TEST_F(MonitorTest, ReplayErrorIsReasonable) {
  ProgressMonitor monitor(static_selector_, dynamic_selector_);
  double total = 0.0;
  size_t n = 0;
  for (size_t q = 0; q < 10; ++q) {
    auto run = RunOne(q);
    total += monitor.ReplayL1Error(run.result);
    ++n;
  }
  // Average query-level replay error must be far better than a constant
  // 50% reporter (L1 0.25).
  EXPECT_LT(total / static_cast<double>(n), 0.2);
}

TEST_F(MonitorTest, RevisionUsesDynamicChoiceAfterMarker) {
  ProgressMonitor monitor(static_selector_, dynamic_selector_);
  auto run = RunOne(1);
  const auto decisions = monitor.DecideForRun(run.result);
  for (const auto& d : decisions) {
    if (!d.revised_choice.has_value()) continue;
    const Pipeline& p =
        run.result.pipelines[static_cast<size_t>(d.pipeline_id)];
    if (p.first_obs < 0) continue;
    // Progress at an observation after the revision must equal the revised
    // estimator's value.
    const size_t oi = static_cast<size_t>(p.last_obs);
    PipelineView view{&run.result, &p};
    const double expected =
        GetEstimator(static_cast<EstimatorKind>(*d.revised_choice))
            .Estimate(view, oi);
    EXPECT_DOUBLE_EQ(monitor.PipelineProgress(run.result, d, oi), expected);
  }
}

}  // namespace
}  // namespace rpe
