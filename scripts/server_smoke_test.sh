#!/usr/bin/env bash
# End-to-end smoke gate for the TCP serving front-end (wired into ctest
# as `server_smoke` and run in the CI build matrix):
#
#   1. `rpe_cli serve-tcp` starts on an ephemeral port (4 shards) and
#      prints the listening line.
#   2. A closed-loop `rpe_loadgen` burst completes every requested
#      session with zero errors, and its --check reconciliation passes:
#      client opens/completions/steps match the server's StatsResponse
#      counters exactly.
#   3. An open-loop burst against the same server also exits clean.
#   4. SIGTERM drains the server: it exits 0 and its final stats table
#      reports every connection closed and zero protocol/io errors.
#   5. A second server wired for online learning (--retrain-every /
#      --ingest-watermark) runs the saturation legs: an oversized ingest
#      batch is answered busy (shed, never dropped silently), a paced
#      under-watermark stream is accepted in full, and an
#      --ingest-until-swap run observes a published retrain — all with
#      --check reconciling client and server counters exactly.
#   6. The same server's HTTP /metrics scrape (--metrics-port) reconciles
#      exactly with the loadgen JSONs (offered == ingested + dropped +
#      shed), and its --trace-out dump is well-formed Chrome trace JSON
#      with the decode -> route -> advance span chain present.
#
# Usage: server_smoke_test.sh <path-to-rpe_cli> <path-to-rpe_loadgen>
set -u

CLI="${1:?usage: server_smoke_test.sh <rpe_cli> <rpe_loadgen>}"
LOADGEN="${2:?usage: server_smoke_test.sh <rpe_cli> <rpe_loadgen>}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/rpe_server_smoke.XXXXXX")"
SRV_PID=""
SRV2_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  [ -n "$SRV2_PID" ] && kill -9 "$SRV2_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fails=0
note() { printf '%s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*"; fails=$((fails + 1)); }

SRV_OUT="$WORK/server_stdout.txt"
SRV_ERR="$WORK/server_stderr.txt"

# --- start the server on an ephemeral port --------------------------------
"$CLI" serve-tcp --kind tpch --queries 10 --scale 2 --shards 4 --trees 10 \
  >"$SRV_OUT" 2>"$SRV_ERR" &
SRV_PID=$!

# The workload run + training dominate startup; poll for the listening
# line (format pinned by rpe_cli serve-tcp).
PORT=""
for _ in $(seq 1 600); do
  if ! kill -0 "$SRV_PID" 2>/dev/null; then
    fail "server died during startup: $(cat "$SRV_ERR")"
    exit 1
  fi
  PORT="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$SRV_OUT" | head -n 1)"
  [ -n "$PORT" ] && break
  sleep 0.5
done
if [ -z "$PORT" ]; then
  fail "server never printed its listening line: $(cat "$SRV_ERR")"
  exit 1
fi
note "server up on port $PORT"

# --- closed-loop burst with exact reconciliation --------------------------
LG_OUT="$WORK/loadgen_closed.json"
if ! "$LOADGEN" --port "$PORT" --connections 8 --sessions 48 --steps 32 \
    --check >"$LG_OUT" 2>"$WORK/loadgen_closed_err.txt"; then
  fail "closed-loop loadgen failed: $(cat "$WORK/loadgen_closed_err.txt")"
fi
JSON="$(tail -n 1 "$LG_OUT")"
case "$JSON" in
  *'"sessions_completed":48'*) ;;
  *) fail "closed-loop run did not complete 48 sessions: $JSON" ;;
esac
case "$JSON" in
  *'"errors":0'*) ;;
  *) fail "closed-loop run reported errors: $JSON" ;;
esac
grep -q "counters reconcile exactly" "$WORK/loadgen_closed_err.txt" \
  || fail "closed-loop reconciliation line missing"

# --- open-loop burst (fixed arrival rate) ---------------------------------
if ! "$LOADGEN" --port "$PORT" --connections 4 --sessions 20 --steps 16 \
    --rate 200 >"$WORK/loadgen_open.json" \
    2>"$WORK/loadgen_open_err.txt"; then
  fail "open-loop loadgen failed: $(cat "$WORK/loadgen_open_err.txt")"
fi
case "$(tail -n 1 "$WORK/loadgen_open.json")" in
  *'"sessions_completed":20'*) ;;
  *) fail "open-loop run did not complete 20 sessions" ;;
esac

# --- SIGTERM drains to exit 0 ---------------------------------------------
kill -TERM "$SRV_PID"
SRV_RC=0
wait "$SRV_PID" || SRV_RC=$?
SRV_PID=""
[ "$SRV_RC" -eq 0 ] || fail "server exited $SRV_RC after SIGTERM"

table_value() {  # table_value <row-label-regex>
  awk -F'|' "/$1/ {gsub(/ /,\"\",\$3); print \$3}" "$SRV_OUT" | head -n 1
}
ACCEPTED="$(table_value 'connections accepted')"
CLOSED="$(table_value 'connections closed')"
PROTO_ERRS="$(table_value 'protocol errors')"
IO_ERRS="$(table_value 'io errors')"
OPENED="$(table_value 'sessions opened')"
COMPLETED="$(table_value 'sessions completed')"
[ -n "$ACCEPTED" ] && [ "$ACCEPTED" = "$CLOSED" ] \
  || fail "drain left connections open (accepted=$ACCEPTED closed=$CLOSED)"
[ "$PROTO_ERRS" = "0" ] || fail "protocol errors: $PROTO_ERRS"
[ "$IO_ERRS" = "0" ] || fail "io errors: $IO_ERRS"
# 48 closed-loop + 20 open-loop sessions, all driven to completion.
[ "$OPENED" = "68" ] || fail "server counted $OPENED opens, expected 68"
[ "$COMPLETED" = "68" ] \
  || fail "server counted $COMPLETED completions, expected 68"

# --- online-loop server: ingest → retrain → hot swap ----------------------
SRV2_OUT="$WORK/server2_stdout.txt"
SRV2_ERR="$WORK/server2_stderr.txt"
TRACE_OUT="$WORK/trace.json"
"$CLI" serve-tcp --kind tpch --queries 10 --scale 2 --shards 2 --trees 10 \
  --retrain-every 64 --ingest-watermark 16 \
  --metrics-port 0 --trace-out "$TRACE_OUT" \
  >"$SRV2_OUT" 2>"$SRV2_ERR" &
SRV2_PID=$!
PORT2=""
for _ in $(seq 1 600); do
  if ! kill -0 "$SRV2_PID" 2>/dev/null; then
    fail "online server died during startup: $(cat "$SRV2_ERR")"
    exit 1
  fi
  PORT2="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$SRV2_OUT" | head -n 1)"
  [ -n "$PORT2" ] && break
  sleep 0.5
done
if [ -z "$PORT2" ]; then
  fail "online server never printed its listening line: $(cat "$SRV2_ERR")"
  exit 1
fi
note "online server up on port $PORT2"
MPORT="$(sed -n 's/^metrics on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
         "$SRV2_OUT" | head -n 1)"
[ -n "$MPORT" ] || fail "online server never printed its metrics line"

# Saturation: every batch is bigger than the watermark, so every record is
# answered busy — shed exactly, dropped never — and --check still passes.
# (Runs first: nothing enters the queue, so the trainer stays idle and the
# later legs see deterministic admission decisions.)
if ! "$LOADGEN" --port "$PORT2" --sessions 0 --connections 1 \
    --ingest-records 64 --ingest-batch 32 --check \
    >"$WORK/loadgen_shed.json" 2>"$WORK/loadgen_shed_err.txt"; then
  fail "saturation loadgen failed: $(cat "$WORK/loadgen_shed_err.txt")"
fi
JSON="$(tail -n 1 "$WORK/loadgen_shed.json")"
case "$JSON" in
  *'"ingest_shed":64'*) ;;
  *) fail "oversized batches were not all answered busy: $JSON" ;;
esac
case "$JSON" in
  *'"ingest_accepted":0'*) ;;
  *) fail "oversized batches were partially accepted: $JSON" ;;
esac

# Recovery: paced under-watermark batches are accepted in full — the busy
# state disappears once the offered load fits the queue again.
if ! "$LOADGEN" --port "$PORT2" --sessions 0 --connections 1 \
    --ingest-records 40 --ingest-batch 8 --ingest-rate 50 --check \
    >"$WORK/loadgen_recover.json" 2>"$WORK/loadgen_recover_err.txt"; then
  fail "recovery loadgen failed: $(cat "$WORK/loadgen_recover_err.txt")"
fi
JSON="$(tail -n 1 "$WORK/loadgen_recover.json")"
case "$JSON" in
  *'"ingest_accepted":40'*) ;;
  *) fail "under-watermark stream was not accepted in full: $JSON" ;;
esac
case "$JSON" in
  *'"ingest_shed":0'*) ;;
  *) fail "under-watermark stream was shed: $JSON" ;;
esac

# Online loop end to end: session traffic + ingest until a retrain is
# published mid-run, with exact client/server reconciliation.
if ! "$LOADGEN" --port "$PORT2" --connections 2 --sessions 8 --steps 16 \
    --ingest-rate 400 --ingest-batch 8 --ingest-until-swap --check \
    >"$WORK/loadgen_swap.json" 2>"$WORK/loadgen_swap_err.txt"; then
  fail "online-loop loadgen failed: $(cat "$WORK/loadgen_swap_err.txt")"
fi
JSON="$(tail -n 1 "$WORK/loadgen_swap.json")"
case "$JSON" in
  *'"swap_observed":true'*) ;;
  *) fail "online-loop run never observed a model swap: $JSON" ;;
esac
case "$JSON" in
  *'"errors":0'*) ;;
  *) fail "online-loop run reported errors: $JSON" ;;
esac
grep -q "counters reconcile exactly" "$WORK/loadgen_swap_err.txt" \
  || fail "online-loop reconciliation line missing"

# Scrape leg: the HTTP /metrics view of the same counters --check just
# reconciled must agree with the loadgen JSONs exactly — every record
# offered over the wire is ingested, dropped, or shed, never lost.
SCRAPE="$WORK/scrape.prom"
if ! curl -fsS --max-time 10 "http://127.0.0.1:$MPORT/metrics" \
    >"$SCRAPE" 2>"$WORK/curl_err.txt"; then
  fail "curl /metrics scrape failed: $(cat "$WORK/curl_err.txt")"
elif ! python3 - "$SCRAPE" "$WORK/loadgen_shed.json" \
    "$WORK/loadgen_recover.json" "$WORK/loadgen_swap.json" <<'PYEOF'
import json, sys

text = open(sys.argv[1]).read()

def metric(name):
    for line in text.splitlines():
        if line.startswith(name + " ") or line.startswith(name + "{"):
            return float(line.split()[-1])
    raise SystemExit(f"metric {name} missing from the scrape")

offered = accepted = dropped = shed = 0
for path in sys.argv[2:]:
    run = json.loads(open(path).read().splitlines()[-1])
    offered += run["ingest_offered"]
    accepted += run["ingest_accepted"]
    dropped += run["ingest_dropped"]
    shed += run["ingest_shed"]

srv_ingested = metric("rpe_server_records_ingested_total")
srv_dropped = metric("rpe_server_records_ingest_dropped_total")
srv_shed = metric("rpe_server_records_ingest_shed_total")
if srv_ingested + srv_dropped + srv_shed != offered:
    raise SystemExit(
        f"scrape does not reconcile: ingested={srv_ingested} "
        f"dropped={srv_dropped} shed={srv_shed} vs offered={offered}")
if (srv_ingested, srv_dropped, srv_shed) != (accepted, dropped, shed):
    raise SystemExit(
        f"scrape disagrees with loadgen: server=({srv_ingested}, "
        f"{srv_dropped}, {srv_shed}) client=({accepted}, {dropped}, {shed})")
if metric("rpe_server_request_latency_seconds_count") <= 0:
    raise SystemExit("request latency histogram never recorded")
if metric("rpe_retrains_total") <= 0:
    raise SystemExit("scrape shows zero retrains after an observed swap")
for required in ("rpe_server_frames_received_total",
                 "rpe_sessions_completed_total", "rpe_model_generation",
                 "rpe_ingest_queue_depth", "rpe_simd_tier_info",
                 "rpe_trace_spans_total"):
    metric(required)
print("scrape reconciles with the loadgen runs exactly")
PYEOF
then
  fail "metrics scrape reconciliation failed"
fi

# SIGTERM drains the online server too: exit 0, retrain published,
# nothing left open.
kill -TERM "$SRV2_PID"
SRV2_RC=0
wait "$SRV2_PID" || SRV2_RC=$?
SRV2_PID=""
[ "$SRV2_RC" -eq 0 ] || fail "online server exited $SRV2_RC after SIGTERM"

# The trace dump written at exit must be valid Chrome trace JSON with the
# request span chain intact: decode -> shard route -> advance root spans.
if [ ! -s "$TRACE_OUT" ]; then
  fail "trace dump missing or empty: $TRACE_OUT"
elif ! python3 - "$TRACE_OUT" <<'PYEOF'
import json, sys

events = json.load(open(sys.argv[1]))["traceEvents"]
names = {e["name"] for e in events}
for required in ("frame.decode", "shard.route", "request.advance"):
    if required not in names:
        raise SystemExit(f"span '{required}' missing from the trace dump")
for e in events:
    if e["ph"] != "X" or e["dur"] < 0:
        raise SystemExit(f"malformed trace event: {e}")
print(f"trace dump holds {len(events)} well-formed spans")
PYEOF
then
  fail "trace dump check failed"
fi

table2_value() {  # table2_value <row-label-regex>
  awk -F'|' "/$1/ {gsub(/ /,\"\",\$3); print \$3}" "$SRV2_OUT" | head -n 1
}
GENERATION="$(table2_value 'model generation')"
RETRAINS="$(table2_value 'retrains published')"
INGESTED="$(table2_value 'wire records ingested')"
SHED="$(table2_value 'wire records shed')"
ACCEPTED2="$(table2_value 'connections accepted')"
CLOSED2="$(table2_value 'connections closed')"
[ -n "$GENERATION" ] && [ "$GENERATION" != "0" ] \
  || fail "online server never published a generation: '$GENERATION'"
[ -n "$RETRAINS" ] && [ "$RETRAINS" != "0" ] \
  || fail "online server reported zero retrains: '$RETRAINS'"
[ -n "$INGESTED" ] && [ "$INGESTED" != "0" ] \
  || fail "online server ingested nothing: '$INGESTED'"
# 64 records from the saturation leg, plus whatever the swap leg shed.
[ -n "$SHED" ] && [ "$SHED" -ge 64 ] \
  || fail "online server shed $SHED records, expected >= 64"
[ -n "$ACCEPTED2" ] && [ "$ACCEPTED2" = "$CLOSED2" ] \
  || fail "online drain left connections open" \
          "(accepted=$ACCEPTED2 closed=$CLOSED2)"

if [ "$fails" -ne 0 ]; then
  note "$fails server smoke check(s) failed"
  exit 1
fi
note "all server smoke checks passed"
