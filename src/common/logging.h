// Logging for the serving tier: CHECK/DCHECK invariant macros
// (Arrow/RocksDB-style — failures abort; user errors travel through
// Status) plus a leveled diagnostic logger.
//
// The leveled logger (RPE_LOG_DEBUG/INFO/WARN/ERROR) writes one line per
// message to stderr:
//
//   [   12.345678] W 3 failpoints armed: snapshot.write
//
// monotonic seconds since process start, level letter, small dense
// thread id, message. The threshold comes from the RPE_LOG environment
// variable (debug|info|warn|error|off; default info), parsed once; a
// suppressed message costs one relaxed atomic load and never evaluates
// its stream operands. Each line is flushed with a single write so
// concurrent threads cannot interleave mid-line. Operational banners
// (failpoints armed, SIMD tier fallbacks, server lifecycle) route
// through this; machine-parsed output — the pinned `listening on` line,
// stats tables, loadgen JSON — stays on stdout, untouched by RPE_LOG.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>

namespace rpe {

/// Monotonic nanoseconds (CLOCK_MONOTONIC): the log/trace timebase.
uint64_t MonotonicNanos();

/// Monotonic seconds since the first logging/tracing use in the process.
double MonotonicSecondsSinceStart();

/// Small dense id of the calling thread (1, 2, ... in first-use order).
uint32_t ThisThreadId();

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Threshold parsed from RPE_LOG on first use (default kInfo).
LogLevel LogThreshold();
/// Override the threshold (tests; wins over RPE_LOG from then on).
void SetLogThreshold(LogLevel level);

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(LogThreshold());
}

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "[FATAL] " << file << ":" << line << ": ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace rpe

/// Usage: RPE_LOG_INFO << "listening on " << port; Operands are not
/// evaluated when the level is below the threshold.
#define RPE_LOG_AT(level)                                           \
  for (bool rpe_log_emit = ::rpe::LogEnabled(level); rpe_log_emit; \
       rpe_log_emit = false)                                        \
  ::rpe::internal::LogMessage(level).stream()

#define RPE_LOG_DEBUG RPE_LOG_AT(::rpe::LogLevel::kDebug)
#define RPE_LOG_INFO RPE_LOG_AT(::rpe::LogLevel::kInfo)
#define RPE_LOG_WARN RPE_LOG_AT(::rpe::LogLevel::kWarn)
#define RPE_LOG_ERROR RPE_LOG_AT(::rpe::LogLevel::kError)

#define RPE_CHECK(cond)                                      \
  if (!(cond))                                               \
  ::rpe::internal::FatalLogMessage(__FILE__, __LINE__).stream() \
      << "Check failed: " #cond " "

#define RPE_CHECK_OK(expr)                                   \
  do {                                                       \
    ::rpe::Status _st = (expr);                              \
    RPE_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

#define RPE_CHECK_EQ(a, b) RPE_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_NE(a, b) RPE_CHECK((a) != (b))
#define RPE_CHECK_LT(a, b) RPE_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_LE(a, b) RPE_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_GT(a, b) RPE_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define RPE_CHECK_GE(a, b) RPE_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define RPE_DCHECK(cond) \
  while (false) RPE_CHECK(cond)
#else
#define RPE_DCHECK(cond) RPE_CHECK(cond)
#endif
