// Cardinality estimation over base-table histograms: per-predicate
// selectivities under the independence assumption, join sizes under the
// containment assumption, and distinct counts for aggregates. The planner
// uses these both for physical decisions (build side, join strategy) and to
// annotate every plan node with its E_i estimate (paper §3.1 counter (3)).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "optimizer/histogram.h"
#include "optimizer/query_spec.h"
#include "storage/catalog.h"

namespace rpe {

/// \brief Histogram store + estimation formulas for one catalog.
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const Catalog* catalog)
      : catalog_(catalog) {}

  /// Histogram for table.column, built lazily and cached.
  Result<const EquiDepthHistogram*> GetHistogram(const std::string& table,
                                                 const std::string& column);

  /// Base-table row count.
  Result<double> TableRows(const std::string& table) const;

  /// Selectivity of a FilterSpec against its base table.
  Result<double> FilterSelectivity(const std::string& table,
                                   const FilterSpec& filter);

  /// Join selectivity for an equi-join of (tableA.colA, tableB.colB) under
  /// containment: 1 / max(distinct(A.a), distinct(B.b)).
  Result<double> JoinSelectivity(const std::string& table_a,
                                 const std::string& col_a,
                                 const std::string& table_b,
                                 const std::string& col_b);

  /// Exact distinct count of a base column (from its histogram).
  Result<double> DistinctCount(const std::string& table,
                               const std::string& column);

  /// Estimated group count: min(input_rows, prod of per-column distincts).
  double GroupCount(double input_rows,
                    const std::vector<double>& column_distincts) const;

 private:
  const Catalog* catalog_;
  std::map<std::string, std::unique_ptr<EquiDepthHistogram>> cache_;
};

}  // namespace rpe
