#include "harness/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace rpe {

namespace {
constexpr double kErrorFloor = 1e-6;  // avoids 0/0 ratio blowups
}

size_t BestInPool(const PipelineRecord& record,
                  const std::vector<size_t>& pool) {
  if (pool.empty()) return record.BestEstimator();
  size_t best = pool[0];
  for (size_t est : pool) {
    if (record.l1[est] < record.l1[best]) best = est;
  }
  return best;
}

AggregateMetrics EvaluateChoices(const std::vector<PipelineRecord>& records,
                                 const std::vector<size_t>& choices,
                                 const std::vector<size_t>& pool) {
  RPE_CHECK_EQ(records.size(), choices.size());
  AggregateMetrics m;
  if (records.empty()) return m;
  for (size_t i = 0; i < records.size(); ++i) {
    const PipelineRecord& r = records[i];
    const size_t c = choices[i];
    RPE_CHECK_LT(c, r.l1.size());
    m.avg_l1 += r.l1[c];
    m.avg_l2 += r.l2[c];
    const size_t best = BestInPool(r, pool);
    const double best_l1 = r.l1[best];
    if (r.l1[c] <= best_l1 + kErrorFloor) m.pct_optimal += 1.0;
    const double ratio =
        (r.l1[c] + kErrorFloor) / (best_l1 + kErrorFloor);
    if (ratio > 2.0) m.frac_ratio_gt2 += 1.0;
    if (ratio > 5.0) m.frac_ratio_gt5 += 1.0;
    if (ratio > 10.0) m.frac_ratio_gt10 += 1.0;
  }
  const double n = static_cast<double>(records.size());
  m.avg_l1 /= n;
  m.avg_l2 /= n;
  m.pct_optimal /= n;
  m.frac_ratio_gt2 /= n;
  m.frac_ratio_gt5 /= n;
  m.frac_ratio_gt10 /= n;
  m.count = records.size();
  return m;
}

std::vector<size_t> FixedChoice(const std::vector<PipelineRecord>& records,
                                size_t estimator) {
  return std::vector<size_t>(records.size(), estimator);
}

std::vector<size_t> OracleChoice(const std::vector<PipelineRecord>& records) {
  std::vector<size_t> choices;
  choices.reserve(records.size());
  for (const auto& r : records) choices.push_back(r.BestEstimator());
  return choices;
}

double FractionOptimal(const std::vector<PipelineRecord>& records,
                       size_t estimator, const std::vector<size_t>& pool) {
  if (records.empty()) return 0.0;
  size_t hits = 0;
  for (const auto& r : records) {
    if (r.l1[estimator] <= r.l1[BestInPool(r, pool)] + kErrorFloor) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(records.size());
}

std::vector<double> ErrorRatioCurve(const std::vector<PipelineRecord>& records,
                                    size_t estimator,
                                    const std::vector<size_t>& pool) {
  return ErrorRatioCurve(records, FixedChoice(records, estimator), pool);
}

std::vector<double> ErrorRatioCurve(const std::vector<PipelineRecord>& records,
                                    const std::vector<size_t>& choices,
                                    const std::vector<size_t>& pool) {
  RPE_CHECK_EQ(records.size(), choices.size());
  std::vector<double> ratios;
  ratios.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const PipelineRecord& r = records[i];
    ratios.push_back((r.l1[choices[i]] + kErrorFloor) /
                     (r.l1[BestInPool(r, pool)] + kErrorFloor));
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios;
}

std::vector<PipelineRecord> FilterByWorkload(
    const std::vector<PipelineRecord>& records, const std::string& workload,
    bool invert) {
  std::vector<PipelineRecord> out;
  for (const auto& r : records) {
    if ((r.workload == workload) != invert) out.push_back(r);
  }
  return out;
}

std::vector<PipelineRecord> FilterByTag(
    const std::vector<PipelineRecord>& records, const std::string& tag,
    bool invert) {
  std::vector<PipelineRecord> out;
  for (const auto& r : records) {
    if ((r.tag == tag) != invert) out.push_back(r);
  }
  return out;
}

}  // namespace rpe
