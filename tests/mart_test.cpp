// MART learner tests: binning (column-major layout), one-pass leaf
// histograms and the subtraction trick, tree fitting, boosting
// convergence, serialization, feature importance and the linear baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "mart/linear.h"
#include "mart/mart.h"

namespace rpe {
namespace {

Dataset MakeDataset(size_t n, uint64_t seed,
                    double (*f)(const std::vector<double>&)) {
  Dataset data(4);
  Rng rng(seed);
  std::vector<double> x(4);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.NextDouble();
    RPE_CHECK_OK(data.AddExample(x, f(x)));
  }
  return data;
}

double StepTarget(const std::vector<double>& x) {
  return (x[0] > 0.5 ? 1.0 : 0.0) + (x[1] > 0.3 ? 0.5 : 0.0);
}

double LinearTarget(const std::vector<double>& x) {
  return 2.0 * x[0] - 1.0 * x[1] + 0.25;
}

double NonlinearTarget(const std::vector<double>& x) {
  return x[0] * x[1] + (x[2] > 0.7 ? 0.8 : 0.1);
}

// --- Dataset / binning ---------------------------------------------------

TEST(DatasetTest, AddAndAccess) {
  Dataset data(2);
  ASSERT_TRUE(data.AddExample({1.0, 2.0}, 3.0).ok());
  ASSERT_TRUE(data.AddExample({4.0, 5.0}, 6.0).ok());
  EXPECT_EQ(data.num_examples(), 2u);
  EXPECT_DOUBLE_EQ(data.feature(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(data.target(1), 6.0);
  EXPECT_EQ(data.ExampleFeatures(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_FALSE(data.AddExample({1.0}, 0.0).ok());  // arity mismatch
}

TEST(BinnedDatasetTest, FewDistinctValuesGetOwnBins) {
  Dataset data(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(data.AddExample({static_cast<double>(i % 3)}, 0.0).ok());
  }
  BinnedDataset binned(data, 255);
  EXPECT_EQ(binned.num_bins(0), 3u);
  // Values 0,1,2 -> bins 0,1,2.
  EXPECT_EQ(binned.bin(0, 0), 0);
  EXPECT_EQ(binned.bin(1, 0), 1);
  EXPECT_EQ(binned.bin(2, 0), 2);
}

TEST(BinnedDatasetTest, BinOrderRespectsValues) {
  Dataset data(1);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(data.AddExample({rng.NextDouble()}, 0.0).ok());
  }
  BinnedDataset binned(data, 64);
  EXPECT_LE(binned.num_bins(0), 64u);
  for (size_t i = 0; i + 1 < 500; ++i) {
    const double a = data.feature(i, 0), b = data.feature(i + 1, 0);
    if (a < b) {
      EXPECT_LE(binned.bin(i, 0), binned.bin(i + 1, 0));
    }
  }
}

TEST(BinnedDatasetTest, ColumnMajorMatchesRowMajorReference) {
  Dataset data = MakeDataset(800, 41, NonlinearTarget);
  BinnedDataset binned(data, 32);
  const size_t nf = data.num_features();
  const std::vector<uint8_t> rows = binned.RowMajorBins();
  ASSERT_EQ(rows.size(), data.num_examples() * nf);
  for (size_t f = 0; f < nf; ++f) {
    const auto col = binned.feature_bins(f);
    ASSERT_EQ(col.size(), data.num_examples());
    for (size_t i = 0; i < data.num_examples(); ++i) {
      ASSERT_EQ(binned.bin(i, f), rows[i * nf + f]);
      ASSERT_EQ(col[i], rows[i * nf + f]);
    }
  }
  // Histogram slab geometry is the exact prefix sum of per-feature bins.
  size_t expected_off = 0;
  for (size_t f = 0; f < nf; ++f) {
    EXPECT_EQ(binned.hist_offset(f), expected_off);
    expected_off += binned.num_bins(f);
  }
  EXPECT_EQ(binned.total_bins(), expected_off);
}

TEST(BinnedDatasetTest, RejectsMoreThan255Bins) {
  Dataset data(1);
  ASSERT_TRUE(data.AddExample({1.0}, 0.0).ok());
  ASSERT_TRUE(data.AddExample({2.0}, 0.0).ok());
  EXPECT_DEATH(BinnedDataset(data, 256), "max_bins");
}

// --- Leaf histograms -------------------------------------------------------

TEST(HistogramSetTest, OnePassMatchesPerFeatureReference) {
  Dataset data = MakeDataset(1200, 43, NonlinearTarget);
  BinnedDataset binned(data, 64);
  std::vector<double> residuals(data.num_examples());
  Rng rng(44);
  for (auto& r : residuals) r = rng.NextGaussian();
  // A sparse leaf: every third example (strictly increasing).
  std::vector<uint32_t> indices;
  for (uint32_t i = 0; i < data.num_examples(); i += 3) indices.push_back(i);

  HistogramSet hist(binned);
  BuildLeafHistograms(binned, residuals, indices, &hist, nullptr);

  for (size_t f = 0; f < binned.num_features(); ++f) {
    std::vector<double> ref_sum(binned.num_bins(f), 0.0);
    std::vector<uint32_t> ref_cnt(binned.num_bins(f), 0);
    for (uint32_t idx : indices) {
      const uint8_t b = binned.bin(idx, f);
      ref_sum[b] += residuals[idx];
      ref_cnt[b] += 1;
    }
    const size_t off = binned.hist_offset(f);
    for (size_t b = 0; b < binned.num_bins(f); ++b) {
      ASSERT_EQ(hist.sums()[off + b], ref_sum[b]) << "f=" << f << " b=" << b;
      ASSERT_EQ(hist.counts()[off + b], ref_cnt[b]);
    }
  }
}

TEST(HistogramSetTest, BuildIsThreadCountInvariant) {
  Dataset data = MakeDataset(3000, 45, StepTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples());
  Rng rng(46);
  for (auto& r : residuals) r = rng.NextGaussian();
  std::vector<uint32_t> all(data.num_examples());
  std::iota(all.begin(), all.end(), 0u);

  HistogramSet sequential(binned), parallel(binned);
  BuildLeafHistograms(binned, residuals, all, &sequential, nullptr);
  ThreadPool pool(8);
  BuildLeafHistograms(binned, residuals, all, &parallel, &pool);
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential.sums()[i], parallel.sums()[i]);
    ASSERT_EQ(sequential.counts()[i], parallel.counts()[i]);
  }
}

TEST(HistogramSetTest, SubtractionCountsAreExact) {
  Dataset data = MakeDataset(2000, 47, NonlinearTarget);
  BinnedDataset binned(data, 128);
  std::vector<double> residuals(data.num_examples());
  Rng rng(48);
  for (auto& r : residuals) r = rng.NextGaussian();
  std::vector<uint32_t> parent(data.num_examples());
  std::iota(parent.begin(), parent.end(), 0u);
  std::vector<uint32_t> child, sibling;
  for (uint32_t i : parent) (i % 5 == 0 ? child : sibling).push_back(i);

  HistogramSet parent_hist(binned), child_hist(binned), direct(binned);
  BuildLeafHistograms(binned, residuals, parent, &parent_hist, nullptr);
  BuildLeafHistograms(binned, residuals, child, &child_hist, nullptr);
  BuildLeafHistograms(binned, residuals, sibling, &direct, nullptr);

  parent_hist.SubtractChild(child_hist);  // parent_hist is now the sibling
  double max_rel_err = 0.0;
  for (size_t i = 0; i < direct.size(); ++i) {
    // Counts are integer arithmetic: exactly equal to direct accumulation.
    ASSERT_EQ(parent_hist.counts()[i], direct.counts()[i]);
    // Sums differ from direct accumulation only by FP rounding.
    const double scale = std::max(1.0, std::abs(direct.sums()[i]));
    max_rel_err = std::max(
        max_rel_err,
        std::abs(parent_hist.sums()[i] - direct.sums()[i]) / scale);
  }
  EXPECT_LT(max_rel_err, 1e-9);
}

// The guarantee that matters for model bytes: the subtraction trick and
// plain direct accumulation fit byte-identical trees, because split search
// canonicalizes the winning feature from a direct re-accumulation before
// anything enters the tree.
TEST(TreeTest, SubtractionAndDirectHistogramsFitIdenticalModels) {
  Dataset data = MakeDataset(2500, 49, NonlinearTarget);
  MartParams params;
  params.num_trees = 25;
  params.subsample = 0.8;
  params.seed = 5;
  params.tree.force_direct_histograms = false;
  const std::string with_subtraction =
      MartModel::Train(data, params).Serialize();
  params.tree.force_direct_histograms = true;
  const std::string direct = MartModel::Train(data, params).Serialize();
  EXPECT_EQ(with_subtraction, direct);
}

// --- Regression tree -----------------------------------------------------

TEST(TreeTest, FitsStepFunction) {
  Dataset data = MakeDataset(2000, 21, StepTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples());
  for (size_t i = 0; i < data.num_examples(); ++i) {
    residuals[i] = data.target(i);
  }
  TreeParams params;
  params.max_leaves = 8;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  EXPECT_LE(tree.num_leaves(), 8u);
  EXPECT_GE(tree.num_leaves(), 3u);
  // A step function in two features is learnable nearly exactly.
  double mse = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    const double d = tree.Predict(data.ExampleFeatures(i)) - data.target(i);
    mse += d * d;
  }
  mse /= static_cast<double>(data.num_examples());
  EXPECT_LT(mse, 0.01);
}

TEST(TreeTest, RespectsMinLeafSize) {
  Dataset data = MakeDataset(100, 22, StepTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples(), 1.0);
  TreeParams params;
  params.max_leaves = 64;
  params.min_examples_per_leaf = 50;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  // 100 examples with min 50 per leaf allows at most one split.
  EXPECT_LE(tree.num_leaves(), 2u);
}

TEST(TreeTest, ConstantTargetYieldsSingleLeaf) {
  Dataset data = MakeDataset(500, 23, [](const std::vector<double>&) {
    return 7.0;
  });
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples(), 7.0);
  TreeParams params;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_NEAR(tree.Predict({0.1, 0.2, 0.3, 0.4}), 7.0, 1e-9);
}

TEST(TreeTest, SerializationRoundTrip) {
  Dataset data = MakeDataset(1000, 24, NonlinearTarget);
  BinnedDataset binned(data);
  std::vector<double> residuals(data.num_examples());
  for (size_t i = 0; i < data.num_examples(); ++i) {
    residuals[i] = data.target(i);
  }
  TreeParams params;
  RegressionTree tree =
      RegressionTree::Fit(binned, residuals, {}, params, nullptr);
  auto restored = RegressionTree::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok());
  for (size_t i = 0; i < 50; ++i) {
    const auto x = data.ExampleFeatures(i);
    EXPECT_DOUBLE_EQ(tree.Predict(x), restored->Predict(x));
  }
}

// --- MART ------------------------------------------------------------------

TEST(MartTest, TrainingLossDecreases) {
  Dataset data = MakeDataset(3000, 25, NonlinearTarget);
  MartParams params;
  params.num_trees = 40;
  MartModel model = MartModel::Train(data, params);
  const auto& curve = model.training_curve();
  ASSERT_EQ(curve.size(), 40u);
  EXPECT_LT(curve.back(), curve.front() * 0.3);
}

TEST(MartTest, BeatsMeanPredictor) {
  Dataset data = MakeDataset(3000, 26, StepTarget);
  MartModel model = MartModel::Train(data, {});
  double mean = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) mean += data.target(i);
  mean /= static_cast<double>(data.num_examples());
  double mean_mse = 0.0;
  for (size_t i = 0; i < data.num_examples(); ++i) {
    mean_mse += (data.target(i) - mean) * (data.target(i) - mean);
  }
  mean_mse /= static_cast<double>(data.num_examples());
  EXPECT_LT(model.MeanSquaredError(data), mean_mse * 0.05);
}

TEST(MartTest, GeneralizesToFreshSample) {
  Dataset train = MakeDataset(4000, 27, NonlinearTarget);
  Dataset test = MakeDataset(1000, 28, NonlinearTarget);
  MartParams params;
  params.num_trees = 100;
  MartModel model = MartModel::Train(train, params);
  EXPECT_LT(model.MeanSquaredError(test), 0.01);
}

TEST(MartTest, SubsamplingStillLearns) {
  Dataset data = MakeDataset(4000, 29, StepTarget);
  MartParams params;
  params.num_trees = 80;
  params.subsample = 0.5;
  MartModel model = MartModel::Train(data, params);
  EXPECT_LT(model.MeanSquaredError(data), 0.02);
}

TEST(MartTest, FeatureImportanceIdentifiesSignal) {
  // Target depends only on features 0 and 1; 2 and 3 are noise.
  Dataset data = MakeDataset(4000, 30, StepTarget);
  MartParams params;
  params.num_trees = 50;
  MartModel model = MartModel::Train(data, params);
  const auto& gains = model.feature_gains();
  ASSERT_EQ(gains.size(), 4u);
  EXPECT_GT(gains[0], gains[2] * 10);
  EXPECT_GT(gains[1], gains[3] * 10);
}

TEST(MartTest, SerializationRoundTrip) {
  Dataset data = MakeDataset(1500, 31, NonlinearTarget);
  MartParams params;
  params.num_trees = 25;
  MartModel model = MartModel::Train(data, params);
  auto restored = MartModel::Deserialize(model.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_trees(), model.num_trees());
  for (size_t i = 0; i < 100; ++i) {
    const auto x = data.ExampleFeatures(i);
    EXPECT_DOUBLE_EQ(model.Predict(x), restored->Predict(x));
  }
}

TEST(MartTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MartModel::Deserialize("not a model").ok());
  EXPECT_FALSE(MartModel::Deserialize("MART 0.5").ok());
}

TEST(MartTest, EmptyDatasetProducesConstantZero) {
  Dataset data(3);
  MartModel model = MartModel::Train(data, {});
  EXPECT_DOUBLE_EQ(model.Predict({1.0, 2.0, 3.0}), 0.0);
}

// --- Linear baseline -------------------------------------------------------

TEST(LinearTest, RecoversLinearTarget) {
  Dataset data = MakeDataset(2000, 32, LinearTarget);
  LinearModel model = LinearModel::Train(data);
  EXPECT_LT(model.MeanSquaredError(data), 1e-6);
}

TEST(LinearTest, UnderfitsNonlinearTargetVsMart) {
  Dataset data = MakeDataset(3000, 33, StepTarget);
  LinearModel linear = LinearModel::Train(data);
  MartParams params;
  params.num_trees = 60;
  MartModel mart = MartModel::Train(data, params);
  // The §4.2 claim: trees handle the non-linear dependence, linear can't.
  EXPECT_LT(mart.MeanSquaredError(data),
            linear.MeanSquaredError(data) * 0.5);
}

}  // namespace
}  // namespace rpe
