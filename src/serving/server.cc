#include "serving/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/failpoint.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace rpe {
namespace {

/// Read-side scratch: one syscall's worth of bytes before they enter the
/// frame decoder.
constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Frames admission control may refuse. kClose is exempt (it frees
/// resources — shedding it would pin sessions under the very overload
/// shedding exists to survive) and so are kStats and kMetricsDump
/// (observability must work when the server is saturated, or the
/// saturation is undebuggable).
bool Sheddable(MsgType type) {
  switch (type) {
    case MsgType::kOpen:
    case MsgType::kAdvance:
    case MsgType::kProgress:
    case MsgType::kIngestRecord:
    case MsgType::kIngestBatch:
      return true;
    case MsgType::kClose:
    case MsgType::kStats:
    case MsgType::kMetricsDump:
      return false;
  }
  return true;
}

/// Root-span name of a request, by frame type (static literals — the
/// trace ring stores pointers, not copies).
const char* SpanNameFor(MsgType type) {
  switch (type) {
    case MsgType::kOpen: return "request.open";
    case MsgType::kAdvance: return "request.advance";
    case MsgType::kProgress: return "request.progress";
    case MsgType::kClose: return "request.close";
    case MsgType::kStats: return "request.stats";
    case MsgType::kIngestRecord: return "request.ingest";
    case MsgType::kIngestBatch: return "request.ingest_batch";
    case MsgType::kMetricsDump: return "request.metrics_dump";
  }
  return "request";
}

/// Records an ingest frame offers, counted without decoding it (the frame
/// may be shed before decode): 1 for kIngestRecord; for kIngestBatch the
/// leading u32 count, clamped to the protocol bound so a lying prefix
/// cannot inflate the shed counter. A batch too short to carry its count
/// is counted as 0 offered — dispatch would reject it as a protocol
/// error, not shed it, so nothing is miscounted.
uint32_t IngestFrameRecords(const WireFrame& frame) {
  if (frame.type == MsgType::kIngestRecord) return 1;
  if (frame.payload.size() < 4) return 0;
  uint32_t count = 0;
  std::memcpy(&count, frame.payload.data(), 4);
  return std::min(count, kMaxIngestBatchRecords);
}

}  // namespace

/// \brief One accepted socket: frame reassembly state, the FIFO of
/// decoded-but-undispatched frames, the bounded write buffer, and the
/// sessions it opened (closed with the connection). Owned by exactly one
/// IO thread; nothing here is shared.
/// \brief One decoded frame awaiting dispatch. A frame shed by admission
/// control keeps its inbox slot (the busy response must leave in FIFO
/// order) but its payload is released at shed time and `shed` marks it
/// so dispatch answers without handling.
struct TcpServer::InboxEntry {
  WireFrame frame;
  /// Root span id of this request, minted at frame decode when tracing
  /// is enabled (0 otherwise). Child spans (shard route, advance steps,
  /// a swap's retrain/publish) parent to it through TraceContext.
  uint64_t trace_id = 0;
  /// Decode timestamp — the start of the request's end-to-end latency
  /// (always captured; the latency histogram records every request).
  uint64_t recv_ns = 0;
  /// Records the frame offered, captured before the payload was released
  /// (nonzero only for shed ingest frames).
  uint32_t shed_records = 0;
  bool shed = false;
};

struct TcpServer::Connection {
  int fd = -1;
  size_t shard = 0;  ///< every session of this connection opens here
  FrameDecoder decoder;
  /// Frames decoded but not yet dispatched. Dispatch stops at a deferred
  /// Advance (response order is per-connection FIFO) and while reads are
  /// paused by backpressure.
  std::deque<InboxEntry> inbox;
  /// True while this connection has an Advance in the IO thread's batch;
  /// later frames wait so responses keep request order.
  bool advancing = false;
  std::string wbuf;
  size_t woff = 0;  ///< flushed prefix of wbuf
  bool want_write = false;   ///< EPOLLOUT armed
  bool paused_read = false;  ///< EPOLLIN disarmed by backpressure
  bool dead = false;
  std::vector<uint64_t> sessions;  ///< open session ids (global)

  size_t pending_write() const { return wbuf.size() - woff; }
};

/// \brief One deferred Advance request inside an IO thread's per-iteration
/// batch (see RunAdvanceBatch).
struct TcpServer::AdvanceWork {
  Connection* conn = nullptr;
  uint64_t session = 0;
  uint64_t trace_id = 0;  ///< root span carried from the inbox entry
  uint64_t recv_ns = 0;   ///< decode timestamp carried from the entry
  uint32_t budget = 0;
  uint32_t taken = 0;
  double progress = 0.0;
  bool done = false;
  bool retired = false;
  Status error;  ///< non-OK: answered as an error frame
};

/// \brief Per-IO-thread state: the epoll instance, an eventfd for
/// accept handoff + shutdown wakeup, and the owned connections. The
/// per-thread counters that used to live here are registry-owned
/// obs::Counters now (TcpServer::Counters) — same relaxed-increment hot
/// path (each thread writes its own shard cell), one source of truth for
/// GetStats, the exit table, and the metrics scrape.
struct TcpServer::IoThread {
  size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  std::mutex handoff_mu;
  std::vector<int> handoff;  ///< accepted fds awaiting adoption

  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::vector<AdvanceWork> batch;
};

TcpServer::TcpServer(ShardedMonitorService* service,
                     std::vector<const QueryRunResult*> runs, Options options)
    : TcpServer(service, std::move(runs), nullptr, options) {}

TcpServer::TcpServer(ShardedMonitorService* service,
                     std::vector<const QueryRunResult*> runs,
                     RecordIngestQueue* ingest, Options options)
    : service_(service),
      runs_(std::move(runs)),
      ingest_(ingest),
      options_(options) {
  RPE_CHECK(service_ != nullptr);
  RPE_CHECK(!runs_.empty());
  RPE_CHECK(options_.max_inflight_per_conn > 0);
  RPE_CHECK(options_.max_inflight_total > 0);
  if (options_.metrics != nullptr) {
    registry_ = options_.metrics;
  } else {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  // Table labels are the exact rows the serve-tcp exit table has always
  // printed (parsed by scripts/server_smoke_test.sh); the wire-session
  // counters carry none so the bare "sessions opened/completed" rows
  // keep matching the service-level counters first.
  c_.connections_accepted = registry_->GetCounter(
      "rpe_server_connections_accepted_total", "connections accepted");
  c_.connections_closed = registry_->GetCounter(
      "rpe_server_connections_closed_total", "connections closed");
  c_.frames_received = registry_->GetCounter(
      "rpe_server_frames_received_total", "frames received");
  c_.frames_sent =
      registry_->GetCounter("rpe_server_frames_sent_total", "frames sent");
  c_.bytes_received = registry_->GetCounter(
      "rpe_server_bytes_received_total", "bytes received");
  c_.bytes_sent =
      registry_->GetCounter("rpe_server_bytes_sent_total", "bytes sent");
  c_.protocol_errors = registry_->GetCounter(
      "rpe_server_protocol_errors_total", "protocol errors");
  c_.io_errors =
      registry_->GetCounter("rpe_server_io_errors_total", "io errors");
  c_.wire_sessions_opened =
      registry_->GetCounter("rpe_server_wire_sessions_opened_total");
  c_.wire_sessions_closed =
      registry_->GetCounter("rpe_server_wire_sessions_closed_total");
  c_.advance_steps = registry_->GetCounter(
      "rpe_server_advance_steps_total", "advance steps");
  c_.requests_shed = registry_->GetCounter(
      "rpe_server_requests_shed_total", "session requests shed");
  c_.records_ingested = registry_->GetCounter(
      "rpe_server_records_ingested_total", "wire records ingested");
  c_.records_ingest_dropped = registry_->GetCounter(
      "rpe_server_records_ingest_dropped_total", "wire records dropped");
  c_.records_ingest_shed = registry_->GetCounter(
      "rpe_server_records_ingest_shed_total", "wire records shed");
  request_latency_ =
      registry_->GetHistogram("rpe_server_request_latency_seconds");
}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  RPE_CHECK(!started_);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    const Status st = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    const Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    const Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  if (options_.metrics_port >= 0) {
    // The /metrics exposition listener: same loopback bind discipline as
    // the wire port, polled by the acceptor and served inline (it is an
    // operator endpoint, not a data path — see HandleMetricsConn).
    metrics_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                        SOCK_CLOEXEC, 0);
    if (metrics_fd_ < 0) {
      const Status st = Errno("metrics socket");
      ::close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    ::setsockopt(metrics_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in maddr{};
    maddr.sin_family = AF_INET;
    maddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    maddr.sin_port = htons(static_cast<uint16_t>(options_.metrics_port));
    socklen_t mlen = sizeof maddr;
    if (::bind(metrics_fd_, reinterpret_cast<sockaddr*>(&maddr),
               sizeof maddr) < 0 ||
        ::listen(metrics_fd_, 16) < 0 ||
        ::getsockname(metrics_fd_, reinterpret_cast<sockaddr*>(&maddr),
                      &mlen) < 0) {
      const Status st = Errno("metrics bind/listen");
      ::close(metrics_fd_);
      ::close(listen_fd_);
      metrics_fd_ = listen_fd_ = -1;
      return st;
    }
    metrics_port_ = ntohs(maddr.sin_port);
  }

  acceptor_wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (acceptor_wake_fd_ < 0) {
    const Status st = Errno("eventfd");
    if (metrics_fd_ >= 0) ::close(metrics_fd_);
    metrics_fd_ = -1;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  const size_t n_threads = options_.io_threads > 0 ? options_.io_threads
                                                   : service_->num_shards();
  for (size_t t = 0; t < n_threads; ++t) {
    auto io = std::make_unique<IoThread>();
    io->index = t;
    io->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    io->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (io->epoll_fd < 0 || io->wake_fd < 0) {
      const Status st = Errno("epoll_create1/eventfd");
      if (io->epoll_fd >= 0) ::close(io->epoll_fd);
      if (io->wake_fd >= 0) ::close(io->wake_fd);
      // No thread has been spawned yet (they all start below, after every
      // IoThread exists), so cleanup is just releasing fds.
      for (auto& prev : io_threads_) {
        ::close(prev->epoll_fd);
        ::close(prev->wake_fd);
      }
      io_threads_.clear();
      ::close(acceptor_wake_fd_);
      ::close(listen_fd_);
      if (metrics_fd_ >= 0) ::close(metrics_fd_);
      acceptor_wake_fd_ = listen_fd_ = metrics_fd_ = -1;
      return st;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = io->wake_fd;
    RPE_CHECK_EQ(
        ::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, io->wake_fd, &ev), 0);
    io_threads_.push_back(std::move(io));
  }
  for (auto& io : io_threads_) {
    IoThread* raw = io.get();
    raw->thread = std::thread([this, raw] { IoLoop(raw); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void TcpServer::Stop() {
  if (!started_ || joined_) return;
  stop_.store(true);
  uint64_t one = 1;
  // Wake everyone: the acceptor out of poll(), each IO loop out of
  // epoll_wait. Writes to eventfds cannot fail here short of fd loss.
  [[maybe_unused]] ssize_t n =
      ::write(acceptor_wake_fd_, &one, sizeof one);
  for (auto& io : io_threads_) n = ::write(io->wake_fd, &one, sizeof one);
  acceptor_.join();
  for (auto& io : io_threads_) io->thread.join();
  for (auto& io : io_threads_) {
    ::close(io->epoll_fd);
    ::close(io->wake_fd);
  }
  ::close(acceptor_wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (metrics_fd_ >= 0) ::close(metrics_fd_);
  acceptor_wake_fd_ = listen_fd_ = metrics_fd_ = -1;
  joined_ = true;
}

void TcpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd fds[3] = {{listen_fd_, POLLIN, 0},
                     {acceptor_wake_fd_, POLLIN, 0},
                     {metrics_fd_, POLLIN, 0}};  // -1 fd: kernel ignores it
    const int rc = ::poll(fds, 3, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stop_.load(std::memory_order_relaxed)) break;
    if (metrics_fd_ >= 0 && (fds[2].revents & POLLIN) != 0) {
      while (true) {
        const int mfd = ::accept4(metrics_fd_, nullptr, nullptr,
                                  SOCK_CLOEXEC);
        if (mfd < 0) break;
        HandleMetricsConn(mfd);
      }
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) break;  // EAGAIN or transient error; poll again
      IoThread* io =
          io_threads_[next_io_thread_.fetch_add(1) % io_threads_.size()]
              .get();
      if (RPE_INJECT_FAULT("server.accept")) {
        // Injected accept failure: the connection is refused, the server
        // keeps serving (counted as an IO error on the target thread).
        ::close(fd);
        c_.io_errors->Inc();
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      c_.connections_accepted->Inc();
      {
        std::lock_guard<std::mutex> lock(io->handoff_mu);
        io->handoff.push_back(fd);
      }
      uint64_t note = 1;
      [[maybe_unused]] ssize_t n = ::write(io->wake_fd, &note, sizeof note);
    }
  }
}

void TcpServer::HandleMetricsConn(int fd) {
  // Deliberately minimal: a loopback operator endpoint serving one GET
  // per connection, blocking with short timeouts so a stuck scraper
  // cannot wedge the acceptor for more than ~a second. The data path
  // (wire port) is untouched by whatever happens here.
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  char req[4096];
  size_t used = 0;
  while (used < sizeof req - 1) {
    const ssize_t n = ::read(fd, req + used, sizeof req - 1 - used);
    if (n <= 0) break;
    used += static_cast<size_t>(n);
    req[used] = '\0';
    if (std::strstr(req, "\r\n\r\n") != nullptr ||
        std::strstr(req, "\n\n") != nullptr) {
      break;
    }
  }
  req[used] = '\0';
  std::string response;
  if (std::strncmp(req, "GET /metrics", 12) == 0) {
    const std::string body = registry_->RenderPrometheus();
    response = "HTTP/1.1 200 OK\r\nContent-Type: text/plain; "
               "version=0.0.4; charset=utf-8\r\nContent-Length: " +
               std::to_string(body.size()) +
               "\r\nConnection: close\r\n\r\n" + body;
  } else {
    static constexpr char kBody[] = "only GET /metrics is served\n";
    response = "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\n"
               "Content-Length: " +
               std::to_string(sizeof kBody - 1) +
               "\r\nConnection: close\r\n\r\n" + kBody;
  }
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t n =
        ::write(fd, response.data() + off, response.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(fd);
}

bool TcpServer::UpdateEpoll(IoThread* io, Connection* conn) {
  epoll_event ev{};
  ev.events = (conn->paused_read ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn->want_write ? static_cast<uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn->fd;
  return ::epoll_ctl(io->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0;
}

void TcpServer::CloseConnection(IoThread* io, Connection* conn) {
  if (conn->dead) return;
  conn->dead = true;
  // A dropped connection closes its sessions server-side — dangling
  // sessions would otherwise pin run state and skew open-session counts.
  for (uint64_t id : conn->sessions) {
    service_->CloseSession(id);  // best effort; may already be closed
    c_.wire_sessions_closed->Inc();
  }
  conn->sessions.clear();
  // Undispatched frames die with the connection; give their in-flight
  // slots back so the global budget cannot leak under disconnect storms.
  for (const InboxEntry& entry : conn->inbox) {
    if (!entry.shed) {
      inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  conn->inbox.clear();
  ::epoll_ctl(io->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  c_.connections_closed->Inc();
  io->conns.erase(conn->fd);  // frees *conn
}

void TcpServer::SendFrame(IoThread* io, Connection* conn, std::string frame) {
  conn->wbuf.append(frame);
  c_.frames_sent->Inc();
  if (conn->pending_write() > options_.max_write_buffer &&
      !conn->paused_read) {
    // Backpressure: stop reading (and thus dispatching) until the buffer
    // drains below half — see FlushWrites.
    conn->paused_read = true;
    UpdateEpoll(io, conn);
  }
}

bool TcpServer::FlushWrites(IoThread* io, Connection* conn) {
  while (conn->pending_write() > 0) {
    ssize_t n = ::write(conn->fd, conn->wbuf.data() + conn->woff,
                        conn->pending_write());
    if (RPE_INJECT_FAULT("server.write")) {
      n = -1;
      errno = ECONNRESET;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          UpdateEpoll(io, conn);
        }
        return true;
      }
      if (errno == EINTR) continue;
      c_.io_errors->Inc();
      CloseConnection(io, conn);
      return false;
    }
    conn->woff += static_cast<size_t>(n);
    c_.bytes_sent->Inc(static_cast<uint64_t>(n));
  }
  conn->wbuf.clear();
  conn->woff = 0;
  bool dirty = false;
  if (conn->want_write) {
    conn->want_write = false;
    dirty = true;
  }
  if (conn->paused_read &&
      conn->pending_write() < options_.max_write_buffer / 2) {
    conn->paused_read = false;
    dirty = true;
  }
  if (dirty) UpdateEpoll(io, conn);
  return true;
}

void TcpServer::HandleFrame(IoThread* io, Connection* conn,
                            const InboxEntry& entry) {
  const WireFrame& frame = entry.frame;
  obs::TraceSpan route_span("shard.route", conn->shard);
  switch (frame.type) {
    case MsgType::kOpen: {
      const auto req = DecodeOpenRequest(frame.payload);
      if (!req.ok()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn, EncodeErrorFrame(MsgType::kOpen, req.status()));
        return;
      }
      const uint32_t resolved =
          static_cast<uint32_t>(req->run_index % runs_.size());
      const QueryRunResult* run = runs_[resolved];
      const auto id = service_->OpenSessionOnShard(run, conn->shard);
      if (!id.ok()) {
        SendFrame(io, conn, EncodeErrorFrame(MsgType::kOpen, id.status()));
        return;
      }
      conn->sessions.push_back(*id);
      c_.wire_sessions_opened->Inc();
      OpenResponse resp;
      resp.session_id = *id;
      resp.run_index = resolved;
      resp.num_observations =
          static_cast<uint32_t>(run->observations.size());
      SendFrame(io, conn, EncodeOpenResponse(resp));
      return;
    }
    case MsgType::kAdvance: {
      const auto req = DecodeAdvanceRequest(frame.payload);
      if (!req.ok()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(MsgType::kAdvance, req.status()));
        return;
      }
      AdvanceWork work;
      work.conn = conn;
      work.session = req->session_id;
      work.trace_id = entry.trace_id;
      work.recv_ns = entry.recv_ns;
      work.budget = req->max_steps;
      conn->advancing = true;  // holds later frames until answered
      io->batch.push_back(work);
      return;
    }
    case MsgType::kProgress: {
      const auto req = DecodeProgressRequest(frame.payload);
      if (!req.ok()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(MsgType::kProgress, req.status()));
        return;
      }
      const auto progress = service_->Progress(req->session_id);
      if (!progress.ok()) {
        SendFrame(io, conn,
                  EncodeErrorFrame(MsgType::kProgress, progress.status()));
        return;
      }
      const auto done = service_->Done(req->session_id);
      ProgressResponse resp;
      resp.progress = *progress;
      resp.done = done.ok() && *done ? 1 : 0;
      SendFrame(io, conn, EncodeProgressResponse(resp));
      return;
    }
    case MsgType::kClose: {
      const auto req = DecodeCloseRequest(frame.payload);
      if (!req.ok()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn, EncodeErrorFrame(MsgType::kClose, req.status()));
        return;
      }
      const Status closed = service_->CloseSession(req->session_id);
      if (!closed.ok()) {
        SendFrame(io, conn, EncodeErrorFrame(MsgType::kClose, closed));
        return;
      }
      auto it = std::find(conn->sessions.begin(), conn->sessions.end(),
                          req->session_id);
      if (it != conn->sessions.end()) conn->sessions.erase(it);
      c_.wire_sessions_closed->Inc();
      SendFrame(io, conn, EncodeCloseResponse());
      return;
    }
    case MsgType::kStats: {
      if (!frame.payload.empty()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(
                      MsgType::kStats,
                      Status::InvalidArgument(
                          "StatsRequest carries a nonempty payload")));
        return;
      }
      SendFrame(io, conn, EncodeStatsResponse(BuildWireStats()));
      return;
    }
    case MsgType::kMetricsDump: {
      if (!frame.payload.empty()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(
                      MsgType::kMetricsDump,
                      Status::InvalidArgument(
                          "MetricsDumpRequest carries a nonempty payload")));
        return;
      }
      // The wire twin of GET /metrics: the same RenderPrometheus text,
      // reachable through the protocol the load generator already speaks
      // (and, like kStats, never shed — see Sheddable).
      SendFrame(io, conn,
                EncodeMetricsDumpResponse(registry_->RenderPrometheus()));
      return;
    }
    case MsgType::kIngestRecord: {
      auto req = DecodeIngestRecordRequest(frame.payload);
      if (!req.ok()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(MsgType::kIngestRecord, req.status()));
        return;
      }
      std::vector<PipelineRecord> records;
      records.push_back(std::move(req->record));
      IngestRecords(io, conn, MsgType::kIngestRecord, std::move(records));
      return;
    }
    case MsgType::kIngestBatch: {
      auto req = DecodeIngestBatchRequest(frame.payload);
      if (!req.ok()) {
        c_.protocol_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(MsgType::kIngestBatch, req.status()));
        return;
      }
      IngestRecords(io, conn, MsgType::kIngestBatch,
                    std::move(req->records));
      return;
    }
  }
  // Unreachable: FrameDecoder rejects unknown type bytes.
  c_.protocol_errors->Inc();
}

void TcpServer::AnswerShed(IoThread* io, Connection* conn,
                           const InboxEntry& entry) {
  (void)RPE_INJECT_FAULT("server.shed");  // sync hook: a shed was answered
  if (entry.shed_records > 0) {
    c_.records_ingest_shed->Inc(entry.shed_records);
  } else {
    c_.requests_shed->Inc();
  }
  SendFrame(io, conn,
            EncodeErrorFrame(
                entry.frame.type,
                Status::Unavailable(
                    "server overloaded: in-flight budget exceeded, retry "
                    "after backoff")));
}

void TcpServer::IngestRecords(IoThread* io, Connection* conn, MsgType type,
                              std::vector<PipelineRecord> records) {
  if (ingest_ == nullptr) {
    // Replay-only server: a well-formed ingest frame is not a protocol
    // error, the deployment just has no online loop to feed.
    SendFrame(io, conn,
              EncodeErrorFrame(type, Status::NotImplemented(
                                         "server has no ingest queue")));
    return;
  }
  const size_t watermark = options_.ingest_shed_watermark > 0
                               ? options_.ingest_shed_watermark
                               : ingest_->capacity();
  if (ingest_->size() + records.size() > watermark) {
    // Watermark shed: the whole frame is refused with busy before any
    // record is enqueued — partial acceptance would make client-side
    // reconciliation ambiguous. Queue-full drops below can then only
    // happen when another producer races us past the watermark.
    (void)RPE_INJECT_FAULT("server.shed");
    c_.records_ingest_shed->Inc(records.size());
    SendFrame(io, conn,
              EncodeErrorFrame(
                  type, Status::Unavailable(
                            "server overloaded: ingest queue at watermark, "
                            "retry after backoff")));
    return;
  }
  IngestResponse resp;
  for (PipelineRecord& record : records) {
    if (RPE_INJECT_FAULT("server.ingest")) {
      // Injected drop at the wire→queue edge: accounted exactly like a
      // queue-full drop, visible in the response and the counters.
      ++resp.dropped;
      continue;
    }
    if (ingest_->Push(std::move(record))) {
      ++resp.accepted;
    } else {
      ++resp.dropped;
    }
  }
  c_.records_ingested->Inc(resp.accepted);
  c_.records_ingest_dropped->Inc(resp.dropped);
  SendFrame(io, conn, EncodeIngestResponse(type, resp));
}

void TcpServer::DispatchInbox(IoThread* io, Connection* conn) {
  while (!conn->inbox.empty() && !conn->advancing && !conn->paused_read &&
         !conn->dead) {
    const InboxEntry entry = std::move(conn->inbox.front());
    conn->inbox.pop_front();
    if (entry.shed) {
      AnswerShed(io, conn, entry);
      FinishRequest("request.shed", entry.trace_id, entry.recv_ns, 0);
      continue;
    }
    inflight_total_.fetch_sub(1, std::memory_order_relaxed);
    const MsgType type = entry.frame.type;
    obs::SlowScratch::BeginRequest();
    {
      // Child spans opened while handling (shard route, service calls)
      // parent to this request without threading ids through signatures.
      obs::TraceContext::Scope scope(entry.trace_id);
      HandleFrame(io, conn, entry);
    }
    // A kAdvance defers into the batch; its root span and latency sample
    // are recorded when RunAdvanceBatch answers it.
    if (!conn->advancing) {
      FinishRequest(SpanNameFor(type), entry.trace_id, entry.recv_ns, 0);
    }
  }
}

void TcpServer::FinishRequest(const char* name, uint64_t trace_id,
                              uint64_t recv_ns, uint64_t arg) {
  const uint64_t now = MonotonicNanos();
  const uint64_t latency = now > recv_ns ? now - recv_ns : 0;
  request_latency_->Record(latency);
  obs::Tracer& tracer = obs::Tracer::Global();
  if (trace_id != 0) {
    tracer.Record(name, trace_id, 0, recv_ns, latency);
  }
  const uint64_t threshold = tracer.slow_threshold_ns();
  if (threshold != 0 && latency >= threshold) {
    tracer.CountSlowRequest();
    RPE_LOG_WARN << "slow request " << name << ": "
                 << static_cast<double>(latency) / 1e6 << " ms ["
                 << obs::SlowScratch::Breakdown() << "]";
  }
}

void TcpServer::RunAdvanceBatch(IoThread* io) {
  // Deficit round-robin over the batch: one observation step per pending
  // request per round, so budgets interleave fairly (the front-end mirror
  // of MonitorService::Tick's discipline). Bounded by the per-request
  // kMaxAdvanceSteps cap the decoder enforces.
  std::vector<AdvanceWork>& batch = io->batch;
  size_t active = batch.size();
  while (active > 0) {
    for (AdvanceWork& w : batch) {
      if (w.retired) continue;
      // Each step's "advance.step" span (opened inside the service)
      // parents to the request whose budget it came from, even though the
      // batch interleaves requests deficit-fairly.
      obs::TraceContext::Scope scope(w.trace_id);
      const auto step = service_->Advance(w.session);
      if (step.ok()) {
        w.progress = *step;
        ++w.taken;
        c_.advance_steps->Inc();
        if (w.taken >= w.budget) {
          const auto done = service_->Done(w.session);
          w.done = done.ok() && *done;
          w.retired = true;
          --active;
        }
        continue;
      }
      if (step.status().code() == StatusCode::kOutOfRange) {
        // Replay exhausted. If no step was taken this request, report the
        // resting progress so the response is still well-formed.
        if (w.taken == 0) {
          const auto progress = service_->Progress(w.session);
          if (progress.ok()) w.progress = *progress;
        }
        w.done = true;
      } else {
        w.error = step.status();
      }
      w.retired = true;
      --active;
    }
  }
  for (AdvanceWork& w : batch) {
    Connection* conn = w.conn;
    if (conn->dead) continue;
    if (!w.error.ok()) {
      SendFrame(io, conn, EncodeErrorFrame(MsgType::kAdvance, w.error));
    } else {
      AdvanceResponse resp;
      resp.progress = w.progress;
      resp.steps = w.taken;
      resp.done = w.done ? 1 : 0;
      SendFrame(io, conn, EncodeAdvanceResponse(resp));
    }
    FinishRequest("request.advance", w.trace_id, w.recv_ns, w.taken);
    conn->advancing = false;
  }
  batch.clear();
}

bool TcpServer::ReadInto(IoThread* io, Connection* conn) {
  char chunk[kReadChunk];
  while (!conn->paused_read) {
    ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
    if (RPE_INJECT_FAULT("server.read")) {
      n = -1;
      errno = ECONNRESET;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      c_.io_errors->Inc();
      CloseConnection(io, conn);
      return false;
    }
    if (n == 0) {  // peer closed
      CloseConnection(io, conn);
      return false;
    }
    c_.bytes_received->Inc(static_cast<uint64_t>(n));
    conn->decoder.Feed(chunk, static_cast<size_t>(n));
    while (true) {
      obs::Tracer& tracer = obs::Tracer::Global();
      const bool tracing = tracer.enabled();
      const uint64_t decode_start = tracing ? MonotonicNanos() : 0;
      WireFrame frame;
      auto next = conn->decoder.Next(&frame);
      bool forced = false;
      if (next.ok() && *next && RPE_INJECT_FAULT("server.frame")) {
        // Injected framing fault: treat the frame as hostile.
        next = Status::IOError("injected failure: server.frame");
        forced = true;
      }
      if (!next.ok()) {
        // Hostile header (or injected framing fault): the stream cannot
        // be re-synchronized. Answer with the error, flush, drop.
        c_.protocol_errors->Inc(forced ? 0 : 1);
        if (forced) c_.io_errors->Inc();
        SendFrame(io, conn,
                  EncodeErrorFrame(MsgType::kStats, next.status()));
        FlushWrites(io, conn);
        if (!conn->dead) CloseConnection(io, conn);
        return false;
      }
      if (!*next) break;
      c_.frames_received->Inc();
      InboxEntry entry;
      entry.frame = std::move(frame);
      // The request's clock starts at decode; its root span id is minted
      // here so every downstream child (route, advance steps, a swap's
      // retrain) can parent to it.
      entry.recv_ns = MonotonicNanos();
      if (tracing) {
        entry.trace_id = tracer.NewSpanId();
        tracer.Record("frame.decode", tracer.NewSpanId(), entry.trace_id,
                      decode_start, entry.recv_ns - decode_start,
                      static_cast<uint64_t>(entry.frame.type));
      }
      // Admission control happens here, at read time: a frame over the
      // per-connection or global in-flight budget is marked shed and its
      // payload released immediately (a flood costs inbox slots, not
      // payload bytes), but it keeps its slot so the busy response leaves
      // in FIFO order at dispatch.
      if (Sheddable(entry.frame.type) &&
          (conn->inbox.size() >= options_.max_inflight_per_conn ||
           inflight_total_.load(std::memory_order_relaxed) >=
               options_.max_inflight_total)) {
        entry.shed = true;
        if (entry.frame.type == MsgType::kIngestRecord ||
            entry.frame.type == MsgType::kIngestBatch) {
          entry.shed_records = IngestFrameRecords(entry.frame);
        }
        entry.frame.payload.clear();
        entry.frame.payload.shrink_to_fit();
      } else {
        inflight_total_.fetch_add(1, std::memory_order_relaxed);
      }
      conn->inbox.push_back(std::move(entry));
    }
  }
  return true;
}

void TcpServer::IoLoop(IoThread* io) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    const bool stopping = stop_.load(std::memory_order_relaxed);
    if (stopping) break;
    const int n = ::epoll_wait(io->epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == io->wake_fd) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(io->wake_fd, &drained, sizeof drained);
        // Adopt handed-off connections.
        std::vector<int> adopted;
        {
          std::lock_guard<std::mutex> lock(io->handoff_mu);
          adopted.swap(io->handoff);
        }
        for (int cfd : adopted) {
          auto conn = std::make_unique<Connection>();
          conn->fd = cfd;
          conn->shard = io->index % service_->num_shards();
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = cfd;
          if (::epoll_ctl(io->epoll_fd, EPOLL_CTL_ADD, cfd, &ev) != 0) {
            ::close(cfd);
            c_.io_errors->Inc();
            continue;
          }
          io->conns.emplace(cfd, std::move(conn));
        }
        continue;
      }
      auto it = io->conns.find(fd);
      if (it == io->conns.end()) continue;
      Connection* conn = it->second.get();
      const uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(io, conn);
        continue;
      }
      if ((ev & EPOLLOUT) != 0 && !FlushWrites(io, conn)) continue;
      if ((ev & EPOLLIN) != 0 && !ReadInto(io, conn)) continue;
    }
    // Batched dispatch: every readable connection has decoded its frames;
    // answer cheap requests inline and interleave the Advance work
    // deficit-fairly, repeating until all frames decoded this iteration
    // are answered (each pass consumes at least one frame). Flushing can
    // lift a backpressure pause, which re-enables dispatch for frames the
    // pause was holding — hence the outer loop.
    bool dispatchable = true;
    while (dispatchable) {
      while (true) {
        for (auto& [fd, conn] : io->conns) DispatchInbox(io, conn.get());
        if (io->batch.empty()) break;
        RunAdvanceBatch(io);
      }
      // One flush per touched connection: responses for a whole batch
      // leave in as few write() calls as the kernel allows.
      for (auto it2 = io->conns.begin(); it2 != io->conns.end();) {
        Connection* conn = (it2++)->second.get();
        if (conn->pending_write() > 0) FlushWrites(io, conn);
      }
      dispatchable = false;
      for (auto& [fd, conn] : io->conns) {
        if (!conn->inbox.empty() && !conn->advancing &&
            !conn->paused_read) {
          dispatchable = true;
          break;
        }
      }
    }
  }

  // Drain: stop reading, flush what is already queued (bounded by
  // drain_timeout), then close everything — sessions included.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.drain_timeout;
  // Answer frames already decoded before the stop landed.
  while (true) {
    for (auto& [fd, conn] : io->conns) DispatchInbox(io, conn.get());
    if (io->batch.empty()) break;
    RunAdvanceBatch(io);
  }
  bool pending = true;
  while (pending && std::chrono::steady_clock::now() < deadline) {
    pending = false;
    for (auto it = io->conns.begin(); it != io->conns.end();) {
      Connection* conn = (it++)->second.get();
      if (conn->pending_write() == 0) continue;
      if (!FlushWrites(io, conn)) continue;  // conn died and was erased
      if (!conn->dead && conn->pending_write() > 0) pending = true;
    }
    if (pending) {
      ::epoll_wait(io->epoll_fd, events, kMaxEvents, 10);
    }
  }
  while (!io->conns.empty()) {
    CloseConnection(io, io->conns.begin()->second.get());
  }
}

TcpServerStats TcpServer::GetStats() const {
  // The registry counters ARE the stats — this struct is a point-in-time
  // read of the same cells /metrics scrapes.
  TcpServerStats s;
  s.connections_accepted = c_.connections_accepted->Value();
  s.connections_closed = c_.connections_closed->Value();
  s.frames_received = c_.frames_received->Value();
  s.frames_sent = c_.frames_sent->Value();
  s.bytes_received = c_.bytes_received->Value();
  s.bytes_sent = c_.bytes_sent->Value();
  s.protocol_errors = c_.protocol_errors->Value();
  s.io_errors = c_.io_errors->Value();
  s.wire_sessions_opened = c_.wire_sessions_opened->Value();
  s.wire_sessions_closed = c_.wire_sessions_closed->Value();
  s.advance_steps = c_.advance_steps->Value();
  s.requests_shed = c_.requests_shed->Value();
  s.records_ingested = c_.records_ingested->Value();
  s.records_ingest_dropped = c_.records_ingest_dropped->Value();
  s.records_ingest_shed = c_.records_ingest_shed->Value();
  return s;
}

WireStats TcpServer::BuildWireStats() const {
  const ShardedMonitorService::Stats svc = service_->GetStats();
  const TcpServerStats tcp = GetStats();
  WireStats w;
  w.sessions_opened = svc.total.sessions_opened;
  w.sessions_completed = svc.total.sessions_completed;
  w.decisions = svc.total.decisions;
  w.observations_scored = svc.total.observations_scored;
  w.model_generation = svc.total.model_generation;
  w.connections_accepted = tcp.connections_accepted;
  w.connections_closed = tcp.connections_closed;
  w.frames_received = tcp.frames_received;
  w.frames_sent = tcp.frames_sent;
  w.bytes_received = tcp.bytes_received;
  w.bytes_sent = tcp.bytes_sent;
  w.protocol_errors = tcp.protocol_errors;
  w.io_errors = tcp.io_errors;
  w.wire_sessions_opened = tcp.wire_sessions_opened;
  w.wire_sessions_closed = tcp.wire_sessions_closed;
  w.advance_steps = tcp.advance_steps;
  w.p50_replay_ms = svc.total.p50_replay_ms;
  w.p95_replay_ms = svc.total.p95_replay_ms;
  w.records_ingested = tcp.records_ingested;
  w.records_ingest_dropped = tcp.records_ingest_dropped;
  w.records_ingest_shed = tcp.records_ingest_shed;
  w.requests_shed = tcp.requests_shed;
  w.ingest_pushed = svc.total.ingest.pushed;
  w.ingest_dropped = svc.total.ingest.dropped;
  w.ingest_drained = svc.total.ingest.drained;
  w.ingest_queue_size = svc.total.ingest.queue_size;
  w.retrains = svc.total.ingest.retrains;
  return w;
}

}  // namespace rpe
