// Online-learning loop tests: exact drop accounting on the bounded ingest
// queue, deterministic retrain-threshold triggering, swap-generation
// monotonicity through MonitorService, the record-emission hooks, and a
// starvation regression for the deficit-fair budgeted Tick().
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "harness/runner.h"
#include "serving/ingest.h"
#include "serving/monitor_service.h"
#include "serving/trainer_loop.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

PipelineRecord LabeledRecord(const std::vector<PipelineRecord>& pool,
                             size_t i) {
  PipelineRecord r = pool[i % pool.size()];
  r.query = "q" + std::to_string(i);
  return r;
}

/// Observe-only failpoint armed for the scope of one test: WaitForHits
/// replaces sleep-based synchronization, and the disarm is exception- and
/// assertion-failure-safe.
class ScopedObserve {
 public:
  explicit ScopedObserve(std::string name) : name_(std::move(name)) {
    FailPoints::Observe(name_);
  }
  ~ScopedObserve() { FailPoints::Disarm(name_); }
  bool WaitForHits(uint64_t n, std::chrono::seconds timeout =
                                   std::chrono::seconds(30)) const {
    return FailPoints::WaitForHits(name_, n, timeout);
  }

 private:
  const std::string name_;
};

MartParams TinyParams() {
  MartParams params;
  params.num_trees = 6;
  params.tree.max_leaves = 8;
  params.seed = 7;
  return params;
}

TrainerLoop::Options TinyTrainerOptions() {
  TrainerLoop::Options options;
  options.retrain_min_records = 32;
  options.min_corpus = 8;
  options.max_corpus = 256;
  options.pool = PoolOriginalThree();
  options.params = TinyParams();
  return options;
}

std::shared_ptr<const SelectorStack> TinyStack(uint64_t record_seed,
                                               uint64_t train_seed) {
  MartParams params = TinyParams();
  params.seed = train_seed;
  return std::make_shared<const SelectorStack>(SelectorStack::Train(
      RandomRecords(60, record_seed), PoolOriginalThree(), params));
}

// ---------------------------------------------------------------------------
// RecordIngestQueue

TEST(RecordIngestQueueTest, DropAccountingIsExactUnderBackpressure) {
  const auto pool = RandomRecords(4, 3);
  RecordIngestQueue queue(8);
  size_t accepted = 0, rejected = 0;
  for (size_t i = 0; i < 20; ++i) {
    if (queue.Push(LabeledRecord(pool, i))) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // Exactly capacity records fit; every further offer is dropped and
  // counted — nothing is lost silently.
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(rejected, 12u);
  EXPECT_EQ(queue.pushed(), 8u);
  EXPECT_EQ(queue.dropped(), 12u);
  EXPECT_EQ(queue.size(), 8u);

  std::vector<PipelineRecord> out;
  EXPECT_EQ(queue.DrainBatch(&out, 5), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].query, "q" + std::to_string(i));  // FIFO order
  }
  EXPECT_EQ(queue.DrainBatch(&out, 100), 3u);
  EXPECT_EQ(queue.size(), 0u);

  const IngestStats stats = queue.GetStats();
  EXPECT_EQ(stats.pushed, 8u);
  EXPECT_EQ(stats.dropped, 12u);
  EXPECT_EQ(stats.drained, 8u);
  EXPECT_EQ(stats.batches, 2u);

  // After capacity frees up, pushes are accepted again.
  EXPECT_TRUE(queue.Push(LabeledRecord(pool, 99)));
  // ... but never after Close; late offers count as dropped.
  queue.Close();
  EXPECT_FALSE(queue.Push(LabeledRecord(pool, 100)));
  EXPECT_EQ(queue.dropped(), 13u);
  // Records queued before Close stay drainable.
  out.clear();
  EXPECT_EQ(queue.DrainBatch(&out, 100), 1u);
  EXPECT_EQ(out[0].query, "q99");
}

TEST(RecordIngestQueueTest, WaitAndDrainWakesOnPushAndOnClose) {
  const auto pool = RandomRecords(2, 5);
  RecordIngestQueue queue(16);
  // The "ingest.wait" sync hook fires as the consumer enters WaitAndDrain,
  // so each producer thread acts only once the consumer is really parked —
  // the wakeup itself is what's under test, with no sleep-tuned race.
  const ScopedObserve entered("ingest.wait");

  std::thread producer([&] {
    EXPECT_TRUE(entered.WaitForHits(1));
    queue.Push(LabeledRecord(pool, 0));
  });
  std::vector<PipelineRecord> out;
  // Far below the 30s timeout: the push must wake the consumer.
  EXPECT_EQ(queue.WaitAndDrain(&out, 8, std::chrono::seconds(30)), 1u);
  producer.join();

  std::thread closer([&] {
    EXPECT_TRUE(entered.WaitForHits(2));
    queue.Close();
  });
  out.clear();
  EXPECT_EQ(queue.WaitAndDrain(&out, 8, std::chrono::seconds(30)), 0u);
  EXPECT_TRUE(queue.closed());
  closer.join();
}

// ---------------------------------------------------------------------------
// TrainerLoop

TEST(TrainerLoopTest, RetrainThresholdTriggersDeterministically) {
  const auto pool = RandomRecords(8, 11);
  auto initial = TinyStack(21, 9);
  MonitorService service(initial);
  RecordIngestQueue queue(256);
  TrainerLoop trainer(&queue, &service, TinyTrainerOptions());
  service.SetIngestStatsProvider([&trainer] { return trainer.GetStats(); });

  // One below the row-count threshold: drain happens, no retrain.
  for (size_t i = 0; i < 31; ++i) queue.Push(LabeledRecord(pool, i));
  EXPECT_EQ(trainer.RunOnce(), 31u);
  EXPECT_EQ(trainer.retrains(), 0u);
  EXPECT_EQ(service.model_generation(), 0u);
  EXPECT_EQ(service.models().get(), initial.get());

  // The 32nd record trips the threshold: exactly one retrain + publish.
  queue.Push(LabeledRecord(pool, 31));
  EXPECT_EQ(trainer.RunOnce(), 1u);
  EXPECT_EQ(trainer.retrains(), 1u);
  EXPECT_EQ(service.model_generation(), 1u);
  EXPECT_NE(service.models().get(), initial.get());

  // An empty step never retrains (the new-record counter was reset).
  EXPECT_EQ(trainer.RunOnce(), 0u);
  EXPECT_EQ(trainer.retrains(), 1u);

  // Exactly one more threshold's worth: exactly one more retrain.
  for (size_t i = 0; i < 32; ++i) queue.Push(LabeledRecord(pool, 100 + i));
  EXPECT_EQ(trainer.RunOnce(), 32u);
  EXPECT_EQ(trainer.retrains(), 2u);
  EXPECT_EQ(service.model_generation(), 2u);

  const MonitorService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.model_generation, 2u);
  EXPECT_EQ(stats.ingest.retrains, 2u);
  EXPECT_EQ(stats.ingest.last_swap_generation, 2u);
  EXPECT_EQ(stats.ingest.pushed, 64u);
  EXPECT_EQ(stats.ingest.drained, 64u);
  EXPECT_EQ(stats.ingest.dropped, 0u);
  EXPECT_EQ(stats.ingest.corpus_size, 64u);
  EXPECT_GT(stats.ingest.last_retrain_ms, 0.0);
}

TEST(TrainerLoopTest, SameRecordStreamPublishesByteIdenticalStacks) {
  const auto pool = RandomRecords(8, 13);
  std::string encodings[2];
  for (int round = 0; round < 2; ++round) {
    MonitorService service(TinyStack(21, 9));
    RecordIngestQueue queue(256);
    TrainerLoop trainer(&queue, &service, TinyTrainerOptions());
    for (size_t i = 0; i < 48; ++i) queue.Push(LabeledRecord(pool, i));
    trainer.RunOnce();
    ASSERT_EQ(trainer.retrains(), 1u);
    encodings[round] = EncodeSelectorStack(*service.models());
  }
  // Retraining is deterministic in the drained sequence, so the published
  // snapshots agree byte for byte across runs.
  EXPECT_EQ(encodings[0], encodings[1]);
}

TEST(TrainerLoopTest, SlidingCorpusAgesOutOldestRecords) {
  const auto pool = RandomRecords(8, 17);
  MonitorService service(TinyStack(21, 9));
  RecordIngestQueue queue(512);
  TrainerLoop::Options options = TinyTrainerOptions();
  options.max_corpus = 40;
  TrainerLoop trainer(&queue, &service, options);
  for (size_t i = 0; i < 100; ++i) queue.Push(LabeledRecord(pool, i));
  while (trainer.RunOnce() > 0) {
  }
  EXPECT_EQ(trainer.GetStats().corpus_size, 40u);
}

TEST(TrainerLoopTest, BackgroundThreadRetrainsAndStopDrainsTail) {
  const auto pool = RandomRecords(8, 19);
  MonitorService service(TinyStack(21, 9));
  RecordIngestQueue queue(256);
  TrainerLoop::Options options = TinyTrainerOptions();
  options.poll_interval = std::chrono::milliseconds(2);
  TrainerLoop trainer(&queue, &service, options);
  // "trainer.retrain.done" fires after each successful publish: wait on
  // the hook instead of polling retrains() on a sleep loop.
  const ScopedObserve published("trainer.retrain.done");
  trainer.Start();
  for (size_t i = 0; i < 80; ++i) queue.Push(LabeledRecord(pool, i));
  EXPECT_TRUE(published.WaitForHits(1));
  EXPECT_GE(trainer.retrains(), 1u);
  queue.Close();
  trainer.Stop();
  // Stop's final drain accounts for every accepted record.
  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.pushed, 80u);
  EXPECT_EQ(stats.drained, 80u);
  EXPECT_EQ(stats.queue_size, 0u);
  EXPECT_EQ(service.model_generation(), stats.last_swap_generation);
}

// ---------------------------------------------------------------------------
// Swap-generation monotonicity

TEST(MonitorServiceGenerationTest, SwapGenerationIsStrictlyMonotonic) {
  MonitorService service(TinyStack(21, 9));
  EXPECT_EQ(service.model_generation(), 0u);
  EXPECT_EQ(service.GetStats().model_generation, 0u);
  uint64_t last = 0;
  for (int i = 0; i < 5; ++i) {
    const uint64_t gen =
        service.SwapModels(TinyStack(30 + static_cast<uint64_t>(i), 9));
    EXPECT_EQ(gen, last + 1);
    EXPECT_EQ(service.model_generation(), gen);
    EXPECT_EQ(service.GetStats().model_generation, gen);
    last = gen;
  }
}

// ---------------------------------------------------------------------------
// Record-emission hooks

TEST(EmissionHookTest, ExecutorInvokesOnRunComplete) {
  auto catalog = MakeSmallCatalog();
  auto root = MakeTableScan("t_fact");
  root->est_rows = 1000.0;
  auto plan = FinalizePlan(std::move(root), *catalog);
  ASSERT_TRUE(plan.ok());

  RecordIngestQueue queue(64);
  ExecOptions options;
  int calls = 0;
  options.on_run_complete = [&](const QueryRunResult& run) {
    ++calls;
    // The hooked run is fully assembled: featurize + enqueue its
    // pipelines exactly as a live ingest tap would.
    for (const Pipeline& pipeline : run.pipelines) {
      PipelineView view{&run, &pipeline};
      PipelineRecord record;
      if (MakeRecord(view, "hook", "q", "", &record)) {
        queue.Push(std::move(record));
      }
    }
  };
  auto result = ExecutePlan(**plan, *catalog, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(queue.pushed(), queue.size());
  EXPECT_GT(queue.pushed(), 0u);
}

TEST(EmissionHookTest, RunWorkloadStreamsEveryRecordThroughOnRecord) {
  WorkloadConfig config;
  config.kind = WorkloadKind::kTpch;
  config.name = "tpch-hook";
  config.scale = 2.0;
  config.zipf = 1.0;
  config.tuning = TuningLevel::kPartiallyTuned;
  config.num_queries = 8;
  config.seed = 77;
  auto workload = BuildWorkload(config);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  RunOptions options;
  std::vector<std::string> streamed;
  options.on_record = [&](const PipelineRecord& r) {
    streamed.push_back(r.query + "/" + std::to_string(r.pipeline_id));
  };
  auto records = RunWorkload(*workload, options);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(streamed.size(), records->size());
  for (size_t i = 0; i < records->size(); ++i) {
    // Streamed in execution order, one call per returned record.
    EXPECT_EQ(streamed[i], (*records)[i].query + "/" +
                               std::to_string((*records)[i].pipeline_id));
  }
}

// ---------------------------------------------------------------------------
// Budgeted fair Tick: starvation regression

class FairTickTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    plans_ = new std::vector<std::unique_ptr<PhysicalPlan>>();
    runs_ = new std::vector<QueryRunResult>();
    // A long run (dense observation stream) and a short one (sparse).
    ExecOptions long_options;
    long_options.target_observations = 220;
    AddRun(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1),
           long_options);
    ExecOptions short_options;
    short_options.target_observations = 12;
    short_options.max_observations = 40;
    AddRun(MakeTableScan("t_fact"), short_options);
    stack_ = TinyStack(11, 7);
  }
  static void TearDownTestSuite() {
    delete runs_;
    delete plans_;
    delete catalog_;
    stack_.reset();
    runs_ = nullptr;
    plans_ = nullptr;
    catalog_ = nullptr;
  }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  static void AddRun(std::unique_ptr<PlanNode> root,
                     const ExecOptions& options) {
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans_->push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_->back(), *catalog_, options);
    ASSERT_TRUE(result.ok());
    runs_->push_back(std::move(result).ValueOrDie());
  }

  static Catalog* catalog_;
  static std::vector<std::unique_ptr<PhysicalPlan>>* plans_;
  static std::vector<QueryRunResult>* runs_;
  static std::shared_ptr<const SelectorStack> stack_;
};

Catalog* FairTickTest::catalog_ = nullptr;
std::vector<std::unique_ptr<PhysicalPlan>>* FairTickTest::plans_ = nullptr;
std::vector<QueryRunResult>* FairTickTest::runs_ = nullptr;
std::shared_ptr<const SelectorStack> FairTickTest::stack_;

TEST_F(FairTickTest, BudgetedTickDoesNotStarveShortSessions) {
  const QueryRunResult& long_run = (*runs_)[0];
  const QueryRunResult& short_run = (*runs_)[1];
  const size_t long_len = long_run.observations.size();
  const size_t short_len = short_run.observations.size();
  ASSERT_GT(long_len, 3 * short_len)
      << "fixture must produce runs of very different lengths";

  // Four long-running sessions ahead of two short ones, with a budget of
  // two steps per tick: a scheduler that served sessions in id order
  // would not advance the short sessions at all until the long ones
  // finished (completion around tick 2 * long_len); deficit round-robin
  // guarantees every session one step per ceil(6/2) = 3 ticks.
  MonitorService service(stack_);
  constexpr size_t kLong = 4, kShort = 2, kBudget = 2;
  std::vector<MonitorService::SessionId> ids;
  for (size_t i = 0; i < kLong; ++i) {
    ids.push_back(*service.OpenSession(&long_run));
  }
  for (size_t i = 0; i < kShort; ++i) {
    ids.push_back(*service.OpenSession(&short_run));
  }
  const size_t n = ids.size();

  std::vector<size_t> completion_tick(n, 0);
  size_t tick = 0;
  while (service.Tick(kBudget) > 0) {
    ++tick;
    for (size_t i = 0; i < n; ++i) {
      if (completion_tick[i] == 0 && *service.Done(ids[i])) {
        completion_tick[i] = tick;
      }
    }
  }
  ++tick;  // the final tick that returned 0
  for (size_t i = 0; i < n; ++i) {
    if (completion_tick[i] == 0) completion_tick[i] = tick;
  }

  const size_t rounds = (n + kBudget - 1) / kBudget;  // 3
  for (size_t i = kLong; i < n; ++i) {
    // Fairness bound: a short session advances at least once per `rounds`
    // ticks, so it finishes by rounds * short_len (+ slack for the tick
    // on which doneness is observed). Under id-ordered starvation this
    // would be ~2 * long_len.
    EXPECT_LE(completion_tick[i], rounds * short_len + rounds)
        << "short session " << i << " was starved";
  }
  // Total work is conserved: every session fully replays and the scores
  // match the sequential monitor bit for bit.
  ProgressMonitor sequential(&stack_->static_selector,
                             &stack_->dynamic_selector);
  const auto expected_long = sequential.ReplayQueryProgress(long_run);
  const auto expected_short = sequential.ReplayQueryProgress(short_run);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(*service.Done(ids[i]));
    EXPECT_EQ(*service.Progress(ids[i]),
              i < kLong ? expected_long.back() : expected_short.back());
    ASSERT_TRUE(service.CloseSession(ids[i]).ok());
  }
}

TEST_F(FairTickTest, EqualSessionsCompleteWithinOneRoundOfEachOther) {
  const QueryRunResult& run = (*runs_)[1];
  const size_t len = run.observations.size();
  MonitorService service(stack_);
  constexpr size_t kSessions = 4, kBudget = 2;
  std::vector<MonitorService::SessionId> ids;
  for (size_t i = 0; i < kSessions; ++i) {
    ids.push_back(*service.OpenSession(&run));
  }
  std::vector<size_t> completion_tick(kSessions, 0);
  size_t tick = 0;
  while (service.Tick(kBudget) > 0) {
    ++tick;
    for (size_t i = 0; i < kSessions; ++i) {
      if (completion_tick[i] == 0 && *service.Done(ids[i])) {
        completion_tick[i] = tick;
      }
    }
  }
  ++tick;
  for (size_t i = 0; i < kSessions; ++i) {
    if (completion_tick[i] == 0) completion_tick[i] = tick;
  }
  // Strict alternation: with identical lengths, no session finishes more
  // than one tick before any other (an unfair scheduler would finish its
  // favorites a whole replay earlier). Total ticks = steps / budget.
  const auto [min_it, max_it] =
      std::minmax_element(completion_tick.begin(), completion_tick.end());
  EXPECT_LE(*max_it - *min_it, 1u);
  EXPECT_EQ(tick, kSessions * len / kBudget);
  for (auto id : ids) ASSERT_TRUE(service.CloseSession(id).ok());
}

// Unbudgeted Tick (the default) must behave exactly as before: every
// unfinished session advances once per call.
TEST_F(FairTickTest, UnbudgetedTickAdvancesEverySession) {
  const QueryRunResult& run = (*runs_)[1];
  MonitorService service(stack_);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(service.OpenSession(&run).ok());
  size_t ticks = 0;
  while (service.Tick() > 0) ++ticks;
  EXPECT_EQ(ticks, run.observations.size() - 1);
  EXPECT_EQ(service.GetStats().observations_scored,
            3 * run.observations.size());
}

}  // namespace
}  // namespace rpe
