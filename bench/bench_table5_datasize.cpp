// Table 5: sensitivity to database size between training and test workloads
// (TPC-H at scale factors 2 / 5 / 10; train on two sizes, test the third).
#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  const auto records = TpchVariantRecords("size");
  RunSensitivityTable(
      "data size", {"sf2", "sf5", "sf10"}, records,
      "=== Table 5: varying the data size between test/training sets ===");
  return 0;
}
