#include "selection/features.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpe {

namespace {

/// Estimators used in the pairwise-divergence features.
constexpr EstimatorKind kDivergencePairs[][2] = {
    {EstimatorKind::kDne, EstimatorKind::kTgn},
    {EstimatorKind::kDne, EstimatorKind::kTgnInt},
    {EstimatorKind::kTgn, EstimatorKind::kTgnInt},
};
constexpr size_t kNumPairs = 3;

/// Estimators used in the time-correlation features (§6, "Dynamic
/// Features": Cor for DNE, TGN, LUO, BATCHDNE, DNESEEK, TGNINT).
constexpr EstimatorKind kCorEstimators[] = {
    EstimatorKind::kDne,      EstimatorKind::kTgn,
    EstimatorKind::kLuo,      EstimatorKind::kBatchDne,
    EstimatorKind::kDneSeek,  EstimatorKind::kTgnInt,
};
constexpr size_t kNumCorEstimators = 6;

/// Descendant subtree span per node: in preorder, node i's subtree occupies
/// ids [i, i + size_i).
std::vector<int> SubtreeSizes(const PhysicalPlan& plan) {
  std::vector<int> sizes(plan.num_nodes(), 1);
  // Children have larger ids; iterate descending and add into parent.
  // Parent of a node is the nearest smaller id whose subtree would contain
  // it — easier: recompute via recursion over the tree.
  struct Rec {
    std::vector<int>* sizes;
    int Visit(const PlanNode* n) {
      int total = 1;
      for (const auto& c : n->children) total += Visit(c.get());
      (*sizes)[static_cast<size_t>(n->id)] = total;
      return total;
    }
  };
  Rec rec{&sizes};
  rec.Visit(plan.root());
  return sizes;
}

}  // namespace

const FeatureSchema& FeatureSchema::Get() {
  static const FeatureSchema schema;
  return schema;
}

FeatureSchema::FeatureSchema() {
  // --- static block ---
  for (size_t op = 0; op < kNumOpTypes; ++op) {
    const char* op_name = OpTypeName(static_cast<OpType>(op));
    names_.push_back(std::string("Count_") + op_name);
    names_.push_back(std::string("Card_") + op_name);
    names_.push_back(std::string("SelAt_") + op_name);
    names_.push_back(std::string("SelAbove_") + op_name);
    names_.push_back(std::string("SelBelow_") + op_name);
  }
  names_.push_back("SelAtDN");
  names_.push_back("NumNodes");
  names_.push_back("NumDrivers");
  names_.push_back("LogTotalE");
  names_.push_back("LogDriverE");
  names_.push_back("HasNljInner");
  names_.push_back("MaxNodeEShare");
  names_.push_back("EstBytesPerCall");
  num_static_ = names_.size();

  // --- dynamic block ---
  const char* pair_names[kNumPairs] = {"DNEvsTGN", "DNEvsTGNINT",
                                       "TGNvsTGNINT"};
  for (size_t p = 0; p < kNumPairs; ++p) {
    for (size_t m = 0; m < kNumMarkers; ++m) {
      names_.push_back(std::string(pair_names[p]) + "_" +
                       std::to_string(kMarkerPercents[m]));
    }
  }
  for (size_t e = 0; e < kNumCorEstimators; ++e) {
    const char* est_name = EstimatorName(kCorEstimators[e]);
    for (size_t i = 1; i <= kCorSteps; ++i) {
      for (size_t m = 0; m < kNumMarkers; ++m) {
        names_.push_back(std::string("Cor_") + est_name + "_" +
                         std::to_string(i) + "_" +
                         std::to_string(kMarkerPercents[m]));
      }
    }
  }
}

int MarkerObservation(const PipelineView& view, double pct) {
  if (view.pipeline->first_obs < 0) return -1;
  const double target = pct / 100.0;
  for (int oi = view.pipeline->first_obs; oi <= view.pipeline->last_obs;
       ++oi) {
    const Observation& obs = view.obs(static_cast<size_t>(oi));
    const double k = SumK(obs, view.pipeline->driver_nodes);
    const double e = SumE(obs, view.pipeline->driver_nodes);
    const double fraction = e > 0.0 ? k / e : (k > 0.0 ? 1.0 : 0.0);
    if (fraction >= target) return oi;
  }
  return -1;
}

std::vector<double> ExtractStaticFeatures(const PipelineView& view) {
  const PhysicalPlan& plan = *view.run->plan;
  const Pipeline& p = *view.pipeline;
  const std::vector<int> subtree = SubtreeSizes(plan);

  auto e0 = [&](int id) {
    return plan.node(id)->est_rows;
  };

  double total_e = 0.0;
  double max_e = 0.0;
  for (int id : p.nodes) {
    total_e += e0(id);
    max_e = std::max(max_e, e0(id));
  }
  const double safe_total = std::max(total_e, 1.0);

  // Descendant test via preorder spans: j is a descendant of i iff
  // i < j < i + subtree[i].
  auto is_descendant = [&](int j, int i) {
    return j > i && j < i + subtree[static_cast<size_t>(i)];
  };

  std::vector<double> features;
  features.reserve(FeatureSchema::Get().num_static_features());
  for (size_t op_i = 0; op_i < kNumOpTypes; ++op_i) {
    const OpType op = static_cast<OpType>(op_i);
    double count = 0.0, card = 0.0, above = 0.0, below = 0.0;
    for (int id : p.nodes) {
      if (plan.node(id)->op == op) {
        count += 1.0;
        card += e0(id);
      }
    }
    if (count > 0.0) {
      for (int i : p.nodes) {
        bool has_op_descendant = false;
        bool is_op_descendant = false;
        for (int j : p.nodes) {
          if (plan.node(j)->op != op) continue;
          if (is_descendant(j, i)) has_op_descendant = true;
          if (is_descendant(i, j)) is_op_descendant = true;
        }
        if (has_op_descendant) above += e0(i);
        if (is_op_descendant) below += e0(i);
      }
    }
    features.push_back(count);
    features.push_back(card);
    features.push_back(card / safe_total);
    features.push_back(above / safe_total);
    features.push_back(below / safe_total);
  }

  double driver_e = 0.0;
  for (int id : p.driver_nodes) driver_e += e0(id);
  features.push_back(driver_e / safe_total);  // SelAtDN
  features.push_back(static_cast<double>(p.nodes.size()));
  features.push_back(static_cast<double>(p.driver_nodes.size()));
  features.push_back(std::log1p(total_e));
  features.push_back(std::log1p(driver_e));
  double has_inner = 0.0;
  double est_bytes = 0.0;
  for (int id : p.nodes) {
    if (plan.node(id)->nlj_inner) has_inner = 1.0;
    est_bytes +=
        e0(id) *
        static_cast<double>(plan.node(id)->output_schema.row_width_bytes());
  }
  features.push_back(has_inner);
  features.push_back(max_e / safe_total);
  features.push_back(est_bytes / safe_total);
  RPE_CHECK_EQ(features.size(), FeatureSchema::Get().num_static_features());
  return features;
}

std::vector<double> ExtractAllFeatures(const PipelineView& view) {
  std::vector<double> features = ExtractStaticFeatures(view);
  const FeatureSchema& schema = FeatureSchema::Get();

  // Marker observations t{x}.
  int marker_obs[kNumMarkers];
  for (size_t m = 0; m < kNumMarkers; ++m) {
    marker_obs[m] =
        MarkerObservation(view, static_cast<double>(kMarkerPercents[m]));
  }

  // Pairwise divergences at each marker.
  const ProgressEstimator* pair_ests[kNumPairs][2];
  for (size_t pi = 0; pi < kNumPairs; ++pi) {
    pair_ests[pi][0] = &GetEstimator(kDivergencePairs[pi][0]);
    pair_ests[pi][1] = &GetEstimator(kDivergencePairs[pi][1]);
  }
  for (size_t pi = 0; pi < kNumPairs; ++pi) {
    for (size_t m = 0; m < kNumMarkers; ++m) {
      double value = 0.0;
      if (marker_obs[m] >= 0) {
        const size_t oi = static_cast<size_t>(marker_obs[m]);
        value = std::abs(pair_ests[pi][0]->Estimate(view, oi) -
                         pair_ests[pi][1]->Estimate(view, oi));
      }
      features.push_back(value);
    }
  }

  // Time-correlation features Cor_{e,i,x}, i = 1..k (k = 4): how the time
  // elapsed at sub-markers i*x/k relates to the estimator's value at t{x}.
  const double start = view.pipeline->start_time;
  for (size_t e = 0; e < kNumCorEstimators; ++e) {
    const ProgressEstimator& est = GetEstimator(kCorEstimators[e]);
    for (size_t i = 1; i <= kCorSteps; ++i) {
      for (size_t m = 0; m < kNumMarkers; ++m) {
        double value = 0.0;
        const double x = static_cast<double>(kMarkerPercents[m]);
        const int t_first =
            MarkerObservation(view, x / static_cast<double>(kCorSteps));
        const int t_i = MarkerObservation(
            view, x * static_cast<double>(i) / static_cast<double>(kCorSteps));
        const int t_x = marker_obs[m];
        if (t_first >= 0 && t_i >= 0 && t_x >= 0) {
          const double denom_time =
              view.obs(static_cast<size_t>(t_first)).vtime - start;
          const double est_at_x =
              est.Estimate(view, static_cast<size_t>(t_x));
          if (denom_time > 0.0 && est_at_x > 1e-6) {
            const double num_time =
                view.obs(static_cast<size_t>(t_i)).vtime - start;
            value = (num_time / denom_time) * (1.0 / est_at_x);
            value = std::min(value, 1e4);  // keep outliers bounded
          }
        }
        features.push_back(value);
      }
    }
  }
  RPE_CHECK_EQ(features.size(), schema.num_features());
  return features;
}

}  // namespace rpe
