// Table 2: sensitivity to selectivity/cardinality differences between
// training and test sets. Pipelines sharing an operator signature (>= 6
// instances) are sorted by their total GetNext calls and split into
// small/medium/large buckets; each bucket is held out in turn.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Table 2: varying the total number of GetNext calls "
               "between test/training sets (TPC-H) ===\n";
  const auto records = TpchVariantRecords("size");
  const auto buckets = SelectivityBuckets(records, 6);

  const std::vector<size_t> pool = PoolOriginalThree();
  const char* bucket_names[3] = {"\"small\" queries", "\"medium\" queries",
                                 "\"large\" queries"};
  TablePrinter table({"Estimator", bucket_names[0], bucket_names[1],
                      bucket_names[2]});
  std::vector<std::vector<std::string>> rows(4);
  rows[0].push_back("DNE");
  rows[1].push_back("TGN");
  rows[2].push_back("LUO");
  rows[3].push_back("EST. SEL.");
  for (int b = 0; b < 3; ++b) {
    const auto test = FilterByBucket(records, buckets, b);
    const auto train = FilterByBucket(records, buckets, b, /*invert=*/true);
    for (size_t i = 0; i < 3; ++i) {
      rows[i].push_back(TablePrinter::Pct(FractionOptimal(test, pool[i], pool)));
    }
    const auto eval = TrainAndEvaluate(train, test, pool,
                                       /*use_dynamic=*/false,
                                       ExperimentParams());
    rows[3].push_back(TablePrinter::Pct(eval.metrics.pct_optimal));
    std::cerr << "bucket " << b << ": train=" << train.size()
              << " test=" << test.size() << "\n";
  }
  for (auto& r : rows) table.AddRow(std::move(r));
  table.Print();
  std::cout << "\n(each column: selection trained on the two other GetNext "
               "buckets)\n";
  return 0;
}
