// Quickstart: run one query on a generated TPC-H-like database and watch
// every candidate progress estimator track (or fail to track) the true
// progress, then see what the trained selector would have picked.
//
//   $ ./examples/quickstart
#include <iostream>

#include "common/table_printer.h"
#include "harness/runner.h"
#include "selection/features.h"

using namespace rpe;

int main() {
  // 1. Build a small TPC-H-like database (deterministic, in memory) with a
  //    partially tuned physical design.
  WorkloadConfig config;
  config.kind = WorkloadKind::kTpch;
  config.name = "quickstart";
  config.scale = 5.0;
  config.zipf = 1.0;
  config.tuning = TuningLevel::kPartiallyTuned;
  config.num_queries = 0;  // we'll write our own query below
  config.seed = 7;
  auto workload = BuildWorkload(config);
  if (!workload.ok()) {
    std::cerr << "workload build failed: " << workload.status().ToString()
              << "\n";
    return 1;
  }

  // 2. Describe a query: orders JOIN lineitem, filtered on the order date,
  //    grouped by order priority.
  QuerySpec spec;
  spec.name = "quickstart_q1";
  spec.tables = {"orders", "lineitem"};
  JoinEdge join;
  join.left_idx = 0;
  join.left_col = "o_orderkey";
  join.right_col = "l_orderkey";
  spec.joins.push_back(join);
  FilterSpec filter;
  filter.table_idx = 0;
  filter.column = "o_orderdate";
  filter.kind = Predicate::Kind::kLe;
  filter.v1 = 1400;
  spec.filters.push_back(filter);
  AggSpec agg;
  agg.group_cols = {{0, "o_orderpriority"}};
  spec.agg = agg;

  // 3. Plan + execute; the engine records the GetNext counters of paper
  //    §3.1 at every observation point on its virtual clock.
  auto run = RunQuery(*workload, spec);
  if (!run.ok()) {
    std::cerr << "query failed: " << run.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Physical plan:\n" << run->plan->ToString() << "\n";
  std::cout << "Pipelines:\n"
            << PipelinesToString(run->result.pipelines) << "\n";

  // 4. Evaluate all candidate estimators on the dominant pipeline.
  const Pipeline* main_pipeline = nullptr;
  for (const auto& p : run->result.pipelines) {
    if (p.first_obs < 0) continue;
    if (main_pipeline == nullptr ||
        p.end_time - p.start_time >
            main_pipeline->end_time - main_pipeline->start_time) {
      main_pipeline = &p;
    }
  }
  PipelineView view{&run->result, main_pipeline};
  std::cout << "Estimator accuracy on the longest pipeline (P"
            << main_pipeline->id << "):\n";
  TablePrinter table({"Estimator", "L1 error", "L2 error", "max ratio"});
  for (const ProgressEstimator* est : SelectableEstimators()) {
    const auto errors = EvaluateEstimator(*est, view);
    table.AddRow({est->name(), TablePrinter::Fmt(errors.l1, 4),
                  TablePrinter::Fmt(errors.l2, 4),
                  TablePrinter::Fmt(errors.max_ratio, 1)});
  }
  table.Print();

  // 5. Show a live progress trace: true progress vs. DNE and TGN.
  std::cout << "\nProgress trace (true vs DNE vs TGN):\n";
  TablePrinter trace({"vtime", "true", "DNE", "TGN"});
  const int steps = 10;
  for (int i = 0; i <= steps; ++i) {
    const size_t oi = static_cast<size_t>(
        main_pipeline->first_obs +
        (main_pipeline->last_obs - main_pipeline->first_obs) * i / steps);
    trace.AddRow(
        {TablePrinter::Fmt(run->result.observations[oi].vtime, 0),
         TablePrinter::Pct(view.TrueProgress(oi), 1),
         TablePrinter::Pct(
             GetEstimator(EstimatorKind::kDne).Estimate(view, oi), 1),
         TablePrinter::Pct(
             GetEstimator(EstimatorKind::kTgn).Estimate(view, oi), 1)});
  }
  trace.Print();
  return 0;
}
