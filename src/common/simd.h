// Runtime SIMD dispatch for the hot kernels (batched QuickScorer scoring,
// dense histogram accumulation, CRC-32). Each kernel lives in its own TU
// with an always-compiled scalar reference implementation and optional
// vector variants compiled with function-level target attributes (the
// build stays portable -O2, no -march); at startup every kernel binds the
// best variant the running CPU supports, and the `RPE_SIMD` environment
// variable (off|scalar|sse42|avx2) caps the tier for A/B runs and the CI
// scalar-fallback leg.
//
// Determinism contract: a vector variant must be *bit-identical* to the
// scalar reference on every input — same doubles, same CRC words, same
// chosen leaves — so the dispatch tier is never observable in results,
// only in throughput. tests/simd_test.cpp enforces this differentially
// per kernel; anything that cannot meet it (e.g. reassociated FP sums)
// does not get a vector variant.
//
// The dispatch layer itself is a tested surface: ForceTier re-binds every
// kernel at runtime (tests/benches pin a tier in-process) and
// KernelReport names the bound implementation of each kernel for
// `rpe_cli version` and the serving stats output.
#pragma once

#include <string>

namespace rpe::simd {

/// Instruction-set tiers a kernel can bind to, in strength order. A tier
/// implies the ones below it; kSse42 also implies PCLMULQDQ (carry-less
/// multiply, used by the CRC fold — the two arrived together in Westmere
/// and are detected together here).
enum class Tier : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// Highest tier the running CPU supports (cpuid, cached on first call).
Tier DetectedTier();

/// The tier kernels are currently bound to: min(DetectedTier(), RPE_SIMD)
/// at startup, later changed only by ForceTier.
Tier ActiveTier();

/// Re-bind every kernel to min(tier, DetectedTier()) and return the tier
/// actually bound. Test/benchmark hook; also safe while other threads are
/// scoring (each kernel reads one atomic function pointer per call), but
/// calls already in flight may finish on the previous binding.
Tier ForceTier(Tier tier);

/// Short stable name: "scalar", "sse42", "avx2".
const char* TierName(Tier tier);

/// Parse an RPE_SIMD-style spec ("off" or "scalar", "sse42", "avx2") into
/// `*out`; false (and `*out` untouched) on anything else. Exposed so the
/// env contract is unit-testable.
bool ParseTier(const char* spec, Tier* out);

/// One line naming the active tier and the bound implementation of every
/// registered kernel, kernels sorted by name — e.g.
/// "tier=avx2 accumulate=avx2 batch_score=avx2 crc32=pclmul".
std::string KernelReport();

namespace internal {

/// Kernel TUs register at static init: `bind` must re-point the TU's
/// atomic function pointer at the best variant for `tier` (clamping down
/// is the binder's job only in the sense of picking what it has; the
/// facade never passes a tier above DetectedTier) and return a short
/// static name for the chosen implementation.
using BindFn = const char* (*)(Tier);
void RegisterKernel(const char* name, BindFn bind);

struct KernelRegistrar {
  KernelRegistrar(const char* name, BindFn bind) {
    RegisterKernel(name, bind);
  }
};

}  // namespace internal

}  // namespace rpe::simd
