// ShardedMonitorService tests: sharded replay must be bit-identical to a
// single unsharded MonitorService at any shard/thread count (50k-session
// stress), counter aggregation must be exact sums, routing must keep
// per-session semantics intact, and a SwapModels publish must land on
// every shard as one generation step even while sessions open
// concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

SelectorStack TrainSmallStack(const std::vector<PipelineRecord>& records,
                              uint64_t seed) {
  MartParams params;
  params.num_trees = 10;
  params.tree.max_leaves = 8;
  params.seed = seed;
  return SelectorStack::Train(records, PoolOriginalThree(), params);
}

class ShardedMonitorServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    runs_ = new std::vector<QueryRunResult>();
    plans_ = new std::vector<std::unique_ptr<PhysicalPlan>>();
    AddRun(MakeTableScan("t_fact"));
    AddRun(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1));
    AddRun(MakeNestedLoopJoin(MakeTableScan("t_fact"),
                              MakeIndexSeek("t_dim", "d_id"), 1));
    AddRun(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
    stack_ = std::make_shared<const SelectorStack>(
        TrainSmallStack(RandomRecords(80, 11), 7));
  }
  static void TearDownTestSuite() {
    delete runs_;
    delete plans_;
    delete catalog_;
    stack_.reset();
    runs_ = nullptr;
    plans_ = nullptr;
    catalog_ = nullptr;
  }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  static void AddRun(std::unique_ptr<PlanNode> root) {
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans_->push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_->back(), *catalog_);
    ASSERT_TRUE(result.ok());
    runs_->push_back(std::move(result).ValueOrDie());
  }

  static std::vector<const QueryRunResult*> SessionRuns(size_t n) {
    std::vector<const QueryRunResult*> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(&(*runs_)[i % runs_->size()]);
    return out;
  }

  /// Sequential reference series per distinct run (sessions cycle a small
  /// run set, so the reference is computed once per run, not per session).
  static std::vector<std::vector<double>> ReferencePerRun() {
    ProgressMonitor monitor(&stack_->static_selector,
                            &stack_->dynamic_selector);
    std::vector<std::vector<double>> out;
    out.reserve(runs_->size());
    for (const QueryRunResult& run : *runs_) {
      out.push_back(monitor.ReplayQueryProgress(run));
    }
    return out;
  }

  static Catalog* catalog_;
  static std::vector<QueryRunResult>* runs_;
  static std::vector<std::unique_ptr<PhysicalPlan>>* plans_;
  static std::shared_ptr<const SelectorStack> stack_;
};

Catalog* ShardedMonitorServiceTest::catalog_ = nullptr;
std::vector<QueryRunResult>* ShardedMonitorServiceTest::runs_ = nullptr;
std::vector<std::unique_ptr<PhysicalPlan>>*
    ShardedMonitorServiceTest::plans_ = nullptr;
std::shared_ptr<const SelectorStack> ShardedMonitorServiceTest::stack_;

TEST_F(ShardedMonitorServiceTest, StressReplay50kBitIdenticalToUnsharded) {
  // The acceptance bar: 50k sessions replayed through the sharded tier
  // must be bit-identical to one unsharded MonitorService replaying the
  // same slots, and the aggregated counters must be exact.
  const size_t kSessions = 50000;
  const auto session_runs = SessionRuns(kSessions);
  const auto reference = ReferencePerRun();

  MonitorService unsharded(stack_);
  const auto expected = unsharded.ReplayAll(session_runs);
  ASSERT_EQ(expected.size(), kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_EQ(expected[s], reference[s % runs_->size()])
        << "unsharded replay diverged from the sequential monitor";
  }

  ShardedMonitorService::Options options;
  options.num_shards = 16;
  ShardedMonitorService sharded(stack_, options);
  const auto series = sharded.ReplayAll(session_runs);
  ASSERT_EQ(series.size(), kSessions);
  for (size_t s = 0; s < kSessions; ++s) {
    // Bit-identical, not approximately equal — and in caller order.
    ASSERT_EQ(series[s], expected[s]) << "session " << s;
  }

  const auto stats = sharded.GetStats();
  const auto base = unsharded.GetStats();
  EXPECT_EQ(stats.shards, 16u);
  EXPECT_EQ(stats.total.sessions_opened, kSessions);
  EXPECT_EQ(stats.total.sessions_completed, kSessions);
  EXPECT_EQ(stats.total.decisions, base.decisions);
  EXPECT_EQ(stats.total.observations_scored, base.observations_scored);
  EXPECT_EQ(stats.min_model_generation, 0u);
  EXPECT_EQ(stats.max_model_generation, 0u);
  EXPECT_GE(stats.total.p95_replay_ms, stats.total.p50_replay_ms);
}

TEST_F(ShardedMonitorServiceTest, ReplayBitIdenticalAtAnyShardThreadCount) {
  const auto session_runs = SessionRuns(512);
  const auto reference = ReferencePerRun();
  for (size_t shards : {size_t{1}, size_t{3}, size_t{16}}) {
    for (int threads : {1, 4}) {
      ThreadPool pool(threads);
      ShardedMonitorService::Options options;
      options.num_shards = shards;
      options.pool = &pool;
      ShardedMonitorService service(stack_, options);
      const auto series = service.ReplayAll(session_runs);
      ASSERT_EQ(series.size(), session_runs.size());
      for (size_t s = 0; s < series.size(); ++s) {
        ASSERT_EQ(series[s], reference[s % runs_->size()])
            << shards << " shards, " << threads << " threads, session " << s;
      }
    }
  }
}

TEST_F(ShardedMonitorServiceTest, RoutedSessionsMatchSequentialReplay) {
  ShardedMonitorService::Options options;
  options.num_shards = 8;
  ShardedMonitorService service(stack_, options);
  const auto reference = ReferencePerRun();

  const size_t kSessions = 96;
  std::vector<ShardedMonitorService::SessionId> ids;
  for (size_t s = 0; s < kSessions; ++s) {
    auto id = service.OpenSession(&(*runs_)[s % runs_->size()]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  EXPECT_EQ(service.num_open_sessions(), kSessions);
  // Ids are globally unique even though every shard numbers locally.
  std::set<ShardedMonitorService::SessionId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), kSessions);

  // Advance each session one observation at a time through the router;
  // the progress trajectory must match the sequential monitor bit for bit.
  for (size_t s = 0; s < kSessions; ++s) {
    const auto& expected = reference[s % runs_->size()];
    for (size_t oi = 0; oi < expected.size(); ++oi) {
      auto progress = service.Advance(ids[s]);
      ASSERT_TRUE(progress.ok()) << progress.status().ToString();
      ASSERT_EQ(*progress, expected[oi]) << "session " << s << " obs " << oi;
    }
    EXPECT_TRUE(*service.Done(ids[s]));
    EXPECT_FALSE(service.Advance(ids[s]).ok());  // stream exhausted
    EXPECT_EQ(*service.Progress(ids[s]), expected.back());
    ASSERT_TRUE(service.CloseSession(ids[s]).ok());
  }
  EXPECT_EQ(service.num_open_sessions(), 0u);

  // Unknown / stale ids are routed errors, not crashes.
  EXPECT_FALSE(service.Advance(ids[0]).ok());
  EXPECT_FALSE(service.Progress(12345678).ok());
  EXPECT_FALSE(service.CloseSession(0).ok());
}

TEST_F(ShardedMonitorServiceTest, BatchOpenSessionsMatchesPerSessionOpens) {
  // OpenSessions makes every decision through the SIMD-batched
  // DecideForRuns pass; the sessions it opens must replay bit-identically
  // to sessions opened one at a time, and the counters must be exact.
  const auto reference = ReferencePerRun();
  const size_t kSessions = 37;  // not a tile multiple: exercises the tail
  const auto session_runs = SessionRuns(kSessions);

  MonitorService service(stack_);
  auto ids = service.OpenSessions(session_runs);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  ASSERT_EQ(ids->size(), kSessions);
  EXPECT_EQ(service.num_open_sessions(), kSessions);

  MonitorService one_by_one(stack_);
  uint64_t want_decisions = 0;
  for (size_t s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(one_by_one.OpenSession(session_runs[s]).ok());
  }
  want_decisions = one_by_one.GetStats().decisions;
  EXPECT_EQ(service.GetStats().decisions, want_decisions);
  EXPECT_EQ(service.GetStats().sessions_opened, kSessions);

  for (size_t s = 0; s < kSessions; ++s) {
    const auto& expected = reference[s % runs_->size()];
    for (size_t oi = 0; oi < expected.size(); ++oi) {
      auto progress = service.Advance((*ids)[s]);
      ASSERT_TRUE(progress.ok()) << progress.status().ToString();
      ASSERT_EQ(*progress, expected[oi]) << "session " << s << " obs " << oi;
    }
    EXPECT_TRUE(*service.Done((*ids)[s]));
  }

  // A null run poisons the whole batch before any session is opened.
  std::vector<const QueryRunResult*> with_null = SessionRuns(3);
  with_null.push_back(nullptr);
  MonitorService strict(stack_);
  EXPECT_FALSE(strict.OpenSessions(with_null).ok());
  EXPECT_EQ(strict.num_open_sessions(), 0u);

  // An empty batch is a clean no-op.
  auto empty = service.OpenSessions({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ShardedMonitorServiceTest, BudgetedTickDrivesAllShardsToCompletion) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    for (size_t budget : {size_t{0}, size_t{2}, size_t{32}}) {
      ShardedMonitorService::Options options;
      options.num_shards = shards;
      ShardedMonitorService service(stack_, options);
      const auto reference = ReferencePerRun();
      const size_t kSessions = 64;
      std::vector<ShardedMonitorService::SessionId> ids;
      size_t total_obs = 0;
      for (size_t s = 0; s < kSessions; ++s) {
        auto id = service.OpenSession(&(*runs_)[s % runs_->size()]);
        ASSERT_TRUE(id.ok());
        ids.push_back(*id);
        total_obs += (*runs_)[s % runs_->size()].observations.size();
      }
      size_t guard = 0;
      while (service.Tick(budget) > 0) {
        ASSERT_LT(++guard, 100000u) << "tick loop did not converge";
      }
      const auto stats = service.GetStats();
      EXPECT_EQ(stats.total.observations_scored, total_obs)
          << shards << " shards, budget " << budget;
      for (size_t s = 0; s < kSessions; ++s) {
        EXPECT_TRUE(*service.Done(ids[s]));
        EXPECT_EQ(*service.Progress(ids[s]),
                  reference[s % runs_->size()].back());
        ASSERT_TRUE(service.CloseSession(ids[s]).ok());
      }
    }
  }
}

TEST_F(ShardedMonitorServiceTest, SwapLandsOnAllShardsInOneGenerationStep) {
  auto other = std::make_shared<const SelectorStack>(
      TrainSmallStack(RandomRecords(80, 23), 41));
  ShardedMonitorService::Options options;
  options.num_shards = 8;
  ShardedMonitorService service(stack_, options);

  // Openers hammer every shard while swaps land; a reader asserts that
  // every stats cut sees all shards at one generation (GetStats excludes
  // publishes while scanning, so the spread must be exactly zero).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> opened{0};
  std::thread opener([&] {
    while (!stop.load()) {
      auto id = service.OpenSession(&(*runs_)[opened.load() % runs_->size()]);
      ASSERT_TRUE(id.ok());
      ++opened;
      ASSERT_TRUE(service.CloseSession(*id).ok());
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      const auto stats = service.GetStats();
      ASSERT_EQ(stats.max_model_generation, stats.min_model_generation);
    }
  });

  const uint64_t kSwaps = 200;
  for (uint64_t g = 1; g <= kSwaps; ++g) {
    const uint64_t generation =
        service.SwapModels(g % 2 == 0 ? stack_ : other);
    ASSERT_EQ(generation, g);  // lockstep across all shards
  }
  // On a single-core box the swap loop can finish before the opener is
  // ever scheduled; let it observe the post-swap world at least once.
  while (opened.load() == 0) std::this_thread::yield();
  stop.store(true);
  opener.join();
  reader.join();

  // After the last swap returns, every shard reports the same generation.
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.min_model_generation, kSwaps);
  EXPECT_EQ(stats.max_model_generation, kSwaps);
  EXPECT_EQ(service.model_generation(), kSwaps);
  EXPECT_GT(opened.load(), 0u);

  // Sessions opened after the swaps decide against the final snapshot.
  ProgressMonitor swapped(&stack_->static_selector,
                          &stack_->dynamic_selector);
  const std::vector<const QueryRunResult*> one{&(*runs_)[0]};
  EXPECT_EQ(service.ReplayAll(one)[0],
            swapped.ReplayQueryProgress((*runs_)[0]));
}

}  // namespace
}  // namespace rpe
