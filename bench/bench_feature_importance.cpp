// §6.5: feature importance. Reproduces the paper's greedy forward feature
// selection — iteratively add the feature that most reduces the summed MSE
// of the per-estimator error regressors — over a gain-pruned candidate set,
// and also reports the aggregate split-gain ranking of the full model.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

namespace {

/// Summed MSE across pool models trained on a feature subset (features not
/// in the subset are zeroed out, making them useless for splits).
double SubsetMse(const std::vector<PipelineRecord>& records,
                 const std::vector<size_t>& pool,
                 const std::vector<size_t>& subset) {
  const size_t nf = FeatureSchema::Get().num_features();
  std::vector<bool> keep(nf, false);
  for (size_t f : subset) keep[f] = true;
  MartParams params;
  params.num_trees = 25;
  params.tree.max_leaves = 12;
  double total = 0.0;
  for (size_t est : pool) {
    Dataset data(nf);
    std::vector<double> x(nf);
    for (const auto& r : records) {
      for (size_t f = 0; f < nf; ++f) {
        x[f] = keep[f] ? r.features[f] : 0.0;
      }
      RPE_CHECK_OK(data.AddExample(x, r.l1[est]));
    }
    MartModel model = MartModel::Train(data, params);
    total += model.MeanSquaredError(data);
  }
  return total;
}

}  // namespace

int main() {
  std::cout << "=== Section 6.5: feature importance ===\n";
  auto records = AllPaperRecords();
  // Subsample for the greedy search (it retrains many models).
  if (records.size() > 1500) {
    std::vector<PipelineRecord> sampled;
    for (size_t i = 0; i < records.size(); i += records.size() / 1500) {
      sampled.push_back(records[i]);
    }
    records = std::move(sampled);
  }
  const FeatureSchema& schema = FeatureSchema::Get();
  const std::vector<size_t> pool = PoolSix();

  // Rank features by aggregate split gain of the full dynamic model.
  EstimatorSelector full = EstimatorSelector::Train(
      records, pool, /*use_dynamic=*/true, ExperimentParams());
  const std::vector<double> gains = full.FeatureImportance();
  std::vector<size_t> by_gain(gains.size());
  for (size_t i = 0; i < gains.size(); ++i) by_gain[i] = i;
  std::sort(by_gain.begin(), by_gain.end(),
            [&](size_t a, size_t b) { return gains[a] > gains[b]; });

  std::cout << "\nTop 15 features by aggregate MART split gain:\n";
  TablePrinter gain_table({"#", "Feature", "relative gain"});
  const double top_gain = std::max(gains[by_gain[0]], 1e-12);
  for (size_t i = 0; i < 15 && i < by_gain.size(); ++i) {
    gain_table.AddRow({std::to_string(i + 1), schema.name(by_gain[i]),
                       TablePrinter::Fmt(gains[by_gain[i]] / top_gain, 3)});
  }
  gain_table.Print();

  // Greedy forward selection over the 32 highest-gain candidates.
  std::vector<size_t> candidates(
      by_gain.begin(), by_gain.begin() + std::min<size_t>(32, by_gain.size()));
  std::vector<size_t> selected;
  std::cout << "\nGreedy forward selection (paper §6.5 methodology):\n";
  TablePrinter greedy_table({"Round", "Selected feature", "summed MSE"});
  for (int round = 0; round < 8; ++round) {
    double best_mse = 1e100;
    size_t best_f = static_cast<size_t>(-1);
    for (size_t f : candidates) {
      if (std::find(selected.begin(), selected.end(), f) != selected.end()) {
        continue;
      }
      std::vector<size_t> trial = selected;
      trial.push_back(f);
      const double mse = SubsetMse(records, pool, trial);
      if (mse < best_mse) {
        best_mse = mse;
        best_f = f;
      }
    }
    if (best_f == static_cast<size_t>(-1)) break;
    selected.push_back(best_f);
    greedy_table.AddRow({std::to_string(round + 1), schema.name(best_f),
                         TablePrinter::Fmt(best_mse, 5)});
    std::cerr << "round " << round + 1 << ": " << schema.name(best_f) << "\n";
  }
  greedy_table.Print();

  size_t dynamic_in_top10 = 0;
  for (size_t i = 0; i < 10 && i < by_gain.size(); ++i) {
    if (by_gain[i] >= schema.num_static_features()) ++dynamic_in_top10;
  }
  std::cout << "\nDynamic features among the top-10 by gain: "
            << dynamic_in_top10 << "/10\n";
  std::cout << "Paper: first features selected were SelBelow_NLJoin,\n"
               "Cor_DNESEEK_4_20 and SelAtDN; 7 of the next 10 were dynamic\n"
               "(time-correlation) features.\n";
  return 0;
}
