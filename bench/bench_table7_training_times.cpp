// Table 7: MART training times (seconds) as a function of the number of
// training examples and boosting iterations M, including reading/writing
// the model. Trains on synthetic data with the paper's feature arity
// (~200 features) and 30-leaf trees.
#include <chrono>
#include <iostream>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "mart/mart.h"

using namespace rpe;

namespace {

Dataset MakeSyntheticData(size_t examples, size_t features, uint64_t seed) {
  Dataset data(features);
  Rng rng(seed);
  std::vector<double> x(features);
  for (size_t i = 0; i < examples; ++i) {
    for (size_t f = 0; f < features; ++f) x[f] = rng.NextDouble();
    // Nonlinear target with noise, so trees have something to learn.
    const double y = 0.3 * x[0] + (x[1] > 0.5 ? 0.4 : 0.0) +
                     0.2 * x[2] * x[3] + 0.05 * rng.NextGaussian();
    RPE_CHECK_OK(data.AddExample(x, y));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  // --parallel-only skips the (long) paper sweep and runs just the
  // thread-count comparison below.
  const bool parallel_only =
      argc > 1 && std::string(argv[1]) == "--parallel-only";
  const size_t kFeatures = 200;  // the paper: ~200 double values per query
  const std::vector<size_t> example_counts = {100, 500, 3000, 6000, 60000};
  const std::vector<int> boosting = {20, 50, 100, 200, 500, 1000};

  TablePrinter table({"Examples", "M=20", "M=50", "M=100", "M=200", "M=500",
                      "M=1000"});
  for (size_t n : parallel_only ? std::vector<size_t>{} : example_counts) {
    Dataset data = MakeSyntheticData(n, kFeatures, 42 + n);
    std::vector<std::string> row = {std::to_string(n)};
    for (int m : boosting) {
      MartParams params;
      params.num_trees = m;
      params.tree.max_leaves = 30;
      const auto start = std::chrono::steady_clock::now();
      MartModel model = MartModel::Train(data, params);
      // Include model serialization (the paper's times include writing
      // the output model).
      const std::string blob = model.Serialize();
      const auto end = std::chrono::steady_clock::now();
      const double secs =
          std::chrono::duration<double>(end - start).count() +
          1e-9 * static_cast<double>(blob.size() ? 0 : 1);
      row.push_back(TablePrinter::Fmt(secs, secs < 1 ? 2 : 1));
      std::cerr << n << " examples, M=" << m << ": " << secs << "s\n";
    }
    table.AddRow(std::move(row));
  }
  if (!parallel_only) {
    std::cout << "=== Table 7: MART training times in seconds ===\n";
    table.Print();
    std::cout << "\nPaper's Table 7: sub-second up to 6K examples; 60K\n"
                 "examples range from 8s (M=20) to 41s (M=1000). Training\n"
                 "scales ~linearly in examples x M.\n";
  }

  // Parallel-training delta: the same fit at several thread counts. The
  // fitted model is thread-count invariant (ordered split reduction), so
  // this measures pure wall-clock, not a different model. Hardware
  // concurrency on this host bounds the achievable speedup.
  std::cout << "\n=== Parallel training: wall-clock vs. thread count ===\n"
            << "(hardware concurrency: "
            << std::thread::hardware_concurrency() << ")\n";
  TablePrinter threads_table(
      {"Examples x M", "T=1", "T=2", "T=4", "T=8", "speedup T=8"});
  const std::vector<std::pair<size_t, int>> parallel_cases = {
      {6000, 100}, {20000, 100}};
  for (const auto& [n, m] : parallel_cases) {
    Dataset data = MakeSyntheticData(n, kFeatures, 42 + n);
    MartParams params;
    params.num_trees = m;
    params.tree.max_leaves = 30;
    std::vector<double> secs_by_threads;
    for (const int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      params.pool = &pool;
      const auto start = std::chrono::steady_clock::now();
      MartModel model = MartModel::Train(data, params);
      const auto end = std::chrono::steady_clock::now();
      secs_by_threads.push_back(
          std::chrono::duration<double>(end - start).count());
      std::cerr << n << " examples, M=" << m << ", T=" << threads << ": "
                << secs_by_threads.back() << "s\n";
    }
    threads_table.AddRow(
        {std::to_string(n) + " x M=" + std::to_string(m),
         TablePrinter::Fmt(secs_by_threads[0], 2),
         TablePrinter::Fmt(secs_by_threads[1], 2),
         TablePrinter::Fmt(secs_by_threads[2], 2),
         TablePrinter::Fmt(secs_by_threads[3], 2),
         TablePrinter::Fmt(secs_by_threads[0] / secs_by_threads[3], 2) +
             "x"});
  }
  threads_table.Print();
  return 0;
}
