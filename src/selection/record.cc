#include "selection/record.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace rpe {

size_t PipelineRecord::BestEstimator() const {
  // Only the selectable candidates compete; oracle-model entries (if
  // present at the tail) are excluded.
  const size_t n =
      std::min(l1.size(), static_cast<size_t>(kNumSelectableEstimators));
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (l1[i] < l1[best]) best = i;
  }
  return best;
}

double PipelineRecord::BestL1() const { return l1[BestEstimator()]; }

bool MakeRecord(const PipelineView& view, const std::string& workload,
                const std::string& query, const std::string& tag,
                PipelineRecord* out, size_t min_observations) {
  if (view.pipeline->first_obs < 0) return false;
  const size_t window = static_cast<size_t>(view.pipeline->last_obs -
                                            view.pipeline->first_obs) + 1;
  if (window < min_observations) return false;
  out->workload = workload;
  out->query = query;
  out->pipeline_id = view.pipeline->id;
  out->tag = tag;
  out->total_n = 0.0;
  for (int id : view.pipeline->nodes) {
    out->total_n += view.run->true_n[static_cast<size_t>(id)];
  }
  out->features = ExtractAllFeatures(view);
  const auto errors = EvaluateAllEstimators(view);
  out->l1.clear();
  out->l2.clear();
  for (const auto& e : errors) {
    out->l1.push_back(e.l1);
    out->l2.push_back(e.l2);
  }
  return true;
}

std::string RecordsToCsv(const std::vector<PipelineRecord>& records) {
  std::ostringstream out;
  out.precision(12);
  const FeatureSchema& schema = FeatureSchema::Get();
  out << "workload,query,pipeline,tag,total_n";
  for (size_t f = 0; f < schema.num_features(); ++f) {
    out << "," << schema.name(f);
  }
  for (int e = 0; e < kNumEstimatorKinds; ++e) {
    out << ",l1_" << EstimatorName(static_cast<EstimatorKind>(e));
  }
  for (int e = 0; e < kNumEstimatorKinds; ++e) {
    out << ",l2_" << EstimatorName(static_cast<EstimatorKind>(e));
  }
  out << "\n";
  for (const auto& r : records) {
    out << r.workload << "," << r.query << "," << r.pipeline_id << ","
        << r.tag << "," << r.total_n;
    for (double f : r.features) out << "," << f;
    for (double v : r.l1) out << "," << v;
    for (double v : r.l2) out << "," << v;
    out << "\n";
  }
  return out.str();
}

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

Status CsvRowError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("records CSV line " +
                                 std::to_string(line_no) + ": " + what);
}

Status ParseCell(const std::string& cell, size_t line_no,
                 const std::string& column, double* out) {
  try {
    size_t consumed = 0;
    *out = std::stod(cell, &consumed);
    if (consumed != cell.size()) throw std::invalid_argument(cell);
  } catch (const std::exception&) {
    return CsvRowError(line_no, "bad numeric value '" + cell + "' in column " +
                                    column);
  }
  return Status::OK();
}

Status ParseIntCell(const std::string& cell, size_t line_no,
                    const std::string& column, int* out) {
  try {
    size_t consumed = 0;
    const long long v = std::stoll(cell, &consumed);
    if (consumed != cell.size() || v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      throw std::invalid_argument(cell);
    }
    *out = static_cast<int>(v);
  } catch (const std::exception&) {
    return CsvRowError(line_no, "bad integer value '" + cell +
                                    "' in column " + column);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<PipelineRecord>> RecordsFromCsv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty records CSV");
  }
  const size_t num_features = FeatureSchema::Get().num_features();
  const size_t num_est = static_cast<size_t>(kNumEstimatorKinds);
  // 4 label columns + total_n + features + l1/l2 per estimator kind. A row
  // whose l1/l2 arity disagrees with the estimator table (e.g. a record
  // set captured by a binary with a different SelectableEstimators list)
  // must be rejected, not silently re-indexed.
  const size_t expected = 5 + num_features + 2 * num_est;
  std::vector<PipelineRecord> records;
  size_t line_no = 1;  // the header was line 1
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != expected) {
      return CsvRowError(
          line_no, "expected " + std::to_string(expected) + " columns (" +
                       std::to_string(num_features) + " features + l1/l2 of " +
                       std::to_string(num_est) + " estimators), got " +
                       std::to_string(cells.size()));
    }
    PipelineRecord r;
    r.workload = cells[0];
    r.query = cells[1];
    RPE_RETURN_NOT_OK(
        ParseIntCell(cells[2], line_no, "pipeline", &r.pipeline_id));
    r.tag = cells[3];
    RPE_RETURN_NOT_OK(ParseCell(cells[4], line_no, "total_n", &r.total_n));
    size_t c = 5;
    r.features.reserve(num_features);
    for (size_t f = 0; f < num_features; ++f, ++c) {
      double v = 0.0;
      RPE_RETURN_NOT_OK(
          ParseCell(cells[c], line_no, FeatureSchema::Get().name(f), &v));
      r.features.push_back(v);
    }
    r.l1.reserve(num_est);
    for (size_t e = 0; e < num_est; ++e, ++c) {
      double v = 0.0;
      RPE_RETURN_NOT_OK(ParseCell(cells[c], line_no, "l1", &v));
      r.l1.push_back(v);
    }
    r.l2.reserve(num_est);
    for (size_t e = 0; e < num_est; ++e, ++c) {
      double v = 0.0;
      RPE_RETURN_NOT_OK(ParseCell(cells[c], line_no, "l2", &v));
      r.l2.push_back(v);
    }
    records.push_back(std::move(r));
  }
  return records;
}

Status SaveRecords(const std::vector<PipelineRecord>& records,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << RecordsToCsv(records);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::vector<PipelineRecord>> LoadRecords(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return RecordsFromCsv(buf.str());
}

}  // namespace rpe
