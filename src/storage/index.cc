#include "storage/index.h"

#include <algorithm>

#include "common/logging.h"

namespace rpe {

SortedIndex::SortedIndex(const Table* table, size_t column)
    : table_(table), column_(column) {
  RPE_CHECK(table != nullptr);
  RPE_CHECK_LT(column, table->schema().num_columns());
  entries_.reserve(table->num_rows());
  for (RowId id = 0; id < table->num_rows(); ++id) {
    entries_.emplace_back(table->row(id)[column], id);
  }
  std::sort(entries_.begin(), entries_.end());
}

std::vector<RowId> SortedIndex::SeekEqual(int64_t key) const {
  auto [lo, hi] = std::equal_range(
      entries_.begin(), entries_.end(), std::make_pair(key, RowId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RowId> out;
  out.reserve(static_cast<size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<RowId> SortedIndex::SeekRange(int64_t lo_key, int64_t hi_key) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(lo_key, RowId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<RowId> out;
  for (auto it = lo; it != entries_.end() && it->first <= hi_key; ++it) {
    out.push_back(it->second);
  }
  return out;
}

uint64_t SortedIndex::CountEqual(int64_t key) const {
  auto [lo, hi] = std::equal_range(
      entries_.begin(), entries_.end(), std::make_pair(key, RowId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return static_cast<uint64_t>(hi - lo);
}

uint64_t SortedIndex::CountRange(int64_t lo_key, int64_t hi_key) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), std::make_pair(lo_key, RowId{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  uint64_t n = 0;
  for (auto it = lo; it != entries_.end() && it->first <= hi_key; ++it) ++n;
  return n;
}

}  // namespace rpe
