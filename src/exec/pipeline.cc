#include "exec/pipeline.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace rpe {

bool Pipeline::ContainsNode(int node_id) const {
  return std::find(nodes.begin(), nodes.end(), node_id) != nodes.end();
}

bool Pipeline::IsDriver(int node_id) const {
  return std::find(driver_nodes.begin(), driver_nodes.end(), node_id) !=
         driver_nodes.end();
}

namespace {

void Assign(const PlanNode* node, size_t pipeline, bool nlj_inner,
            std::vector<Pipeline>* out) {
  (*out)[pipeline].nodes.push_back(node->id);
  switch (node->op) {
    case OpType::kSort:
    case OpType::kHashAggregate: {
      // The blocking operator's emission phase belongs to the current
      // pipeline, where it acts as a tuple source (driver) with exactly
      // known output size. Its input subtree forms separate pipeline(s).
      if (!nlj_inner) (*out)[pipeline].driver_nodes.push_back(node->id);
      Pipeline child;
      child.id = static_cast<int>(out->size());
      child.sink = node->child(0)->id;
      out->push_back(child);
      Assign(node->child(0), out->size() - 1, false, out);
      break;
    }
    case OpType::kHashJoin: {
      // Build side (child 0) is a separate pipeline; probe side streams
      // through the join within the current pipeline.
      Pipeline build;
      build.id = static_cast<int>(out->size());
      build.sink = node->child(0)->id;
      out->push_back(build);
      const size_t build_idx = out->size() - 1;
      Assign(node->child(0), build_idx, false, out);
      Assign(node->child(1), pipeline, nlj_inner, out);
      break;
    }
    case OpType::kNestedLoopJoin: {
      Assign(node->child(0), pipeline, nlj_inner, out);
      // Inner subtree executes within this pipeline but its leaves are not
      // driver nodes (paper §3.2: "excluding the inner subtree of nested
      // loop operators").
      Assign(node->child(1), pipeline, true, out);
      break;
    }
    case OpType::kMergeJoin: {
      Assign(node->child(0), pipeline, nlj_inner, out);
      Assign(node->child(1), pipeline, nlj_inner, out);
      break;
    }
    case OpType::kTableScan:
    case OpType::kIndexScan:
    case OpType::kIndexSeek: {
      if (!nlj_inner && node->op != OpType::kIndexSeek) {
        (*out)[pipeline].driver_nodes.push_back(node->id);
      }
      break;
    }
    case OpType::kFilter:
    case OpType::kBatchSort:
    case OpType::kStreamAggregate:
    case OpType::kTop: {
      Assign(node->child(0), pipeline, nlj_inner, out);
      break;
    }
  }
}

}  // namespace

std::vector<Pipeline> DecomposePipelines(const PhysicalPlan& plan) {
  std::vector<Pipeline> out;
  Pipeline root;
  root.id = 0;
  root.sink = plan.root()->id;
  out.push_back(root);
  Assign(plan.root(), 0, false, &out);
  for (auto& p : out) {
    std::sort(p.nodes.begin(), p.nodes.end());
    std::sort(p.driver_nodes.begin(), p.driver_nodes.end());
    RPE_CHECK(!p.nodes.empty());
  }
  return out;
}

std::string PipelinesToString(const std::vector<Pipeline>& pipelines) {
  std::ostringstream out;
  for (const auto& p : pipelines) {
    out << "P" << p.id << "{nodes=[";
    for (size_t i = 0; i < p.nodes.size(); ++i) {
      if (i) out << ",";
      out << p.nodes[i];
    }
    out << "] drivers=[";
    for (size_t i = 0; i < p.driver_nodes.size(); ++i) {
      if (i) out << ",";
      out << p.driver_nodes[i];
    }
    out << "] sink=" << p.sink << "}\n";
  }
  return out.str();
}

}  // namespace rpe
