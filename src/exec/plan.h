// Physical plan representation: a tree of PlanNodes plus per-node optimizer
// estimates. Plans are produced by the optimizer/planner and interpreted by
// the executor; node ids index the counter arrays of paper §3.1.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/op_type.h"
#include "exec/predicate.h"
#include "storage/schema.h"

namespace rpe {

/// \brief One node of a physical plan tree.
struct PlanNode {
  OpType op = OpType::kTableScan;
  int id = -1;  ///< assigned by PhysicalPlan::Finalize (preorder)

  std::vector<std::unique_ptr<PlanNode>> children;

  // --- operator parameters -------------------------------------------------
  std::string table;         ///< scans/seeks: base table name
  std::string index_column;  ///< kIndexScan / kIndexSeek: indexed column
  Predicate pred;            ///< kFilter, and residual predicate on scans
  size_t left_key = 0;       ///< joins: key column in left child output
  size_t right_key = 0;      ///< joins: key column in right child output
  size_t sort_key = 0;       ///< kSort / kBatchSort
  size_t batch_size = 0;     ///< kBatchSort: rows per sorted batch
  std::vector<size_t> group_cols;  ///< aggregates
  uint64_t limit = 0;        ///< kTop

  // --- optimizer annotations ----------------------------------------------
  double est_rows = 0.0;     ///< E_i: estimated GetNext calls at this node
  Schema output_schema;      ///< set by the planner / ResolvePlanSchemas
  /// True when this node lives in the inner subtree of a nested-loop join
  /// (set by ResolvePlanSchemas). Inner nodes re-execute per outer row, are
  /// excluded from driver-node sets, and have no useful cardinality bounds.
  bool nlj_inner = false;

  PlanNode* child(size_t i) const { return children[i].get(); }
  size_t num_children() const { return children.size(); }
};

/// \brief A finalized plan: owns the root, assigns node ids and exposes the
/// nodes in preorder (id order).
class PhysicalPlan {
 public:
  explicit PhysicalPlan(std::unique_ptr<PlanNode> root);

  const PlanNode* root() const { return root_.get(); }
  size_t num_nodes() const { return nodes_.size(); }
  /// Node by id (ids are dense, 0-based, preorder).
  const PlanNode* node(int id) const { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<const PlanNode*>& nodes() const { return nodes_; }

  /// Sum of E_i over all nodes (denominator of Eq. 3).
  double TotalEstimatedRows() const;

  /// Pretty-print the plan tree with estimates (debugging aid).
  std::string ToString() const;

 private:
  std::unique_ptr<PlanNode> root_;
  std::vector<const PlanNode*> nodes_;
};

// Convenience builders used by planner and tests --------------------------

std::unique_ptr<PlanNode> MakeTableScan(const std::string& table,
                                        Predicate pred = Predicate::True());
std::unique_ptr<PlanNode> MakeIndexScan(const std::string& table,
                                        const std::string& column);
std::unique_ptr<PlanNode> MakeIndexSeek(const std::string& table,
                                        const std::string& column);
std::unique_ptr<PlanNode> MakeFilter(std::unique_ptr<PlanNode> child,
                                     Predicate pred);
std::unique_ptr<PlanNode> MakeNestedLoopJoin(std::unique_ptr<PlanNode> outer,
                                             std::unique_ptr<PlanNode> inner,
                                             size_t outer_key);
std::unique_ptr<PlanNode> MakeHashJoin(std::unique_ptr<PlanNode> build,
                                       std::unique_ptr<PlanNode> probe,
                                       size_t build_key, size_t probe_key);
std::unique_ptr<PlanNode> MakeMergeJoin(std::unique_ptr<PlanNode> left,
                                        std::unique_ptr<PlanNode> right,
                                        size_t left_key, size_t right_key);
std::unique_ptr<PlanNode> MakeSort(std::unique_ptr<PlanNode> child,
                                   size_t sort_key);
std::unique_ptr<PlanNode> MakeBatchSort(std::unique_ptr<PlanNode> child,
                                        size_t sort_key, size_t batch_size);
std::unique_ptr<PlanNode> MakeHashAggregate(std::unique_ptr<PlanNode> child,
                                            std::vector<size_t> group_cols);
std::unique_ptr<PlanNode> MakeStreamAggregate(std::unique_ptr<PlanNode> child,
                                              std::vector<size_t> group_cols);
std::unique_ptr<PlanNode> MakeTop(std::unique_ptr<PlanNode> child,
                                  uint64_t limit);

}  // namespace rpe
