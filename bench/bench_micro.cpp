// Micro-benchmarks (google-benchmark): executor throughput per operator,
// feature extraction, MART training and prediction, Zipf sampling and
// histogram construction — the building blocks whose cost determines the
// (low) overhead the paper requires of progress estimation.
#include <benchmark/benchmark.h>

#include "exec/executor.h"
#include "mart/mart.h"
#include "optimizer/histogram.h"
#include "selection/features.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

std::unique_ptr<Catalog>& SharedCatalog() {
  static auto catalog = rpe::testing::MakeSmallCatalog();
  return catalog;
}

void BM_TableScan(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  for (auto _ : state) {
    auto plan = FinalizePlan(MakeTableScan("t_fact"), *catalog);
    auto run = ExecutePlan(**plan, *catalog);
    benchmark::DoNotOptimize(run->rows_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TableScan);

void BM_HashJoin(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  for (auto _ : state) {
    auto plan = FinalizePlan(
        MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0, 1),
        *catalog);
    auto run = ExecutePlan(**plan, *catalog);
    benchmark::DoNotOptimize(run->rows_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_HashJoin);

void BM_IndexNestedLoop(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  for (auto _ : state) {
    auto plan = FinalizePlan(
        MakeNestedLoopJoin(MakeTableScan("t_fact"),
                           MakeIndexSeek("t_dim", "d_id"), 1),
        *catalog);
    auto run = ExecutePlan(**plan, *catalog);
    benchmark::DoNotOptimize(run->rows_out);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IndexNestedLoop);

void BM_FeatureExtraction(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  auto plan = FinalizePlan(
      MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0, 1),
      *catalog);
  auto run = ExecutePlan(**plan, *catalog);
  PipelineView view{&run.ValueOrDie(), &run->pipelines[0]};
  for (auto _ : state) {
    auto features = ExtractAllFeatures(view);
    benchmark::DoNotOptimize(features);
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_MartTrain1k(benchmark::State& state) {
  Dataset data(50);
  Rng rng(3);
  std::vector<double> x(50);
  for (size_t i = 0; i < 1000; ++i) {
    for (auto& v : x) v = rng.NextDouble();
    RPE_CHECK_OK(data.AddExample(x, x[0] * 0.5 + (x[1] > 0.3 ? 0.2 : 0.0)));
  }
  MartParams params;
  params.num_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    MartModel model = MartModel::Train(data, params);
    benchmark::DoNotOptimize(model.num_trees());
  }
}
BENCHMARK(BM_MartTrain1k)->Arg(10)->Arg(50);

void BM_MartPredict(benchmark::State& state) {
  Dataset data(50);
  Rng rng(3);
  std::vector<double> x(50);
  for (size_t i = 0; i < 500; ++i) {
    for (auto& v : x) v = rng.NextDouble();
    RPE_CHECK_OK(data.AddExample(x, x[0]));
  }
  MartParams params;
  params.num_trees = 100;
  MartModel model = MartModel::Train(data, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x));
  }
}
BENCHMARK(BM_MartPredict);

void BM_ZipfSample(benchmark::State& state) {
  ZipfGenerator zipf(100000, 1.0);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(&rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_HistogramBuild(benchmark::State& state) {
  auto& catalog = SharedCatalog();
  const Table* fact = *catalog->GetTable("t_fact");
  for (auto _ : state) {
    EquiDepthHistogram hist(*fact, 1);
    benchmark::DoNotOptimize(hist.distinct_count());
  }
}
BENCHMARK(BM_HistogramBuild);

}  // namespace
}  // namespace rpe

BENCHMARK_MAIN();
