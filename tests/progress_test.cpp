// Progress-estimator tests: closed-form checks on crafted runs, estimator
// invariants on executed queries, and error-metric semantics.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "common/stats.h"
#include "progress/error.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;

class ProgressTest : public ::testing::Test {
 protected:
  void SetUp() override { catalog_ = MakeSmallCatalog(); }

  QueryRunResult Run(std::unique_ptr<PlanNode> root,
                     ExecOptions opts = {}) {
    auto plan = FinalizePlan(std::move(root), *catalog_);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plans_.push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_.back(), *catalog_, opts);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).ValueOrDie();
  }

  PipelineView View(const QueryRunResult& run, size_t p = 0) {
    return PipelineView{&run, &run.pipelines[p]};
  }

  std::unique_ptr<Catalog> catalog_;
  std::vector<std::unique_ptr<PhysicalPlan>> plans_;
};

TEST_F(ProgressTest, NamesAreStable) {
  EXPECT_STREQ(EstimatorName(EstimatorKind::kDne), "DNE");
  EXPECT_STREQ(EstimatorName(EstimatorKind::kTgnInt), "TGNINT");
  EXPECT_STREQ(EstimatorName(EstimatorKind::kOracleBytes), "ORACLE_BYTES");
  EXPECT_EQ(SelectableEstimators().size(),
            static_cast<size_t>(kNumSelectableEstimators));
}

TEST_F(ProgressTest, AllEstimatesInUnitInterval) {
  auto run = Run(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                              0, 1));
  for (const auto& pipeline : run.pipelines) {
    if (pipeline.first_obs < 0) continue;
    PipelineView view{&run, &pipeline};
    for (int e = 0; e < kNumEstimatorKinds; ++e) {
      const auto& est = GetEstimator(static_cast<EstimatorKind>(e));
      for (int oi = pipeline.first_obs; oi <= pipeline.last_obs; ++oi) {
        const double v = est.Estimate(view, static_cast<size_t>(oi));
        EXPECT_GE(v, 0.0) << est.name();
        EXPECT_LE(v, 1.0) << est.name();
      }
    }
  }
}

TEST_F(ProgressTest, EstimatorsReachOneAtQueryEnd) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Ge(2, 20)));
  PipelineView view = View(run);
  const size_t last = static_cast<size_t>(run.pipelines[0].last_obs);
  // Counter-fraction estimators must report completion at the end (their
  // drivers are fully consumed and E has been refined to N).
  EXPECT_NEAR(GetEstimator(EstimatorKind::kDne).Estimate(view, last), 1.0,
              1e-6);
  EXPECT_NEAR(GetEstimator(EstimatorKind::kTgn).Estimate(view, last), 1.0,
              0.01);
  EXPECT_NEAR(GetEstimator(EstimatorKind::kOracleGetNext).Estimate(view, last),
              1.0, 1e-6);
}

TEST_F(ProgressTest, DneEqualsDriverFraction) {
  // Plain scan: DNE = K_scan / N_scan exactly (driver size known).
  auto run = Run(MakeTableScan("t_fact"));
  PipelineView view = View(run);
  for (int oi = run.pipelines[0].first_obs; oi <= run.pipelines[0].last_obs;
       ++oi) {
    const auto& obs = run.observations[static_cast<size_t>(oi)];
    const double expected = obs.k[0] / 1000.0;
    EXPECT_NEAR(GetEstimator(EstimatorKind::kDne)
                    .Estimate(view, static_cast<size_t>(oi)),
                expected, 1e-9);
  }
}

TEST_F(ProgressTest, OracleGetNextIsExactForUniformCosts) {
  // For a single-operator pipeline the GetNext model with true N equals
  // K/N; with per-row costs constant it matches true progress closely.
  auto run = Run(MakeTableScan("t_dim"));
  PipelineView view = View(run);
  const auto errors =
      EvaluateEstimator(GetEstimator(EstimatorKind::kOracleGetNext), view);
  EXPECT_LT(errors.l1, 0.05);
}

TEST_F(ProgressTest, BatchDneIncludesBatchSortNodes) {
  auto root = MakeNestedLoopJoin(
      MakeBatchSort(MakeTableScan("t_fact"), 1, 100),
      MakeIndexSeek("t_dim", "d_id"), 1);
  auto run = Run(std::move(root));
  PipelineView view = View(run);
  const auto drivers_plus = DriversPlus(view, OpType::kBatchSort);
  EXPECT_GT(drivers_plus.size(), view.pipeline->driver_nodes.size());
}

TEST_F(ProgressTest, DneSeekDivergesFromDneOnSeekPlans) {
  auto root = MakeNestedLoopJoin(MakeTableScan("t_fact"),
                                 MakeIndexSeek("t_dim", "d_id"), 1);
  auto run = Run(std::move(root));
  PipelineView view = View(run);
  const size_t mid = static_cast<size_t>(
      (run.pipelines[0].first_obs + run.pipelines[0].last_obs) / 2);
  const double dne = GetEstimator(EstimatorKind::kDne).Estimate(view, mid);
  const double dneseek =
      GetEstimator(EstimatorKind::kDneSeek).Estimate(view, mid);
  // Both valid progress numbers; on seek-heavy plans they must differ
  // (DNESEEK's driver set includes the seek node).
  EXPECT_NE(dne, dneseek);
}

TEST_F(ProgressTest, SafeBetweenPmaxAndOne) {
  auto run = Run(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                              0, 1));
  PipelineView view = View(run);
  for (int oi = run.pipelines[0].first_obs; oi <= run.pipelines[0].last_obs;
       ++oi) {
    const double pmax = GetEstimator(EstimatorKind::kPmax)
                            .Estimate(view, static_cast<size_t>(oi));
    const double safe = GetEstimator(EstimatorKind::kSafe)
                            .Estimate(view, static_cast<size_t>(oi));
    // SAFE = sqrt(lo * hi) >= lo = PMAX.
    EXPECT_GE(safe, pmax - 1e-9);
  }
}

TEST_F(ProgressTest, TgnIntInterpolatesBetweenKAndE) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
  PipelineView view = View(run);
  for (int oi = run.pipelines[0].first_obs; oi <= run.pipelines[0].last_obs;
       ++oi) {
    const double v = GetEstimator(EstimatorKind::kTgnInt)
                         .Estimate(view, static_cast<size_t>(oi));
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_F(ProgressTest, LuoFallsBackToByteFractionEarly) {
  auto run = Run(MakeTableScan("t_dim"));
  PipelineView view = View(run);
  const size_t first = static_cast<size_t>(run.pipelines[0].first_obs);
  const double v = GetEstimator(EstimatorKind::kLuo).Estimate(view, first);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST_F(ProgressTest, TrueProgressIsMonotone) {
  auto run = Run(MakeSort(MakeTableScan("t_fact"), 2));
  for (const auto& pipeline : run.pipelines) {
    if (pipeline.first_obs < 0) continue;
    PipelineView view{&run, &pipeline};
    double prev = -1.0;
    for (int oi = pipeline.first_obs; oi <= pipeline.last_obs; ++oi) {
      const double t = view.TrueProgress(static_cast<size_t>(oi));
      EXPECT_GE(t, prev);
      prev = t;
    }
    EXPECT_NEAR(prev, 1.0, 1e-9);
  }
}

// --- error metrics --------------------------------------------------------

TEST_F(ProgressTest, PerfectEstimatorHasZeroError) {
  auto run = Run(MakeTableScan("t_fact"));
  PipelineView view = View(run);
  // Compare the truth against itself via a synthetic series.
  const auto truth = TrueProgressSeries(view);
  EXPECT_GT(truth.size(), 2u);
  EXPECT_DOUBLE_EQ(LpError(truth, truth, 1.0), 0.0);
}

TEST_F(ProgressTest, EvaluateEstimatorConsistentWithSeries) {
  auto run = Run(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
  PipelineView view = View(run);
  const auto& est = GetEstimator(EstimatorKind::kDne);
  const auto series = EstimateSeries(est, view);
  const auto truth = TrueProgressSeries(view);
  const auto errors = EvaluateEstimator(est, view);
  EXPECT_EQ(series.size(), truth.size());
  EXPECT_NEAR(errors.l1, LpError(series, truth, 1.0), 1e-12);
  EXPECT_NEAR(errors.l2, LpError(series, truth, 2.0), 1e-12);
  EXPECT_EQ(errors.num_obs, series.size());
}

TEST_F(ProgressTest, EvaluateAllCoversAllKinds) {
  auto run = Run(MakeTableScan("t_dim"));
  PipelineView view = View(run);
  const auto all = EvaluateAllEstimators(view);
  EXPECT_EQ(all.size(), static_cast<size_t>(kNumEstimatorKinds));
}

TEST_F(ProgressTest, QueryProgressMonotoneAndComplete) {
  auto run = Run(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"),
                              0, 1));
  std::vector<EstimatorKind> kinds(run.pipelines.size(),
                                   EstimatorKind::kDne);
  for (size_t oi = 0; oi < run.observations.size(); ++oi) {
    const double p = QueryProgress(run, kinds, oi);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  EXPECT_NEAR(QueryProgress(run, kinds, run.observations.size() - 1), 1.0,
              0.05);
}

TEST_F(ProgressTest, SpilledJoinDegradesTgn) {
  // With a tiny memory budget, the spill's extra GetNext calls are not in
  // the optimizer estimate, so TGN's error should exceed the no-spill run.
  ExecOptions small_mem;
  small_mem.memory_limit_bytes = 2048;
  auto spill_run = Run(MakeHashJoin(MakeTableScan("t_fact"),
                                    MakeTableScan("t_dim"), 1, 0),
                       small_mem);
  auto ok_run = Run(MakeHashJoin(MakeTableScan("t_fact"),
                                 MakeTableScan("t_dim"), 1, 0));
  // Evaluate TGN on the probe pipeline (pipeline 0 contains the join).
  const auto spill_err = EvaluateEstimator(
      GetEstimator(EstimatorKind::kTgn), PipelineView{&spill_run,
                                                      &spill_run.pipelines[1]});
  const auto ok_err = EvaluateEstimator(
      GetEstimator(EstimatorKind::kTgn),
      PipelineView{&ok_run, &ok_run.pipelines[1]});
  EXPECT_GE(spill_err.l1, 0.0);
  EXPECT_GE(ok_err.l1, 0.0);
}

}  // namespace
}  // namespace rpe
