#include "common/failpoint.h"

#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/logging.h"

namespace rpe {

namespace failpoint_internal {
std::atomic<int> g_armed_count{0};
}  // namespace failpoint_internal

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct FailPointState {
  FailPointSpec spec;
  uint64_t hits = 0;
  uint64_t trips = 0;
  uint64_t rng = 0;  ///< kProbability stream state, seeded at arm time
};

/// Registry singleton. One mutex guards the map and the counters; the
/// condvar wakes WaitForHits on every counted hit. Failpoints guard
/// failure edges, not scoring loops, so a single lock is fine.
class Registry {
 public:
  static Registry& Get() {
    static Registry* instance = new Registry();  // leaked: outlives exit
    return *instance;
  }

  void Arm(const std::string& name, FailPointSpec spec) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = points_.insert_or_assign(
        name, FailPointState{spec, 0, 0, spec.seed * 0x9E3779B97F4A7C15ull +
                                             0xD1B54A32D192ED03ull});
    (void)it;
    if (inserted) {
      failpoint_internal::g_armed_count.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }

  void Disarm(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    if (points_.erase(name) > 0) {
      failpoint_internal::g_armed_count.fetch_sub(1,
                                                  std::memory_order_relaxed);
    }
  }

  void DisarmAll() {
    std::lock_guard<std::mutex> lock(mu_);
    failpoint_internal::g_armed_count.fetch_sub(
        static_cast<int>(points_.size()), std::memory_order_relaxed);
    points_.clear();
  }

  bool Hit(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return false;
    FailPointState& s = it->second;
    ++s.hits;
    bool trip = false;
    switch (s.spec.mode) {
      case FailPointSpec::Mode::kNever:
        break;
      case FailPointSpec::Mode::kAlways:
        trip = true;
        break;
      case FailPointSpec::Mode::kProbability: {
        const double u =
            static_cast<double>(SplitMix64(&s.rng) >> 11) * 0x1.0p-53;
        trip = u < s.spec.probability;
        break;
      }
      case FailPointSpec::Mode::kNth:
        trip = s.hits == s.spec.nth;
        break;
    }
    if (trip) ++s.trips;
    cv_.notify_all();
    return trip;
  }

  FailPointCounters Counters(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return {};
    return {it->second.hits, it->second.trips};
  }

  bool WaitForHits(const std::string& name, uint64_t n,
                   std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] {
      auto it = points_.find(name);
      return it != points_.end() && it->second.hits >= n;
    });
  }

  std::vector<std::string> Armed() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(points_.size());
    for (const auto& [name, state] : points_) names.push_back(name);
    return names;
  }

  std::vector<FailPointSnapshot> Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FailPointSnapshot> out;
    out.reserve(points_.size());
    for (const auto& [name, state] : points_) {
      out.push_back(FailPointSnapshot{name, state.hits, state.trips});
    }
    return out;
  }

 private:
  Registry() = default;

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, FailPointState> points_;
};

Result<FailPointSpec> ParseOneSpec(const std::string& text) {
  if (text == "always") return FailPointSpec::Always();
  if (text == "never" || text == "observe") return FailPointSpec::Never();
  if (text.rfind("nth:", 0) == 0) {
    const std::string arg = text.substr(4);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || n == 0) {
      return Status::InvalidArgument("failpoint nth spec needs a positive "
                                     "integer: '" + text + "'");
    }
    return FailPointSpec::Nth(n);
  }
  if (text.rfind("prob:", 0) == 0) {
    // prob:<p> or prob:<p>:seed=<s>
    std::string arg = text.substr(5);
    uint64_t seed = 1;
    const size_t colon = arg.find(':');
    if (colon != std::string::npos) {
      const std::string seed_part = arg.substr(colon + 1);
      arg = arg.substr(0, colon);
      if (seed_part.rfind("seed=", 0) != 0) {
        return Status::InvalidArgument(
            "failpoint prob spec expects prob:<p>[:seed=<s>]: '" + text +
            "'");
      }
      char* end = nullptr;
      seed = std::strtoull(seed_part.c_str() + 5, &end, 10);
      if (*end != '\0') {
        return Status::InvalidArgument("failpoint prob seed is not an "
                                       "integer: '" + text + "'");
      }
    }
    char* end = nullptr;
    const double p = std::strtod(arg.c_str(), &end);
    if (arg.empty() || *end != '\0' || p < 0.0 || p > 1.0) {
      return Status::InvalidArgument(
          "failpoint probability must be in [0, 1]: '" + text + "'");
    }
    return FailPointSpec::Probability(p, seed);
  }
  return Status::InvalidArgument("unknown failpoint spec '" + text +
                                 "' (expected always | never | nth:<k> | "
                                 "prob:<p>[:seed=<s>])");
}

/// Parses RPE_FAILPOINTS once at process start so env-armed failpoints
/// are live before any code path evaluates its first RPE_INJECT_FAULT.
struct EnvArmer {
  EnvArmer() {
    const char* env = std::getenv("RPE_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    const Status armed = FailPoints::ArmFromSpec(env);
    if (!armed.ok()) {
      RPE_LOG_WARN << "RPE_FAILPOINTS ignored: " << armed.ToString();
      FailPoints::DisarmAll();
    }
  }
};
const EnvArmer g_env_armer;

}  // namespace

void FailPoints::Arm(const std::string& name, FailPointSpec spec) {
  Registry::Get().Arm(name, spec);
}

void FailPoints::Observe(const std::string& name) {
  Registry::Get().Arm(name, FailPointSpec::Never());
}

void FailPoints::Disarm(const std::string& name) {
  Registry::Get().Disarm(name);
}

void FailPoints::DisarmAll() { Registry::Get().DisarmAll(); }

Status FailPoints::ArmFromSpec(const std::string& spec_list) {
  size_t pos = 0;
  while (pos < spec_list.size()) {
    size_t end = spec_list.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec_list.size();
    const std::string entry = spec_list.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          "failpoint entry is not <name>=<spec>: '" + entry + "'");
    }
    RPE_ASSIGN_OR_RETURN(FailPointSpec spec,
                         ParseOneSpec(entry.substr(eq + 1)));
    Registry::Get().Arm(entry.substr(0, eq), spec);
  }
  return Status::OK();
}

FailPointCounters FailPoints::Counters(const std::string& name) {
  return Registry::Get().Counters(name);
}

uint64_t FailPoints::Hits(const std::string& name) {
  return Registry::Get().Counters(name).hits;
}

uint64_t FailPoints::Trips(const std::string& name) {
  return Registry::Get().Counters(name).trips;
}

bool FailPoints::WaitForHits(const std::string& name, uint64_t n,
                             std::chrono::milliseconds timeout) {
  return Registry::Get().WaitForHits(name, n, timeout);
}

std::vector<std::string> FailPoints::Armed() {
  return Registry::Get().Armed();
}

std::vector<FailPointSnapshot> FailPoints::Snapshot() {
  return Registry::Get().Snapshot();
}

namespace failpoint_internal {

bool Hit(const char* name) { return Registry::Get().Hit(name); }

}  // namespace failpoint_internal

}  // namespace rpe
