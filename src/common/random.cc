#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace rpe {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97f4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextUInt(uint64_t n) {
  RPE_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  RPE_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfGenerator::ZipfGenerator(uint64_t n, double z) : n_(n), z_(z) {
  RPE_CHECK_GT(n, 0u);
  RPE_CHECK_GE(z, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i), z);
    cdf_[i - 1] = total;
  }
  for (auto& c : cdf_) c /= total;
}

uint64_t ZipfGenerator::Next(Rng* rng) const {
  const double u = rng->NextDouble();
  // Binary search for first cdf_[i] >= u.
  size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

double ZipfGenerator::Pmf(uint64_t v) const {
  RPE_CHECK_GE(v, 1u);
  RPE_CHECK_LE(v, n_);
  if (v == 1) return cdf_[0];
  return cdf_[v - 1] - cdf_[v - 2];
}

}  // namespace rpe
