#include "serving/ingest.h"

#include "common/failpoint.h"
#include "common/logging.h"

namespace rpe {

RecordIngestQueue::RecordIngestQueue(size_t capacity) : capacity_(capacity) {
  RPE_CHECK(capacity_ > 0);
}

bool RecordIngestQueue::Push(PipelineRecord record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // "ingest.push": the record is rejected as if the queue were full —
    // same drop accounting, so injected losses stay exact.
    if (closed_ || queue_.size() >= capacity_ ||
        RPE_INJECT_FAULT("ingest.push")) {
      ++dropped_;
      return false;
    }
    queue_.push_back(std::move(record));
    ++pushed_;
  }
  cv_.notify_one();
  return true;
}

size_t RecordIngestQueue::DrainBatch(std::vector<PipelineRecord>* out,
                                     size_t max_records) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = std::min(max_records, queue_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  drained_ += n;
  if (n > 0) ++batches_;
  return n;
}

size_t RecordIngestQueue::WaitAndDrain(std::vector<PipelineRecord>* out,
                                       size_t max_records,
                                       std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  // "ingest.wait": observe-only sync hook — tests block in WaitForHits
  // until the consumer has reached this wait instead of sleeping.
  (void)RPE_INJECT_FAULT("ingest.wait");
  cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
  const size_t n = std::min(max_records, queue_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  drained_ += n;
  if (n > 0) ++batches_;
  return n;
}

void RecordIngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool RecordIngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RecordIngestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t RecordIngestQueue::pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

uint64_t RecordIngestQueue::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

IngestStats RecordIngestQueue::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats stats;
  stats.pushed = pushed_;
  stats.dropped = dropped_;
  stats.drained = drained_;
  stats.batches = batches_;
  stats.queue_size = queue_.size();
  return stats;
}

}  // namespace rpe
