#include "exec/plan_resolver.h"

namespace rpe {

namespace {

Status ExpectChildren(const PlanNode* node, size_t n) {
  if (node->num_children() != n) {
    return Status::InvalidArgument(std::string(OpTypeName(node->op)) +
                                   " expects " + std::to_string(n) +
                                   " children");
  }
  return Status::OK();
}

Status CheckColumn(const PlanNode* node, size_t col) {
  if (col >= node->output_schema.num_columns()) {
    return Status::InvalidArgument(
        "column index out of range under " + std::string(OpTypeName(node->op)));
  }
  return Status::OK();
}

Schema AggregateSchema(const PlanNode* child,
                       const std::vector<size_t>& group_cols) {
  std::vector<ColumnDef> cols;
  for (size_t g : group_cols) {
    cols.push_back(child->output_schema.column(g));
  }
  cols.push_back(ColumnDef{"agg_count", 8});
  return Schema(std::move(cols));
}

}  // namespace

Status ResolvePlanSchemas(PlanNode* node, const Catalog& catalog,
                          bool nlj_inner) {
  node->nlj_inner = nlj_inner;
  switch (node->op) {
    case OpType::kTableScan: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 0));
      RPE_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(node->table));
      node->output_schema = t->schema();
      return Status::OK();
    }
    case OpType::kIndexScan:
    case OpType::kIndexSeek: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 0));
      RPE_ASSIGN_OR_RETURN(const Table* t, catalog.GetTable(node->table));
      if (!catalog.HasIndex(node->table, node->index_column)) {
        return Status::InvalidArgument("no index on " + node->table + "." +
                                       node->index_column);
      }
      node->output_schema = t->schema();
      return Status::OK();
    }
    case OpType::kFilter: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 1));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(0), catalog, nlj_inner));
      node->output_schema = node->child(0)->output_schema;
      if (node->pred.kind != Predicate::Kind::kTrue) {
        RPE_RETURN_NOT_OK(CheckColumn(node->child(0), node->pred.column));
      }
      return Status::OK();
    }
    case OpType::kNestedLoopJoin: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 2));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(0), catalog, nlj_inner));
      RPE_RETURN_NOT_OK(ResolvePlanSchemas(node->child(1), catalog, true));
      RPE_RETURN_NOT_OK(CheckColumn(node->child(0), node->left_key));
      node->output_schema =
          node->child(0)->output_schema.Concat(node->child(1)->output_schema);
      return Status::OK();
    }
    case OpType::kHashJoin:
    case OpType::kMergeJoin: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 2));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(0), catalog, nlj_inner));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(1), catalog, nlj_inner));
      RPE_RETURN_NOT_OK(CheckColumn(node->child(0), node->left_key));
      RPE_RETURN_NOT_OK(CheckColumn(node->child(1), node->right_key));
      node->output_schema =
          node->child(0)->output_schema.Concat(node->child(1)->output_schema);
      return Status::OK();
    }
    case OpType::kSort:
    case OpType::kBatchSort: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 1));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(0), catalog, nlj_inner));
      RPE_RETURN_NOT_OK(CheckColumn(node->child(0), node->sort_key));
      if (node->op == OpType::kBatchSort && node->batch_size == 0) {
        return Status::InvalidArgument("BatchSort requires batch_size > 0");
      }
      node->output_schema = node->child(0)->output_schema;
      return Status::OK();
    }
    case OpType::kHashAggregate:
    case OpType::kStreamAggregate: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 1));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(0), catalog, nlj_inner));
      if (node->group_cols.empty()) {
        return Status::InvalidArgument("aggregate requires group columns");
      }
      for (size_t g : node->group_cols) {
        RPE_RETURN_NOT_OK(CheckColumn(node->child(0), g));
      }
      node->output_schema = AggregateSchema(node->child(0), node->group_cols);
      return Status::OK();
    }
    case OpType::kTop: {
      RPE_RETURN_NOT_OK(ExpectChildren(node, 1));
      RPE_RETURN_NOT_OK(
          ResolvePlanSchemas(node->child(0), catalog, nlj_inner));
      if (node->limit == 0) {
        return Status::InvalidArgument("Top requires limit > 0");
      }
      node->output_schema = node->child(0)->output_schema;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled operator in ResolvePlanSchemas");
}

}  // namespace rpe
