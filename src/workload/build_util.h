// Small helpers shared by the workload family builders.
#pragma once

#include <string>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/datagen.h"

namespace rpe {

/// \brief Fluent builder: declare columns + generators, then materialize
/// the table into a catalog.
class TableBuilder {
 public:
  TableBuilder(std::string name, uint64_t num_rows) {
    spec_.name = std::move(name);
    spec_.num_rows = num_rows;
  }

  TableBuilder& Col(const std::string& column, uint32_t width_bytes,
                    ColumnGen gen) {
    spec_.columns.push_back(ColumnDef{column, width_bytes});
    spec_.generators.push_back(gen);
    return *this;
  }

  Status AddTo(Catalog* catalog, Rng* rng) const {
    RPE_ASSIGN_OR_RETURN(auto table, GenerateTable(spec_, rng));
    return catalog->AddTable(std::move(table));
  }

 private:
  TableGenSpec spec_;
};

/// Scale helper: rows = base * scale, with a floor.
inline uint64_t ScaledRows(double base, double scale, uint64_t floor_rows = 5) {
  const double rows = base * scale;
  return rows < static_cast<double>(floor_rows)
             ? floor_rows
             : static_cast<uint64_t>(rows);
}

}  // namespace rpe
