// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over byte buffers.
// Used by the binary snapshot container to detect corrupted or truncated
// payloads before any field is decoded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rpe {

/// CRC of `data[0, size)`; `seed` chains incremental computations (pass the
/// previous call's result to continue a running checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace rpe
