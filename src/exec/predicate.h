// Simple scalar predicates over a single column, sufficient for the
// benchmark-style selection/range/equality filters of the workloads.
#pragma once

#include <cstdint>

#include "storage/schema.h"

namespace rpe {

/// \brief Predicate over one column of the input row.
struct Predicate {
  enum class Kind {
    kTrue,      ///< always passes (no-op filter)
    kEq,        ///< col == v1
    kLe,        ///< col <= v1
    kGe,        ///< col >= v1
    kBetween,   ///< v1 <= col <= v2
    kNe,        ///< col != v1
    kEqParam,   ///< col == correlated NLJ parameter (join residual on the
                ///< non-indexed inner side of a nested-loop join)
  };

  Kind kind = Kind::kTrue;
  size_t column = 0;
  int64_t v1 = 0;
  int64_t v2 = 0;

  /// Evaluate; `param` is the current correlated nested-loop key (ignored
  /// unless kind == kEqParam).
  bool Eval(const Row& row, int64_t param = 0) const {
    switch (kind) {
      case Kind::kTrue: return true;
      case Kind::kEq: return row[column] == v1;
      case Kind::kLe: return row[column] <= v1;
      case Kind::kGe: return row[column] >= v1;
      case Kind::kBetween: return row[column] >= v1 && row[column] <= v2;
      case Kind::kNe: return row[column] != v1;
      case Kind::kEqParam: return row[column] == param;
    }
    return true;
  }

  static Predicate True() { return Predicate{}; }
  static Predicate Eq(size_t col, int64_t v) {
    return Predicate{Kind::kEq, col, v, 0};
  }
  static Predicate Le(size_t col, int64_t v) {
    return Predicate{Kind::kLe, col, v, 0};
  }
  static Predicate Ge(size_t col, int64_t v) {
    return Predicate{Kind::kGe, col, v, 0};
  }
  static Predicate Between(size_t col, int64_t lo, int64_t hi) {
    return Predicate{Kind::kBetween, col, lo, hi};
  }
  static Predicate Ne(size_t col, int64_t v) {
    return Predicate{Kind::kNe, col, v, 0};
  }
  static Predicate EqParam(size_t col) {
    return Predicate{Kind::kEqParam, col, 0, 0};
  }
};

}  // namespace rpe
