// Binary regression tree with best-first (leaf-wise) growth over binned
// features, fit to residuals with the MSE criterion — the weak learner
// inside MART (paper §4.2).
#pragma once

#include <string>
#include <vector>

#include "mart/dataset.h"

namespace rpe {

/// \brief Tree-growth parameters.
struct TreeParams {
  int max_leaves = 30;        ///< paper: 30 leaf nodes
  int min_examples_per_leaf = 8;
  double min_gain = 1e-12;    ///< minimum variance reduction to split
};

/// \brief A fitted regression tree; predicts from raw feature vectors.
class RegressionTree {
 public:
  /// Fit to `residuals` (one per example of `data`). Optionally restrict to
  /// `example_indices` (stochastic boosting subsample); empty = all.
  /// Accumulates per-feature split gains into `feature_gains` if non-null.
  static RegressionTree Fit(const BinnedDataset& data,
                            const std::vector<double>& residuals,
                            const std::vector<uint32_t>& example_indices,
                            const TreeParams& params,
                            std::vector<double>* feature_gains);

  double Predict(const std::vector<double>& features) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;

  /// Compact text form (one node per line) for model persistence.
  std::string Serialize() const;
  static Result<RegressionTree> Deserialize(const std::string& text);

 private:
  struct Node {
    int feature = -1;      ///< -1 for leaves
    double threshold = 0;  ///< go left iff x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;    ///< leaf prediction
  };
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace rpe
