#include "common/simd.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace rpe::simd {
namespace {

struct Kernel {
  const char* name;
  internal::BindFn bind;
  const char* impl;
};

/// Registry state: the kernel list grows during static init (one
/// registrar per kernel TU) and is re-bound by ForceTier; the mutex keeps
/// report/force callable from tests while worker threads run (the hot
/// paths never touch the registry — they read their TU-local atomic
/// function pointers).
struct Registry {
  std::mutex mu;
  std::vector<Kernel> kernels;
  Tier active;

  Registry() : active(StartupTier()) {}

  /// min(DetectedTier, RPE_SIMD), warning once about specs that are
  /// unknown or above what the CPU has — a serving box must say when it
  /// is not running the tier the operator asked for.
  static Tier StartupTier() {
    const char* spec = std::getenv("RPE_SIMD");
    if (spec == nullptr) return DetectedTier();
    Tier t = Tier::kScalar;
    if (!ParseTier(spec, &t)) {
      RPE_LOG_WARN << "RPE_SIMD ignored: unknown tier '" << spec
                   << "' (want off|scalar|sse42|avx2); using "
                   << TierName(DetectedTier());
      return DetectedTier();
    }
    if (t > DetectedTier()) {
      RPE_LOG_WARN << "RPE_SIMD=" << spec
                   << " exceeds what this CPU supports; clamping to "
                   << TierName(DetectedTier());
      return DetectedTier();
    }
    return t;
  }
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

}  // namespace

Tier DetectedTier() {
#if defined(__x86_64__) || defined(__i386__)
  static const Tier detected = [] {
    if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
    if (__builtin_cpu_supports("sse4.2") &&
        __builtin_cpu_supports("pclmul")) {
      return Tier::kSse42;
    }
    return Tier::kScalar;
  }();
  return detected;
#else
  return Tier::kScalar;
#endif
}

Tier ActiveTier() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.active;
}

Tier ForceTier(Tier tier) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.active = std::min(tier, DetectedTier());
  for (Kernel& kernel : registry.kernels) {
    kernel.impl = kernel.bind(registry.active);
  }
  return registry.active;
}

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse42:
      return "sse42";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseTier(const char* spec, Tier* out) {
  if (spec == nullptr) return false;
  if (std::strcmp(spec, "off") == 0 || std::strcmp(spec, "scalar") == 0) {
    *out = Tier::kScalar;
    return true;
  }
  if (std::strcmp(spec, "sse42") == 0) {
    *out = Tier::kSse42;
    return true;
  }
  if (std::strcmp(spec, "avx2") == 0) {
    *out = Tier::kAvx2;
    return true;
  }
  return false;
}

std::string KernelReport() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<const Kernel*> sorted;
  sorted.reserve(registry.kernels.size());
  for (const Kernel& kernel : registry.kernels) sorted.push_back(&kernel);
  std::sort(sorted.begin(), sorted.end(),
            [](const Kernel* a, const Kernel* b) {
              return std::strcmp(a->name, b->name) < 0;
            });
  std::string report = "tier=";
  report += TierName(registry.active);
  for (const Kernel* kernel : sorted) {
    report += ' ';
    report += kernel->name;
    report += '=';
    report += kernel->impl;
  }
  return report;
}

namespace internal {

void RegisterKernel(const char* name, BindFn bind) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  // Bind immediately so a kernel is on its startup tier even if it is
  // called before any ForceTier.
  registry.kernels.push_back({name, bind, bind(registry.active)});
}

}  // namespace internal

}  // namespace rpe::simd
