// Error metrics between estimated and true progress (paper §6, "Error
// Metric"): Lp norms of the per-observation difference over a pipeline's
// activity window, plus the ratio error of theoretical interest.
#pragma once

#include <vector>

#include "progress/estimator.h"

namespace rpe {

/// \brief Per-pipeline evaluation of one estimator.
struct EstimatorErrors {
  double l1 = 0.0;
  double l2 = 0.0;
  /// max over observations of max(est/true, true/est).
  double max_ratio = 1.0;
  size_t num_obs = 0;
};

/// Estimated progress at every observation of the pipeline's window.
std::vector<double> EstimateSeries(const ProgressEstimator& estimator,
                                   const PipelineView& view);

/// Ground-truth progress at every observation of the pipeline's window.
std::vector<double> TrueProgressSeries(const PipelineView& view);

/// L1/L2/ratio errors of `estimator` on the pipeline.
EstimatorErrors EvaluateEstimator(const ProgressEstimator& estimator,
                                  const PipelineView& view);

/// Errors of all estimator kinds (indexed by EstimatorKind value) — the
/// eight selectable candidates followed by the two §6.7 oracle models.
std::vector<EstimatorErrors> EvaluateAllEstimators(const PipelineView& view);

/// Query-level progress at observation oi: pipelines combined by their share
/// of the total estimated GetNext calls (Eq. 5 generalized to any
/// per-pipeline estimator choice; `kinds` maps pipeline index -> estimator).
double QueryProgress(const QueryRunResult& run,
                     const std::vector<EstimatorKind>& kinds, size_t oi);

}  // namespace rpe
