// MonitorService: the concurrent serving front of the deployed architecture
// (paper Figure 3). Many queries are monitored at once; each open session
// replays one recorded run through the online select-then-revise protocol
// of ProgressMonitor, and the service shards the per-observation scoring
// across the shared ThreadPool.
//
// Model ownership is an immutable-snapshot hot swap: the service holds a
// std::shared_ptr<const SelectorStack>, every session pins the snapshot
// that was current when it opened, and SwapModels atomically publishes a
// new stack for future sessions without stopping in-flight traffic —
// nothing is ever mutated after publication, so no scoring path takes a
// lock.
//
// Replay is deterministic: each session advances through the same
// QueryProgressAt evaluations as the sequential
// ProgressMonitor::ReplayQueryProgress, and every session writes only its
// own state, so the progress series is bit-identical at any thread count.
//
// The service is also the publish point of the online-learning loop
// (serving/ingest.h + serving/trainer_loop.h): SwapModels carries a
// monotonic model generation, and GetStats can surface the trainer's
// IngestStats next to the replay counters so one call describes the whole
// observe → record → retrain → publish cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "selection/monitor.h"
#include "serving/ingest.h"
#include "serving/snapshot.h"

namespace rpe {

class ThreadPool;

/// \brief Publish target of the online-learning loop: anything that can
/// atomically swap in a new immutable model snapshot. MonitorService and
/// ShardedMonitorService (serving/shard_router.h) implement it; the
/// TrainerLoop publishes through it so retraining is agnostic to whether
/// the serving tier is sharded.
class ModelPublisher {
 public:
  virtual ~ModelPublisher() = default;

  /// Atomically publish a new snapshot; returns the new model generation
  /// (strictly increasing, construction-time snapshot = generation 0).
  virtual uint64_t SwapModels(
      std::shared_ptr<const SelectorStack> models) = 0;
};

/// \brief Concurrent progress-monitoring service over immutable model
/// snapshots. All public methods are thread-safe.
class MonitorService : public ModelPublisher {
 public:
  struct Options {
    /// Driver-consumption marker at which choices are revised (§4.4).
    double revision_marker_pct = 20.0;
    /// Worker pool for sharded replay; nullptr = the global pool.
    ThreadPool* pool = nullptr;
  };

  using SessionId = uint64_t;

  explicit MonitorService(std::shared_ptr<const SelectorStack> models);
  MonitorService(std::shared_ptr<const SelectorStack> models,
                 Options options);

  /// Atomically publish a new model snapshot. Sessions opened before the
  /// swap keep scoring against the snapshot they pinned at open; only new
  /// sessions see the replacement. Returns the new model generation
  /// (strictly increasing; the construction-time snapshot is generation 0).
  uint64_t SwapModels(std::shared_ptr<const SelectorStack> models) override;
  std::shared_ptr<const SelectorStack> models() const;
  /// Generation of the currently published snapshot (number of swaps).
  uint64_t model_generation() const;

  /// Open a monitoring session over a recorded run. The per-pipeline
  /// estimator decisions (initial + revision) are made here, against the
  /// current snapshot — per-observation Advance/Tick work replays against
  /// these precomputed decisions and never scores a selector. `run` must
  /// outlive the session.
  Result<SessionId> OpenSession(const QueryRunResult* run);

  /// Open many sessions in one call; returns one SessionId per run, in
  /// order. The estimator decisions for every pipeline of every run score
  /// through one batched ProgressMonitor::DecideForRuns pass — full SIMD
  /// tiles across runs (common/simd.h) — and are bit-identical to opening
  /// each session individually against the same snapshot. A null run
  /// fails the whole call before any session is opened.
  Result<std::vector<SessionId>> OpenSessions(
      std::span<const QueryRunResult* const> runs);

  /// Advance the session by one observation tick; returns the query
  /// progress reported at the new observation. OutOfRange once the run's
  /// observation stream is exhausted.
  Result<double> Advance(SessionId id);

  /// Last reported progress (0 before the first Advance).
  Result<double> Progress(SessionId id) const;

  /// True once every observation of the session's run has been scored.
  Result<bool> Done(SessionId id) const;

  /// Close the session; its replay latency enters the aggregate stats.
  Status CloseSession(SessionId id);

  size_t num_open_sessions() const;

  /// Advance unfinished sessions by one observation each in a single
  /// sharded pass. `max_steps` bounds the per-call work when the pool is
  /// saturated: 0 (the default) advances every unfinished session; a
  /// positive budget advances at most that many, chosen by per-session
  /// deficit counters (deficit round-robin). Every unfinished session
  /// earns one credit per budgeted tick and the highest-credit sessions
  /// go first (ties by session id, credits reset on service), so any
  /// session waits at most ceil(active / max_steps) ticks — long-running
  /// replays cannot starve short ones. Returns the number of sessions
  /// still unfinished afterwards.
  size_t Tick(size_t max_steps = 0);

  /// Replay whole runs concurrently, one session per entry; out[i] is
  /// bit-identical to ProgressMonitor::ReplayQueryProgress(*runs[i]) run
  /// sequentially against the same snapshot.
  std::vector<std::vector<double>> ReplayAll(
      std::span<const QueryRunResult* const> runs);

  /// \brief Aggregate serving statistics since construction.
  struct Stats {
    size_t sessions_opened = 0;
    size_t sessions_completed = 0;  ///< fully replayed (closed or ReplayAll)
    uint64_t decisions = 0;  ///< estimator selections (initial + revised)
    uint64_t observations_scored = 0;
    /// Per-session full-replay latency percentiles over a sliding window
    /// of the most recent completions (the service is long-running; the
    /// window keeps stats memory bounded).
    double p50_replay_ms = 0.0;
    double p95_replay_ms = 0.0;
    double decisions_per_sec = 0.0;  ///< over cumulative scoring time
    double observations_per_sec = 0.0;
    /// Cumulative scoring time in seconds — the denominator of the rates,
    /// exposed so an aggregator (ShardedMonitorService) can recompute
    /// exact pooled rates from summed counters and times.
    double scoring_time_sec = 0.0;
    /// Generation of the published model snapshot (see SwapModels).
    uint64_t model_generation = 0;
    /// Online-learning counters (zeros unless a provider is registered
    /// via SetIngestStatsProvider).
    IngestStats ingest;
  };
  /// When `latency_samples` is non-null it receives a copy of the bounded
  /// replay-latency reservoir behind p50/p95 (most recent kLatencyWindow
  /// completions, unordered), taken under the same lock hold as the
  /// counters — one consistent snapshot. A shard aggregator merges these
  /// across shards so pooled percentiles are computed over the union of
  /// samples instead of averaging per-shard percentiles.
  Stats GetStats(std::vector<double>* latency_samples = nullptr) const;

  /// Register the source of Stats::ingest (typically
  /// TrainerLoop::GetStats). The provider is called outside the service's
  /// locks on every GetStats; pass nullptr to unregister. It must stay
  /// callable until unregistered or the service is destroyed.
  void SetIngestStatsProvider(std::function<IngestStats()> provider);

 private:
  struct Session {
    std::shared_ptr<const SelectorStack> pinned;  ///< keeps monitor valid
    ProgressMonitor monitor;
    const QueryRunResult* run = nullptr;
    std::vector<ProgressMonitor::PipelineDecision> decisions;
    size_t next_obs = 0;
    double last_progress = 0.0;
    double elapsed_sec = 0.0;  ///< cumulative scoring time
    /// Fairness credit for budgeted Tick (guarded by the service's
    /// tick_mu_: only the serialized scheduling pass touches it).
    uint64_t deficit = 0;
    /// Serializes Advance/Tick on the same session; distinct sessions
    /// never contend.
    mutable std::mutex mu;
    Session(std::shared_ptr<const SelectorStack> stack,
            const QueryRunResult* r, double marker_pct);
  };

  Result<std::shared_ptr<Session>> Find(SessionId id) const;
  /// One observation tick of one session (caller holds s->mu); returns
  /// the scoring time spent.
  static double StepLocked(Session* s);
  void RecordCompletion(const Session& s);
  /// Caller holds stats_mu_.
  void PushLatencyLocked(double latency_ms);

  const Options options_;

  mutable std::mutex models_mu_;
  std::shared_ptr<const SelectorStack> models_;
  uint64_t model_generation_ = 0;

  mutable std::mutex sessions_mu_;
  SessionId next_id_ = 1;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;

  /// Serializes Tick passes (the deficit scheduling state is
  /// single-ticker); Advance/ReplayAll do not take it.
  std::mutex tick_mu_;

  mutable std::mutex ingest_mu_;
  std::function<IngestStats()> ingest_provider_;

  mutable std::mutex stats_mu_;
  size_t sessions_opened_ = 0;
  size_t sessions_completed_ = 0;
  uint64_t decisions_ = 0;
  uint64_t observations_scored_ = 0;
  /// Cumulative scoring time, accrued live (session open, every Advance/
  /// Tick step, every ReplayAll session) — the rate denominator.
  double scoring_time_sec_ = 0.0;
  /// Bounded ring of recent per-session replay latencies (see Stats).
  static constexpr size_t kLatencyWindow = 4096;
  std::vector<double> replay_latency_ms_;
  size_t latency_next_ = 0;
};

}  // namespace rpe
