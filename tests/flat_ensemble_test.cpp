// FlatEnsemble tests: bit-exact equivalence with MartModel::Predict across
// random models and inputs, the serialize → deserialize → flatten round
// trip, batch and multi-model scoring, and thread-count invariance of
// training (parallel training must serialize byte-identically).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "mart/flat_ensemble.h"

namespace rpe {
namespace {

Dataset RandomDataset(size_t n, size_t nf, uint64_t seed) {
  Dataset data(nf);
  Rng rng(seed);
  std::vector<double> x(nf);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : x) v = rng.NextDouble();
    const double y = x[0] * 0.7 + (x[1 % nf] > 0.4 ? 0.5 : -0.2) +
                     x[2 % nf] * x[3 % nf] + 0.1 * rng.NextGaussian();
    RPE_CHECK_OK(data.AddExample(x, y));
  }
  return data;
}

TEST(FlatEnsembleTest, BitExactWithMartPredictAcrossRandomModels) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Dataset data = RandomDataset(800, 6, seed);
    MartParams params;
    params.num_trees = 30;
    params.subsample = seed % 2 == 0 ? 0.7 : 1.0;
    params.seed = seed;
    MartModel model = MartModel::Train(data, params);
    FlatEnsemble flat = FlatEnsemble::Compile(model);
    ASSERT_EQ(flat.num_trees(), model.num_trees());

    Rng rng(100 + seed);
    std::vector<double> x(6);
    for (int trial = 0; trial < 200; ++trial) {
      for (auto& v : x) v = rng.NextDouble() * 2.0 - 0.5;
      EXPECT_EQ(model.Predict(x), flat.Predict(x))
          << "seed " << seed << " trial " << trial;
    }
    for (size_t i = 0; i < data.num_examples(); ++i) {
      ASSERT_EQ(model.Predict(data.ExampleSpan(i)),
                flat.Predict(data.ExampleSpan(i)));
    }
  }
}

TEST(FlatEnsembleTest, SerializeDeserializeFlattenRoundTrip) {
  Dataset data = RandomDataset(1200, 5, 9);
  MartParams params;
  params.num_trees = 40;
  MartModel model = MartModel::Train(data, params);
  auto restored = MartModel::Deserialize(model.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  FlatEnsemble flat = FlatEnsemble::Compile(model);
  FlatEnsemble flat_restored = FlatEnsemble::Compile(*restored);
  ASSERT_EQ(flat.num_nodes(), flat_restored.num_nodes());
  for (size_t i = 0; i < 300; ++i) {
    const auto x = data.ExampleSpan(i);
    EXPECT_EQ(flat.Predict(x), flat_restored.Predict(x));
    EXPECT_EQ(flat_restored.Predict(x), model.Predict(x));
  }
}

TEST(FlatEnsembleTest, PredictBatchMatchesScalarPredict) {
  Dataset data = RandomDataset(700, 8, 17);
  MartParams params;
  params.num_trees = 25;
  MartModel model = MartModel::Train(data, params);
  FlatEnsemble flat = FlatEnsemble::Compile(model);

  std::vector<double> batch(data.num_examples());
  flat.PredictBatch(data, batch);
  for (size_t i = 0; i < data.num_examples(); ++i) {
    ASSERT_EQ(batch[i], model.Predict(data.ExampleSpan(i)));
  }
}

TEST(FlatEnsembleTest, EmptyModelPredictsBias) {
  Dataset empty(3);
  MartModel model = MartModel::Train(empty, {});
  FlatEnsemble flat = FlatEnsemble::Compile(model);
  EXPECT_EQ(flat.Predict(std::vector<double>{1.0, 2.0, 3.0}), 0.0);
}

TEST(FlatEnsembleSetTest, PredictAllMatchesPerModelPredict) {
  std::vector<MartModel> models;
  Dataset data = RandomDataset(600, 6, 23);
  for (int m = 0; m < 4; ++m) {
    MartParams params;
    params.num_trees = 15 + m * 5;
    params.seed = static_cast<uint64_t>(m + 1);
    models.push_back(MartModel::Train(data, params));
  }
  FlatEnsembleSet set = FlatEnsembleSet::Compile(models);
  ASSERT_EQ(set.num_models(), models.size());

  std::vector<double> out(models.size());
  for (size_t i = 0; i < 200; ++i) {
    const auto x = data.ExampleSpan(i);
    set.PredictAll(x, out);
    size_t expected_best = 0;
    for (size_t m = 0; m < models.size(); ++m) {
      ASSERT_EQ(out[m], models[m].Predict(x));
      if (out[m] < out[expected_best]) expected_best = m;
    }
    EXPECT_EQ(set.ArgMin(x), expected_best);
  }
}

TEST(FlatEnsembleSetTest, EmptySetOfModelsCompiles) {
  FlatEnsembleSet set = FlatEnsembleSet::Compile({});
  EXPECT_EQ(set.num_models(), 0u);
}

TEST(FlatEnsembleSetTest, WideTreesUseWalkFallbackBitExactly) {
  // Trees over 64 leaves exceed the QuickScorer bitvector, so the set
  // must score those models through the compiled walk path instead —
  // still bit-exact, including the per-model tree-range offsets.
  Dataset data = RandomDataset(4000, 6, 57);
  std::vector<MartModel> models;
  for (int m = 0; m < 3; ++m) {
    MartParams params;
    params.num_trees = 10;
    params.tree.max_leaves = 100;
    params.tree.min_examples_per_leaf = 2;
    params.seed = static_cast<uint64_t>(m + 1);
    models.push_back(MartModel::Train(data, params));
  }
  size_t wide_leaves = 0;
  for (const auto& tree : models[0].trees()) {
    wide_leaves = std::max(wide_leaves, tree.num_leaves());
  }
  ASSERT_GT(wide_leaves, 64u) << "fixture no longer exercises the fallback";

  FlatEnsembleSet set = FlatEnsembleSet::Compile(models);
  std::vector<double> out(models.size());
  for (size_t i = 0; i < 200; ++i) {
    const auto x = data.ExampleSpan(i);
    set.PredictAll(x, out);
    for (size_t m = 0; m < models.size(); ++m) {
      ASSERT_EQ(out[m], models[m].Predict(x));
    }
  }
}

TEST(FlatEnsembleSetTest, NonFiniteFeaturesMatchTreeWalkExactly) {
  // The tree walk sends NaN right at every split (x <= t is false), -inf
  // always left, +inf always right; the compiled scorers must agree.
  Dataset data = RandomDataset(800, 4, 41);
  MartParams params;
  params.num_trees = 20;
  std::vector<MartModel> models = {MartModel::Train(data, params)};
  FlatEnsembleSet set = FlatEnsembleSet::Compile(models);
  FlatEnsemble flat = FlatEnsemble::Compile(models[0]);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<std::vector<double>> probes = {
      {nan, nan, nan, nan},
      {-inf, -inf, -inf, -inf},
      {inf, inf, inf, inf},
      {nan, 0.5, -inf, inf},
      {0.2, nan, inf, 0.9},
  };
  std::vector<double> out(1);
  for (const auto& x : probes) {
    const double expected = models[0].Predict(x);
    EXPECT_EQ(flat.Predict(x), expected);
    set.PredictAll(x, out);
    EXPECT_EQ(out[0], expected);
  }
}

TEST(FlatEnsembleSetTest, MixedWideAndNarrowModelsStayBitExact) {
  // A set mixing QuickScorer-usable models with a >64-leaf one cannot use
  // the merged shared-feature loop; it must fall back to per-model scoring
  // (narrow models via their own tables, the wide one via the walk) and
  // still match MartModel::Predict bit for bit.
  Dataset data = RandomDataset(4000, 6, 61);
  std::vector<MartModel> models;
  for (int m = 0; m < 3; ++m) {
    MartParams params;
    params.num_trees = 12;
    if (m == 1) {
      params.tree.max_leaves = 100;
      params.tree.min_examples_per_leaf = 2;
    }
    params.seed = static_cast<uint64_t>(m + 1);
    models.push_back(MartModel::Train(data, params));
  }
  size_t widest = 0;
  for (const auto& tree : models[1].trees()) {
    widest = std::max(widest, tree.num_leaves());
  }
  ASSERT_GT(widest, 64u) << "fixture no longer mixes usabilities";

  FlatEnsembleSet set = FlatEnsembleSet::Compile(models);
  std::vector<double> out(models.size());
  for (size_t i = 0; i < 200; ++i) {
    const auto x = data.ExampleSpan(i);
    set.PredictAll(x, out);
    size_t expected_best = 0;
    for (size_t m = 0; m < models.size(); ++m) {
      ASSERT_EQ(out[m], models[m].Predict(x));
      if (out[m] < out[expected_best]) expected_best = m;
    }
    EXPECT_EQ(set.ArgMin(x), expected_best);
  }
}

// Training determinism: the fitted model (and therefore its serialized
// text) must be byte-identical at any thread count — histogram
// accumulation and the split sweep parallelize over feature blocks whose
// per-feature adds always run in example order, the reduction happens in
// feature order on the caller, and the prediction update writes per-index
// slots only.
TEST(ParallelTrainingTest, SerializedModelsAreThreadCountInvariant) {
  Dataset data = RandomDataset(3000, 10, 31);
  MartParams params;
  params.num_trees = 30;
  params.subsample = 0.8;

  ThreadPool sequential(1);
  params.pool = &sequential;
  const std::string blob_seq = MartModel::Train(data, params).Serialize();
  for (const int threads : {2, 8}) {
    ThreadPool pool(threads);
    params.pool = &pool;
    EXPECT_EQ(blob_seq, MartModel::Train(data, params).Serialize())
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rpe
