#include "selection/record.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace rpe {

size_t PipelineRecord::BestEstimator() const {
  // Only the selectable candidates compete; oracle-model entries (if
  // present at the tail) are excluded.
  const size_t n =
      std::min(l1.size(), static_cast<size_t>(kNumSelectableEstimators));
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (l1[i] < l1[best]) best = i;
  }
  return best;
}

double PipelineRecord::BestL1() const { return l1[BestEstimator()]; }

bool MakeRecord(const PipelineView& view, const std::string& workload,
                const std::string& query, const std::string& tag,
                PipelineRecord* out, size_t min_observations) {
  if (view.pipeline->first_obs < 0) return false;
  const size_t window = static_cast<size_t>(view.pipeline->last_obs -
                                            view.pipeline->first_obs) + 1;
  if (window < min_observations) return false;
  out->workload = workload;
  out->query = query;
  out->pipeline_id = view.pipeline->id;
  out->tag = tag;
  out->total_n = 0.0;
  for (int id : view.pipeline->nodes) {
    out->total_n += view.run->true_n[static_cast<size_t>(id)];
  }
  out->features = ExtractAllFeatures(view);
  const auto errors = EvaluateAllEstimators(view);
  out->l1.clear();
  out->l2.clear();
  for (const auto& e : errors) {
    out->l1.push_back(e.l1);
    out->l2.push_back(e.l2);
  }
  return true;
}

std::string RecordsToCsv(const std::vector<PipelineRecord>& records) {
  std::ostringstream out;
  out.precision(12);
  const FeatureSchema& schema = FeatureSchema::Get();
  out << "workload,query,pipeline,tag,total_n";
  for (size_t f = 0; f < schema.num_features(); ++f) {
    out << "," << schema.name(f);
  }
  for (int e = 0; e < kNumEstimatorKinds; ++e) {
    out << ",l1_" << EstimatorName(static_cast<EstimatorKind>(e));
  }
  for (int e = 0; e < kNumEstimatorKinds; ++e) {
    out << ",l2_" << EstimatorName(static_cast<EstimatorKind>(e));
  }
  out << "\n";
  for (const auto& r : records) {
    out << r.workload << "," << r.query << "," << r.pipeline_id << ","
        << r.tag << "," << r.total_n;
    for (double f : r.features) out << "," << f;
    for (double v : r.l1) out << "," << v;
    for (double v : r.l2) out << "," << v;
    out << "\n";
  }
  return out.str();
}

Result<std::vector<PipelineRecord>> RecordsFromCsv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty records CSV");
  }
  const size_t num_features = FeatureSchema::Get().num_features();
  const size_t num_est = static_cast<size_t>(kNumEstimatorKinds);
  std::vector<PipelineRecord> records;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    PipelineRecord r;
    if (!std::getline(ls, r.workload, ',')) continue;
    if (!std::getline(ls, r.query, ',')) continue;
    if (!std::getline(ls, cell, ',')) continue;
    r.pipeline_id = std::stoi(cell);
    if (!std::getline(ls, r.tag, ',')) continue;
    if (!std::getline(ls, cell, ',')) continue;
    r.total_n = std::stod(cell);
    r.features.reserve(num_features);
    for (size_t f = 0; f < num_features; ++f) {
      if (!std::getline(ls, cell, ',')) {
        return Status::InvalidArgument("truncated feature row");
      }
      r.features.push_back(std::stod(cell));
    }
    for (size_t e = 0; e < num_est; ++e) {
      if (!std::getline(ls, cell, ',')) {
        return Status::InvalidArgument("truncated l1 row");
      }
      r.l1.push_back(std::stod(cell));
    }
    for (size_t e = 0; e < num_est; ++e) {
      if (!std::getline(ls, cell, ',')) {
        return Status::InvalidArgument("truncated l2 row");
      }
      r.l2.push_back(std::stod(cell));
    }
    records.push_back(std::move(r));
  }
  return records;
}

Status SaveRecords(const std::vector<PipelineRecord>& records,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << RecordsToCsv(records);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

Result<std::vector<PipelineRecord>> LoadRecords(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return RecordsFromCsv(buf.str());
}

}  // namespace rpe
