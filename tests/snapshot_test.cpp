// Serving-layer tests: binary snapshot round-trips (bit-exact vs. the text
// serialization path), corruption/truncation rejection, and MonitorService
// concurrency — replayed progress series must be bit-identical to the
// sequential ProgressMonitor at any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "serving/monitor_service.h"
#include "serving/snapshot.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

SelectorStack TrainSmallStack(const std::vector<PipelineRecord>& records,
                              uint64_t seed) {
  MartParams params;
  params.num_trees = 10;
  params.tree.max_leaves = 8;
  params.seed = seed;
  return SelectorStack::Train(records, PoolOriginalThree(), params);
}

class SnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<PipelineRecord>(RandomRecords(80, 11));
    stack_ = new SelectorStack(TrainSmallStack(*records_, 7));
  }
  static void TearDownTestSuite() {
    delete records_;
    delete stack_;
    records_ = nullptr;
    stack_ = nullptr;
  }

  static std::vector<PipelineRecord>* records_;
  static SelectorStack* stack_;
};

std::vector<PipelineRecord>* SnapshotTest::records_ = nullptr;
SelectorStack* SnapshotTest::stack_ = nullptr;

TEST_F(SnapshotTest, RecordBatchRoundTripIsByteIdentical) {
  const std::string bytes = EncodeRecordBatch(*records_);
  auto decoded = DecodeRecordBatch(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), records_->size());
  for (size_t i = 0; i < records_->size(); ++i) {
    const PipelineRecord& a = (*records_)[i];
    const PipelineRecord& b = (*decoded)[i];
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.query, b.query);
    EXPECT_EQ(a.pipeline_id, b.pipeline_id);
    EXPECT_EQ(a.tag, b.tag);
    EXPECT_EQ(a.total_n, b.total_n);  // bit-exact, not approximate
    EXPECT_EQ(a.features, b.features);
    EXPECT_EQ(a.l1, b.l1);
    EXPECT_EQ(a.l2, b.l2);
  }
  // Re-encoding the decoded batch reproduces the file byte for byte.
  EXPECT_EQ(EncodeRecordBatch(*decoded), bytes);
}

TEST_F(SnapshotTest, EmptyRecordBatchRoundTrips) {
  const std::string bytes = EncodeRecordBatch({});
  auto decoded = DecodeRecordBatch(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->empty());
}

TEST_F(SnapshotTest, SelectorStackRoundTripIsBitExact) {
  const std::string bytes = EncodeSelectorStack(*stack_);
  auto decoded = DecodeSelectorStack(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();

  for (const auto& pair :
       {std::make_pair(&stack_->static_selector, &decoded->static_selector),
        std::make_pair(&stack_->dynamic_selector,
                       &decoded->dynamic_selector)}) {
    const EstimatorSelector& original = *pair.first;
    const EstimatorSelector& loaded = *pair.second;
    EXPECT_EQ(original.pool(), loaded.pool());
    EXPECT_EQ(original.uses_dynamic_features(),
              loaded.uses_dynamic_features());
    ASSERT_EQ(original.models().size(), loaded.models().size());
    for (size_t m = 0; m < original.models().size(); ++m) {
      // The text serialization is the reference persistence path; the
      // binary round-trip must agree with it exactly.
      EXPECT_EQ(original.models()[m].Serialize(),
                loaded.models()[m].Serialize());
    }
    // Scoring is bit-exact too (same models, deterministic recompile).
    for (const PipelineRecord& r : *records_) {
      EXPECT_EQ(original.PredictErrors(r.features),
                loaded.PredictErrors(r.features));
      EXPECT_EQ(original.SelectForRecord(r), loaded.SelectForRecord(r));
    }
  }
  // Re-encode reproduces the snapshot byte for byte.
  EXPECT_EQ(EncodeSelectorStack(*decoded), bytes);
}

TEST_F(SnapshotTest, CorruptedPayloadIsRejected) {
  std::string bytes = EncodeRecordBatch(*records_);
  bytes[bytes.size() / 2] ^= 0x5A;  // flip bits mid-payload
  auto decoded = DecodeRecordBatch(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("CRC"), std::string::npos)
      << decoded.status().ToString();
}

TEST_F(SnapshotTest, CorruptedModelPayloadIsRejected) {
  std::string bytes = EncodeSelectorStack(*stack_);
  bytes[bytes.size() - 9] ^= 0xFF;
  EXPECT_FALSE(DecodeSelectorStack(bytes).ok());
}

TEST_F(SnapshotTest, TruncatedSnapshotIsRejected) {
  const std::string bytes = EncodeRecordBatch(*records_);
  // Every strict prefix must be rejected — header-only, mid-payload, and
  // one-byte-short truncations alike.
  for (size_t keep : {size_t{0}, size_t{16}, size_t{31}, size_t{32},
                      bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DecodeRecordBatch(bytes.substr(0, keep)).ok())
        << "prefix of " << keep << " bytes decoded";
  }
}

TEST_F(SnapshotTest, BadMagicAndVersionAreRejected) {
  std::string bytes = EncodeRecordBatch(*records_);
  {
    std::string bad = bytes;
    bad[0] = 'X';
    auto decoded = DecodeRecordBatch(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
  }
  {
    std::string bad = bytes;
    bad[4] = 99;  // future format version
    auto decoded = DecodeRecordBatch(bad);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
  }
}

TEST_F(SnapshotTest, MismatchedKindIsRejected) {
  const std::string stack_bytes = EncodeSelectorStack(*stack_);
  EXPECT_FALSE(DecodeRecordBatch(stack_bytes).ok());
  const std::string record_bytes = EncodeRecordBatch(*records_);
  EXPECT_FALSE(DecodeSelectorStack(record_bytes).ok());
  auto kind = PeekSnapshotKind(stack_bytes);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, SnapshotKind::kSelectorStack);
}

TEST_F(SnapshotTest, HostileNodeGraphsAreRejected) {
  // Self-loop at the root: valid indices, but cyclic — must be rejected
  // (FromNodes is the gate that keeps a crafted snapshot from driving
  // Predict or the flat-ensemble compiler into unbounded recursion).
  std::vector<RegressionTree::Node> self_loop(1);
  self_loop[0].feature = 0;
  self_loop[0].threshold = 0.5;
  self_loop[0].left = 0;
  self_loop[0].right = 0;
  EXPECT_FALSE(RegressionTree::FromNodes(self_loop).ok());

  // Back edge deeper in the array.
  std::vector<RegressionTree::Node> back_edge(3);
  back_edge[0].feature = 0;
  back_edge[0].threshold = 0.5;
  back_edge[0].left = 1;
  back_edge[0].right = 2;
  back_edge[1].value = 1.0;  // leaf
  back_edge[2].feature = 1;
  back_edge[2].threshold = 0.5;
  back_edge[2].left = 0;  // cycle back to the root
  back_edge[2].right = 1;
  EXPECT_FALSE(RegressionTree::FromNodes(back_edge).ok());

  // Out-of-range child.
  std::vector<RegressionTree::Node> oob = back_edge;
  oob[2].left = 7;
  EXPECT_FALSE(RegressionTree::FromNodes(oob).ok());

  // DAG chain (left == right == i+1): indices are in order, but the
  // shared children would make the flat-ensemble compiler expand 2^n
  // paths — must be rejected as not-a-tree.
  std::vector<RegressionTree::Node> dag(26);
  for (size_t i = 0; i + 1 < dag.size(); ++i) {
    dag[i].feature = 0;
    dag[i].threshold = 0.5;
    dag[i].left = static_cast<int>(i) + 1;
    dag[i].right = static_cast<int>(i) + 1;
  }
  dag.back().value = 1.0;
  EXPECT_FALSE(RegressionTree::FromNodes(dag).ok());

  // Dead (unreachable) nodes are likewise malformed.
  std::vector<RegressionTree::Node> dead(4);
  dead[0].feature = 0;
  dead[0].threshold = 0.5;
  dead[0].left = 1;
  dead[0].right = 2;
  dead[1].value = 1.0;
  dead[2].value = 2.0;
  dead[3].value = 3.0;  // referenced by nothing
  EXPECT_FALSE(RegressionTree::FromNodes(dead).ok());

  // The well-formed variant is accepted and predicts.
  std::vector<RegressionTree::Node> ok_nodes(3);
  ok_nodes[0].feature = 0;
  ok_nodes[0].threshold = 0.5;
  ok_nodes[0].left = 1;
  ok_nodes[0].right = 2;
  ok_nodes[1].value = 1.0;
  ok_nodes[2].value = 2.0;
  auto tree = RegressionTree::FromNodes(ok_nodes);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->Predict(std::vector<double>{0.0}), 1.0);
  EXPECT_EQ(tree->Predict(std::vector<double>{1.0}), 2.0);
}

TEST_F(SnapshotTest, OutOfRangeSplitFeatureIsRejected) {
  // A persisted model splitting beyond the selector's input width would
  // read past the feature vector at scoring time; FromModels is the gate.
  std::vector<RegressionTree::Node> nodes(3);
  nodes[0].feature = 100000;  // far beyond any schema width
  nodes[0].threshold = 0.5;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[1].value = 1.0;
  nodes[2].value = 2.0;
  auto tree = RegressionTree::FromNodes(nodes);
  ASSERT_TRUE(tree.ok());
  MartModel model = MartModel::FromParts(
      0.0, 0.1, {std::move(tree).ValueOrDie()}, {});
  auto selector = EstimatorSelector::FromModels(
      {0}, /*use_dynamic_features=*/false, {std::move(model)});
  ASSERT_FALSE(selector.ok());
  EXPECT_NE(selector.status().message().find("feature"), std::string::npos)
      << selector.status().ToString();
}

TEST_F(SnapshotTest, FileRoundTrip) {
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string record_path = dir + "/rpe_snapshot_test_records.rpsn";
  const std::string stack_path = dir + "/rpe_snapshot_test_stack.rpsn";

  ASSERT_TRUE(SaveRecordBatch(*records_, record_path).ok());
  auto records = LoadRecordBatch(record_path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  EXPECT_EQ(EncodeRecordBatch(*records), EncodeRecordBatch(*records_));

  ASSERT_TRUE(SaveSelectorStack(*stack_, stack_path).ok());
  auto stack = LoadSelectorStack(stack_path);
  ASSERT_TRUE(stack.ok()) << stack.status().ToString();
  EXPECT_EQ(EncodeSelectorStack(*stack), EncodeSelectorStack(*stack_));

  auto kind = PeekSnapshotFileKind(record_path);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, SnapshotKind::kRecordBatch);

  std::remove(record_path.c_str());
  std::remove(stack_path.c_str());
}

// ---------------------------------------------------------------------------
// MonitorService: concurrency, sessions, hot swap.

class MonitorServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    runs_ = new std::vector<QueryRunResult>();
    plans_ = new std::vector<std::unique_ptr<PhysicalPlan>>();
    AddRun(MakeTableScan("t_fact"));
    AddRun(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1));
    AddRun(MakeNestedLoopJoin(MakeTableScan("t_fact"),
                              MakeIndexSeek("t_dim", "d_id"), 1));
    AddRun(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
    stack_ = std::make_shared<const SelectorStack>(
        TrainSmallStack(RandomRecords(80, 11), 7));
  }
  static void TearDownTestSuite() {
    delete runs_;
    delete plans_;
    delete catalog_;
    stack_.reset();
    runs_ = nullptr;
    plans_ = nullptr;
    catalog_ = nullptr;
  }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  static void AddRun(std::unique_ptr<PlanNode> root) {
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans_->push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_->back(), *catalog_);
    ASSERT_TRUE(result.ok());
    runs_->push_back(std::move(result).ValueOrDie());
  }

  /// 64+ session slots cycling the recorded runs.
  static std::vector<const QueryRunResult*> SessionRuns(size_t n) {
    std::vector<const QueryRunResult*> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(&(*runs_)[i % runs_->size()]);
    return out;
  }

  static std::vector<std::vector<double>> SequentialSeries(
      const std::vector<const QueryRunResult*>& runs) {
    ProgressMonitor monitor(&stack_->static_selector,
                            &stack_->dynamic_selector);
    std::vector<std::vector<double>> out;
    out.reserve(runs.size());
    for (const QueryRunResult* run : runs) {
      out.push_back(monitor.ReplayQueryProgress(*run));
    }
    return out;
  }

  static Catalog* catalog_;
  static std::vector<QueryRunResult>* runs_;
  static std::vector<std::unique_ptr<PhysicalPlan>>* plans_;
  static std::shared_ptr<const SelectorStack> stack_;
};

Catalog* MonitorServiceTest::catalog_ = nullptr;
std::vector<QueryRunResult>* MonitorServiceTest::runs_ = nullptr;
std::vector<std::unique_ptr<PhysicalPlan>>* MonitorServiceTest::plans_ =
    nullptr;
std::shared_ptr<const SelectorStack> MonitorServiceTest::stack_;

TEST_F(MonitorServiceTest, ConcurrentReplayIsBitIdenticalAtAnyThreadCount) {
  const auto session_runs = SessionRuns(64);
  const auto expected = SequentialSeries(session_runs);

  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    MonitorService::Options options;
    options.pool = &pool;
    MonitorService service(stack_, options);
    const auto series = service.ReplayAll(session_runs);
    ASSERT_EQ(series.size(), expected.size());
    for (size_t s = 0; s < series.size(); ++s) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(series[s], expected[s])
          << "session " << s << " at " << threads << " threads";
    }
    const auto stats = service.GetStats();
    EXPECT_EQ(stats.sessions_completed, session_runs.size());
    EXPECT_GT(stats.decisions, 0u);
    EXPECT_GE(stats.p95_replay_ms, stats.p50_replay_ms);
  }
}

TEST_F(MonitorServiceTest, SessionAdvanceMatchesSequentialReplay) {
  MonitorService service(stack_);
  const QueryRunResult& run = (*runs_)[1];
  ProgressMonitor monitor(&stack_->static_selector,
                          &stack_->dynamic_selector);
  const auto expected = monitor.ReplayQueryProgress(run);

  auto id = service.OpenSession(&run);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(service.num_open_sessions(), 1u);
  for (size_t oi = 0; oi < expected.size(); ++oi) {
    auto done = service.Done(*id);
    ASSERT_TRUE(done.ok());
    EXPECT_FALSE(*done);
    auto progress = service.Advance(*id);
    ASSERT_TRUE(progress.ok()) << progress.status().ToString();
    EXPECT_EQ(*progress, expected[oi]) << "observation " << oi;
    EXPECT_EQ(*service.Progress(*id), expected[oi]);
  }
  EXPECT_TRUE(*service.Done(*id));
  EXPECT_FALSE(service.Advance(*id).ok());  // stream exhausted
  ASSERT_TRUE(service.CloseSession(*id).ok());
  EXPECT_EQ(service.num_open_sessions(), 0u);
  EXPECT_FALSE(service.Progress(*id).ok());  // closed sessions are gone
  const auto stats = service.GetStats();
  EXPECT_EQ(stats.sessions_completed, 1u);
  EXPECT_EQ(stats.observations_scored, expected.size());
}

TEST_F(MonitorServiceTest, TickAdvancesEverySessionOncePerCall) {
  MonitorService service(stack_);
  std::vector<MonitorService::SessionId> ids;
  size_t total_obs = 0;
  for (const QueryRunResult& run : *runs_) {
    auto id = service.OpenSession(&run);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    total_obs += run.observations.size();
  }
  size_t ticks = 0;
  while (service.Tick() > 0) ++ticks;
  // The longest run bounds the tick count (its last tick returns 0 left).
  size_t longest = 0;
  for (const QueryRunResult& run : *runs_) {
    longest = std::max(longest, run.observations.size());
  }
  EXPECT_EQ(ticks, longest - 1);
  EXPECT_EQ(service.GetStats().observations_scored, total_obs);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE(*service.Done(ids[i]));
    const auto expected = SequentialSeries({&(*runs_)[i]});
    EXPECT_EQ(*service.Progress(ids[i]), expected[0].back());
    ASSERT_TRUE(service.CloseSession(ids[i]).ok());
  }
}

TEST_F(MonitorServiceTest, SwapModelsKeepsOpenSessionsPinned) {
  auto other = std::make_shared<const SelectorStack>(
      TrainSmallStack(RandomRecords(80, 23), 41));
  MonitorService service(stack_);
  const QueryRunResult& run = (*runs_)[2];

  auto id = service.OpenSession(&run);
  ASSERT_TRUE(id.ok());
  service.SwapModels(other);
  EXPECT_EQ(service.models().get(), other.get());

  // The open session still replays against the snapshot it pinned at open.
  ProgressMonitor pinned(&stack_->static_selector, &stack_->dynamic_selector);
  const auto expected = pinned.ReplayQueryProgress(run);
  for (size_t oi = 0; oi < expected.size(); ++oi) {
    EXPECT_EQ(*service.Advance(*id), expected[oi]);
  }
  ASSERT_TRUE(service.CloseSession(*id).ok());

  // New sessions decide against the swapped-in models.
  const std::vector<const QueryRunResult*> one{&run};
  ProgressMonitor swapped(&other->static_selector, &other->dynamic_selector);
  EXPECT_EQ(service.ReplayAll(one)[0], swapped.ReplayQueryProgress(run));
}

TEST_F(MonitorServiceTest, InvalidSessionsAreErrors) {
  MonitorService service(stack_);
  EXPECT_FALSE(service.OpenSession(nullptr).ok());
  EXPECT_FALSE(service.Advance(99).ok());
  EXPECT_FALSE(service.Progress(99).ok());
  EXPECT_FALSE(service.Done(99).ok());
  EXPECT_FALSE(service.CloseSession(99).ok());
}

}  // namespace
}  // namespace rpe
