#include "progress/error.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpe {

namespace {

/// Observation index range of the pipeline's activity window.
std::pair<size_t, size_t> WindowRange(const PipelineView& view) {
  if (view.pipeline->first_obs < 0) return {1, 0};  // empty
  return {static_cast<size_t>(view.pipeline->first_obs),
          static_cast<size_t>(view.pipeline->last_obs)};
}

}  // namespace

std::vector<double> EstimateSeries(const ProgressEstimator& estimator,
                                   const PipelineView& view) {
  auto [lo, hi] = WindowRange(view);
  std::vector<double> out;
  for (size_t oi = lo; oi <= hi && oi < view.num_obs(); ++oi) {
    out.push_back(estimator.Estimate(view, oi));
  }
  return out;
}

std::vector<double> TrueProgressSeries(const PipelineView& view) {
  auto [lo, hi] = WindowRange(view);
  std::vector<double> out;
  for (size_t oi = lo; oi <= hi && oi < view.num_obs(); ++oi) {
    out.push_back(view.TrueProgress(oi));
  }
  return out;
}

EstimatorErrors EvaluateEstimator(const ProgressEstimator& estimator,
                                  const PipelineView& view) {
  EstimatorErrors errors;
  auto [lo, hi] = WindowRange(view);
  if (lo > hi) return errors;
  double sum1 = 0.0, sum2 = 0.0, max_ratio = 1.0;
  size_t n = 0;
  for (size_t oi = lo; oi <= hi && oi < view.num_obs(); ++oi) {
    const double est = estimator.Estimate(view, oi);
    const double truth = view.TrueProgress(oi);
    const double d = std::abs(est - truth);
    sum1 += d;
    sum2 += d * d;
    const double eps = 1e-4;
    const double ratio = std::max((est + eps) / (truth + eps),
                                  (truth + eps) / (est + eps));
    max_ratio = std::max(max_ratio, ratio);
    ++n;
  }
  if (n == 0) return errors;
  errors.l1 = sum1 / static_cast<double>(n);
  errors.l2 = std::sqrt(sum2 / static_cast<double>(n));
  errors.max_ratio = max_ratio;
  errors.num_obs = n;
  return errors;
}

std::vector<EstimatorErrors> EvaluateAllEstimators(const PipelineView& view) {
  std::vector<EstimatorErrors> out;
  out.reserve(kNumEstimatorKinds);
  for (int i = 0; i < kNumEstimatorKinds; ++i) {
    out.push_back(
        EvaluateEstimator(GetEstimator(static_cast<EstimatorKind>(i)), view));
  }
  return out;
}

double QueryProgress(const QueryRunResult& run,
                     const std::vector<EstimatorKind>& kinds, size_t oi) {
  RPE_CHECK_EQ(kinds.size(), run.pipelines.size());
  // Pipeline weights: share of total estimated GetNext calls (Eq. 5 uses
  // initial estimates; we use the latest refined ones at obs oi).
  const Observation& obs = run.observations[oi];
  double total_e = 0.0;
  std::vector<double> weights(run.pipelines.size(), 0.0);
  for (size_t p = 0; p < run.pipelines.size(); ++p) {
    double e = 0.0;
    for (int id : run.pipelines[p].nodes) {
      e += obs.e[static_cast<size_t>(id)];
    }
    weights[p] = e;
    total_e += e;
  }
  if (total_e <= 0.0) return 0.0;
  double progress = 0.0;
  for (size_t p = 0; p < run.pipelines.size(); ++p) {
    PipelineView view{&run, &run.pipelines[p]};
    double est;
    if (run.pipelines[p].first_obs < 0) {
      est = 0.0;  // never active (e.g. empty input)
    } else if (static_cast<int>(oi) < run.pipelines[p].first_obs) {
      est = 0.0;
    } else if (static_cast<int>(oi) > run.pipelines[p].last_obs) {
      est = 1.0;
    } else {
      est = GetEstimator(kinds[p]).Estimate(view, oi);
    }
    progress += est * (weights[p] / total_e);
  }
  return std::clamp(progress, 0.0, 1.0);
}

}  // namespace rpe
