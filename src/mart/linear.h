// Ridge-regularized linear least squares — the "simpler statistical model"
// baseline the paper compares MART against (§4.2 notes linear models lose
// because they cannot capture the non-linear feature/error dependencies).
#pragma once

#include <span>
#include <vector>

#include "mart/dataset.h"

namespace rpe {

/// \brief Linear regression fitted by normal equations with ridge lambda.
class LinearModel {
 public:
  static LinearModel Train(const Dataset& data, double ridge_lambda = 1e-3);

  double Predict(std::span<const double> features) const;
  double Predict(const std::vector<double>& features) const {
    return Predict(std::span<const double>(features));
  }
  double MeanSquaredError(const Dataset& data) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> weights_;
  double bias_ = 0.0;
  // Standardization parameters (linear models need normalized inputs —
  // one of MART's practical advantages per §4.2).
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace rpe
