// Workload-generator tests: schema construction, physical designs, query
// generation validity, and the paper's six-workload registry.
#include <gtest/gtest.h>

#include <set>

#include "workload/workload.h"

namespace rpe {
namespace {

WorkloadConfig TinyConfig(WorkloadKind kind, const char* name) {
  WorkloadConfig config;
  config.kind = kind;
  config.name = name;
  config.scale = 1.0;
  config.zipf = 1.0;
  config.tuning = TuningLevel::kPartiallyTuned;
  config.num_queries = 25;
  config.seed = 99;
  return config;
}

TEST(WorkloadTest, TpchSchemaComplete) {
  auto w = BuildWorkload(TinyConfig(WorkloadKind::kTpch, "t"));
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  for (const char* table :
       {"region", "nation", "supplier", "customer", "part", "partsupp",
        "orders", "lineitem"}) {
    EXPECT_TRUE(w->catalog->HasTable(table)) << table;
  }
  // Row ratios: lineitem == 4x orders, orders == 10x customer.
  const double li = static_cast<double>((*w->catalog->GetTable("lineitem"))->num_rows());
  const double ord = static_cast<double>((*w->catalog->GetTable("orders"))->num_rows());
  EXPECT_NEAR(li / ord, 4.0, 0.2);
}

TEST(WorkloadTest, ScaleFactorScalesRows) {
  auto small = BuildWorkload(TinyConfig(WorkloadKind::kTpch, "s"));
  auto big_config = TinyConfig(WorkloadKind::kTpch, "b");
  big_config.scale = 4.0;
  auto big = BuildWorkload(big_config);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_NEAR(static_cast<double>(
                  (*big->catalog->GetTable("lineitem"))->num_rows()) /
                  static_cast<double>(
                      (*small->catalog->GetTable("lineitem"))->num_rows()),
              4.0, 0.5);
}

TEST(WorkloadTest, DesignsAreNested) {
  // Each tuning level's index set contains the previous one's.
  for (WorkloadKind kind : {WorkloadKind::kTpch, WorkloadKind::kTpcds,
                            WorkloadKind::kReal1, WorkloadKind::kReal2}) {
    const auto untuned = DesignFor(kind, TuningLevel::kUntuned);
    const auto partial = DesignFor(kind, TuningLevel::kPartiallyTuned);
    const auto full = DesignFor(kind, TuningLevel::kFullyTuned);
    EXPECT_LT(untuned.indexes.size(), partial.indexes.size());
    EXPECT_LT(partial.indexes.size(), full.indexes.size());
    auto contains = [](const PhysicalDesign& d, const IndexSpec& ix) {
      for (const auto& e : d.indexes) {
        if (e.table == ix.table && e.column == ix.column) return true;
      }
      return false;
    };
    for (const auto& ix : untuned.indexes) {
      EXPECT_TRUE(contains(partial, ix));
    }
    for (const auto& ix : partial.indexes) {
      EXPECT_TRUE(contains(full, ix));
    }
  }
}

TEST(WorkloadTest, GeneratedQueriesAreValid) {
  auto w = BuildWorkload(TinyConfig(WorkloadKind::kTpch, "t"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->queries.size(), 25u);
  for (const auto& q : w->queries) {
    EXPECT_FALSE(q.tables.empty());
    EXPECT_EQ(q.joins.size(), q.tables.size() - 1);
    for (const auto& j : q.joins) {
      EXPECT_LT(j.left_idx, q.tables.size());
    }
    for (const auto& f : q.filters) {
      EXPECT_LT(f.table_idx, q.tables.size());
    }
  }
}

TEST(WorkloadTest, QueriesAreDeterministicPerSeed) {
  auto w1 = BuildWorkload(TinyConfig(WorkloadKind::kTpch, "t"));
  auto w2 = BuildWorkload(TinyConfig(WorkloadKind::kTpch, "t"));
  ASSERT_TRUE(w1.ok() && w2.ok());
  for (size_t i = 0; i < w1->queries.size(); ++i) {
    EXPECT_EQ(w1->queries[i].tables, w2->queries[i].tables);
    EXPECT_EQ(w1->queries[i].top_limit, w2->queries[i].top_limit);
  }
}

TEST(WorkloadTest, Real1JoinDepthMatchesPaper) {
  auto config = TinyConfig(WorkloadKind::kReal1, "r1");
  config.num_queries = 40;
  auto w = BuildWorkload(config);
  ASSERT_TRUE(w.ok());
  // Paper: most queries join 5-8 tables.
  size_t deep = 0;
  for (const auto& q : w->queries) {
    if (q.tables.size() >= 5) ++deep;
  }
  EXPECT_GT(deep, w->queries.size() / 2);
}

TEST(WorkloadTest, Real2JoinDepthMatchesPaper) {
  auto config = TinyConfig(WorkloadKind::kReal2, "r2");
  config.num_queries = 40;
  auto w = BuildWorkload(config);
  ASSERT_TRUE(w.ok());
  // Paper: a typical query involves ~12 joins.
  size_t deep = 0;
  for (const auto& q : w->queries) {
    if (q.tables.size() >= 9) ++deep;
  }
  EXPECT_GT(deep, w->queries.size() / 2);
}

TEST(WorkloadTest, TpcdsHasTwoFacts) {
  auto w = BuildWorkload(TinyConfig(WorkloadKind::kTpcds, "ds"));
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->catalog->HasTable("store_sales"));
  EXPECT_TRUE(w->catalog->HasTable("web_sales"));
}

TEST(WorkloadTest, PaperRegistryHasSixWorkloads) {
  const auto configs = PaperWorkloadConfigs();
  ASSERT_EQ(configs.size(), 6u);
  std::set<std::string> names;
  size_t tpch_count = 0;
  for (const auto& c : configs) {
    names.insert(c.name);
    if (c.kind == WorkloadKind::kTpch) ++tpch_count;
  }
  EXPECT_EQ(names.size(), 6u);      // distinct labels
  EXPECT_EQ(tpch_count, 3u);        // three TPC-H physical designs
}

TEST(WorkloadTest, GraphEdgesReferenceRealColumns) {
  auto w = BuildWorkload(TinyConfig(WorkloadKind::kReal2, "r2"));
  ASSERT_TRUE(w.ok());
  for (const auto& e : w->graph.edges) {
    ASSERT_LT(e.table_a, w->graph.tables.size());
    ASSERT_LT(e.table_b, w->graph.tables.size());
    const Table* a = *w->catalog->GetTable(w->graph.tables[e.table_a]);
    const Table* b = *w->catalog->GetTable(w->graph.tables[e.table_b]);
    EXPECT_TRUE(a->schema().ColumnIndex(e.col_a).ok()) << e.col_a;
    EXPECT_TRUE(b->schema().ColumnIndex(e.col_b).ok()) << e.col_b;
  }
  for (const auto& f : w->graph.filters) {
    const Table* t = *w->catalog->GetTable(w->graph.tables[f.table]);
    EXPECT_TRUE(t->schema().ColumnIndex(f.column).ok()) << f.column;
  }
}

TEST(WorkloadTest, ZipfSkewsLineitemForeignKeys) {
  auto uniform_config = TinyConfig(WorkloadKind::kTpch, "u");
  uniform_config.zipf = 0.0;
  auto skewed_config = TinyConfig(WorkloadKind::kTpch, "s");
  skewed_config.zipf = 2.0;
  auto uniform = BuildWorkload(uniform_config);
  auto skewed = BuildWorkload(skewed_config);
  ASSERT_TRUE(uniform.ok() && skewed.ok());
  auto max_fk_count = [](const Workload& w) {
    const Table* li = *w.catalog->GetTable("lineitem");
    std::map<int64_t, int> counts;
    for (const auto& row : li->rows()) counts[row[1]]++;  // l_partkey
    int max_c = 0;
    for (const auto& [k, c] : counts) max_c = std::max(max_c, c);
    return max_c;
  };
  EXPECT_GT(max_fk_count(*skewed), 4 * max_fk_count(*uniform));
}

}  // namespace
}  // namespace rpe
