// Scrape-time exporters bridging subsystems that own their own exact
// counters (ShardedMonitorService, TrainerLoop via the ingest-stats
// provider, the failpoint registry, the SIMD dispatch facade, the
// tracer) into a MetricsRegistry. Nothing here touches a hot path: each
// Register* call installs a collector that reads the subsystem's stats
// only when someone scrapes (/metrics, kMetricsDump, or the exit-time
// CLI table). The Sample table labels emitted here are the exact row
// labels the serve-* stats tables have always printed — scripts that
// parse those rows (scripts/server_smoke_test.sh,
// scripts/cli_exit_test.sh) keep working against the registry-driven
// formatter. Metric names are catalogued in docs/OBSERVABILITY.md.
#pragma once

#include "obs/metrics.h"
#include "serving/shard_router.h"

namespace rpe {

/// Append the service + ingest/trainer samples derived from one stats
/// snapshot (the row set shared by serve-replay / serve-tcp /
/// serve-online). Exposed separately from the collector so callers with
/// an already-taken snapshot can reuse it.
void AppendServiceSamples(const ShardedMonitorService::Stats& stats,
                          std::vector<obs::Sample>* out);

/// Collector over `service->GetStats()` plus per-shard open-session
/// gauges. `service` must outlive the registration (remove with
/// MetricsRegistry::RemoveCollector otherwise).
int RegisterServiceCollector(obs::MetricsRegistry* registry,
                             ShardedMonitorService* service);

/// Collector exporting every armed failpoint's hit/trip counters as
/// rpe_failpoint_hits_total / rpe_failpoint_trips_total{name="..."}.
int RegisterFailPointCollector(obs::MetricsRegistry* registry);

/// Collector exporting the active SIMD tier as an info-style gauge
/// rpe_simd_tier_info{tier="..."} 1.
int RegisterSimdCollector(obs::MetricsRegistry* registry);

/// Collector exporting the tracer's own counters (spans recorded, slow
/// requests over the --slow-ms threshold).
int RegisterTracerCollector(obs::MetricsRegistry* registry);

}  // namespace rpe
