// rpe_loadgen: load generator for the TCP serving front-end
// (`rpe_cli serve-tcp`). Speaks the length-prefixed wire protocol
// (src/serving/wire.h) over blocking loopback sockets, one thread per
// connection, and reports a latency histogram plus throughput as JSON.
//
// Two driving modes:
//
//   closed loop (default)    every connection runs sessions back to back
//                            until the shared --sessions budget is spent;
//                            concurrency is fixed (= --connections), the
//                            arrival rate is whatever the server sustains.
//
//   open loop (--rate R)     session arrivals follow a fixed schedule of
//                            R per second, spread round-robin across the
//                            connections; a slow server makes arrivals
//                            queue behind their connection (latency grows,
//                            the schedule does not bend). Stops after
//                            --sessions arrivals.
//
// One session = Open -> Advance(--steps) until done -> Close. Latency is
// sampled per request (RTT of each frame exchange) and per session
// (open-to-close). Percentiles are exact: every sample is kept and
// sorted, no binning.
//
// Online ingest (--ingest-rate R): a dedicated connection streams
// synthetic PipelineRecords at R records/sec in --ingest-batch frames,
// driving the server's ingest -> TrainerLoop -> hot-swap loop;
// --ingest-until-swap keeps streaming until the server's model
// generation advances (observed via kStats mid-run). A kStatusBusy
// response is honored with exponential backoff: session workers retry
// the same request, the ingest worker counts the batch as shed and
// moves on — every record offered is accounted as exactly one of
// accepted / dropped / shed.
//
// The final line on stdout is one JSON object (everything else goes to
// stderr) so scripts can `tail -n 1 | python3 -m json.tool`. With
// --check, the client's own counters are reconciled against the server's
// StatsResponse — opens, completions, advance steps, busy responses and
// ingest accept/drop/shed tallies must match the server's deltas exactly
// when this loadgen is the server's only client — and any mismatch
// exits 1. (Deltas: the server's counters are snapshotted before the
// workers start, so --check also passes against a warm server.)
//
// Example:
//   rpe_loadgen --port 41001 --connections 8 --sessions 256 --steps 64
//   rpe_loadgen --port 41001 --rate 500 --sessions 1000 --check
//   rpe_loadgen --port 41001 --ingest-rate 500 --ingest-until-swap --check
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "progress/estimator.h"
#include "selection/features.h"
#include "serving/wire.h"

namespace rpe {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// \brief One blocking connection to the server: framed request/response
/// with incremental reassembly (responses can arrive in any chunking).
class WireClient {
 public:
  ~WireClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Connect(const std::string& host, uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Status::IOError("socket: " + std::string(std::strerror(errno)));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("bad --host address: " + host);
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      return Status::IOError("connect 127.0.0.1:" + std::to_string(port) +
                             ": " + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return Status::OK();
  }

  /// Send one encoded frame, block until the matching response frame.
  Result<WireFrame> Call(const std::string& request) {
    size_t off = 0;
    while (off < request.size()) {
      const ssize_t n =
          ::send(fd_, request.data() + off, request.size() - off, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("send: " + std::string(std::strerror(errno)));
      }
      off += static_cast<size_t>(n);
    }
    while (true) {
      WireFrame frame;
      RPE_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
      if (complete) return frame;
      char chunk[16 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv: " + std::string(std::strerror(errno)));
      }
      if (n == 0) {
        return Status::IOError("server closed the connection mid-response");
      }
      decoder_.Feed(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

struct Config {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 4;
  size_t sessions = 64;    ///< total session budget (both modes)
  uint32_t steps = 64;     ///< max_steps per AdvanceRequest
  double rate = 0.0;       ///< arrivals/sec; 0 = closed loop
  size_t runs = 0;         ///< distinct run_index values to cycle (0 = any)
  bool check = false;      ///< reconcile against server stats, exit 1 off
  double ingest_rate = 0.0;     ///< records/sec over the ingest connection
  size_t ingest_records = 0;    ///< record budget (0 = no fixed budget)
  size_t ingest_batch = 16;     ///< records per ingest frame
  bool ingest_until_swap = false;  ///< stream until model_generation bumps
  bool dump_metrics = false;  ///< fetch kMetricsDump at the end (stderr)
};

bool IngestEnabled(const Config& config) {
  return config.ingest_rate > 0.0 || config.ingest_records > 0 ||
         config.ingest_until_swap;
}

/// \brief Per-worker tallies and latency samples, merged after the join.
struct WorkerResult {
  uint64_t opens = 0;
  uint64_t completed = 0;
  uint64_t advance_requests = 0;
  uint64_t advance_steps = 0;
  uint64_t errors = 0;
  uint64_t busy = 0;  ///< kStatusBusy responses (each retried after backoff)
  std::vector<double> request_ms;  ///< RTT of every frame exchange
  std::vector<double> session_ms;  ///< open-to-close per session
  Status fatal;  ///< first connection-fatal error, ends the worker
};

/// \brief Tallies of the dedicated ingest connection. Every record offered
/// lands in exactly one of accepted / dropped / shed, so the totals
/// reconcile exactly against the server's wire-edge counters.
struct IngestResult {
  uint64_t offered = 0;   ///< records sent (accepted + dropped + shed)
  uint64_t accepted = 0;  ///< enqueued for the TrainerLoop
  uint64_t dropped = 0;   ///< refused at the queue edge
  uint64_t shed = 0;      ///< answered kStatusBusy (not retried)
  uint64_t frames = 0;    ///< ingest frames sent
  uint64_t initial_generation = 0;
  uint64_t final_generation = 0;
  bool swap_observed = false;
  Status fatal;
};

/// splitmix64: seeded, dependency-free generator for the synthetic record
/// stream — the same stream every run, so failures reproduce.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

/// A well-formed wire record with the process's feature-schema arity —
/// enough variety (distinct query/pipeline labels, jittered values) for
/// the server's retrain to see a non-degenerate corpus.
PipelineRecord SyntheticRecord(uint64_t* state, uint64_t seq) {
  PipelineRecord r;
  r.workload = "loadgen";
  r.query = "q" + std::to_string(seq % 7);
  r.pipeline_id = static_cast<int>(seq % 3);
  r.tag = (seq % 2 == 0) ? "even" : "odd";
  r.total_n = 100.0 + UnitUniform(state) * 1000.0;
  const size_t num_features = FeatureSchema::Get().num_features();
  r.features.resize(num_features);
  for (size_t i = 0; i < num_features; ++i) {
    r.features[i] = UnitUniform(state);
  }
  r.l1.resize(static_cast<size_t>(kNumEstimatorKinds));
  r.l2.resize(static_cast<size_t>(kNumEstimatorKinds));
  for (size_t i = 0; i < r.l1.size(); ++i) {
    r.l1[i] = UnitUniform(state) * 0.3;
    r.l2[i] = UnitUniform(state) * 0.3;
  }
  return r;
}

/// Run one full session on `client`; samples RTTs into `out`.
Status RunSession(WireClient* client, const Config& config,
                  uint32_t run_index, WorkerResult* out) {
  const auto session_start = Clock::now();

  auto timed = [&](const std::string& request) -> Result<WireFrame> {
    // kStatusBusy is a retryable admission-control verdict, not an
    // error: retry the same request after exponential backoff so every
    // admitted session still completes (the shed counter still ticks
    // server-side — reconciled by --check).
    auto backoff = std::chrono::milliseconds(1);
    while (true) {
      const auto t0 = Clock::now();
      RPE_ASSIGN_OR_RETURN(WireFrame frame, client->Call(request));
      out->request_ms.push_back(SecondsSince(t0) * 1e3);
      if (frame.status != kStatusBusy) return frame;
      ++out->busy;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(64));
    }
  };

  OpenRequest open;
  open.run_index = run_index;
  RPE_ASSIGN_OR_RETURN(WireFrame frame, timed(EncodeOpenRequest(open)));
  if (!frame.ok()) return frame.ToStatus();
  RPE_ASSIGN_OR_RETURN(OpenResponse opened,
                       DecodeOpenResponse(frame.payload));
  ++out->opens;

  AdvanceRequest advance;
  advance.session_id = opened.session_id;
  advance.max_steps = config.steps;
  while (true) {
    RPE_ASSIGN_OR_RETURN(frame, timed(EncodeAdvanceRequest(advance)));
    if (!frame.ok()) return frame.ToStatus();
    RPE_ASSIGN_OR_RETURN(AdvanceResponse stepped,
                         DecodeAdvanceResponse(frame.payload));
    ++out->advance_requests;
    out->advance_steps += stepped.steps;
    if (stepped.done != 0) break;
  }

  CloseRequest close;
  close.session_id = opened.session_id;
  RPE_ASSIGN_OR_RETURN(frame, timed(EncodeCloseRequest(close)));
  if (!frame.ok()) return frame.ToStatus();
  ++out->completed;
  out->session_ms.push_back(SecondsSince(session_start) * 1e3);
  return Status::OK();
}

/// Closed loop: claim session slots from the shared budget until spent.
void ClosedLoopWorker(const Config& config, std::atomic<uint64_t>* next,
                      WorkerResult* out) {
  WireClient client;
  out->fatal = client.Connect(config.host, config.port);
  if (!out->fatal.ok()) return;
  while (true) {
    const uint64_t slot = next->fetch_add(1);
    if (slot >= config.sessions) break;
    const uint32_t run_index = static_cast<uint32_t>(
        config.runs > 0 ? slot % config.runs : slot);
    const Status st = RunSession(&client, config, run_index, out);
    if (!st.ok()) {
      ++out->errors;
      out->fatal = st;  // blocking protocol: desync is not recoverable
      return;
    }
  }
}

/// Open loop: arrivals k = id, id + connections, ... fire at k / rate
/// seconds after the shared start; a late worker runs its backlog without
/// bending the schedule.
void OpenLoopWorker(const Config& config, size_t id,
                    Clock::time_point start, WorkerResult* out) {
  WireClient client;
  out->fatal = client.Connect(config.host, config.port);
  if (!out->fatal.ok()) return;
  for (uint64_t k = id; k < config.sessions; k += config.connections) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        static_cast<double>(k) / config.rate));
    std::this_thread::sleep_until(due);
    const uint32_t run_index =
        static_cast<uint32_t>(config.runs > 0 ? k % config.runs : k);
    const Status st = RunSession(&client, config, run_index, out);
    if (!st.ok()) {
      ++out->errors;
      out->fatal = st;
      return;
    }
  }
}

/// Fetch the server's current stats over `client` (in-band: responses are
/// FIFO per connection, so this composes with ingest traffic).
Result<WireStats> FetchStats(WireClient* client) {
  RPE_ASSIGN_OR_RETURN(WireFrame frame, client->Call(EncodeStatsRequest()));
  if (!frame.ok()) return frame.ToStatus();
  return DecodeStatsResponse(frame.payload);
}

/// Dedicated ingest connection: stream synthetic records in batched
/// frames at --ingest-rate, honoring busy with backoff (the batch is
/// counted shed, not retried — the stream is synthetic, freshness beats
/// redelivery). Terminates on the record budget, on an observed model
/// swap (--ingest-until-swap, 120 s safety cap), or — with neither —
/// when the session workers finish.
void IngestWorker(const Config& config, Clock::time_point start,
                  const std::atomic<bool>* sessions_done, IngestResult* out) {
  WireClient client;
  out->fatal = client.Connect(config.host, config.port);
  if (!out->fatal.ok()) return;
  {
    auto stats = FetchStats(&client);
    if (!stats.ok()) {
      out->fatal = stats.status();
      return;
    }
    out->initial_generation = stats->model_generation;
    out->final_generation = stats->model_generation;
  }
  const auto deadline = Clock::now() + std::chrono::seconds(120);
  uint64_t rng = 0x243f6a8885a308d3ULL;  // deterministic record stream
  uint64_t seq = 0;
  auto backoff = std::chrono::milliseconds(1);
  while (true) {
    if (config.ingest_records > 0 && out->offered >= config.ingest_records) {
      break;
    }
    if (config.ingest_until_swap) {
      if (out->swap_observed) break;
      if (Clock::now() > deadline) {
        out->fatal = Status::IOError(
            "ingest: no model swap observed within the 120 s cap");
        break;
      }
    } else if (config.ingest_records == 0 && sessions_done->load()) {
      break;
    }
    if (config.ingest_rate > 0.0) {
      // Records offered so far define the schedule; a shed batch still
      // consumed its arrival slots (the server said shed, not "unsent").
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(out->offered) /
                          config.ingest_rate));
      std::this_thread::sleep_until(due);
    }
    size_t n = config.ingest_batch;
    if (config.ingest_records > 0) {
      n = std::min<size_t>(n, config.ingest_records - out->offered);
    }
    std::string request;
    if (n == 1) {
      IngestRecordRequest req;
      req.record = SyntheticRecord(&rng, seq++);
      request = EncodeIngestRecordRequest(req);
    } else {
      IngestBatchRequest req;
      req.records.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        req.records.push_back(SyntheticRecord(&rng, seq++));
      }
      request = EncodeIngestBatchRequest(req);
    }
    auto frame = client.Call(request);
    if (!frame.ok()) {
      out->fatal = frame.status();
      break;
    }
    ++out->frames;
    out->offered += n;
    if (frame->status == kStatusBusy) {
      out->shed += n;
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, std::chrono::milliseconds(128));
      continue;
    }
    backoff = std::chrono::milliseconds(1);
    if (!frame->ok()) {
      out->fatal = frame->ToStatus();
      break;
    }
    auto resp = DecodeIngestResponse(frame->payload);
    if (!resp.ok()) {
      out->fatal = resp.status();
      break;
    }
    out->accepted += resp->accepted;
    out->dropped += resp->dropped;
    if (config.ingest_until_swap && out->frames % 4 == 0) {
      auto stats = FetchStats(&client);
      if (!stats.ok()) {
        out->fatal = stats.status();
        break;
      }
      out->final_generation = stats->model_generation;
      if (stats->model_generation > out->initial_generation) {
        out->swap_observed = true;
      }
    }
  }
}

/// Exact percentile over sorted samples (nearest-rank interpolation, the
/// same convention as common/stats.h on the server side).
double PercentileSorted(const std::vector<double>& sorted, double pct) {
  if (sorted.empty()) return 0.0;
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string JsonNum(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << v;
  return out.str();
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "true";
    }
  }
  return flags;
}

void PrintUsage(std::ostream& out) {
  out << "usage: rpe_loadgen --port P [--host 127.0.0.1]\n"
         "  [--connections 4] [--sessions 64] [--steps 64]\n"
         "  [--rate R]   open loop: R session arrivals/sec (0 = closed)\n"
         "  [--runs N]   cycle run_index over [0, N) (0 = one per session)\n"
         "  [--ingest-rate R]     stream synthetic records at R/sec over a\n"
         "                        dedicated connection (0 = no pacing)\n"
         "  [--ingest-records N]  stop the ingest stream after N records\n"
         "  [--ingest-batch 16]   records per ingest frame (1 sends\n"
         "                        kIngestRecord, >1 sends kIngestBatch)\n"
         "  [--ingest-until-swap] ingest until the server's model\n"
         "                        generation advances (120 s cap)\n"
         "  [--check]    reconcile client counters against server Stats\n"
         "               deltas (incl. busy/shed/ingest); mismatch exits 1\n"
         "  [--dump-metrics] fetch the server's Prometheus text over the\n"
         "               wire (kMetricsDump) after the run, print to stderr\n"
         "--sessions 0 skips session traffic (ingest-only run).\n"
         "Drives `rpe_cli serve-tcp` (see docs/NETWORK.md); emits one\n"
         "JSON result object as the last stdout line.\n";
}

int Main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv);
  if (flags.count("help") > 0 || flags.count("port") == 0) {
    PrintUsage(flags.count("help") > 0 ? std::cout : std::cerr);
    return flags.count("help") > 0 ? 0 : 2;
  }
  Config config;
  try {
    config.host = flags.count("host") ? flags.at("host") : config.host;
    config.port = static_cast<uint16_t>(std::stoul(flags.at("port")));
    if (flags.count("connections"))
      config.connections = std::stoul(flags.at("connections"));
    if (flags.count("sessions"))
      config.sessions = std::stoul(flags.at("sessions"));
    if (flags.count("steps"))
      config.steps = static_cast<uint32_t>(std::stoul(flags.at("steps")));
    if (flags.count("rate")) config.rate = std::stod(flags.at("rate"));
    if (flags.count("runs")) config.runs = std::stoul(flags.at("runs"));
    if (flags.count("ingest-rate"))
      config.ingest_rate = std::stod(flags.at("ingest-rate"));
    if (flags.count("ingest-records"))
      config.ingest_records = std::stoul(flags.at("ingest-records"));
    if (flags.count("ingest-batch"))
      config.ingest_batch = std::stoul(flags.at("ingest-batch"));
    config.ingest_until_swap = flags.count("ingest-until-swap") > 0;
    config.check = flags.count("check") > 0;
    config.dump_metrics = flags.count("dump-metrics") > 0;
  } catch (const std::exception& e) {
    std::cerr << "bad flag value: " << e.what() << "\n";
    return 2;
  }
  if (config.connections == 0 || config.steps == 0 ||
      config.steps > kMaxAdvanceSteps || config.rate < 0.0 ||
      config.ingest_rate < 0.0) {
    std::cerr << "invalid configuration: connections/steps must be "
                 "positive, steps <= "
              << kMaxAdvanceSteps << ", rates >= 0\n";
    return 2;
  }
  if (config.sessions == 0 && !IngestEnabled(config)) {
    std::cerr << "invalid configuration: --sessions 0 needs ingest traffic "
                 "(--ingest-rate / --ingest-records / --ingest-until-swap)\n";
    return 2;
  }
  if (config.ingest_batch == 0 ||
      config.ingest_batch > kMaxIngestBatchRecords) {
    std::cerr << "invalid configuration: --ingest-batch must be in [1, "
              << kMaxIngestBatchRecords << "]\n";
    return 2;
  }

  std::cerr << (config.rate > 0.0 ? "open" : "closed") << "-loop run: "
            << config.sessions << " sessions over " << config.connections
            << " connections to " << config.host << ":" << config.port;
  if (IngestEnabled(config)) {
    std::cerr << " + ingest (batch " << config.ingest_batch << ")";
  }
  std::cerr << "\n";

  // Snapshot the server's counters before any traffic so --check can
  // reconcile against exact deltas (a warm server reconciles the same as
  // a fresh one).
  WireStats initial{};
  bool have_initial_stats = false;
  {
    WireClient snapshot_client;
    if (snapshot_client.Connect(config.host, config.port).ok()) {
      auto stats = FetchStats(&snapshot_client);
      if (stats.ok()) {
        initial = *stats;
        have_initial_stats = true;
      }
    }
  }

  const size_t session_workers =
      config.sessions > 0 ? config.connections : 0;
  std::vector<WorkerResult> results(session_workers);
  std::vector<std::thread> workers;
  std::atomic<uint64_t> next{0};
  std::atomic<bool> sessions_done{session_workers == 0};
  IngestResult ingest;
  const auto start = Clock::now();
  std::thread ingest_thread;
  if (IngestEnabled(config)) {
    ingest_thread = std::thread(IngestWorker, config, start, &sessions_done,
                                &ingest);
  }
  for (size_t c = 0; c < session_workers; ++c) {
    if (config.rate > 0.0) {
      workers.emplace_back(OpenLoopWorker, config, c, start, &results[c]);
    } else {
      workers.emplace_back(ClosedLoopWorker, config, &next, &results[c]);
    }
  }
  for (auto& w : workers) w.join();
  sessions_done.store(true);
  if (ingest_thread.joinable()) ingest_thread.join();
  const double elapsed = SecondsSince(start);

  WorkerResult total;
  for (const WorkerResult& r : results) {
    total.opens += r.opens;
    total.completed += r.completed;
    total.advance_requests += r.advance_requests;
    total.advance_steps += r.advance_steps;
    total.errors += r.errors;
    total.busy += r.busy;
    total.request_ms.insert(total.request_ms.end(), r.request_ms.begin(),
                            r.request_ms.end());
    total.session_ms.insert(total.session_ms.end(), r.session_ms.begin(),
                            r.session_ms.end());
    if (total.fatal.ok() && !r.fatal.ok()) total.fatal = r.fatal;
  }
  if (total.fatal.ok() && !ingest.fatal.ok()) total.fatal = ingest.fatal;
  if (!total.fatal.ok()) {
    std::cerr << "worker failed: " << total.fatal.ToString() << "\n";
  }
  std::sort(total.request_ms.begin(), total.request_ms.end());
  std::sort(total.session_ms.begin(), total.session_ms.end());

  // Server-side view, over a fresh connection after the workers joined so
  // the counters are quiescent.
  WireStats server{};
  bool have_server_stats = false;
  {
    WireClient stats_client;
    if (stats_client.Connect(config.host, config.port).ok()) {
      auto frame = stats_client.Call(EncodeStatsRequest());
      if (frame.ok() && frame->ok()) {
        auto decoded = DecodeStatsResponse(frame->payload);
        if (decoded.ok()) {
          server = *decoded;
          have_server_stats = true;
        }
      }
      if (config.dump_metrics) {
        // The wire-side scrape: the payload is the same Prometheus text
        // the HTTP /metrics endpoint serves. Stderr, so the JSON result
        // stays the last stdout line.
        auto dump = stats_client.Call(EncodeMetricsDumpRequest());
        if (dump.ok() && dump->ok()) {
          std::cerr << dump->payload;
        } else {
          std::cerr << "metrics dump failed: "
                    << (dump.ok() ? dump->ToStatus() : dump.status())
                           .ToString()
                    << "\n";
        }
      }
    }
  }

  std::ostringstream json;
  json << "{"
       << "\"mode\":\"" << (config.rate > 0.0 ? "open" : "closed") << "\","
       << "\"connections\":" << config.connections << ","
       << "\"sessions_requested\":" << config.sessions << ","
       << "\"sessions_opened\":" << total.opens << ","
       << "\"sessions_completed\":" << total.completed << ","
       << "\"advance_requests\":" << total.advance_requests << ","
       << "\"advance_steps\":" << total.advance_steps << ","
       << "\"errors\":" << total.errors << ","
       << "\"busy_responses\":" << total.busy << ","
       << "\"ingest_offered\":" << ingest.offered << ","
       << "\"ingest_accepted\":" << ingest.accepted << ","
       << "\"ingest_dropped\":" << ingest.dropped << ","
       << "\"ingest_shed\":" << ingest.shed << ","
       << "\"swap_observed\":" << (ingest.swap_observed ? "true" : "false")
       << ","
       << "\"elapsed_s\":" << JsonNum(elapsed) << ","
       << "\"sessions_per_sec\":"
       << JsonNum(static_cast<double>(total.completed) / elapsed) << ","
       << "\"steps_per_sec\":"
       << JsonNum(static_cast<double>(total.advance_steps) / elapsed) << ","
       << "\"request_p50_ms\":"
       << JsonNum(PercentileSorted(total.request_ms, 50.0)) << ","
       << "\"request_p99_ms\":"
       << JsonNum(PercentileSorted(total.request_ms, 99.0)) << ","
       << "\"request_p999_ms\":"
       << JsonNum(PercentileSorted(total.request_ms, 99.9)) << ","
       << "\"session_p50_ms\":"
       << JsonNum(PercentileSorted(total.session_ms, 50.0)) << ","
       << "\"session_p99_ms\":"
       << JsonNum(PercentileSorted(total.session_ms, 99.0)) << ","
       << "\"session_p999_ms\":"
       << JsonNum(PercentileSorted(total.session_ms, 99.9));
  if (have_server_stats) {
    json << ",\"server\":{"
         << "\"sessions_opened\":" << server.sessions_opened << ","
         << "\"sessions_completed\":" << server.sessions_completed << ","
         << "\"decisions\":" << server.decisions << ","
         << "\"observations_scored\":" << server.observations_scored << ","
         << "\"advance_steps\":" << server.advance_steps << ","
         << "\"frames_received\":" << server.frames_received << ","
         << "\"frames_sent\":" << server.frames_sent << ","
         << "\"protocol_errors\":" << server.protocol_errors << ","
         << "\"io_errors\":" << server.io_errors << ","
         << "\"model_generation\":" << server.model_generation << ","
         << "\"retrains\":" << server.retrains << ","
         << "\"requests_shed\":" << server.requests_shed << ","
         << "\"records_ingested\":" << server.records_ingested << ","
         << "\"records_ingest_dropped\":" << server.records_ingest_dropped
         << ","
         << "\"records_ingest_shed\":" << server.records_ingest_shed << ","
         << "\"ingest_pushed\":" << server.ingest_pushed << ","
         << "\"ingest_drained\":" << server.ingest_drained << ","
         << "\"ingest_queue_size\":" << server.ingest_queue_size << ","
         << "\"decisions_per_sec\":"
         << JsonNum(static_cast<double>(server.decisions) / elapsed) << ","
         << "\"p50_replay_ms\":" << JsonNum(server.p50_replay_ms) << ","
         << "\"p95_replay_ms\":" << JsonNum(server.p95_replay_ms) << "}";
  }
  json << "}";
  std::cout << json.str() << std::endl;

  int rc = total.fatal.ok() && total.errors == 0 ? 0 : 1;
  if (config.check) {
    if (!have_server_stats || !have_initial_stats) {
      std::cerr << "CHECK FAILED: could not fetch server stats\n";
      return 1;
    }
    // Exact reconciliation (valid when this loadgen is the only client):
    // what the client opened / completed / stepped / had shed must be
    // exactly the delta the service and wire front-end recorded over the
    // run, and every ingested record must land in exactly one of
    // accepted / dropped / shed on both sides of the wire.
    struct Check {
      const char* name;
      uint64_t client;
      uint64_t server;
    };
    const Check checks[] = {
        {"sessions_opened", total.opens,
         server.sessions_opened - initial.sessions_opened},
        {"wire_sessions_opened", total.opens,
         server.wire_sessions_opened - initial.wire_sessions_opened},
        {"sessions_completed", total.completed,
         server.sessions_completed - initial.sessions_completed},
        {"observations_scored", total.advance_steps,
         server.observations_scored - initial.observations_scored},
        {"advance_steps", total.advance_steps,
         server.advance_steps - initial.advance_steps},
        {"requests_shed", total.busy,
         server.requests_shed - initial.requests_shed},
        {"ingest_offered", ingest.offered,
         ingest.accepted + ingest.dropped + ingest.shed},
        {"records_ingested", ingest.accepted,
         server.records_ingested - initial.records_ingested},
        {"ingest_pushed (wire is sole producer)", ingest.accepted,
         server.ingest_pushed - initial.ingest_pushed},
        {"records_ingest_dropped", ingest.dropped,
         server.records_ingest_dropped - initial.records_ingest_dropped},
        {"records_ingest_shed", ingest.shed,
         server.records_ingest_shed - initial.records_ingest_shed},
        // Queue-side conservation at a quiescent cut, independent of this
        // client's view: everything pushed was drained or is still queued.
        {"ingest_pushed == drained + queued", server.ingest_pushed,
         server.ingest_drained + server.ingest_queue_size},
    };
    for (const Check& c : checks) {
      if (c.client != c.server) {
        std::cerr << "CHECK FAILED: " << c.name << " client=" << c.client
                  << " server=" << c.server << "\n";
        rc = 1;
      }
    }
    if (rc == 0) {
      std::cerr << "check: client and server counters reconcile exactly\n";
    }
  }
  return rc;
}

}  // namespace
}  // namespace rpe

int main(int argc, char** argv) { return rpe::Main(argc, argv); }
