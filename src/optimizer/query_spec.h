// Logical query description: the interface between the workload generators
// and the planner. A QuerySpec is a left-deep join of base tables with
// pushed-down single-column filters, optional grouping, optional ORDER BY
// and optional TOP — the SELECT-PROJECT-JOIN-AGGREGATE shape of the TPC-H /
// TPC-DS / decision-support queries the paper evaluates on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exec/predicate.h"

namespace rpe {

/// \brief Filter on one column of one referenced table (pushed to the scan).
struct FilterSpec {
  size_t table_idx = 0;      ///< position in QuerySpec::tables
  std::string column;
  Predicate::Kind kind = Predicate::Kind::kTrue;
  int64_t v1 = 0;
  int64_t v2 = 0;
};

/// \brief Physical preference for one join, standing in for optimizer cost
/// decisions this substrate does not model. Workload generators use hints to
/// create the plan diversity (hash/merge/NLJ mixes) seen in the paper's
/// Table 1; kAuto applies the planner's index-aware default rules.
enum class JoinHint {
  kAuto,
  kHash,
  kMerge,
  kNestedLoop,
};

/// \brief Equi-join edge. Joins are applied in order; joins[i] connects
/// tables[i+1] (the "new" table) with a column of an earlier table.
struct JoinEdge {
  size_t left_idx = 0;       ///< earlier table (<= i)
  std::string left_col;
  std::string right_col;     ///< column of tables[i+1]
  JoinHint hint = JoinHint::kAuto;
};

/// \brief GROUP BY columns (each names a table position + column).
struct AggSpec {
  std::vector<std::pair<size_t, std::string>> group_cols;
  /// Prefer Sort + StreamAggregate over HashAggregate (single group column
  /// only); ignored when the input is already ordered on the group column,
  /// in which case StreamAggregate is used directly.
  bool prefer_sort_stream = false;
};

/// \brief A complete logical query.
struct QuerySpec {
  std::string name;                      ///< template / instance label
  std::vector<std::string> tables;       ///< join order (left-deep)
  std::vector<JoinEdge> joins;           ///< size == tables.size() - 1
  std::vector<FilterSpec> filters;
  std::optional<AggSpec> agg;
  /// ORDER BY column (table idx, column); adds a final Sort when the input
  /// is not already ordered on it.
  std::optional<std::pair<size_t, std::string>> order_by;
  uint64_t top_limit = 0;                ///< 0 = no TOP
};

}  // namespace rpe
