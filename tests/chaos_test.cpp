// Chaos driver for the serving tier: seeded worker threads interleave
// open/advance/close session traffic against a ShardedMonitorService
// while a TrainerLoop hot-swaps models and probabilistic failpoints
// randomly fail ingest pushes, snapshot writes, retrains, and publishes.
// Run under TSan in CI. The invariants are coarse by design — the point
// is interleaving coverage, not scenario proof:
//   * no data race / deadlock (TSan + the run completing),
//   * every opened session advances to completion or is cleanly closed,
//   * Stop() returns under active fault injection,
//   * counters stay exact: pushed == drained after Stop, failure counts
//     match the failpoint trip counts.
// Seeds are printed on entry; rerun one schedule with
//   RPE_CHAOS_SEED=<seed> ./rpe_tests --gtest_filter='Chaos*'
// (RPE_CHAOS_ROUNDS scales the per-thread operation count.)
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "exec/executor.h"
#include "serving/ingest.h"
#include "serving/shard_router.h"
#include "serving/snapshot.h"
#include "serving/trainer_loop.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t EnvCount(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  return std::strtoull(env, nullptr, 10);
}

class ChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    plans_ = new std::vector<std::unique_ptr<PhysicalPlan>>();
    runs_ = new std::vector<QueryRunResult>();
    AddRun(MakeTableScan("t_fact"));
    AddRun(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1));
    MartParams params;
    params.num_trees = 6;
    params.tree.max_leaves = 8;
    params.seed = 7;
    stack_ = std::make_shared<const SelectorStack>(SelectorStack::Train(
        RandomRecords(60, 11), PoolOriginalThree(), params));
    records_ = new std::vector<PipelineRecord>(RandomRecords(32, 23));
  }
  static void TearDownTestSuite() {
    delete records_;
    delete runs_;
    delete plans_;
    delete catalog_;
    stack_.reset();
    records_ = nullptr;
    runs_ = nullptr;
    plans_ = nullptr;
    catalog_ = nullptr;
  }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  static void AddRun(std::unique_ptr<PlanNode> root) {
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans_->push_back(std::move(plan).ValueOrDie());
    ExecOptions options;
    options.target_observations = 40;
    auto result = ExecutePlan(*plans_->back(), *catalog_, options);
    ASSERT_TRUE(result.ok());
    runs_->push_back(std::move(result).ValueOrDie());
  }

  static Catalog* catalog_;
  static std::vector<std::unique_ptr<PhysicalPlan>>* plans_;
  static std::vector<QueryRunResult>* runs_;
  static std::shared_ptr<const SelectorStack> stack_;
  static std::vector<PipelineRecord>* records_;
};

Catalog* ChaosTest::catalog_ = nullptr;
std::vector<std::unique_ptr<PhysicalPlan>>* ChaosTest::plans_ = nullptr;
std::vector<QueryRunResult>* ChaosTest::runs_ = nullptr;
std::shared_ptr<const SelectorStack> ChaosTest::stack_;
std::vector<PipelineRecord>* ChaosTest::records_ = nullptr;

TEST_F(ChaosTest, SeededFaultStormLeavesTheTierConsistent) {
  const uint64_t seed = EnvCount("RPE_CHAOS_SEED", 1);
  const uint64_t rounds = EnvCount("RPE_CHAOS_ROUNDS", 400);
  std::cout << "chaos: RPE_CHAOS_SEED=" << seed
            << " RPE_CHAOS_ROUNDS=" << rounds << "\n";

  // Probabilistic faults on every hardened edge; seeds derive from the
  // case seed, so one schedule replays one fault stream.
  ASSERT_TRUE(FailPoints::ArmFromSpec(
                  "ingest.push=prob:0.05:seed=" + std::to_string(seed) +
                  ";trainer.retrain=prob:0.2:seed=" + std::to_string(seed + 1) +
                  ";trainer.publish=prob:0.2:seed=" + std::to_string(seed + 2) +
                  ";snapshot.write=prob:0.5:seed=" + std::to_string(seed + 3))
                  .ok());

  ShardedMonitorService::Options service_options;
  service_options.num_shards = 4;
  ShardedMonitorService service(stack_, service_options);
  RecordIngestQueue queue(128);
  TrainerLoop::Options trainer_options;
  trainer_options.retrain_min_records = 24;
  trainer_options.min_corpus = 8;
  trainer_options.max_corpus = 128;
  trainer_options.poll_interval = std::chrono::milliseconds(1);
  trainer_options.retry_backoff = std::chrono::milliseconds(0);
  trainer_options.retrain_quarantine = std::chrono::milliseconds(1);
  trainer_options.pool = PoolOriginalThree();
  trainer_options.params = [] {
    MartParams p;
    p.num_trees = 4;
    p.tree.max_leaves = 4;
    p.seed = 7;
    return p;
  }();
  TrainerLoop trainer(&queue, &service, trainer_options);
  service.SetIngestStatsProvider([&trainer] { return trainer.GetStats(); });
  trainer.Start();

  // Worker threads interleave session traffic, record pushes, and swap
  // pressure; accepted-push accounting is kept exactly so the post-Stop
  // counter check is an equality, not a bound.
  constexpr size_t kThreads = 4;
  std::atomic<uint64_t> accepted{0}, offered{0}, opened{0}, closed{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      uint64_t rng = seed * 0x9E3779B97F4A7C15ull + t;
      std::vector<ShardedMonitorService::SessionId> mine;
      for (uint64_t i = 0; i < rounds; ++i) {
        switch (SplitMix64(&rng) % 5) {
          case 0: {  // open
            auto id = service.OpenSession(
                &(*runs_)[SplitMix64(&rng) % runs_->size()]);
            if (id.ok()) {
              mine.push_back(*id);
              opened.fetch_add(1);
            }
            break;
          }
          case 1:    // advance a random owned session
          case 2: {  // (twice as likely as open/close)
            if (mine.empty()) break;
            const auto id = mine[SplitMix64(&rng) % mine.size()];
            auto done = service.Done(id);
            if (done.ok() && !*done) (void)service.Advance(id);
            break;
          }
          case 3: {  // close a random owned session
            if (mine.empty()) break;
            const size_t at = SplitMix64(&rng) % mine.size();
            if (service.CloseSession(mine[at]).ok()) closed.fetch_add(1);
            mine.erase(mine.begin() + static_cast<long>(at));
            break;
          }
          default: {  // push a record through the (faulty) ingest edge
            offered.fetch_add(1);
            if (queue.Push(
                    (*records_)[SplitMix64(&rng) % records_->size()])) {
              accepted.fetch_add(1);
            }
            break;
          }
        }
      }
      for (const auto id : mine) {
        if (service.CloseSession(id).ok()) closed.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  trainer.Stop();  // must return under the active fault storm

  // Exact accounting survived the storm: every offer is accepted-or-
  // dropped, every accepted record was drained by Stop, every open
  // session was closed, and injected failures match the trip counters.
  const IngestStats stats = trainer.GetStats();
  EXPECT_EQ(stats.pushed, accepted.load());
  EXPECT_EQ(stats.pushed + stats.dropped, offered.load());
  EXPECT_LE(FailPoints::Trips("ingest.push"), stats.dropped);
  EXPECT_EQ(stats.drained, stats.pushed);
  EXPECT_EQ(stats.queue_size, 0u);
  EXPECT_EQ(opened.load(), closed.load());
  EXPECT_EQ(service.num_open_sessions(), 0u);
  EXPECT_EQ(service.model_generation(), stats.last_swap_generation);
  EXPECT_EQ(stats.retrain_failures,
            FailPoints::Trips("trainer.retrain") + stats.publish_failures);

  FailPoints::DisarmAll();
}

}  // namespace
}  // namespace rpe
