// Slab<T>: a contiguous run of trivially-copyable values that is either
// owned (a std::vector built in memory) or borrowed (a read-only view into
// bytes somebody else keeps alive — in practice an mmap'd snapshot, see
// serving/mmap_arena.h). The compiled inference structures in
// mart/flat_ensemble.h store their tables as Slabs so the exact same
// scoring code runs over freshly compiled buffers and over zero-copy
// views into a model file.
//
// Ownership contract: a borrowed Slab does NOT extend the lifetime of the
// underlying bytes; whoever creates it (the snapshot arena) must pin the
// mapping for as long as any structure holding the Slab is alive. Owned
// Slabs behave like the vector they wrap: copies deep-copy, moves steal
// the heap buffer (readers holding data() across a move of the Slab
// itself stay valid, exactly as with std::vector).
//
// Mutation goes through vec(), which is only legal on owned slabs — the
// build paths (FlatEnsembleSet::Compile etc.) construct owned slabs and
// never touch borrowed ones.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/logging.h"

namespace rpe {

template <typename T>
class Slab {
  static_assert(std::is_trivially_copyable_v<T>,
                "Slab elements must be trivially copyable (they may alias "
                "raw snapshot bytes)");

 public:
  Slab() = default;
  /*implicit*/ Slab(std::vector<T> own) : own_(std::move(own)) {}  // NOLINT

  /// View over bytes owned elsewhere (the caller pins their lifetime).
  static Slab Borrow(const T* data, size_t size) {
    Slab s;
    s.ptr_ = data;
    s.size_ = size;
    return s;
  }

  bool borrowed() const { return ptr_ != nullptr; }

  const T* data() const { return ptr_ != nullptr ? ptr_ : own_.data(); }
  size_t size() const { return ptr_ != nullptr ? size_ : own_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T& back() const { return data()[size() - 1]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }

  /// Mutable backing vector for the in-memory build paths. Never legal on
  /// a borrowed slab (the underlying bytes are read-only).
  std::vector<T>& vec() {
    RPE_CHECK(ptr_ == nullptr);
    return own_;
  }

 private:
  std::vector<T> own_;
  const T* ptr_ = nullptr;  ///< non-null = borrowed view
  size_t size_ = 0;         ///< only meaningful when borrowed
};

}  // namespace rpe
