// Aggregate evaluation metrics over record sets: average L1/L2 progress
// error, fraction of pipelines where the chosen estimator is optimal, and
// the error-ratio tail fractions of Table 6.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "selection/record.h"

namespace rpe {

/// \brief Aggregates of one estimator-choice policy on a record set.
struct AggregateMetrics {
  double avg_l1 = 0.0;
  double avg_l2 = 0.0;
  /// Fraction of records where the chosen estimator attains the minimum L1.
  double pct_optimal = 0.0;
  /// Fractions of records with (chosen error / min error) above 2x/5x/10x.
  double frac_ratio_gt2 = 0.0;
  double frac_ratio_gt5 = 0.0;
  double frac_ratio_gt10 = 0.0;
  size_t count = 0;
};

/// Best (minimum-L1) estimator of `record` within `pool` (indices into
/// SelectableEstimators order); empty pool = all selectable estimators.
size_t BestInPool(const PipelineRecord& record,
                  const std::vector<size_t>& pool);

/// choices[i] = index (SelectableEstimators order) used for records[i].
/// Optimality and error ratios are measured against the best estimator in
/// `pool` (empty = all selectable).
AggregateMetrics EvaluateChoices(const std::vector<PipelineRecord>& records,
                                 const std::vector<size_t>& choices,
                                 const std::vector<size_t>& pool = {});

/// Always-use-one-estimator policy.
std::vector<size_t> FixedChoice(const std::vector<PipelineRecord>& records,
                                size_t estimator);

/// The oracle policy: per record, the estimator with the smallest L1.
std::vector<size_t> OracleChoice(const std::vector<PipelineRecord>& records);

/// Fraction of records whose L1-optimal estimator (within `pool`; empty =
/// all selectable) is `estimator` — the "% optimal" rows of Tables 2-5.
double FractionOptimal(const std::vector<PipelineRecord>& records,
                       size_t estimator,
                       const std::vector<size_t>& pool = {});

/// Per-record ratio of an estimator's L1 error to the minimum L1 error
/// (the Figure 1 / Figure 4 curves), sorted ascending.
std::vector<double> ErrorRatioCurve(const std::vector<PipelineRecord>& records,
                                    size_t estimator,
                                    const std::vector<size_t>& pool = {});
std::vector<double> ErrorRatioCurve(const std::vector<PipelineRecord>& records,
                                    const std::vector<size_t>& choices,
                                    const std::vector<size_t>& pool);

/// Split helpers.
std::vector<PipelineRecord> FilterByWorkload(
    const std::vector<PipelineRecord>& records, const std::string& workload,
    bool invert = false);
std::vector<PipelineRecord> FilterByTag(
    const std::vector<PipelineRecord>& records, const std::string& tag,
    bool invert = false);

}  // namespace rpe
