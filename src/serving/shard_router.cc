#include "serving/shard_router.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "common/thread_pool.h"

namespace rpe {
namespace {

/// splitmix64 finalizer: uniform shard spread from a monotone ticket
/// without any cross-session coordination.
uint64_t HashTicket(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardedMonitorService::ShardedMonitorService(
    std::shared_ptr<const SelectorStack> models, Options options)
    : options_(options) {
  RPE_CHECK_GE(options_.num_shards, 1u);
  RPE_CHECK(models != nullptr);
  MonitorService::Options shard_options;
  shard_options.revision_marker_pct = options_.revision_marker_pct;
  shard_options.pool = options_.pool;
  shards_.reserve(options_.num_shards);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(
        std::make_unique<MonitorService>(models, shard_options));
  }
}

ThreadPool* ShardedMonitorService::Pool() const {
  return options_.pool != nullptr ? options_.pool : &ThreadPool::Global();
}

uint64_t ShardedMonitorService::SwapModels(
    std::shared_ptr<const SelectorStack> models) {
  RPE_CHECK(models != nullptr);
  // One router lock serializes publishes: every shard steps to the same
  // new generation before any other publish can interleave.
  std::lock_guard<std::mutex> lock(swap_mu_);
  uint64_t generation = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const uint64_t g = shards_[s]->SwapModels(models);
    if (s == 0) {
      generation = g;
    } else {
      // All shards are constructed together and only swapped here, so
      // their generation counters move in lockstep.
      RPE_CHECK_EQ(g, generation);
    }
  }
  return generation;
}

uint64_t ShardedMonitorService::model_generation() const {
  uint64_t min_gen = shards_[0]->model_generation();
  for (size_t s = 1; s < shards_.size(); ++s) {
    min_gen = std::min(min_gen, shards_[s]->model_generation());
  }
  return min_gen;
}

Result<ShardedMonitorService::SessionId> ShardedMonitorService::OpenSession(
    const QueryRunResult* run) {
  return OpenSessionOnShard(
      run, HashTicket(open_ticket_.fetch_add(1)) % shards_.size());
}

Result<ShardedMonitorService::SessionId>
ShardedMonitorService::OpenSessionOnShard(const QueryRunResult* run,
                                          size_t shard) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument(
        "OpenSessionOnShard: shard " + std::to_string(shard) +
        " out of range (have " + std::to_string(shards_.size()) + ")");
  }
  RPE_ASSIGN_OR_RETURN(SessionId local, shards_[shard]->OpenSession(run));
  // local >= 1, so global ids never collide across shards and id 0 stays
  // invalid. ShardOf/LocalId invert this encoding.
  return local * shards_.size() + shard;
}

Result<double> ShardedMonitorService::Advance(SessionId id) {
  return shards_[ShardOf(id)]->Advance(LocalId(id));
}

Result<double> ShardedMonitorService::Progress(SessionId id) const {
  return shards_[ShardOf(id)]->Progress(LocalId(id));
}

Result<bool> ShardedMonitorService::Done(SessionId id) const {
  return shards_[ShardOf(id)]->Done(LocalId(id));
}

Status ShardedMonitorService::CloseSession(SessionId id) {
  return shards_[ShardOf(id)]->CloseSession(LocalId(id));
}

size_t ShardedMonitorService::num_open_sessions() const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->num_open_sessions();
  return n;
}

size_t ShardedMonitorService::Tick(size_t max_steps) {
  const size_t n = shards_.size();
  // Split the budget across shards; remainder to the lowest indices. A
  // positive budget smaller than the shard count rounds up to one step
  // per shard — a shard can never be handed "0 = unbudgeted" by accident,
  // and the returned remaining count always covers every shard.
  std::vector<size_t> budget(n, 0);
  if (max_steps > 0) {
    for (size_t s = 0; s < n; ++s) {
      const size_t share = max_steps / n + (s < max_steps % n ? 1 : 0);
      budget[s] = std::max<size_t>(1, share);
    }
  }
  std::vector<size_t> remaining(n, 0);
  Pool()->ParallelFor(n, [&](size_t s) {
    remaining[s] = shards_[s]->Tick(budget[s]);
  });
  size_t total = 0;
  for (size_t r : remaining) total += r;
  return total;
}

std::vector<std::vector<double>> ShardedMonitorService::ReplayAll(
    std::span<const QueryRunResult* const> runs) {
  const size_t n = shards_.size();
  // Round-robin partition; each shard replays its share concurrently and
  // results scatter back to the caller's order. Each series depends only
  // on its own run + snapshot, so the partition never changes a result.
  std::vector<std::vector<const QueryRunResult*>> shard_runs(n);
  std::vector<std::vector<size_t>> shard_indices(n);
  for (size_t i = 0; i < runs.size(); ++i) {
    shard_runs[i % n].push_back(runs[i]);
    shard_indices[i % n].push_back(i);
  }
  std::vector<std::vector<double>> out(runs.size());
  Pool()->ParallelFor(n, [&](size_t s) {
    auto series = shards_[s]->ReplayAll(shard_runs[s]);
    for (size_t k = 0; k < series.size(); ++k) {
      out[shard_indices[s][k]] = std::move(series[k]);
    }
  });
  return out;
}

ShardedMonitorService::Stats ShardedMonitorService::GetStats() const {
  // Provider called outside any router lock (it reaches the TrainerLoop,
  // which publishes back through SwapModels).
  std::function<IngestStats()> provider;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    provider = ingest_provider_;
  }
  Stats stats;
  stats.shards = shards_.size();
  if (provider) stats.total.ingest = provider();

  // Exclude publishes while scanning: a swap fan-out can never interleave
  // with the per-shard reads, so the reported generations are a consistent
  // cut (min == max always; both are kept as an interface-level check).
  std::lock_guard<std::mutex> swap_lock(swap_mu_);
  std::vector<double> latencies;
  std::vector<double> samples;
  bool first = true;
  for (const auto& shard : shards_) {
    // Counters and reservoir come from one lock hold per shard, so each
    // shard's contribution is internally consistent.
    const MonitorService::Stats s = shard->GetStats(&samples);
    stats.total.sessions_opened += s.sessions_opened;
    stats.total.sessions_completed += s.sessions_completed;
    stats.total.decisions += s.decisions;
    stats.total.observations_scored += s.observations_scored;
    stats.total.scoring_time_sec += s.scoring_time_sec;
    if (first) {
      stats.min_model_generation = s.model_generation;
      stats.max_model_generation = s.model_generation;
      first = false;
    } else {
      stats.min_model_generation =
          std::min(stats.min_model_generation, s.model_generation);
      stats.max_model_generation =
          std::max(stats.max_model_generation, s.model_generation);
    }
    latencies.insert(latencies.end(), samples.begin(), samples.end());
  }
  // Consistent-cut generation (the swap lock is held): min == max.
  stats.total.model_generation = stats.min_model_generation;
  // Pooled percentiles over the union of the shard reservoirs — exact,
  // not an average of per-shard percentiles; one sort serves both cuts.
  std::sort(latencies.begin(), latencies.end());
  stats.total.p50_replay_ms = PercentileSorted(latencies, 50.0);
  stats.total.p95_replay_ms = PercentileSorted(latencies, 95.0);
  if (stats.total.scoring_time_sec > 0.0) {
    stats.total.decisions_per_sec =
        static_cast<double>(stats.total.decisions) /
        stats.total.scoring_time_sec;
    stats.total.observations_per_sec =
        static_cast<double>(stats.total.observations_scored) /
        stats.total.scoring_time_sec;
  }
  return stats;
}

void ShardedMonitorService::SetIngestStatsProvider(
    std::function<IngestStats()> provider) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  ingest_provider_ = std::move(provider);
}

}  // namespace rpe
