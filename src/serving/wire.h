// Wire protocol of the TCP serving front-end (serving/server.h): a
// length-prefixed binary framing for the session messages —
// Open / Advance / Progress / Close / Stats — plus the online-ingest
// messages IngestRecord / IngestBatch that stream PipelineRecords into
// the server's RecordIngestQueue, shared by the server and the load
// generator (tools/rpe_loadgen.cc). The codec lives in its own
// translation unit, with no socket anywhere in sight, so framing and
// message encode/decode are unit-testable (tests/wire_test.cpp) and
// fuzzable (tests/wire_fuzz_test.cpp) byte-for-byte.
//
// Frame layout (all integers little-endian, no padding):
//
//   offset  size  field
//   0       4     payload_len   bytes after this 8-byte header;
//                               must be <= kMaxPayloadBytes
//   4       1     type          MsgType (1..8); anything else is rejected
//   5       1     status        StatusCode; 0 on requests and successful
//                               responses. A response with status != 0
//                               carries the error message as its payload
//                               (kStatusBusy marks an admission-control
//                               rejection — retry after backoff).
//   6       2     reserved      must be zero (rejected otherwise) — the
//                               version/extension escape hatch
//   8       *     payload       message body (below)
//
// Requests and responses share the type byte; direction is implied by
// who sent the frame. Every request gets exactly one response, in
// request order per connection (the server's batch scheduler preserves
// per-connection FIFO even while it interleaves Advance work across
// connections — see serving/server.cc).
//
// Message payloads (sizes are exact; a typed decoder rejects any other
// payload length with Status, never reads out of bounds):
//
//   OpenRequest      u32 run_index      (server resolves modulo its run set)
//   OpenResponse     u64 session_id, u32 run_index (resolved),
//                    u32 num_observations
//   AdvanceRequest   u64 session_id, u32 max_steps (1..kMaxAdvanceSteps)
//   AdvanceResponse  f64 progress, u32 steps (taken), u8 done
//   ProgressRequest  u64 session_id
//   ProgressResponse f64 progress, u8 done
//   CloseRequest     u64 session_id
//   CloseResponse    (empty)
//   StatsRequest     (empty)
//   StatsResponse    WireStats (fixed field order, see struct)
//   IngestRecordRequest  one wire record (layout below)
//   IngestBatchRequest   u32 count (1..kMaxIngestBatchRecords), then
//                        `count` wire records back to back
//   IngestResponse   u32 accepted, u32 dropped (both request types)
//   MetricsDumpRequest   (empty)
//   MetricsDumpResponse  Prometheus text exposition bytes (the same
//                        document /metrics serves), opaque to the codec
//
// A wire record is the only variable-length payload element; every
// length is its own prefix and every prefix is validated before a byte
// is read behind it:
//
//   record :=  u16 len, bytes   workload   (len <= kMaxIngestStringBytes)
//              u16 len, bytes   query
//              u16 len, bytes   tag
//              i32              pipeline_id
//              f64              total_n    (must be finite)
//              u16 n, f64 * n   features   (n must equal the feature
//                                          schema arity; values finite)
//              u16 n, f64 * n   l1         (n == kNumEstimatorKinds)
//              u16 n, f64 * n   l2         (n == kNumEstimatorKinds)
//
// Threat model: the decoder consumes untrusted bytes from the socket.
// Hostile lengths, truncation, type/status garbage, payload-size lies,
// record-length lies and non-finite doubles must all come back as Status
// (or "need more bytes"), never UB and never a partial record — this is
// enforced by the seeded wire fuzz harness under ASan/UBSan in CI.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "selection/record.h"

namespace rpe {

/// Hard ceiling on a frame payload. Real payloads are tens of bytes; the
/// cap exists so a hostile 4 GiB length prefix is rejected at the header,
/// before any allocation sized by attacker-controlled input.
inline constexpr size_t kMaxPayloadBytes = 1 << 20;

/// Frame header size in bytes (see layout above).
inline constexpr size_t kFrameHeaderBytes = 8;

/// Per-request ceiling on AdvanceRequest::max_steps: bounds the work one
/// frame can demand from an IO thread.
inline constexpr uint32_t kMaxAdvanceSteps = 1 << 16;

/// Per-frame ceiling on IngestBatchRequest record count: bounds the queue
/// work (and the decode allocation) one frame can demand.
inline constexpr uint32_t kMaxIngestBatchRecords = 512;

/// Per-field ceiling on a wire record's string labels (workload / query /
/// tag): a training label, not a document.
inline constexpr uint32_t kMaxIngestStringBytes = 256;

/// \brief Message discriminator (the frame's `type` byte). Values are
/// wire format — never renumber.
enum class MsgType : uint8_t {
  kOpen = 1,
  kAdvance = 2,
  kProgress = 3,
  kClose = 4,
  kStats = 5,
  kIngestRecord = 6,
  kIngestBatch = 7,
  kMetricsDump = 8,
};

/// Smallest/largest valid MsgType values, for header validation.
inline constexpr uint8_t kMinMsgType = 1;
inline constexpr uint8_t kMaxMsgType = 8;

/// Wire status byte of an admission-control rejection
/// (StatusCode::kUnavailable): the server refused the request because a
/// budget or watermark was exceeded — nothing failed, retry after
/// backoff. Never sent for Close or Stats requests.
inline constexpr uint8_t kStatusBusy =
    static_cast<uint8_t>(StatusCode::kUnavailable);

/// \brief One complete decoded frame: header fields + owned payload.
struct WireFrame {
  MsgType type = MsgType::kOpen;
  uint8_t status = 0;  ///< StatusCode; 0 = OK
  std::string payload;

  bool ok() const { return status == 0; }
  /// Reconstruct the Status carried by an error response (OK when
  /// status == 0). Unknown code bytes map to kInternal.
  Status ToStatus() const;
};

// ---------------------------------------------------------------------------
// Typed messages

struct OpenRequest {
  uint32_t run_index = 0;
};

struct OpenResponse {
  uint64_t session_id = 0;
  uint32_t run_index = 0;  ///< resolved (modulo the server's run set)
  uint32_t num_observations = 0;
};

struct AdvanceRequest {
  uint64_t session_id = 0;
  uint32_t max_steps = 1;  ///< 1..kMaxAdvanceSteps
};

struct AdvanceResponse {
  double progress = 0.0;  ///< after the last step taken
  uint32_t steps = 0;     ///< observation steps actually taken
  uint8_t done = 0;       ///< 1 once the replay is exhausted
};

struct ProgressRequest {
  uint64_t session_id = 0;
};

struct ProgressResponse {
  double progress = 0.0;
  uint8_t done = 0;
};

struct CloseRequest {
  uint64_t session_id = 0;
};

struct IngestRecordRequest {
  PipelineRecord record;
};

struct IngestBatchRequest {
  std::vector<PipelineRecord> records;  ///< 1..kMaxIngestBatchRecords
};

/// \brief Response to either ingest request type (the frame carries the
/// request's type byte). accepted + dropped equals the records offered;
/// a shed request gets a kStatusBusy error frame instead, so a record is
/// never silently lost.
struct IngestResponse {
  uint32_t accepted = 0;  ///< enqueued for the TrainerLoop
  uint32_t dropped = 0;   ///< refused at the queue edge (full / injected)
};

/// \brief StatsResponse payload: the serving tier's counters as seen over
/// the wire, plus the front-end's own IO counters. Field order is wire
/// format — append, never reorder.
struct WireStats {
  // ShardedMonitorService counters (exact sums across shards).
  uint64_t sessions_opened = 0;
  uint64_t sessions_completed = 0;
  uint64_t decisions = 0;
  uint64_t observations_scored = 0;
  uint64_t model_generation = 0;
  // TCP front-end counters (exact sums across IO threads).
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t protocol_errors = 0;
  uint64_t io_errors = 0;
  uint64_t wire_sessions_opened = 0;
  uint64_t wire_sessions_closed = 0;
  uint64_t advance_steps = 0;
  // Replay latency percentiles (milliseconds) from the service window.
  double p50_replay_ms = 0.0;
  double p95_replay_ms = 0.0;
  // Online ingest + admission control (appended fields — order is wire
  // format). The records_* counters are the TCP front-end's view of the
  // wire→queue edge; the ingest_* counters are the queue's own (all
  // producers), so records_ingested == ingest_pushed whenever the wire is
  // the only producer, and ingest_pushed == ingest_drained +
  // ingest_queue_size at any consistent cut.
  uint64_t records_ingested = 0;        ///< wire records accepted into the queue
  uint64_t records_ingest_dropped = 0;  ///< wire records refused at the queue edge
  uint64_t records_ingest_shed = 0;     ///< wire records answered kStatusBusy
  uint64_t requests_shed = 0;           ///< session frames answered kStatusBusy
  uint64_t ingest_pushed = 0;           ///< queue-side accepted records
  uint64_t ingest_dropped = 0;          ///< queue-side drops (full / closed)
  uint64_t ingest_drained = 0;          ///< records handed to the TrainerLoop
  uint64_t ingest_queue_size = 0;       ///< records currently queued
  uint64_t retrains = 0;                ///< published retrain cycles
};

// ---------------------------------------------------------------------------
// Encoding (always succeeds; sizes are fixed and tiny)

/// Raw frame assembly: header + payload. `status` is the StatusCode byte.
std::string EncodeFrame(MsgType type, uint8_t status,
                        std::string_view payload);

/// A response frame carrying `error` for a request of type `type` (the
/// message text is the payload; must not be OK).
std::string EncodeErrorFrame(MsgType type, const Status& error);

std::string EncodeOpenRequest(const OpenRequest& m);
std::string EncodeOpenResponse(const OpenResponse& m);
std::string EncodeAdvanceRequest(const AdvanceRequest& m);
std::string EncodeAdvanceResponse(const AdvanceResponse& m);
std::string EncodeProgressRequest(const ProgressRequest& m);
std::string EncodeProgressResponse(const ProgressResponse& m);
std::string EncodeCloseRequest(const CloseRequest& m);
std::string EncodeCloseResponse();
std::string EncodeStatsRequest();
std::string EncodeStatsResponse(const WireStats& m);
std::string EncodeMetricsDumpRequest();
/// `text` is the Prometheus exposition document (must fit a frame).
std::string EncodeMetricsDumpResponse(std::string_view text);
std::string EncodeIngestRecordRequest(const IngestRecordRequest& m);
std::string EncodeIngestBatchRequest(const IngestBatchRequest& m);
/// `type` must be kIngestRecord or kIngestBatch (the response echoes the
/// request's type byte).
std::string EncodeIngestResponse(MsgType type, const IngestResponse& m);

// ---------------------------------------------------------------------------
// Decoding (bounds-checked; exact payload size required)

Result<OpenRequest> DecodeOpenRequest(std::string_view payload);
Result<OpenResponse> DecodeOpenResponse(std::string_view payload);
Result<AdvanceRequest> DecodeAdvanceRequest(std::string_view payload);
Result<AdvanceResponse> DecodeAdvanceResponse(std::string_view payload);
Result<ProgressRequest> DecodeProgressRequest(std::string_view payload);
Result<ProgressResponse> DecodeProgressResponse(std::string_view payload);
Result<CloseRequest> DecodeCloseRequest(std::string_view payload);
Result<WireStats> DecodeStatsResponse(std::string_view payload);
/// The record decoders validate structure AND content: length prefixes
/// against their caps and the remaining payload, feature/l1/l2 arity
/// against the process's FeatureSchema / estimator table, and every
/// double for finiteness — a hostile frame cannot plant a NaN in the
/// training corpus.
Result<IngestRecordRequest> DecodeIngestRecordRequest(
    std::string_view payload);
Result<IngestBatchRequest> DecodeIngestBatchRequest(std::string_view payload);
Result<IngestResponse> DecodeIngestResponse(std::string_view payload);

/// \brief Incremental frame reassembly over an untrusted byte stream.
/// Feed() appends whatever the socket produced (any chunking, including
/// one byte at a time); Next() extracts complete frames. A hostile
/// header — oversized length, unknown type, nonzero reserved bits —
/// comes back as Status, after which the stream is unrecoverable and the
/// connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  void Feed(std::string_view bytes) { buf_.append(bytes); }

  /// True: *frame holds the next complete frame. False: more bytes are
  /// needed (partial header or partial payload). Status: the header is
  /// hostile and the stream cannot be re-synchronized.
  Result<bool> Next(WireFrame* frame);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace rpe
