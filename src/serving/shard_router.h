// ShardedMonitorService: the scale-out front of the serving tier. One
// mutex-guarded session map is fine for hundreds of concurrent queries;
// at tens of thousands of open sessions every OpenSession/Advance/Close
// serializes on the same two locks. The router hash-partitions sessions
// across N fully independent MonitorService shards — each with its own
// session map, locks, latency reservoir, and deficit-fair tick budget —
// so unrelated sessions never contend and the data-path cost of routing
// is two arithmetic ops on the session id.
//
// Routing: OpenSession picks a shard by hashing a monotone open ticket
// (splitmix64 — uniform spread without coordination) and returns a global
// id that encodes the shard: global = local * num_shards + shard. Every
// later call derives the shard from the id alone; there is no central
// session table.
//
// Publish: SwapModels fans out to every shard under one router lock, so a
// publish is observed by all shards as one generation step — after any
// SwapModels returns, every shard reports the same generation, and
// concurrent GetStats can never see the generations more than one step
// apart (min/max are both reported). The router is the TrainerLoop's
// ModelPublisher, so the online-learning loop drives all shards with one
// call.
//
// Ticks: Tick(max_steps) splits the budget across shards (remainder to
// the lowest shard indices) and runs the per-shard deficit-fair ticks
// concurrently on the ThreadPool. Fairness is per shard — the guarantee
// "served at least once per ceil(active/budget) ticks" holds within each
// shard for its share of the budget.
//
// Determinism: shards only partition sessions; each session's replay is
// the same deterministic observation walk MonitorService performs, so a
// sharded replay is bit-identical to an unsharded one at any shard count
// and any thread count. Counter stats are exact sums; p50/p95 are
// computed over the union of the per-shard latency reservoirs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "serving/monitor_service.h"

namespace rpe {

class ThreadPool;

/// \brief Hash-partitioned MonitorService pool behind one service
/// interface. All public methods are thread-safe.
class ShardedMonitorService : public ModelPublisher {
 public:
  struct Options {
    /// Number of independent shards; must be >= 1. Powers of two give the
    /// cheapest routing but any count works.
    size_t num_shards = 4;
    /// Driver-consumption marker at which choices are revised (§4.4).
    double revision_marker_pct = 20.0;
    /// Worker pool for per-shard tick/replay batches; nullptr = global.
    ThreadPool* pool = nullptr;
  };

  using SessionId = MonitorService::SessionId;

  ShardedMonitorService(std::shared_ptr<const SelectorStack> models,
                        Options options);

  size_t num_shards() const { return shards_.size(); }

  /// Fan the publish out to every shard in one generation step (see file
  /// comment). Returns the new generation, identical on every shard.
  uint64_t SwapModels(std::shared_ptr<const SelectorStack> models) override;
  /// Generation every shard has observed (the min across shards — i.e.
  /// "published everywhere").
  uint64_t model_generation() const;

  /// Session API, routed by id; semantics identical to MonitorService.
  Result<SessionId> OpenSession(const QueryRunResult* run);
  /// Open on an explicit shard instead of the hashed ticket. The TCP
  /// front-end (serving/server.h) pins each connection to one IO thread
  /// and opens that connection's sessions on the aligned shard, so every
  /// later Advance/Progress/Close from the connection touches only locks
  /// its own IO thread already owns. The returned id routes through the
  /// normal Advance/Progress/Close/Done calls.
  Result<SessionId> OpenSessionOnShard(const QueryRunResult* run,
                                       size_t shard);
  Result<double> Advance(SessionId id);
  Result<double> Progress(SessionId id) const;
  Result<bool> Done(SessionId id) const;
  Status CloseSession(SessionId id);
  size_t num_open_sessions() const;  ///< sum over shards

  /// One sharded tick pass: the budget is divided across shards (0 =
  /// unbudgeted everywhere) and shard ticks run concurrently. Returns the
  /// total number of sessions still unfinished.
  size_t Tick(size_t max_steps = 0);

  /// Replay whole runs concurrently; out[i] is bit-identical to
  /// ProgressMonitor::ReplayQueryProgress(*runs[i]) against the current
  /// snapshot, regardless of shard count. Runs are spread round-robin
  /// across shards.
  std::vector<std::vector<double>> ReplayAll(
      std::span<const QueryRunResult* const> runs);

  /// \brief Aggregated serving statistics.
  struct Stats {
    size_t shards = 0;
    /// Summed counters; p50/p95 merged over the union of per-shard
    /// latency reservoirs; rates recomputed from summed counters over
    /// summed scoring time. model_generation is the min across shards;
    /// ingest comes from the router-level provider.
    MonitorService::Stats total;
    /// Min/max shard generation. GetStats excludes publishes while it
    /// scans, so these are always equal — a consistent cut across shards;
    /// both are reported as an interface-level consistency check.
    uint64_t min_model_generation = 0;
    uint64_t max_model_generation = 0;
  };
  Stats GetStats() const;

  /// Register the source of Stats::ingest for the aggregate (typically
  /// TrainerLoop::GetStats); pass nullptr to unregister.
  void SetIngestStatsProvider(std::function<IngestStats()> provider);

  /// Direct shard access for tests/benches (shards are owned; do not swap
  /// models through a shard directly or the one-step generation invariant
  /// breaks).
  MonitorService& shard(size_t i) { return *shards_[i]; }

 private:
  size_t ShardOf(SessionId id) const { return id % shards_.size(); }
  SessionId LocalId(SessionId id) const { return id / shards_.size(); }
  ThreadPool* Pool() const;

  const Options options_;
  std::vector<std::unique_ptr<MonitorService>> shards_;

  /// Monotone open ticket; hashed to pick the shard of a new session.
  std::atomic<uint64_t> open_ticket_{0};

  /// Serializes SwapModels fan-outs so a publish lands on every shard as
  /// one step and generations advance in lockstep.
  mutable std::mutex swap_mu_;

  mutable std::mutex ingest_mu_;
  std::function<IngestStats()> ingest_provider_;
};

}  // namespace rpe
