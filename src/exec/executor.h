// Runs a physical plan to completion over a catalog, producing the full
// observation stream (counter snapshots on the virtual clock) plus the
// post-hoc ground truth (true N_i, pipeline activity windows) that the
// progress-estimation layer evaluates against.
#pragma once

#include <vector>

#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/pipeline.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace rpe {

/// \brief Everything recorded about one query execution.
struct QueryRunResult {
  const PhysicalPlan* plan = nullptr;
  std::vector<Observation> observations;
  /// Pipelines with their observation/virtual-time activity windows filled.
  std::vector<Pipeline> pipelines;
  /// True total GetNext calls per node (N_i of §3.1), i.e. final K_i.
  std::vector<double> true_n;
  std::vector<double> final_bytes_read;
  std::vector<double> final_bytes_written;
  double total_time = 0.0;
  uint64_t rows_out = 0;
};

/// Execute a schema-resolved plan against `catalog`. The plan's est_rows
/// annotations seed the E_i estimates.
Result<QueryRunResult> ExecutePlan(const PhysicalPlan& plan,
                                   const Catalog& catalog,
                                   const ExecOptions& options = {});

/// Convenience for tests/examples: resolve schemas on a hand-built plan tree
/// and finalize it into a PhysicalPlan.
Result<std::unique_ptr<PhysicalPlan>> FinalizePlan(
    std::unique_ptr<PlanNode> root, const Catalog& catalog);

}  // namespace rpe
