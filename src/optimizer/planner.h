// Rule-based physical planner: turns a logical QuerySpec into a left-deep
// physical plan under the catalog's current physical design, annotating
// every node with its cardinality estimate E_i.
//
// Strategy selection mirrors the index-availability-driven behaviour the
// paper observes across "untuned" / "partially tuned" / "fully tuned"
// designs (Table 1): index nested-loop joins (optionally behind a partial
// BatchSort, §5.1) when an index on the inner join column exists, merge
// joins when order is available or hinted, hash joins otherwise.
#pragma once

#include <memory>

#include "common/status.h"
#include "exec/plan.h"
#include "optimizer/cardinality.h"
#include "optimizer/query_spec.h"
#include "storage/catalog.h"

namespace rpe {

/// \brief Planner thresholds (loosely modelled on SQL Server behaviour).
struct PlannerOptions {
  /// Max estimated outer cardinality for an index nested-loop join.
  double nlj_outer_max = 20000.0;
  /// Outer cardinality above which a BatchSort is inserted before an index
  /// nested-loop join to localize inner references.
  double batch_sort_min_outer = 2500.0;
  /// BatchSort batch size = clamp(outer_est / 8, 512, batch_size_cap).
  size_t batch_size_cap = 8192;
  /// Max inner-table size for a naive (rescanning) nested-loop join when
  /// kNestedLoop is hinted but no index exists.
  double naive_nlj_inner_max = 3000.0;
  /// Max estimated outer x inner work for a naive nested-loop join.
  double naive_nlj_work_max = 4.0e6;
};

/// \brief Produces physical plans with E_i annotations.
class Planner {
 public:
  Planner(const Catalog* catalog, CardinalityEstimator* cardinality,
          PlannerOptions options = {});

  /// Build, resolve and finalize a plan for `spec`.
  Result<std::unique_ptr<PhysicalPlan>> Plan(const QuerySpec& spec);

 private:
  const Catalog* catalog_;
  CardinalityEstimator* card_;
  PlannerOptions options_;
};

}  // namespace rpe
