// Progress monitor: the paper's end-to-end story. Train the estimator
// selector on a workload, then "monitor" a long-running query: at each
// progress checkpoint print the selected estimator's progress bar next to
// the truth, revising the selection once dynamic features become available
// at the 20% driver marker (§4.4).
//
//   $ ./examples/monitor_query
#include <iostream>
#include <string>

#include "harness/runner.h"
#include "selection/selector.h"

using namespace rpe;

namespace {

std::string Bar(double fraction, int width = 40) {
  const int filled = static_cast<int>(fraction * width + 0.5);
  std::string bar = "[";
  for (int i = 0; i < width; ++i) bar += i < filled ? '#' : '.';
  bar += "]";
  return bar;
}

}  // namespace

int main() {
  // 1. Build a training workload and capture pipeline records.
  WorkloadConfig train_config;
  train_config.kind = WorkloadKind::kTpch;
  train_config.name = "monitor-train";
  train_config.scale = 5.0;
  train_config.zipf = 1.0;
  train_config.tuning = TuningLevel::kFullyTuned;
  train_config.num_queries = 120;
  train_config.seed = 17;
  auto train_workload = BuildWorkload(train_config);
  if (!train_workload.ok()) {
    std::cerr << train_workload.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Training the selector on " << train_config.num_queries
            << " queries...\n";
  auto train_records = RunWorkload(*train_workload);
  if (!train_records.ok()) {
    std::cerr << train_records.status().ToString() << "\n";
    return 1;
  }
  MartParams params;
  params.num_trees = 60;
  EstimatorSelector static_selector = EstimatorSelector::Train(
      *train_records, PoolSix(), /*use_dynamic=*/false, params);
  EstimatorSelector dynamic_selector = EstimatorSelector::Train(
      *train_records, PoolSix(), /*use_dynamic=*/true, params);
  std::cout << "Trained " << static_selector.models().size()
            << " static + " << dynamic_selector.models().size()
            << " dynamic error regressors on " << train_records->size()
            << " pipeline examples.\n\n";

  // 2. The "long-running" query to monitor: a 3-way join with nested
  //    iteration and aggregation.
  QuerySpec spec;
  spec.name = "monitored";
  spec.tables = {"orders", "lineitem", "part"};
  JoinEdge j1;
  j1.left_idx = 0;
  j1.left_col = "o_orderkey";
  j1.right_col = "l_orderkey";
  spec.joins.push_back(j1);
  JoinEdge j2;
  j2.left_idx = 1;
  j2.left_col = "l_partkey";
  j2.right_col = "p_partkey";
  j2.hint = JoinHint::kNestedLoop;
  spec.joins.push_back(j2);
  AggSpec agg;
  agg.group_cols = {{2, "p_brand"}};
  spec.agg = agg;

  auto run = RunQuery(*train_workload, spec);
  if (!run.ok()) {
    std::cerr << run.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Monitored plan:\n" << run->plan->ToString() << "\n";

  // 3. Replay the execution as if live: per pipeline, select an estimator
  //    from static features, revise at the 20% driver marker, and print
  //    the progress trace.
  for (const Pipeline& pipeline : run->result.pipelines) {
    if (pipeline.first_obs < 0 || pipeline.last_obs - pipeline.first_obs < 8) {
      continue;
    }
    PipelineView view{&run->result, &pipeline};
    // Static features are a prefix of the full vector; the static
    // selector reads exactly that prefix, no padding needed.
    const size_t initial_choice =
        static_selector.Select(ExtractStaticFeatures(view));
    const auto all_features = ExtractAllFeatures(view);
    const size_t revised_choice = dynamic_selector.Select(all_features);
    const int revision_obs = MarkerObservation(view, 20.0);

    std::cout << "--- pipeline P" << pipeline.id << ": initial choice "
              << EstimatorName(static_cast<EstimatorKind>(initial_choice))
              << ", revised to "
              << EstimatorName(static_cast<EstimatorKind>(revised_choice))
              << " at the 20% driver marker ---\n";
    const int steps = 12;
    for (int i = 0; i <= steps; ++i) {
      const size_t oi = static_cast<size_t>(
          pipeline.first_obs +
          (pipeline.last_obs - pipeline.first_obs) * i / steps);
      const bool revised =
          revision_obs >= 0 && static_cast<int>(oi) >= revision_obs;
      const size_t choice = revised ? revised_choice : initial_choice;
      const double est = GetEstimator(static_cast<EstimatorKind>(choice))
                             .Estimate(view, oi);
      const double truth = view.TrueProgress(oi);
      std::printf("  est %s %5.1f%%  (true %5.1f%%)  [%s]\n",
                  Bar(est).c_str(), est * 100.0, truth * 100.0,
                  EstimatorName(static_cast<EstimatorKind>(choice)));
    }
  }
  return 0;
}
