// Zero-copy snapshot arena tests: mmap-loaded stacks must score
// bit-identically to heap-loaded ones, legacy/unaligned files must fall
// back to the copy decoder (same scores, no aliasing), and every flavor
// of damage — truncation, corruption, hostile compiled tables — must be
// rejected with a Status, never UB.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "mart/flat_ensemble.h"
#include "serving/mmap_arena.h"
#include "serving/snapshot.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::RandomRecords;

std::string TempPath(const std::string& name) {
  return std::filesystem::temp_directory_path().string() + "/" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// Patch the header of raw snapshot bytes after a payload edit: payload
/// size, CRC (v2 folds the aux-offset field in first), aux offset,
/// version (header layout documented in snapshot.h).
void ReframeHeader(std::string* bytes, uint32_t version,
                   uint32_t aux_offset) {
  const uint64_t payload_size = bytes->size() - 32;
  uint32_t crc = 0;
  if (version != kSnapshotVersionLegacy) {
    crc = Crc32(&aux_offset, sizeof aux_offset);
  }
  crc = Crc32(bytes->data() + 32, payload_size, crc);
  std::memcpy(bytes->data() + 4, &version, 4);
  std::memcpy(bytes->data() + 16, &payload_size, 8);
  std::memcpy(bytes->data() + 24, &crc, 4);
  std::memcpy(bytes->data() + 28, &aux_offset, 4);
}

uint32_t ReadAuxOffset(const std::string& bytes) {
  uint32_t aux = 0;
  std::memcpy(&aux, bytes.data() + 28, 4);
  return aux;
}

class MmapArenaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<PipelineRecord>(RandomRecords(80, 11));
    MartParams params;
    params.num_trees = 12;
    params.tree.max_leaves = 8;
    params.seed = 7;
    stack_ = new SelectorStack(
        SelectorStack::Train(*records_, PoolOriginalThree(), params));
    path_ = new std::string(TempPath("rpe_mmap_arena_test.rpsn"));
    RPE_CHECK_OK(SaveSelectorStack(*stack_, *path_));
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete records_;
    delete stack_;
    delete path_;
    records_ = nullptr;
    stack_ = nullptr;
    path_ = nullptr;
  }

  static void ExpectScoresMatchOriginal(const SelectorStack& loaded) {
    for (const auto& pair :
         {std::make_pair(&stack_->static_selector, &loaded.static_selector),
          std::make_pair(&stack_->dynamic_selector,
                         &loaded.dynamic_selector)}) {
      EXPECT_EQ(pair.first->pool(), pair.second->pool());
      for (const PipelineRecord& r : *records_) {
        // Bit-identical, not approximately equal.
        ASSERT_EQ(pair.first->PredictErrors(r.features),
                  pair.second->PredictErrors(r.features));
        ASSERT_EQ(pair.first->SelectForRecord(r),
                  pair.second->SelectForRecord(r));
      }
    }
  }

  static std::vector<PipelineRecord>* records_;
  static SelectorStack* stack_;
  static std::string* path_;
};

std::vector<PipelineRecord>* MmapArenaTest::records_ = nullptr;
SelectorStack* MmapArenaTest::stack_ = nullptr;
std::string* MmapArenaTest::path_ = nullptr;

TEST_F(MmapArenaTest, ZeroCopyLoadScoresBitIdentically) {
  auto loaded = LoadSelectorStackMmap(*path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->zero_copy);
  EXPECT_GT(loaded->mapped_bytes, 0u);
  // Model-free: the arena stack is a scoring artifact.
  EXPECT_FALSE(loaded->stack->static_selector.has_models());
  EXPECT_FALSE(loaded->stack->dynamic_selector.has_models());
  ExpectScoresMatchOriginal(*loaded->stack);

  // The heap loader over the same file agrees bit for bit too.
  auto heap = LoadSelectorStack(*path_);
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  for (const PipelineRecord& r : *records_) {
    ASSERT_EQ(heap->static_selector.PredictErrors(r.features),
              loaded->stack->static_selector.PredictErrors(r.features));
    ASSERT_EQ(heap->dynamic_selector.PredictErrors(r.features),
              loaded->stack->dynamic_selector.PredictErrors(r.features));
  }

  // FeatureImportance survives the model-free rebuild via persisted gains.
  EXPECT_EQ(stack_->static_selector.FeatureImportance(),
            loaded->stack->static_selector.FeatureImportance());
  EXPECT_EQ(stack_->dynamic_selector.FeatureImportance(),
            loaded->stack->dynamic_selector.FeatureImportance());
}

TEST_F(MmapArenaTest, ArenaOutlivesLoaderScope) {
  std::shared_ptr<const SelectorStack> stack;
  {
    auto loaded = LoadSelectorStackMmap(*path_);
    ASSERT_TRUE(loaded.ok());
    ASSERT_TRUE(loaded->zero_copy);
    stack = loaded->stack;
  }
  // The ArenaStackLoad is gone; the aliased shared_ptr must keep the
  // mapping alive (scoring reads mapped bytes).
  ExpectScoresMatchOriginal(*stack);
}

TEST_F(MmapArenaTest, LegacyV1FileFallsBackToCopy) {
  const std::string legacy_path = TempPath("rpe_mmap_arena_legacy.rpsn");
  WriteBytes(legacy_path,
             snapshot_internal::EncodeSelectorStackLegacyV1(*stack_));
  auto loaded = LoadSelectorStackMmap(legacy_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->zero_copy);
  // The copy path decodes real models.
  EXPECT_TRUE(loaded->stack->static_selector.has_models());
  ExpectScoresMatchOriginal(*loaded->stack);
  std::remove(legacy_path.c_str());
}

TEST_F(MmapArenaTest, MisalignedAuxSectionFallsBackToCopy) {
  // Shift the aux section by 4 bytes: every 8-aligned slab is now
  // misaligned, so the zero-copy path must degrade to the copy decoder
  // (the model payload is untouched).
  std::string bytes = EncodeSelectorStack(*stack_);
  const uint32_t aux = ReadAuxOffset(bytes);
  ASSERT_GT(aux, 0u);
  bytes.insert(32 + aux, 4, '\0');
  ReframeHeader(&bytes, kSnapshotVersion, aux + 4);
  const std::string path = TempPath("rpe_mmap_arena_misaligned.rpsn");
  WriteBytes(path, bytes);

  auto loaded = LoadSelectorStackMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->zero_copy);
  ExpectScoresMatchOriginal(*loaded->stack);
  std::remove(path.c_str());
}

TEST_F(MmapArenaTest, TruncatedFilesAreRejected) {
  std::string bytes = EncodeSelectorStack(*stack_);
  const std::string path = TempPath("rpe_mmap_arena_trunc.rpsn");
  for (size_t keep : {size_t{0}, size_t{16}, size_t{32}, bytes.size() / 2,
                      bytes.size() - 1}) {
    WriteBytes(path, bytes.substr(0, keep));
    auto loaded = LoadSelectorStackMmap(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << keep << " bytes loaded";
  }
  std::remove(path.c_str());
}

TEST_F(MmapArenaTest, CorruptedAuxPayloadIsRejected) {
  std::string bytes = EncodeSelectorStack(*stack_);
  bytes[bytes.size() - 5] ^= 0x5A;  // inside the aux section
  const std::string path = TempPath("rpe_mmap_arena_crc.rpsn");
  WriteBytes(path, bytes);
  auto loaded = LoadSelectorStackMmap(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
      << loaded.status().ToString();
  std::remove(path.c_str());
}

TEST_F(MmapArenaTest, BogusAuxOffsetIsRejected) {
  std::string bytes = EncodeSelectorStack(*stack_);
  const uint32_t aux = ReadAuxOffset(bytes);
  const std::string path = TempPath("rpe_mmap_arena_auxoff.rpsn");

  // A flipped aux-offset byte without a matching CRC is corruption: the
  // v2 CRC covers the offset field, so this must read as a CRC mismatch.
  {
    std::string bad = bytes;
    bad[28] ^= 0x01;
    WriteBytes(path, bad);
    auto loaded = LoadSelectorStackMmap(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
        << loaded.status().ToString();
  }
  // Consistently re-framed but past the payload: bounded at unframe time.
  {
    std::string bad = bytes;
    ReframeHeader(&bad, kSnapshotVersion, static_cast<uint32_t>(bad.size()));
    WriteBytes(path, bad);
    EXPECT_FALSE(LoadSelectorStackMmap(path).ok());
  }
  // Consistently re-framed but pointing mid-section (8-aligned so it is
  // not taken for an alignment fallback): the flat magic check trips.
  {
    std::string bad = bytes;
    ReframeHeader(&bad, kSnapshotVersion, aux + 8);
    WriteBytes(path, bad);
    auto loaded = LoadSelectorStackMmap(path);
    EXPECT_FALSE(loaded.ok());
  }
  std::remove(path.c_str());
}

TEST_F(MmapArenaTest, MissingAndEmptyFilesAreErrors) {
  EXPECT_FALSE(LoadSelectorStackMmap(TempPath("rpe_no_such_file.rpsn")).ok());
  const std::string path = TempPath("rpe_mmap_arena_empty.rpsn");
  WriteBytes(path, "");
  EXPECT_FALSE(LoadSelectorStackMmap(path).ok());
  std::remove(path.c_str());
}

TEST_F(MmapArenaTest, EncodingModelFreeStackDies) {
  auto loaded = LoadSelectorStackMmap(*path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->zero_copy);
  // A zero-copy stack has nothing to persist; re-encoding it must be a
  // loud programming error, not a silent empty model section.
  EXPECT_DEATH(EncodeSelectorStack(*loaded->stack), "model-free");
}

// ---------------------------------------------------------------------------
// FlatEnsembleSet::FromParts: the structural gate hostile compiled tables
// must not get past. Parts are cloned from a genuinely compiled set and
// then damaged one table at a time.

class FromPartsTest : public ::testing::Test {
 protected:
  static FlatEnsembleSet::Parts CloneParts(const FlatEnsembleSet& set) {
    FlatEnsembleSet::Parts parts;
    parts.bias = set.bias_slab();
    parts.tree_begin = set.tree_begin_slab();
    parts.store = set.store();
    parts.qs = set.quickscorers();
    parts.merged = set.merged();
    // FromParts expects persisted leaf tables, which carry the 64-slot
    // guard tail the snapshot writer appends.
    for (auto& qs : parts.qs) {
      if (qs.usable) {
        qs.leaf_value.vec().resize(qs.leaf_value.size() + kQsLeafGuard, 0.0);
      }
    }
    if (parts.merged.usable) {
      parts.merged.leaf_value.vec().resize(
          parts.merged.leaf_value.size() + kQsLeafGuard, 0.0);
    }
    return parts;
  }

  static void SetUpTestSuite() {
    Dataset data(4);
    Rng rng(3);
    std::vector<double> x(4);
    for (size_t i = 0; i < 400; ++i) {
      for (auto& v : x) v = rng.NextDouble();
      RPE_CHECK_OK(data.AddExample(x, x[0] + 0.3 * x[2]));
    }
    MartParams params;
    params.num_trees = 8;
    params.tree.max_leaves = 6;
    std::vector<MartModel> models;
    for (int m = 0; m < 3; ++m) {
      params.seed = static_cast<uint64_t>(m + 1);
      models.push_back(MartModel::Train(data, params));
    }
    set_ = new FlatEnsembleSet(FlatEnsembleSet::Compile(models));
  }
  static void TearDownTestSuite() {
    delete set_;
    set_ = nullptr;
  }

  static FlatEnsembleSet* set_;
  static constexpr size_t kInputs = 4;
};

FlatEnsembleSet* FromPartsTest::set_ = nullptr;

TEST_F(FromPartsTest, IntactPartsRebuildAndScoreIdentically) {
  auto rebuilt = FlatEnsembleSet::FromParts(CloneParts(*set_), kInputs);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  Rng rng(19);
  std::vector<double> x(kInputs);
  std::vector<double> a(set_->num_models()), b(set_->num_models());
  for (int trial = 0; trial < 100; ++trial) {
    for (auto& v : x) v = rng.NextDouble() * 2.0 - 0.5;
    set_->PredictAll(x, a);
    rebuilt->PredictAll(x, b);
    ASSERT_EQ(a, b);
    ASSERT_EQ(set_->ArgMin(x), rebuilt->ArgMin(x));
  }
}

TEST_F(FromPartsTest, HostileTablesAreRejected) {
  {  // tree_begin not covering the store
    auto parts = CloneParts(*set_);
    parts.tree_begin.vec().back() += 1;
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // root past the node store
    auto parts = CloneParts(*set_);
    parts.store.roots.vec()[0] =
        static_cast<int32_t>(parts.store.topo.size());
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // interior node whose right child walks off the store
    auto parts = CloneParts(*set_);
    const int32_t huge_delta = static_cast<int32_t>(parts.store.topo.size());
    parts.store.topo.vec()[0] = flat_internal::NodeStore::PackTopo(
        0, huge_delta);
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // split feature beyond the input width
    auto parts = CloneParts(*set_);
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), 1).ok());
  }
  {  // leaf with a finite split could step past the last node
    auto parts = CloneParts(*set_);
    for (size_t i = 0; i < parts.store.topo.size(); ++i) {
      if ((parts.store.topo[i] >>
           flat_internal::NodeStore::kFeatureBits) == 0) {
        parts.store.split.vec()[i] = 0.5;
        break;
      }
    }
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // schedule that is not a per-block permutation
    auto parts = CloneParts(*set_);
    parts.store.sched.vec()[0] = parts.store.sched[1];
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // QuickScorer entry pointing at a tree that does not exist
    auto parts = CloneParts(*set_);
    ASSERT_TRUE(parts.qs[0].usable);
    ASSERT_FALSE(parts.qs[0].entry_tree.empty());
    parts.qs[0].entry_tree.vec()[0] = parts.qs[0].num_trees;
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // leaf base past the (guarded) leaf table
    auto parts = CloneParts(*set_);
    ASSERT_TRUE(parts.merged.usable);
    parts.merged.leaf_base.vec()[0] =
        static_cast<int32_t>(parts.merged.leaf_value.size());
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
  {  // missing guard tail on the merged leaf table
    auto parts = CloneParts(*set_);
    ASSERT_TRUE(parts.merged.usable);
    parts.merged.leaf_value.vec().resize(parts.merged.leaf_value.size() -
                                         kQsLeafGuard);
    EXPECT_FALSE(FlatEnsembleSet::FromParts(std::move(parts), kInputs).ok());
  }
}

}  // namespace
}  // namespace rpe
