// Tests for the aggregate evaluation metrics and split helpers used by the
// experiment harness.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/metrics.h"

namespace rpe {
namespace {

PipelineRecord MakeRecordWithErrors(std::vector<double> l1,
                                    const std::string& workload = "w",
                                    const std::string& tag = "") {
  PipelineRecord r;
  r.workload = workload;
  r.tag = tag;
  r.features.assign(FeatureSchema::Get().num_features(), 0.0);
  r.l1 = std::move(l1);
  r.l1.resize(kNumEstimatorKinds, 0.9);
  r.l2 = r.l1;
  return r;
}

TEST(MetricsTest, BestEstimatorIgnoresOracleTail) {
  // Oracle entries (indices 8, 9) are better but must not be selected.
  std::vector<double> l1(kNumEstimatorKinds, 0.5);
  l1[3] = 0.2;   // best selectable
  l1[8] = 0.01;  // oracle — excluded
  PipelineRecord r = MakeRecordWithErrors(l1);
  EXPECT_EQ(r.BestEstimator(), 3u);
  EXPECT_DOUBLE_EQ(r.BestL1(), 0.2);
}

TEST(MetricsTest, BestInPoolRestricts) {
  std::vector<double> l1 = {0.5, 0.1, 0.3};
  PipelineRecord r = MakeRecordWithErrors(l1);
  EXPECT_EQ(BestInPool(r, {}), 1u);
  EXPECT_EQ(BestInPool(r, {0, 2}), 2u);
  EXPECT_EQ(BestInPool(r, {0}), 0u);
}

TEST(MetricsTest, EvaluateChoicesAggregates) {
  std::vector<PipelineRecord> records = {
      MakeRecordWithErrors({0.1, 0.2, 0.3}),
      MakeRecordWithErrors({0.4, 0.1, 0.3}),
  };
  // Choose estimator 0 for both: optimal for the first, 4x off for the
  // second.
  const auto m = EvaluateChoices(records, {0, 0}, {0, 1, 2});
  EXPECT_EQ(m.count, 2u);
  EXPECT_NEAR(m.avg_l1, 0.25, 1e-9);
  EXPECT_NEAR(m.pct_optimal, 0.5, 1e-9);
  EXPECT_NEAR(m.frac_ratio_gt2, 0.5, 1e-9);  // 0.4/0.1 = 4x > 2x
  EXPECT_NEAR(m.frac_ratio_gt5, 0.0, 1e-9);
}

TEST(MetricsTest, OracleChoiceIsAlwaysOptimal) {
  std::vector<PipelineRecord> records = {
      MakeRecordWithErrors({0.3, 0.2, 0.1}),
      MakeRecordWithErrors({0.05, 0.2, 0.1}),
      MakeRecordWithErrors({0.3, 0.01, 0.1}),
  };
  const auto m = EvaluateChoices(records, OracleChoice(records));
  EXPECT_DOUBLE_EQ(m.pct_optimal, 1.0);
  EXPECT_DOUBLE_EQ(m.frac_ratio_gt2, 0.0);
}

TEST(MetricsTest, FractionOptimalTiesCountForBoth) {
  std::vector<PipelineRecord> records = {
      MakeRecordWithErrors({0.1, 0.1, 0.5}),
  };
  const std::vector<size_t> pool = {0, 1, 2};
  EXPECT_DOUBLE_EQ(FractionOptimal(records, 0, pool), 1.0);
  EXPECT_DOUBLE_EQ(FractionOptimal(records, 1, pool), 1.0);
  EXPECT_DOUBLE_EQ(FractionOptimal(records, 2, pool), 0.0);
}

TEST(MetricsTest, ErrorRatioCurveSortedAscending) {
  std::vector<PipelineRecord> records = {
      MakeRecordWithErrors({0.4, 0.1, 0.3}),
      MakeRecordWithErrors({0.1, 0.1, 0.3}),
      MakeRecordWithErrors({0.9, 0.1, 0.3}),
  };
  const auto curve = ErrorRatioCurve(records, 0, {0, 1, 2});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_TRUE(std::is_sorted(curve.begin(), curve.end()));
  EXPECT_NEAR(curve[0], 1.0, 1e-3);
  EXPECT_NEAR(curve[2], 9.0, 0.1);
}

TEST(MetricsTest, FiltersSplitRecords) {
  std::vector<PipelineRecord> records = {
      MakeRecordWithErrors({0.1}, "a", "t1"),
      MakeRecordWithErrors({0.1}, "b", "t1"),
      MakeRecordWithErrors({0.1}, "a", "t2"),
  };
  EXPECT_EQ(FilterByWorkload(records, "a").size(), 2u);
  EXPECT_EQ(FilterByWorkload(records, "a", /*invert=*/true).size(), 1u);
  EXPECT_EQ(FilterByTag(records, "t1").size(), 2u);
  EXPECT_EQ(FilterByTag(records, "t2", /*invert=*/true).size(), 2u);
}

TEST(MetricsTest, SelectivityBucketsBySignatureAndSize) {
  // Six records sharing a signature (all-zero features) with increasing
  // total_n: two per bucket.
  std::vector<PipelineRecord> records;
  for (int i = 0; i < 6; ++i) {
    PipelineRecord r = MakeRecordWithErrors({0.1, 0.2, 0.3});
    r.total_n = 100.0 * (i + 1);
    records.push_back(std::move(r));
  }
  const auto buckets = SelectivityBuckets(records, 6);
  EXPECT_EQ(buckets, (std::vector<int>{0, 0, 1, 1, 2, 2}));
  // A rarer signature is excluded.
  PipelineRecord odd = MakeRecordWithErrors({0.1, 0.2, 0.3});
  odd.features[0] = 5.0;
  records.push_back(std::move(odd));
  const auto buckets2 = SelectivityBuckets(records, 6);
  EXPECT_EQ(buckets2.back(), -1);
}

TEST(MetricsTest, PipelineSignatureSeparatesShapes) {
  PipelineRecord a = MakeRecordWithErrors({0.1});
  PipelineRecord b = MakeRecordWithErrors({0.1});
  b.features[5 * 5] = 2.0;  // Count of a different operator
  EXPECT_NE(PipelineSignature(a), PipelineSignature(b));
  PipelineRecord c = MakeRecordWithErrors({0.9});  // errors don't matter
  EXPECT_EQ(PipelineSignature(a), PipelineSignature(c));
}

TEST(MetricsTest, FixedChoiceShape) {
  std::vector<PipelineRecord> records = {
      MakeRecordWithErrors({0.1}),
      MakeRecordWithErrors({0.2}),
  };
  const auto choices = FixedChoice(records, 4);
  EXPECT_EQ(choices, (std::vector<size_t>{4, 4}));
}

}  // namespace
}  // namespace rpe
