// Progress estimators (paper §3.4 and §5). Every estimator maps a pipeline
// plus an observation index to a progress fraction in [0, 1]; all of them
// consume only the §3.1 counters (K/E/LB/UB/R/W) captured in the
// observation stream.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/pipeline.h"

namespace rpe {

/// \brief The candidate estimators plus the two idealized "oracle" models of
/// §6.7 (which use true cardinalities and are excluded from selection).
enum class EstimatorKind : int {
  kDne = 0,       ///< DriverNode estimator, Eq. 4 [6]
  kTgn,           ///< Total GetNext with optimizer estimates, Eq. 3 [6]
  kLuo,           ///< bytes-processed / speed model [13]
  kSafe,          ///< worst-case-optimal ratio-error estimator [5]
  kPmax,          ///< pessimistic bound-based estimator [5]
  kBatchDne,      ///< DNE + BatchSort nodes as drivers, Eq. 6 (§5.1)
  kDneSeek,       ///< DNE + IndexSeek nodes as drivers, Eq. 7 (§5.1.1)
  kTgnInt,        ///< TGN with interpolated cardinalities, Eq. 8 (§5.2)
  kOracleGetNext, ///< GetNext model with true N_i (§6.7)
  kOracleBytes,   ///< bytes-processed model with true totals (§6.7)
};

inline constexpr int kNumSelectableEstimators = 8;
inline constexpr int kNumEstimatorKinds = 10;

const char* EstimatorName(EstimatorKind kind);

/// \brief A pipeline of one finished run, as seen by estimators.
struct PipelineView {
  const QueryRunResult* run = nullptr;
  const Pipeline* pipeline = nullptr;

  const Observation& obs(size_t oi) const { return run->observations[oi]; }
  size_t num_obs() const { return run->observations.size(); }
  const PlanNode* node(int id) const { return run->plan->node(id); }

  /// Elapsed virtual time within the pipeline's activity window at obs oi.
  double Elapsed(size_t oi) const;
  /// Ground-truth progress at obs oi: elapsed / window length, in [0,1].
  double TrueProgress(size_t oi) const;
};

/// \brief Base interface.
class ProgressEstimator {
 public:
  virtual ~ProgressEstimator() = default;
  virtual EstimatorKind kind() const = 0;
  /// Progress of the pipeline at observation `oi`, clamped to [0, 1].
  virtual double Estimate(const PipelineView& view, size_t oi) const = 0;
  const char* name() const { return EstimatorName(kind()); }
};

/// Singleton estimator instance for a kind.
const ProgressEstimator& GetEstimator(EstimatorKind kind);

/// The eight selectable candidates, in EstimatorKind order.
const std::vector<const ProgressEstimator*>& SelectableEstimators();

// --- shared counter helpers ------------------------------------------------

/// Sum of K_i at observation `oi` over `nodes`.
double SumK(const Observation& obs, const std::vector<int>& nodes);
/// Sum of refined estimates E_i over `nodes`.
double SumE(const Observation& obs, const std::vector<int>& nodes);
double SumLb(const Observation& obs, const std::vector<int>& nodes);
double SumUb(const Observation& obs, const std::vector<int>& nodes);

/// Driver set of Eq. 6 / Eq. 7: pipeline drivers plus all pipeline nodes of
/// the given extra operator type.
std::vector<int> DriversPlus(const PipelineView& view, OpType extra);

}  // namespace rpe
