// Wire protocol + TCP front-end tests. Codec side: every message type
// round-trips bit-exactly through encode -> frame reassembly -> decode,
// partial reads reassemble at any chunking, and hostile headers and
// payloads (oversized length, zero/trailing bytes, unknown types, nonzero
// reserved bits) are rejected with Status. Server side: a real loopback
// TcpServer must answer Advance with progress values bit-identical to the
// in-process MonitorService walking the same run, reconcile its counters
// exactly, reject garbage streams without dying, and drain cleanly. The
// Wire* suites run in the CI TSan job (the server fans out across IO
// threads and shards).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <thread>

#include "exec/executor.h"
#include "serving/server.h"
#include "serving/shard_router.h"
#include "serving/wire.h"
#include "tests/test_util.h"

namespace rpe {
namespace {

using ::rpe::testing::MakeSmallCatalog;
using ::rpe::testing::RandomRecords;

// ---------------------------------------------------------------------------
// Codec

/// Encode -> FrameDecoder -> one complete frame, asserting exactly one
/// frame comes out and nothing is left over.
WireFrame MustDecodeOne(const std::string& encoded) {
  FrameDecoder decoder;
  decoder.Feed(encoded);
  WireFrame frame;
  auto first = decoder.Next(&frame);
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first.ok() && *first);
  WireFrame extra;
  auto second = decoder.Next(&extra);
  EXPECT_TRUE(second.ok() && !*second) << "trailing frame";
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  return frame;
}

TEST(WireCodecTest, OpenMessagesRoundTripBitExactly) {
  OpenRequest req;
  req.run_index = 0xDEADBEEFu;
  WireFrame frame = MustDecodeOne(EncodeOpenRequest(req));
  EXPECT_EQ(frame.type, MsgType::kOpen);
  EXPECT_TRUE(frame.ok());
  auto decoded = DecodeOpenRequest(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->run_index, req.run_index);

  OpenResponse resp;
  resp.session_id = 0x0123456789ABCDEFull;
  resp.run_index = 7;
  resp.num_observations = 4096;
  frame = MustDecodeOne(EncodeOpenResponse(resp));
  auto out = DecodeOpenResponse(frame.payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->session_id, resp.session_id);
  EXPECT_EQ(out->run_index, resp.run_index);
  EXPECT_EQ(out->num_observations, resp.num_observations);
}

TEST(WireCodecTest, AdvanceMessagesRoundTripBitExactly) {
  AdvanceRequest req;
  req.session_id = 42;
  req.max_steps = kMaxAdvanceSteps;
  WireFrame frame = MustDecodeOne(EncodeAdvanceRequest(req));
  EXPECT_EQ(frame.type, MsgType::kAdvance);
  auto decoded = DecodeAdvanceRequest(frame.payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->session_id, req.session_id);
  EXPECT_EQ(decoded->max_steps, req.max_steps);

  AdvanceResponse resp;
  resp.progress = 0.1234567890123456789;  // keeps all 53 mantissa bits
  resp.steps = 31;
  resp.done = 1;
  frame = MustDecodeOne(EncodeAdvanceResponse(resp));
  auto out = DecodeAdvanceResponse(frame.payload);
  ASSERT_TRUE(out.ok());
  // Bit-exact double transport: memcmp, not approximate equality.
  EXPECT_EQ(std::memcmp(&out->progress, &resp.progress, sizeof(double)), 0);
  EXPECT_EQ(out->steps, resp.steps);
  EXPECT_EQ(out->done, resp.done);
}

TEST(WireCodecTest, ProgressAndCloseMessagesRoundTripBitExactly) {
  ProgressRequest preq;
  preq.session_id = ~0ull;
  auto pr = DecodeProgressRequest(
      MustDecodeOne(EncodeProgressRequest(preq)).payload);
  ASSERT_TRUE(pr.ok());
  EXPECT_EQ(pr->session_id, preq.session_id);

  ProgressResponse presp;
  presp.progress = 87.65;
  presp.done = 0;
  auto po = DecodeProgressResponse(
      MustDecodeOne(EncodeProgressResponse(presp)).payload);
  ASSERT_TRUE(po.ok());
  EXPECT_EQ(std::memcmp(&po->progress, &presp.progress, sizeof(double)), 0);
  EXPECT_EQ(po->done, presp.done);

  CloseRequest creq;
  creq.session_id = 9;
  auto cr =
      DecodeCloseRequest(MustDecodeOne(EncodeCloseRequest(creq)).payload);
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(cr->session_id, creq.session_id);

  WireFrame closed = MustDecodeOne(EncodeCloseResponse());
  EXPECT_EQ(closed.type, MsgType::kClose);
  EXPECT_TRUE(closed.payload.empty());
}

TEST(WireCodecTest, StatsMessagesRoundTripEveryField) {
  WireFrame req = MustDecodeOne(EncodeStatsRequest());
  EXPECT_EQ(req.type, MsgType::kStats);
  EXPECT_TRUE(req.payload.empty());

  WireStats stats;
  // Distinct values per field so a swapped encode/decode order cannot
  // cancel out.
  uint64_t v = 1000;
  for (uint64_t* field :
       {&stats.sessions_opened, &stats.sessions_completed, &stats.decisions,
        &stats.observations_scored, &stats.model_generation,
        &stats.connections_accepted, &stats.connections_closed,
        &stats.frames_received, &stats.frames_sent, &stats.bytes_received,
        &stats.bytes_sent, &stats.protocol_errors, &stats.io_errors,
        &stats.wire_sessions_opened, &stats.wire_sessions_closed,
        &stats.advance_steps, &stats.records_ingested,
        &stats.records_ingest_dropped, &stats.records_ingest_shed,
        &stats.requests_shed, &stats.ingest_pushed, &stats.ingest_dropped,
        &stats.ingest_drained, &stats.ingest_queue_size, &stats.retrains}) {
    *field = v++;
  }
  stats.p50_replay_ms = 1.5;
  stats.p95_replay_ms = 9.75;
  auto out =
      DecodeStatsResponse(MustDecodeOne(EncodeStatsResponse(stats)).payload);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::memcmp(&*out, &stats, sizeof(WireStats)), 0);
}

TEST(WireCodecTest, ErrorFramesCarryTheStatusAcrossTheWire) {
  const Status error = Status::NotFound("no open session 17");
  WireFrame frame = MustDecodeOne(EncodeErrorFrame(MsgType::kAdvance, error));
  EXPECT_EQ(frame.type, MsgType::kAdvance);
  EXPECT_FALSE(frame.ok());
  const Status back = frame.ToStatus();
  EXPECT_EQ(back.code(), error.code());
  EXPECT_EQ(back.message(), error.message());
  // Unknown status bytes must still come back as an error, never OK.
  frame.status = 0xEE;
  EXPECT_FALSE(frame.ToStatus().ok());
}

TEST(WireCodecTest, OneByteAtATimeReassemblesEveryFrame) {
  AdvanceRequest req;
  req.session_id = 77;
  req.max_steps = 5;
  std::string stream = EncodeOpenRequest({3}) + EncodeAdvanceRequest(req) +
                       EncodeStatsRequest() + EncodeCloseRequest({77});
  FrameDecoder decoder;
  std::vector<WireFrame> frames;
  for (char byte : stream) {
    decoder.Feed(&byte, 1);
    while (true) {
      WireFrame frame;
      auto next = decoder.Next(&frame);
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!*next) break;
      frames.push_back(std::move(frame));
    }
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].type, MsgType::kOpen);
  EXPECT_EQ(frames[1].type, MsgType::kAdvance);
  EXPECT_EQ(frames[2].type, MsgType::kStats);
  EXPECT_EQ(frames[3].type, MsgType::kClose);
  auto adv = DecodeAdvanceRequest(frames[1].payload);
  ASSERT_TRUE(adv.ok());
  EXPECT_EQ(adv->session_id, 77u);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(WireCodecTest, HostileHeadersAreRejectedWithStatus) {
  // Oversized length prefix: rejected at the header, before any payload
  // allocation.
  {
    FrameDecoder decoder;
    std::string hostile(kFrameHeaderBytes, '\0');
    const uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(hostile.data(), &huge, 4);
    hostile[4] = 1;  // valid type
    decoder.Feed(hostile);
    WireFrame frame;
    auto next = decoder.Next(&frame);
    EXPECT_FALSE(next.ok());
  }
  // Unknown message type.
  {
    FrameDecoder decoder;
    std::string hostile(kFrameHeaderBytes, '\0');
    hostile[4] = 9;
    decoder.Feed(hostile);
    WireFrame frame;
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
  // Nonzero reserved bits.
  {
    FrameDecoder decoder;
    std::string hostile(kFrameHeaderBytes, '\0');
    hostile[4] = 2;
    hostile[6] = 1;
    decoder.Feed(hostile);
    WireFrame frame;
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
  // A length exactly at the cap is structurally fine (payload validation
  // is the typed decoder's job) — header-level rejection must not
  // off-by-one it away.
  {
    FrameDecoder decoder;
    std::string frame_bytes =
        EncodeFrame(MsgType::kStats, 0, std::string(kMaxPayloadBytes, 'x'));
    decoder.Feed(frame_bytes);
    WireFrame frame;
    auto next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    EXPECT_TRUE(*next);
    EXPECT_EQ(frame.payload.size(), kMaxPayloadBytes);
  }
}

TEST(WireCodecTest, TypedDecodersRejectWrongSizes) {
  // Truncated payload.
  EXPECT_FALSE(DecodeOpenRequest("ab").ok());
  EXPECT_FALSE(DecodeAdvanceRequest("1234567").ok());
  EXPECT_FALSE(DecodeStatsResponse(std::string(10, '\0')).ok());
  // Trailing bytes are a protocol violation, not slack.
  EXPECT_FALSE(DecodeOpenRequest(std::string(5, '\0')).ok());
  EXPECT_FALSE(DecodeProgressRequest(std::string(9, '\0')).ok());
  // Zero-length where fields are required.
  EXPECT_FALSE(DecodeOpenRequest("").ok());
  EXPECT_FALSE(DecodeCloseRequest("").ok());
  // Advance step bounds: 0 and cap+1 rejected, cap accepted.
  AdvanceRequest req;
  req.max_steps = 0;
  {
    WireFrame f = MustDecodeOne(EncodeAdvanceRequest(req));
    EXPECT_FALSE(DecodeAdvanceRequest(f.payload).ok());
  }
  req.max_steps = kMaxAdvanceSteps + 1;
  {
    WireFrame f = MustDecodeOne(EncodeAdvanceRequest(req));
    EXPECT_FALSE(DecodeAdvanceRequest(f.payload).ok());
  }
  req.max_steps = kMaxAdvanceSteps;
  {
    WireFrame f = MustDecodeOne(EncodeAdvanceRequest(req));
    EXPECT_TRUE(DecodeAdvanceRequest(f.payload).ok());
  }
}

/// Field-by-field bit-exact comparison (memcmp on the doubles) — the
/// online loop replays ingested records, so any lossy transport would
/// silently skew training.
void ExpectRecordsBitIdentical(const PipelineRecord& got,
                               const PipelineRecord& want) {
  EXPECT_EQ(got.workload, want.workload);
  EXPECT_EQ(got.query, want.query);
  EXPECT_EQ(got.pipeline_id, want.pipeline_id);
  EXPECT_EQ(got.tag, want.tag);
  EXPECT_EQ(std::memcmp(&got.total_n, &want.total_n, sizeof(double)), 0);
  ASSERT_EQ(got.features.size(), want.features.size());
  ASSERT_EQ(got.l1.size(), want.l1.size());
  ASSERT_EQ(got.l2.size(), want.l2.size());
  EXPECT_EQ(std::memcmp(got.features.data(), want.features.data(),
                        want.features.size() * sizeof(double)),
            0);
  EXPECT_EQ(
      std::memcmp(got.l1.data(), want.l1.data(), want.l1.size() * sizeof(double)),
      0);
  EXPECT_EQ(
      std::memcmp(got.l2.data(), want.l2.data(), want.l2.size() * sizeof(double)),
      0);
}

TEST(WireCodecTest, IngestMessagesRoundTripBitExactly) {
  const std::vector<PipelineRecord> records = RandomRecords(3, 21);

  IngestRecordRequest single;
  single.record = records[0];
  single.record.workload = "loopback";
  single.record.query = "q-ingest";
  single.record.tag = "odd";
  WireFrame frame = MustDecodeOne(EncodeIngestRecordRequest(single));
  EXPECT_EQ(frame.type, MsgType::kIngestRecord);
  EXPECT_TRUE(frame.ok());
  auto decoded = DecodeIngestRecordRequest(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectRecordsBitIdentical(decoded->record, single.record);

  IngestBatchRequest batch;
  batch.records = records;
  frame = MustDecodeOne(EncodeIngestBatchRequest(batch));
  EXPECT_EQ(frame.type, MsgType::kIngestBatch);
  auto out = DecodeIngestBatchRequest(frame.payload);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->records.size(), batch.records.size());
  for (size_t i = 0; i < batch.records.size(); ++i) {
    ExpectRecordsBitIdentical(out->records[i], batch.records[i]);
  }

  IngestResponse resp;
  resp.accepted = 0xAABBCCDDu;
  resp.dropped = 0x11223344u;
  frame = MustDecodeOne(EncodeIngestResponse(MsgType::kIngestBatch, resp));
  EXPECT_EQ(frame.type, MsgType::kIngestBatch);
  auto ir = DecodeIngestResponse(frame.payload);
  ASSERT_TRUE(ir.ok());
  EXPECT_EQ(ir->accepted, resp.accepted);
  EXPECT_EQ(ir->dropped, resp.dropped);
}

TEST(WireCodecTest, IngestDecodersRejectHostileRecords) {
  const PipelineRecord valid = RandomRecords(1, 33)[0];
  IngestRecordRequest req;
  req.record = valid;
  const std::string good =
      MustDecodeOne(EncodeIngestRecordRequest(req)).payload;
  ASSERT_TRUE(DecodeIngestRecordRequest(good).ok());

  // Truncation anywhere in the record rejects — never a partial record.
  for (size_t cut : {size_t{0}, size_t{1}, good.size() / 2, good.size() - 1}) {
    EXPECT_FALSE(DecodeIngestRecordRequest(good.substr(0, cut)).ok())
        << "cut at " << cut;
  }
  // Trailing bytes are a protocol violation, not slack.
  EXPECT_FALSE(DecodeIngestRecordRequest(good + '\0').ok());

  // A string field over the per-string cap.
  req.record = valid;
  req.record.workload.assign(kMaxIngestStringBytes + 1, 'w');
  EXPECT_FALSE(
      DecodeIngestRecordRequest(
          MustDecodeOne(EncodeIngestRecordRequest(req)).payload)
          .ok());

  // Feature arity must match the schema exactly.
  req.record = valid;
  req.record.features.push_back(0.5);
  EXPECT_FALSE(
      DecodeIngestRecordRequest(
          MustDecodeOne(EncodeIngestRecordRequest(req)).payload)
          .ok());

  // Level-vector arity must match the estimator table exactly.
  req.record = valid;
  req.record.l1.pop_back();
  EXPECT_FALSE(
      DecodeIngestRecordRequest(
          MustDecodeOne(EncodeIngestRecordRequest(req)).payload)
          .ok());

  // Non-finite doubles never cross the wire into the trainer.
  req.record = valid;
  req.record.total_n = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(
      DecodeIngestRecordRequest(
          MustDecodeOne(EncodeIngestRecordRequest(req)).payload)
          .ok());
  req.record = valid;
  req.record.features[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      DecodeIngestRecordRequest(
          MustDecodeOne(EncodeIngestRecordRequest(req)).payload)
          .ok());
}

TEST(WireCodecTest, IngestBatchCountBoundsAreEnforced) {
  // count == 0: an empty batch is hostile, not a no-op.
  EXPECT_FALSE(DecodeIngestBatchRequest(std::string(4, '\0')).ok());

  // count over the batch cap rejects before any record is parsed.
  {
    std::string payload(4, '\0');
    const uint32_t over = kMaxIngestBatchRecords + 1;
    std::memcpy(payload.data(), &over, 4);
    EXPECT_FALSE(DecodeIngestBatchRequest(payload).ok());
  }

  // A count that lies about the record list in either direction rejects:
  // claiming more hits truncation, claiming fewer leaves trailing bytes.
  IngestBatchRequest batch;
  batch.records = RandomRecords(2, 5);
  std::string payload =
      MustDecodeOne(EncodeIngestBatchRequest(batch)).payload;
  ASSERT_TRUE(DecodeIngestBatchRequest(payload).ok());
  for (uint32_t lie : {3u, 1u}) {
    std::memcpy(payload.data(), &lie, 4);
    EXPECT_FALSE(DecodeIngestBatchRequest(payload).ok()) << "count " << lie;
  }
}

TEST(WireCodecTest, BusyErrorFramesMapToUnavailable) {
  WireFrame frame = MustDecodeOne(EncodeErrorFrame(
      MsgType::kIngestBatch, Status::Unavailable("server overloaded")));
  EXPECT_EQ(frame.type, MsgType::kIngestBatch);
  EXPECT_EQ(frame.status, kStatusBusy);
  EXPECT_FALSE(frame.ok());
  const Status back = frame.ToStatus();
  EXPECT_EQ(back.code(), StatusCode::kUnavailable);
  EXPECT_EQ(back.message(), "server overloaded");
}

TEST(WireCodecTest, DecoderCompactsItsBufferUnderSustainedTraffic) {
  // Push far more than the compaction threshold through one decoder; the
  // buffered tail must stay bounded by one frame, not grow with history.
  FrameDecoder decoder;
  const std::string frame_bytes = EncodeProgressRequest({123});
  for (int i = 0; i < 10000; ++i) {
    decoder.Feed(frame_bytes);
    WireFrame frame;
    auto next = decoder.Next(&frame);
    ASSERT_TRUE(next.ok() && *next);
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Loopback server

/// Minimal blocking client for the loopback tests (the production client
/// lives in tools/rpe_loadgen.cc; this one is deliberately tiny).
class TestClient {
 public:
  ~TestClient() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  bool SendRaw(std::string_view bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  Result<WireFrame> Receive() {
    while (true) {
      WireFrame frame;
      RPE_ASSIGN_OR_RETURN(bool complete, decoder_.Next(&frame));
      if (complete) return frame;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError("recv failed");
      }
      if (n == 0) return Status::IOError("server closed the connection");
      decoder_.Feed(chunk, static_cast<size_t>(n));
    }
  }

  Result<WireFrame> Call(const std::string& request) {
    if (!SendRaw(request)) return Status::IOError("send failed");
    return Receive();
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

SelectorStack TrainSmallStack(const std::vector<PipelineRecord>& records,
                              uint64_t seed) {
  MartParams params;
  params.num_trees = 10;
  params.tree.max_leaves = 8;
  params.seed = seed;
  return SelectorStack::Train(records, PoolOriginalThree(), params);
}

class WireLoopbackTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = MakeSmallCatalog().release();
    runs_ = new std::vector<QueryRunResult>();
    plans_ = new std::vector<std::unique_ptr<PhysicalPlan>>();
    AddRun(MakeTableScan("t_fact"));
    AddRun(MakeHashJoin(MakeTableScan("t_dim"), MakeTableScan("t_fact"), 0,
                        1));
    AddRun(MakeFilter(MakeTableScan("t_fact"), Predicate::Le(2, 25)));
    stack_ = std::make_shared<const SelectorStack>(
        TrainSmallStack(RandomRecords(80, 11), 7));
  }
  static void TearDownTestSuite() {
    delete runs_;
    delete plans_;
    delete catalog_;
    stack_.reset();
    runs_ = nullptr;
    plans_ = nullptr;
    catalog_ = nullptr;
  }

  static void AnnotateEstimates(PlanNode* node, double est) {
    node->est_rows = est;
    for (auto& c : node->children) AnnotateEstimates(c.get(), est * 0.8);
  }

  static void AddRun(std::unique_ptr<PlanNode> root) {
    AnnotateEstimates(root.get(), 1000.0);
    auto plan = FinalizePlan(std::move(root), *catalog_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plans_->push_back(std::move(plan).ValueOrDie());
    auto result = ExecutePlan(*plans_->back(), *catalog_);
    ASSERT_TRUE(result.ok());
    runs_->push_back(std::move(result).ValueOrDie());
  }

  static std::vector<const QueryRunResult*> RunPtrs() {
    std::vector<const QueryRunResult*> out;
    for (const QueryRunResult& run : *runs_) out.push_back(&run);
    return out;
  }

  static Catalog* catalog_;
  static std::vector<QueryRunResult>* runs_;
  static std::vector<std::unique_ptr<PhysicalPlan>>* plans_;
  static std::shared_ptr<const SelectorStack> stack_;
};

Catalog* WireLoopbackTest::catalog_ = nullptr;
std::vector<QueryRunResult>* WireLoopbackTest::runs_ = nullptr;
std::vector<std::unique_ptr<PhysicalPlan>>* WireLoopbackTest::plans_ =
    nullptr;
std::shared_ptr<const SelectorStack> WireLoopbackTest::stack_;

TEST_F(WireLoopbackTest, AdvanceOverTheWireIsBitIdenticalToInProcess) {
  ShardedMonitorService::Options options;
  options.num_shards = 4;
  ShardedMonitorService service(stack_, options);
  TcpServer::Options server_options;
  TcpServer server(&service, RunPtrs(), server_options);
  ASSERT_TRUE(server.Start().ok());

  // In-process reference: one MonitorService over the same stack, stepped
  // one observation at a time.
  MonitorService reference(stack_);

  for (size_t r = 0; r < runs_->size(); ++r) {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));

    auto opened_frame = client.Call(EncodeOpenRequest(
        {static_cast<uint32_t>(r)}));
    ASSERT_TRUE(opened_frame.ok()) << opened_frame.status().ToString();
    ASSERT_TRUE(opened_frame->ok()) << opened_frame->ToStatus().ToString();
    auto opened = DecodeOpenResponse(opened_frame->payload);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(opened->run_index, r);
    EXPECT_EQ(opened->num_observations, (*runs_)[r].observations.size());

    auto ref_id = reference.OpenSession(&(*runs_)[r]);
    ASSERT_TRUE(ref_id.ok());

    // Step both walks one observation at a time; every progress value
    // must match bit for bit.
    AdvanceRequest step;
    step.session_id = opened->session_id;
    step.max_steps = 1;
    for (size_t obs = 0; obs < (*runs_)[r].observations.size(); ++obs) {
      auto frame = client.Call(EncodeAdvanceRequest(step));
      ASSERT_TRUE(frame.ok() && frame->ok());
      auto advanced = DecodeAdvanceResponse(frame->payload);
      ASSERT_TRUE(advanced.ok());
      ASSERT_EQ(advanced->steps, 1u);
      auto expected = reference.Advance(*ref_id);
      ASSERT_TRUE(expected.ok());
      ASSERT_EQ(std::memcmp(&advanced->progress, &*expected,
                            sizeof(double)),
                0)
          << "run " << r << " observation " << obs
          << " diverges over the wire";
    }

    // Both sides are now exhausted: the wire advance reports done with 0
    // steps, the in-process advance returns OutOfRange.
    auto tail = client.Call(EncodeAdvanceRequest(step));
    ASSERT_TRUE(tail.ok() && tail->ok());
    auto done = DecodeAdvanceResponse(tail->payload);
    ASSERT_TRUE(done.ok());
    EXPECT_EQ(done->steps, 0u);
    EXPECT_EQ(done->done, 1);
    EXPECT_EQ(reference.Advance(*ref_id).status().code(),
              StatusCode::kOutOfRange);

    auto closed = client.Call(EncodeCloseRequest({opened->session_id}));
    ASSERT_TRUE(closed.ok() && closed->ok());
    ASSERT_TRUE(reference.CloseSession(*ref_id).ok());
  }
  server.Stop();
}

TEST_F(WireLoopbackTest, BatchedAdvanceMatchesSingleStepsAndReconciles) {
  ShardedMonitorService::Options options;
  options.num_shards = 4;
  ShardedMonitorService service(stack_, options);
  TcpServer::Options server_options;
  TcpServer server(&service, RunPtrs(), server_options);
  ASSERT_TRUE(server.Start().ok());

  ProgressMonitor sequential(&stack_->static_selector,
                             &stack_->dynamic_selector);
  const auto expected = sequential.ReplayQueryProgress((*runs_)[0]);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  auto opened_frame = client.Call(EncodeOpenRequest({0}));
  ASSERT_TRUE(opened_frame.ok() && opened_frame->ok());
  auto opened = DecodeOpenResponse(opened_frame->payload);
  ASSERT_TRUE(opened.ok());

  // One big batched advance must land exactly at the end of the replay
  // with the final progress value of the sequential walk.
  AdvanceRequest big;
  big.session_id = opened->session_id;
  big.max_steps = kMaxAdvanceSteps;
  auto frame = client.Call(EncodeAdvanceRequest(big));
  ASSERT_TRUE(frame.ok() && frame->ok());
  auto advanced = DecodeAdvanceResponse(frame->payload);
  ASSERT_TRUE(advanced.ok());
  EXPECT_EQ(advanced->steps, expected.size());
  EXPECT_EQ(advanced->done, 1);
  EXPECT_EQ(std::memcmp(&advanced->progress, &expected.back(),
                        sizeof(double)),
            0);

  // Progress re-reads the resting value without stepping.
  auto progress_frame =
      client.Call(EncodeProgressRequest({opened->session_id}));
  ASSERT_TRUE(progress_frame.ok() && progress_frame->ok());
  auto progress = DecodeProgressResponse(progress_frame->payload);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->done, 1);

  auto closed = client.Call(EncodeCloseRequest({opened->session_id}));
  ASSERT_TRUE(closed.ok() && closed->ok());

  // Stats over the wire reconcile exactly with what this client did.
  auto stats_frame = client.Call(EncodeStatsRequest());
  ASSERT_TRUE(stats_frame.ok() && stats_frame->ok());
  auto stats = DecodeStatsResponse(stats_frame->payload);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sessions_opened, 1u);
  EXPECT_EQ(stats->sessions_completed, 1u);
  EXPECT_EQ(stats->wire_sessions_opened, 1u);
  EXPECT_EQ(stats->wire_sessions_closed, 1u);
  EXPECT_EQ(stats->observations_scored, expected.size());
  EXPECT_EQ(stats->advance_steps, expected.size());
  server.Stop();
}

TEST_F(WireLoopbackTest, ConcurrentClientsAcrossShardsStayIsolated) {
  ShardedMonitorService::Options options;
  options.num_shards = 4;
  ShardedMonitorService service(stack_, options);
  TcpServer::Options server_options;
  TcpServer server(&service, RunPtrs(), server_options);
  ASSERT_TRUE(server.Start().ok());

  // Per-run reference series, computed once.
  ProgressMonitor sequential(&stack_->static_selector,
                             &stack_->dynamic_selector);
  std::vector<std::vector<double>> reference;
  for (const QueryRunResult& run : *runs_) {
    reference.push_back(sequential.ReplayQueryProgress(run));
  }

  constexpr size_t kClients = 8;
  constexpr size_t kSessionsPerClient = 4;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client;
      if (!client.Connect(server.port())) {
        ++failures;
        return;
      }
      for (size_t s = 0; s < kSessionsPerClient; ++s) {
        const size_t r = (c + s) % runs_->size();
        auto opened_frame =
            client.Call(EncodeOpenRequest({static_cast<uint32_t>(r)}));
        if (!opened_frame.ok() || !opened_frame->ok()) {
          ++failures;
          return;
        }
        auto opened = DecodeOpenResponse(opened_frame->payload);
        AdvanceRequest step;
        step.session_id = opened->session_id;
        step.max_steps = 7;  // uneven batches interleave across clients
        size_t taken = 0;
        while (true) {
          auto frame = client.Call(EncodeAdvanceRequest(step));
          if (!frame.ok() || !frame->ok()) {
            ++failures;
            return;
          }
          auto advanced = DecodeAdvanceResponse(frame->payload);
          taken += advanced->steps;
          if (advanced->done != 0) {
            // The final progress of every interleaved session must match
            // its sequential reference bit for bit.
            if (taken != reference[r].size() ||
                std::memcmp(&advanced->progress, &reference[r].back(),
                            sizeof(double)) != 0) {
              ++failures;
            }
            break;
          }
        }
        auto closed =
            client.Call(EncodeCloseRequest({opened->session_id}));
        if (!closed.ok() || !closed->ok()) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);

  const TcpServerStats stats = server.GetStats();
  EXPECT_EQ(stats.wire_sessions_opened, kClients * kSessionsPerClient);
  EXPECT_EQ(stats.wire_sessions_closed, kClients * kSessionsPerClient);
  EXPECT_EQ(stats.protocol_errors, 0u);
  server.Stop();
}

TEST_F(WireLoopbackTest, GarbageStreamsAreRejectedWithoutKillingTheServer) {
  ShardedMonitorService::Options options;
  options.num_shards = 2;
  ShardedMonitorService service(stack_, options);
  TcpServer::Options server_options;
  TcpServer server(&service, RunPtrs(), server_options);
  ASSERT_TRUE(server.Start().ok());

  // A stream of garbage bytes: the server answers with an error frame
  // and/or drops the connection — either way it keeps serving.
  {
    TestClient hostile;
    ASSERT_TRUE(hostile.Connect(server.port()));
    std::string garbage(256, '\xFF');
    ASSERT_TRUE(hostile.SendRaw(garbage));
    auto frame = hostile.Receive();
    // Either an error frame arrived before the drop, or the drop itself.
    if (frame.ok()) {
      EXPECT_FALSE(frame->ok());
    }
  }
  // Unknown session ids come back as clean error frames on a live
  // connection.
  {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    auto frame = client.Call(EncodeAdvanceRequest({999999, 4}));
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_FALSE(frame->ok());
    EXPECT_EQ(frame->ToStatus().code(), StatusCode::kNotFound);
    // The same connection still works for a real session afterwards.
    auto opened_frame = client.Call(EncodeOpenRequest({0}));
    ASSERT_TRUE(opened_frame.ok() && opened_frame->ok());
    auto opened = DecodeOpenResponse(opened_frame->payload);
    auto closed = client.Call(EncodeCloseRequest({opened->session_id}));
    ASSERT_TRUE(closed.ok() && closed->ok());
  }
  const TcpServerStats stats = server.GetStats();
  EXPECT_GE(stats.protocol_errors, 1u);
  server.Stop();
}

TEST_F(WireLoopbackTest, AbruptDisconnectClosesTheSessionsServerSide) {
  ShardedMonitorService::Options options;
  options.num_shards = 2;
  ShardedMonitorService service(stack_, options);
  TcpServer::Options server_options;
  TcpServer server(&service, RunPtrs(), server_options);
  ASSERT_TRUE(server.Start().ok());

  {
    TestClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    auto opened_frame = client.Call(EncodeOpenRequest({0}));
    ASSERT_TRUE(opened_frame.ok() && opened_frame->ok());
    // Drop the connection with the session still open.
  }
  // The server notices the hangup and closes the orphaned session; poll
  // briefly (hangup delivery is asynchronous).
  for (int i = 0; i < 200 && service.num_open_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(service.num_open_sessions(), 0u);
  const TcpServerStats stats = server.GetStats();
  EXPECT_EQ(stats.wire_sessions_opened, 1u);
  EXPECT_EQ(stats.wire_sessions_closed, 1u);
  server.Stop();
}

TEST_F(WireLoopbackTest, StopDrainsAndStartStopIsIdempotent) {
  ShardedMonitorService::Options options;
  options.num_shards = 2;
  ShardedMonitorService service(stack_, options);
  TcpServer::Options server_options;
  TcpServer server(&service, RunPtrs(), server_options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(server.port(), 0);
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  auto frame = client.Call(EncodeStatsRequest());
  ASSERT_TRUE(frame.ok() && frame->ok());
  server.Stop();
  server.Stop();  // idempotent
  // After Stop, the port no longer accepts connections.
  TestClient late;
  EXPECT_FALSE(late.Connect(server.port()));
}

}  // namespace
}  // namespace rpe
