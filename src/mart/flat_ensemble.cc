#include "mart/flat_ensemble.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/simd.h"

#if defined(__x86_64__)
#define RPE_BATCH_AVX2 1
#include <immintrin.h>
#endif

namespace rpe {
namespace flat_internal {

NodeStore::Emitted NodeStore::EmitSubtree(
    const std::vector<RegressionTree::Node>& nodes, int old_idx,
    double learning_rate) {
  const RegressionTree::Node& n = nodes[static_cast<size_t>(old_idx)];
  const int32_t my = static_cast<int32_t>(topo.size());
  if (n.feature < 0) {
    // x <= NaN is false for every x (including -inf and NaN), so the walk
    // always takes `right`, which points back at the leaf itself: the
    // cursor parks here for the rest of a fixed-depth walk.
    topo.vec().push_back(PackTopo(0, 0));
    split.vec().push_back(std::numeric_limits<double>::quiet_NaN());
    leaf.vec().push_back(learning_rate * n.value);
    return {my, 0};
  }
  RPE_CHECK_LT(n.feature, 1 << kFeatureBits);
  topo.vec().push_back(0);  // patched below once the right child is known
  split.vec().push_back(n.threshold);
  leaf.vec().push_back(0.0);
  const Emitted left = EmitSubtree(nodes, n.left, learning_rate);
  const Emitted right_child = EmitSubtree(nodes, n.right, learning_rate);
  // The delta must fit the topo word's upper bits (trees beyond ~2M
  // nodes would silently corrupt the walk otherwise).
  RPE_CHECK_LT(right_child.slot - my, 1 << (31 - kFeatureBits));
  topo.vec()[static_cast<size_t>(my)] =
      PackTopo(n.feature, right_child.slot - my);
  return {my, 1 + std::max(left.depth, right_child.depth)};
}

int32_t NodeStore::EmitTree(const RegressionTree& tree,
                            double learning_rate) {
  Emitted emitted;
  if (tree.nodes().empty()) {
    // MartModel sums lr * 0.0 for an empty tree; emit that as a leaf.
    emitted.slot = static_cast<int32_t>(topo.size());
    emitted.depth = 0;
    topo.vec().push_back(PackTopo(0, 0));
    split.vec().push_back(std::numeric_limits<double>::quiet_NaN());
    leaf.vec().push_back(learning_rate * 0.0);
  } else {
    emitted = EmitSubtree(tree.nodes(), 0, learning_rate);
  }
  roots.vec().push_back(emitted.slot);
  depth.vec().push_back(emitted.depth);
  return emitted.slot;
}

void NodeStore::ScheduleRange(size_t t0, size_t t1) {
  RPE_CHECK_EQ(sched.size(), t0);  // ranges are scheduled back to back
  std::vector<int32_t>& order = sched.vec();
  order.resize(t1);
  for (size_t b = t0; b < t1; b += kBlock) {
    const size_t e = std::min(t1, b + kBlock);
    std::iota(order.begin() + static_cast<ptrdiff_t>(b),
              order.begin() + static_cast<ptrdiff_t>(e),
              static_cast<int32_t>(b));
    // Stable depth sort inside the block: the 8-chain walk groups get
    // trees of similar depth, so no chain idles in a parked leaf while a
    // lone deep tree finishes.
    std::stable_sort(order.begin() + static_cast<ptrdiff_t>(b),
                     order.begin() + static_cast<ptrdiff_t>(e),
                     [this](int32_t a, int32_t b2) {
                       return depth[static_cast<size_t>(a)] <
                              depth[static_cast<size_t>(b2)];
                     });
  }
}

namespace {

/// One walk step: one 4-byte topo load yields both the feature id and the
/// right-child distance; the split load and the (dependent) feature
/// gather complete the step. Compiles to a conditional move — no
/// data-dependent branch.
inline int32_t Step(const double* __restrict x,
                    const int32_t* __restrict topo,
                    const double* __restrict split, int32_t idx) {
  const int32_t packed = topo[idx];
  const int32_t feat = packed & ((1 << NodeStore::kFeatureBits) - 1);
  const int32_t right = idx + (packed >> NodeStore::kFeatureBits);
  return x[feat] <= split[idx] ? idx + 1 : right;
}

}  // namespace

double NodeStore::Score(const double* __restrict x, size_t t0, size_t t1,
                        double init) const {
  const int32_t* __restrict tp = topo.data();
  const double* __restrict sp = split.data();
  const double* __restrict lv = leaf.data();
  const int32_t* __restrict sc = sched.data();
  double f = init;
  // Per block: walk in depth-sorted order, park leaf values in a block
  // buffer, then accumulate in original tree order — the sum runs
  // bias-first, tree 0, 1, 2, … exactly like MartModel::Predict, so the
  // result bits don't depend on the walk schedule. Eight trees walk
  // concurrently: eight independent load→compare→step chains overlap in
  // the pipeline, where a single chain would stall on every node fetch.
  for (size_t b = t0; b < t1; b += kBlock) {
    const size_t e = std::min(t1, b + kBlock);
    // While this block walks (~tens of cycles per chain round), pull the
    // next block's root nodes into cache: their addresses are known now,
    // and the walk would otherwise start with eight serial misses.
    const size_t prefetch_end = std::min(t1, b + 2 * kBlock);
    for (size_t k = e; k < prefetch_end; ++k) {
      const int32_t r = roots[static_cast<size_t>(sc[k])];
      __builtin_prefetch(&tp[r], 0, 1);
      __builtin_prefetch(&sp[r], 0, 1);
    }
    double vals[kBlock];
    size_t t = b;
    for (; t + 8 <= e; t += 8) {
      const int32_t T0 = sc[t], T1 = sc[t + 1], T2 = sc[t + 2],
                    T3 = sc[t + 3], T4 = sc[t + 4], T5 = sc[t + 5],
                    T6 = sc[t + 6], T7 = sc[t + 7];
      int32_t c0 = roots[T0], c1 = roots[T1], c2 = roots[T2],
              c3 = roots[T3], c4 = roots[T4], c5 = roots[T5],
              c6 = roots[T6], c7 = roots[T7];
      // Depth-sorted within the block: the group's max is the last tree.
      // Best-first trees are unbalanced, so a typical root→leaf path is
      // much shorter than the max depth; once every cursor is parked in a
      // self-looping leaf (nothing moved this step), the group is done.
      const int32_t steps = depth[T7];
      for (int32_t s = 0; s < steps; ++s) {
        const int32_t n0 = Step(x, tp, sp, c0);
        const int32_t n1 = Step(x, tp, sp, c1);
        const int32_t n2 = Step(x, tp, sp, c2);
        const int32_t n3 = Step(x, tp, sp, c3);
        const int32_t n4 = Step(x, tp, sp, c4);
        const int32_t n5 = Step(x, tp, sp, c5);
        const int32_t n6 = Step(x, tp, sp, c6);
        const int32_t n7 = Step(x, tp, sp, c7);
        const int32_t moved = (n0 ^ c0) | (n1 ^ c1) | (n2 ^ c2) |
                              (n3 ^ c3) | (n4 ^ c4) | (n5 ^ c5) |
                              (n6 ^ c6) | (n7 ^ c7);
        c0 = n0;
        c1 = n1;
        c2 = n2;
        c3 = n3;
        c4 = n4;
        c5 = n5;
        c6 = n6;
        c7 = n7;
        if (moved == 0) break;
      }
      vals[T0 - b] = lv[c0];
      vals[T1 - b] = lv[c1];
      vals[T2 - b] = lv[c2];
      vals[T3 - b] = lv[c3];
      vals[T4 - b] = lv[c4];
      vals[T5 - b] = lv[c5];
      vals[T6 - b] = lv[c6];
      vals[T7 - b] = lv[c7];
    }
    for (; t < e; ++t) {
      const int32_t tree = sc[t];
      int32_t c = roots[tree];
      const int32_t steps = depth[tree];
      for (int32_t s = 0; s < steps; ++s) {
        const int32_t n = Step(x, tp, sp, c);
        if (n == c) break;  // parked in a leaf
        c = n;
      }
      vals[tree - b] = lv[c];
    }
    for (size_t k = b; k < e; ++k) f += vals[k - b];
  }
  return f;
}

namespace {

/// One split node during QuickScorer table construction.
struct QsRawEntry {
  int32_t feature;
  double threshold;
  int32_t tree;
  uint64_t mask;
};

/// Leaf bookkeeping for one tree during QuickScorer table construction:
/// DFS left-first so leaf j is the j-th leaf in left-to-right order, and
/// each interior node's left subtree covers a contiguous leaf range.
struct QsTreeBuilder {
  const std::vector<RegressionTree::Node>* nodes;
  std::vector<QsRawEntry>* entries;
  std::vector<double>* leaf_value;
  int32_t tree_id;
  int32_t next_leaf = 0;

  /// Returns the leaf range [first, last) of the subtree at old_idx.
  std::pair<int32_t, int32_t> Walk(int old_idx, double learning_rate) {
    const RegressionTree::Node& n = (*nodes)[static_cast<size_t>(old_idx)];
    if (n.feature < 0) {
      leaf_value->push_back(learning_rate * n.value);
      const int32_t j = next_leaf++;
      return {j, j + 1};
    }
    const auto left = Walk(n.left, learning_rate);
    const auto right = Walk(n.right, learning_rate);
    // A false node (x > threshold) abandons its left subtree: the mask
    // clears that contiguous leaf range.
    const int32_t width = left.second - left.first;
    const uint64_t left_bits =
        (width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1)
        << left.first;
    entries->push_back({n.feature, n.threshold, tree_id, ~left_bits});
    return {left.first, right.second};
  }
};

/// Sort raw entries into (feature, ascending threshold) order and fill
/// the parallel feat_begin/threshold/entry_tree/entry_mask tables — the
/// shared tail of the per-model and merged QuickScorer builds.
template <typename Table>
void FillEntryTables(std::vector<QsRawEntry>* entries, Table* out) {
  // Threshold ties need no particular order: x > threshold fires all or
  // none, and mask ANDs commute.
  std::stable_sort(entries->begin(), entries->end(),
                   [](const QsRawEntry& a, const QsRawEntry& b) {
                     return a.feature != b.feature
                                ? a.feature < b.feature
                                : a.threshold < b.threshold;
                   });
  out->feat_begin.vec().assign(static_cast<size_t>(out->num_features) + 1, 0);
  out->threshold.vec().reserve(entries->size());
  out->entry_tree.vec().reserve(entries->size());
  out->entry_mask.vec().reserve(entries->size());
  for (const QsRawEntry& entry : *entries) {
    out->feat_begin.vec()[static_cast<size_t>(entry.feature) + 1]++;
    out->threshold.vec().push_back(entry.threshold);
    out->entry_tree.vec().push_back(entry.tree);
    out->entry_mask.vec().push_back(entry.mask);
  }
  for (size_t f = 1; f < out->feat_begin.size(); ++f) {
    out->feat_begin.vec()[f] += out->feat_begin[f - 1];
  }
}

}  // namespace

QuickScorerModel QuickScorerModel::Build(const MartModel& model) {
  QuickScorerModel qs;
  qs.bias = model.bias();
  qs.num_trees = static_cast<int32_t>(model.num_trees());
  for (const RegressionTree& tree : model.trees()) {
    if (tree.num_leaves() > 64) return qs;  // usable stays false
    for (const auto& n : tree.nodes()) {
      qs.num_features = std::max(qs.num_features, n.feature + 1);
    }
  }

  std::vector<QsRawEntry> entries;
  for (int32_t t = 0; t < qs.num_trees; ++t) {
    const RegressionTree& tree = model.trees()[static_cast<size_t>(t)];
    qs.leaf_base.vec().push_back(static_cast<int32_t>(qs.leaf_value.size()));
    QsTreeBuilder builder{&tree.nodes(), &entries, &qs.leaf_value.vec(), t};
    if (tree.nodes().empty()) {
      // MartModel sums lr * 0.0 for an empty tree: one constant leaf.
      qs.leaf_value.vec().push_back(model.learning_rate() * 0.0);
      builder.next_leaf = 1;
    } else {
      builder.Walk(0, model.learning_rate());
    }
    qs.init_mask.vec().push_back(
        builder.next_leaf >= 64 ? ~uint64_t{0}
                                : (uint64_t{1} << builder.next_leaf) - 1);
  }

  FillEntryTables(&entries, &qs);
  qs.usable = true;
  return qs;
}

double QuickScorerModel::Score(const double* __restrict x,
                               std::vector<uint64_t>* bits_scratch) const {
  std::vector<uint64_t>& bits = *bits_scratch;
  bits.assign(init_mask.begin(), init_mask.end());
  const double* __restrict thr = threshold.data();
  const int32_t* __restrict tr = entry_tree.data();
  const uint64_t* __restrict mk = entry_mask.data();
  for (int32_t f = 0; f < num_features; ++f) {
    const size_t end = feat_begin[static_cast<size_t>(f) + 1];
    size_t k = feat_begin[static_cast<size_t>(f)];
    const double xf = x[f];
    if (std::isnan(xf)) {
      // The tree walk sends NaN right at every node (x <= t is false),
      // so every node of this feature is a false node.
      for (; k < end; ++k) bits[static_cast<size_t>(tr[k])] &= mk[k];
      continue;
    }
    // Ascending thresholds: once xf <= thr[k] the walk would go left at
    // this and every later node of this feature — stop.
    for (; k < end && xf > thr[k]; ++k) {
      bits[static_cast<size_t>(tr[k])] &= mk[k];
    }
  }
  double f = bias;
  const int32_t* __restrict lb = leaf_base.data();
  const double* __restrict lv = leaf_value.data();
  for (int32_t t = 0; t < num_trees; ++t) {
    // The exit leaf is the lowest surviving bit (leaves left of it were
    // cleared by a false node on the exit path; see header comment).
    f += lv[lb[t] + std::countr_zero(bits[static_cast<size_t>(t)])];
  }
  return f;
}

MergedQuickScorer MergedQuickScorer::Build(
    const std::vector<QuickScorerModel>& models) {
  MergedQuickScorer merged;
  for (const QuickScorerModel& qs : models) {
    if (!qs.usable) return merged;  // usable stays false
    merged.num_features = std::max(merged.num_features, qs.num_features);
  }

  merged.model_tree_begin.vec().push_back(0);
  for (const QuickScorerModel& qs : models) {
    const int32_t leaf_off = static_cast<int32_t>(merged.leaf_value.size());
    merged.bias.vec().push_back(qs.bias);
    merged.init_mask.vec().insert(merged.init_mask.vec().end(),
                                  qs.init_mask.begin(), qs.init_mask.end());
    for (int32_t lb : qs.leaf_base) {
      merged.leaf_base.vec().push_back(leaf_off + lb);
    }
    merged.leaf_value.vec().insert(merged.leaf_value.vec().end(),
                                   qs.leaf_value.begin(),
                                   qs.leaf_value.end());
    merged.model_tree_begin.vec().push_back(merged.model_tree_begin.back() +
                                            qs.num_trees);
  }

  // Re-sort every model's (already feature-grouped) entries into one
  // global (feature, ascending threshold) order with global tree ids.
  std::vector<QsRawEntry> entries;
  for (size_t m = 0; m < models.size(); ++m) {
    const QuickScorerModel& qs = models[m];
    const int32_t tree_off = merged.model_tree_begin[m];
    for (int32_t f = 0; f < qs.num_features; ++f) {
      for (size_t k = qs.feat_begin[static_cast<size_t>(f)];
           k < qs.feat_begin[static_cast<size_t>(f) + 1]; ++k) {
        entries.push_back(
            {f, qs.threshold[k], tree_off + qs.entry_tree[k],
             qs.entry_mask[k]});
      }
    }
  }
  FillEntryTables(&entries, &merged);
  merged.usable = true;
  return merged;
}

void MergedQuickScorer::ScoreAll(const double* __restrict x,
                                 std::vector<uint64_t>* bits_scratch,
                                 std::span<double> out) const {
  std::vector<uint64_t>& bits = *bits_scratch;
  bits.assign(init_mask.begin(), init_mask.end());
  const double* __restrict thr = threshold.data();
  const int32_t* __restrict tr = entry_tree.data();
  const uint64_t* __restrict mk = entry_mask.data();
  // The shared feature loop: x[f] is loaded and NaN-tested once for every
  // model of the set; the merged ascending-threshold list preserves each
  // model's early exit (a model's entries past its own cut simply never
  // satisfy xf > thr).
  for (int32_t f = 0; f < num_features; ++f) {
    const size_t end = feat_begin[static_cast<size_t>(f) + 1];
    size_t k = feat_begin[static_cast<size_t>(f)];
    const double xf = x[f];
    if (std::isnan(xf)) {
      // The tree walk sends NaN right at every node (x <= t is false),
      // so every node of this feature is a false node — in every model.
      for (; k < end; ++k) bits[static_cast<size_t>(tr[k])] &= mk[k];
      continue;
    }
    for (; k < end && xf > thr[k]; ++k) {
      bits[static_cast<size_t>(tr[k])] &= mk[k];
    }
  }
  const int32_t* __restrict lb = leaf_base.data();
  const double* __restrict lv = leaf_value.data();
  for (size_t m = 0; m + 1 < model_tree_begin.size(); ++m) {
    double f = bias[m];
    for (int32_t t = model_tree_begin[m]; t < model_tree_begin[m + 1]; ++t) {
      f += lv[lb[t] +
              std::countr_zero(bits[static_cast<size_t>(t)])];
    }
    out[m] = f;
  }
}

namespace {

/// Scalar reference for the batch path: ScoreAll row by row. The vector
/// kernel must match this bit-for-bit on every input.
void BatchScoreScalar(const MergedQuickScorer& qs,
                      std::span<const double* const> rows,
                      MergedQuickScorer::BatchScratch* scratch,
                      std::span<double> out) {
  const size_t stride = qs.bias.size();
  for (size_t r = 0; r < rows.size(); ++r) {
    qs.ScoreAll(rows[r], &scratch->row_bits,
                out.subspan(r * stride, stride));
  }
}

#ifdef RPE_BATCH_AVX2

/// One full tile of kBatchRows rows, all lanes at once: the feature tile
/// is transposed into SoA form, each tree's leaf bitvector is replicated
/// per lane (bits[t * kBatchRows + lane]), and the entry scan runs the
/// threshold compare and mask AND across all lanes per entry. Per lane
/// exactly the entries with x[f] > thr fire — NaN lanes are handled by
/// the scalar rule (every entry of the feature fires) and then parked at
/// -inf so the vector compares never fire for them — and the tile exits a
/// feature once no lane compares above the (ascending) threshold, the
/// batch form of the scalar early exit. Leaf values then accumulate per
/// lane in ScoreAll's exact order (bias first, trees ascending), so every
/// output double is bit-identical to the per-row path.
__attribute__((target("avx2"))) void ScoreTile8Avx2(
    const MergedQuickScorer& qs, const double* const* rows,
    MergedQuickScorer::BatchScratch* s, double* out) {
  constexpr size_t kRows = MergedQuickScorer::kBatchRows;
  const size_t nf = static_cast<size_t>(qs.num_features);
  const size_t num_trees = qs.init_mask.size();
  const size_t num_models = qs.bias.size();
  s->x.resize(nf * kRows);
  s->bits.resize(num_trees * kRows);
  double* __restrict x = s->x.data();
  uint64_t* __restrict bits = s->bits.data();
  for (size_t r = 0; r < kRows; ++r) {
    const double* __restrict src = rows[r];
    for (size_t f = 0; f < nf; ++f) x[f * kRows + r] = src[f];
  }
  for (size_t t = 0; t < num_trees; ++t) {
    const __m256i init =
        _mm256_set1_epi64x(static_cast<long long>(qs.init_mask[t]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(bits + t * kRows), init);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(bits + t * kRows + 4),
                        init);
  }
  const double* __restrict thr = qs.threshold.data();
  const int32_t* __restrict tr = qs.entry_tree.data();
  const uint64_t* __restrict mk = qs.entry_mask.data();
  const __m256i ones = _mm256_set1_epi64x(-1);
  for (size_t f = 0; f < nf; ++f) {
    const size_t k0 = qs.feat_begin[f];
    const size_t k1 = qs.feat_begin[f + 1];
    if (k0 == k1) continue;
    __m256d x0 = _mm256_loadu_pd(x + f * kRows);
    __m256d x1 = _mm256_loadu_pd(x + f * kRows + 4);
    const __m256d nan0 = _mm256_cmp_pd(x0, x0, _CMP_UNORD_Q);
    const __m256d nan1 = _mm256_cmp_pd(x1, x1, _CMP_UNORD_Q);
    const unsigned nan_lanes =
        static_cast<unsigned>(_mm256_movemask_pd(nan0)) |
        static_cast<unsigned>(_mm256_movemask_pd(nan1)) << 4;
    if (nan_lanes != 0) {
      // The tree walk sends NaN right at every node, so for a NaN lane
      // every entry of this feature fires (the ScoreAll NaN rule).
      for (size_t k = k0; k < k1; ++k) {
        uint64_t* b = bits + static_cast<size_t>(tr[k]) * kRows;
        for (unsigned l = nan_lanes; l != 0; l &= l - 1) {
          b[std::countr_zero(l)] &= mk[k];
        }
      }
      if (nan_lanes == 0xFFu) continue;
      // Park NaN lanes at -inf: x > thr is false for every threshold, so
      // the entry scan below never fires them again.
      const __m256d ninf =
          _mm256_set1_pd(-std::numeric_limits<double>::infinity());
      x0 = _mm256_blendv_pd(x0, ninf, nan0);
      x1 = _mm256_blendv_pd(x1, ninf, nan1);
    }
    for (size_t k = k0; k < k1; ++k) {
      const __m256d thr_v = _mm256_set1_pd(thr[k]);
      const __m256i c0 =
          _mm256_castpd_si256(_mm256_cmp_pd(x0, thr_v, _CMP_GT_OQ));
      const __m256i c1 =
          _mm256_castpd_si256(_mm256_cmp_pd(x1, thr_v, _CMP_GT_OQ));
      // Ascending thresholds: once no lane exceeds thr[k] none exceeds
      // any later threshold of this feature — the whole tile exits, the
      // batch form of ScoreAll's early exit (validated for borrowed
      // tables by CheckQuickScorerTables).
      if (_mm256_testz_si256(c0, c0) && _mm256_testz_si256(c1, c1)) break;
      const __m256i mkv =
          _mm256_set1_epi64x(static_cast<long long>(mk[k]));
      // Fired lanes AND with the entry mask, unfired lanes with ~0 (a
      // no-op): eff = mask | ~cmp.
      const __m256i eff0 = _mm256_or_si256(mkv, _mm256_xor_si256(c0, ones));
      const __m256i eff1 = _mm256_or_si256(mkv, _mm256_xor_si256(c1, ones));
      uint64_t* b = bits + static_cast<size_t>(tr[k]) * kRows;
      const __m256i b0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
      const __m256i b1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b),
                          _mm256_and_si256(b0, eff0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + 4),
                          _mm256_and_si256(b1, eff1));
    }
  }
  const int32_t* __restrict lb = qs.leaf_base.data();
  const double* __restrict lv = qs.leaf_value.data();
  const int32_t* __restrict mtb = qs.model_tree_begin.data();
  for (size_t m = 0; m + 1 < qs.model_tree_begin.size(); ++m) {
    double acc[kRows];
    for (size_t r = 0; r < kRows; ++r) acc[r] = qs.bias[m];
    for (int32_t t = mtb[m]; t < mtb[m + 1]; ++t) {
      const uint64_t* b = bits + static_cast<size_t>(t) * kRows;
      const int32_t base = lb[t];
      for (size_t r = 0; r < kRows; ++r) {
        acc[r] += lv[base + std::countr_zero(b[r])];
      }
    }
    for (size_t r = 0; r < kRows; ++r) out[r * num_models + m] = acc[r];
  }
}

void BatchScoreAvx2(const MergedQuickScorer& qs,
                    std::span<const double* const> rows,
                    MergedQuickScorer::BatchScratch* scratch,
                    std::span<double> out) {
  constexpr size_t kRows = MergedQuickScorer::kBatchRows;
  const size_t stride = qs.bias.size();
  size_t r = 0;
  for (; r + kRows <= rows.size(); r += kRows) {
    ScoreTile8Avx2(qs, rows.data() + r, scratch, out.data() + r * stride);
  }
  // Tail rows (< one tile) take the per-row path — same bits either way.
  for (; r < rows.size(); ++r) {
    qs.ScoreAll(rows[r], &scratch->row_bits,
                out.subspan(r * stride, stride));
  }
}

#endif  // RPE_BATCH_AVX2

using BatchScoreFn = void (*)(const MergedQuickScorer&,
                              std::span<const double* const>,
                              MergedQuickScorer::BatchScratch*,
                              std::span<double>);

std::atomic<BatchScoreFn> g_batch_score{&BatchScoreScalar};

const char* BindBatchScore(simd::Tier tier) {
#ifdef RPE_BATCH_AVX2
  if (tier >= simd::Tier::kAvx2) {
    g_batch_score.store(&BatchScoreAvx2, std::memory_order_relaxed);
    return "avx2";
  }
#else
  (void)tier;
#endif
  g_batch_score.store(&BatchScoreScalar, std::memory_order_relaxed);
  return "scalar";
}

const simd::internal::KernelRegistrar kBatchScoreRegistrar("batch_score",
                                                           &BindBatchScore);

}  // namespace

void MergedQuickScorer::PredictAllBatch(std::span<const double* const> rows,
                                        BatchScratch* scratch,
                                        std::span<double> out) const {
  RPE_CHECK_EQ(out.size(), rows.size() * bias.size());
  g_batch_score.load(std::memory_order_relaxed)(*this, rows, scratch, out);
}

}  // namespace flat_internal

FlatEnsemble FlatEnsemble::Compile(const MartModel& model) {
  FlatEnsemble flat;
  flat.bias_ = model.bias();
  flat.store_.roots.vec().reserve(model.num_trees());
  flat.store_.depth.vec().reserve(model.num_trees());
  for (const RegressionTree& tree : model.trees()) {
    flat.store_.EmitTree(tree, model.learning_rate());
  }
  flat.store_.ScheduleRange(0, model.num_trees());
  return flat;
}

double FlatEnsemble::Predict(std::span<const double> features) const {
  return store_.Score(features.data(), 0, num_trees(), bias_);
}

void FlatEnsemble::PredictBatch(const Dataset& data,
                                std::span<double> out) const {
  RPE_CHECK_EQ(out.size(), data.num_examples());
  for (size_t i = 0; i < out.size(); ++i) out[i] = bias_;
  // Tile over tree blocks small enough to stay cache-resident across the
  // whole batch; every row still accumulates trees in ascending order
  // (bias first), so each out[i] is bitwise equal to Predict(row i).
  const size_t nt = num_trees();
  for (size_t t0 = 0; t0 < nt; t0 += flat_internal::NodeStore::kBlock) {
    const size_t t1 = std::min(nt, t0 + flat_internal::NodeStore::kBlock);
    for (size_t i = 0; i < out.size(); ++i) {
      out[i] = store_.Score(data.ExampleSpan(i).data(), t0, t1, out[i]);
    }
  }
}

FlatEnsembleSet FlatEnsembleSet::Compile(const std::vector<MartModel>& models) {
  FlatEnsembleSet set;
  set.bias_.vec().reserve(models.size());
  set.tree_begin_.vec().reserve(models.size() + 1);
  set.tree_begin_.vec().push_back(0);
  for (const MartModel& model : models) {
    set.bias_.vec().push_back(model.bias());
    for (const RegressionTree& tree : model.trees()) {
      set.store_.EmitTree(tree, model.learning_rate());
    }
    set.store_.ScheduleRange(static_cast<size_t>(set.tree_begin_.back()),
                             set.store_.roots.size());
    set.tree_begin_.vec().push_back(set.store_.roots.size());
    set.qs_.push_back(flat_internal::QuickScorerModel::Build(model));
  }
  set.merged_ = flat_internal::MergedQuickScorer::Build(set.qs_);
  return set;
}

namespace {

Status FlatInvalid(const std::string& what) {
  return Status::InvalidArgument("flat snapshot section: " + what);
}

/// Shared checks for a QuickScorer table (per-model or merged): entry
/// lists consistent with feat_begin, tree ids in [0, num_trees), and
/// every reachable leaf index inside leaf_value. `leaf_value` must carry
/// the writer's 64-slot guard tail: a hostile mask set can clear a tree's
/// whole bitvector, and countr_zero(0) == 64 then indexes leaf_base + 64
/// — inside the guard, never past the slab.
template <typename Table>
Status CheckQuickScorerTables(const Table& t, int32_t num_trees,
                              size_t num_inputs, const char* what) {
  const std::string where(what);
  if (t.num_features < 0 ||
      static_cast<size_t>(t.num_features) > num_inputs) {
    return FlatInvalid(where + " feature count out of range");
  }
  if (num_trees < 0 ||
      t.init_mask.size() != static_cast<size_t>(num_trees) ||
      t.leaf_base.size() != static_cast<size_t>(num_trees)) {
    return FlatInvalid(where + " per-tree table sizes disagree");
  }
  if (t.feat_begin.size() != static_cast<size_t>(t.num_features) + 1 ||
      (t.feat_begin.size() > 0 && t.feat_begin[0] != 0)) {
    return FlatInvalid(where + " feat_begin shape");
  }
  for (size_t f = 1; f < t.feat_begin.size(); ++f) {
    if (t.feat_begin[f] < t.feat_begin[f - 1]) {
      return FlatInvalid(where + " feat_begin not nondecreasing");
    }
  }
  const size_t entries = t.threshold.size();
  if (t.entry_tree.size() != entries || t.entry_mask.size() != entries ||
      (t.feat_begin.size() > 0 && t.feat_begin.back() != entries)) {
    return FlatInvalid(where + " entry table sizes disagree");
  }
  for (size_t k = 0; k < entries; ++k) {
    if (t.entry_tree[k] < 0 || t.entry_tree[k] >= num_trees) {
      return FlatInvalid(where + " entry tree id out of range");
    }
  }
  // Both scoring paths early-exit a feature's entry list at the first
  // threshold the value does not exceed (ScoreAll per row, the batch
  // kernel per tile); that is only equivalent to scanning every entry —
  // and only tier-independent — when each feature's thresholds ascend and
  // none is NaN. Compiled tables satisfy this by construction; borrowed
  // snapshot tables must prove it here.
  for (size_t f = 0; f + 1 < t.feat_begin.size(); ++f) {
    for (size_t k = t.feat_begin[f]; k < t.feat_begin[f + 1]; ++k) {
      if (std::isnan(t.threshold[k]) ||
          (k > t.feat_begin[f] && t.threshold[k] < t.threshold[k - 1])) {
        return FlatInvalid(where + " entry thresholds not ascending");
      }
    }
  }
  for (int32_t tr = 0; tr < num_trees; ++tr) {
    const int32_t lb = t.leaf_base[static_cast<size_t>(tr)];
    if (t.init_mask[static_cast<size_t>(tr)] == 0 || lb < 0 ||
        static_cast<size_t>(lb) + 65 > t.leaf_value.size()) {
      return FlatInvalid(where + " leaf table out of range");
    }
  }
  return Status::OK();
}

Status CheckNodeStore(const flat_internal::NodeStore& store,
                      size_t num_inputs) {
  const size_t num_trees = store.roots.size();
  const size_t num_nodes = store.topo.size();
  if (store.depth.size() != num_trees || store.sched.size() != num_trees ||
      store.split.size() != num_nodes || store.leaf.size() != num_nodes) {
    return FlatInvalid("node store slab sizes disagree");
  }
  if (num_nodes > 0 && num_inputs == 0) {
    return FlatInvalid("node store with zero-width inputs");
  }
  for (size_t t = 0; t < num_trees; ++t) {
    if (store.roots[t] < 0 ||
        static_cast<size_t>(store.roots[t]) >= num_nodes ||
        store.depth[t] < 0 ||
        static_cast<size_t>(store.depth[t]) > num_nodes) {
      return FlatInvalid("tree root or depth out of range");
    }
  }
  constexpr int32_t kFeatureMask =
      (1 << flat_internal::NodeStore::kFeatureBits) - 1;
  for (size_t i = 0; i < num_nodes; ++i) {
    const int32_t packed = store.topo[i];
    const int32_t delta = packed >> flat_internal::NodeStore::kFeatureBits;
    const int32_t feature = packed & kFeatureMask;
    if (packed < 0 || static_cast<size_t>(feature) >= num_inputs) {
      return FlatInvalid("node feature out of range");
    }
    if (delta == 0) {
      // A leaf must park: a finite split would let the walk step to
      // slot i + 1, which may not exist.
      if (!std::isnan(store.split[i])) {
        return FlatInvalid("leaf node with a finite split");
      }
    } else if (i + static_cast<size_t>(delta) >= num_nodes) {
      return FlatInvalid("right-child delta past the node store");
    }
  }
  return Status::OK();
}

/// The walk schedule must be a permutation of each kBlock-aligned block
/// of each model's tree range — Score scatters leaf values with
/// vals[sched[t] - block_base], so anything else indexes off the block
/// buffer.
Status CheckSchedule(const flat_internal::NodeStore& store,
                     const Slab<uint64_t>& tree_begin) {
  constexpr size_t kBlock = flat_internal::NodeStore::kBlock;
  bool seen[kBlock];
  for (size_t m = 0; m + 1 < tree_begin.size(); ++m) {
    const size_t t0 = tree_begin[m];
    const size_t t1 = tree_begin[m + 1];
    for (size_t b = t0; b < t1; b += kBlock) {
      const size_t e = std::min(t1, b + kBlock);
      std::fill(seen, seen + (e - b), false);
      for (size_t t = b; t < e; ++t) {
        const int32_t tree = store.sched[t];
        if (tree < 0 || static_cast<size_t>(tree) < b ||
            static_cast<size_t>(tree) >= e ||
            seen[static_cast<size_t>(tree) - b]) {
          return FlatInvalid("walk schedule is not a per-block permutation");
        }
        seen[static_cast<size_t>(tree) - b] = true;
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<FlatEnsembleSet> FlatEnsembleSet::FromParts(Parts parts,
                                                   size_t num_inputs) {
  const size_t num_models = parts.bias.size();
  if (parts.tree_begin.size() != num_models + 1 || parts.tree_begin[0] != 0) {
    return FlatInvalid("tree_begin shape");
  }
  for (size_t m = 0; m < num_models; ++m) {
    if (parts.tree_begin[m + 1] < parts.tree_begin[m]) {
      return FlatInvalid("tree_begin not nondecreasing");
    }
  }
  if (parts.tree_begin.back() != parts.store.roots.size()) {
    return FlatInvalid("tree_begin does not cover the node store");
  }
  RPE_RETURN_NOT_OK(CheckNodeStore(parts.store, num_inputs));
  RPE_RETURN_NOT_OK(CheckSchedule(parts.store, parts.tree_begin));
  if (parts.qs.size() != num_models) {
    return FlatInvalid("per-model QuickScorer count disagrees");
  }
  for (const flat_internal::QuickScorerModel& qs : parts.qs) {
    if (!qs.usable) continue;
    RPE_RETURN_NOT_OK(CheckQuickScorerTables(qs, qs.num_trees, num_inputs,
                                             "per-model QuickScorer"));
  }
  if (parts.merged.usable) {
    const auto& merged = parts.merged;
    if (merged.model_tree_begin.size() != num_models + 1 ||
        merged.bias.size() != num_models ||
        (num_models > 0 && merged.model_tree_begin[0] != 0)) {
      return FlatInvalid("merged model table shape");
    }
    for (size_t m = 0; m < num_models; ++m) {
      if (merged.model_tree_begin[m + 1] < merged.model_tree_begin[m]) {
        return FlatInvalid("merged model_tree_begin not nondecreasing");
      }
    }
    const int32_t total_trees =
        num_models > 0 ? merged.model_tree_begin.back() : 0;
    RPE_RETURN_NOT_OK(CheckQuickScorerTables(merged, total_trees, num_inputs,
                                             "merged QuickScorer"));
  }
  FlatEnsembleSet set;
  set.bias_ = std::move(parts.bias);
  set.tree_begin_ = std::move(parts.tree_begin);
  set.store_ = std::move(parts.store);
  set.qs_ = std::move(parts.qs);
  set.merged_ = std::move(parts.merged);
  return set;
}

double FlatEnsembleSet::ScoreModel(size_t m, const double* x) const {
  if (qs_[m].usable) {
    // Thread-local scratch keeps the hot path allocation-free after the
    // first call on each thread.
    static thread_local std::vector<uint64_t> bits;
    return qs_[m].Score(x, &bits);
  }
  return store_.Score(x, static_cast<size_t>(tree_begin_[m]),
                      static_cast<size_t>(tree_begin_[m + 1]), bias_[m]);
}

void FlatEnsembleSet::PredictAll(std::span<const double> features,
                                 std::span<double> out) const {
  RPE_CHECK_EQ(out.size(), num_models());
  if (merged_.usable) {
    static thread_local std::vector<uint64_t> bits;
    merged_.ScoreAll(features.data(), &bits, out);
    return;
  }
  for (size_t m = 0; m < out.size(); ++m) {
    out[m] = ScoreModel(m, features.data());
  }
}

void FlatEnsembleSet::PredictAllBatch(std::span<const double* const> rows,
                                      std::span<double> out) const {
  RPE_CHECK_EQ(out.size(), rows.size() * num_models());
  if (merged_.usable) {
    static thread_local flat_internal::MergedQuickScorer::BatchScratch
        scratch;
    merged_.PredictAllBatch(rows, &scratch, out);
    return;
  }
  // No merged tables (node-walk fallback models): per-row, the exact
  // PredictAll loop.
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t m = 0; m < num_models(); ++m) {
      out[r * num_models() + m] = ScoreModel(m, rows[r]);
    }
  }
}

void FlatEnsembleSet::ArgMinBatch(std::span<const double* const> rows,
                                  std::span<size_t> out) const {
  RPE_CHECK_EQ(out.size(), rows.size());
  RPE_CHECK_GT(num_models(), 0u);
  if (rows.empty()) return;
  static thread_local std::vector<double> scores;
  scores.resize(rows.size() * num_models());
  PredictAllBatch(rows, scores);
  for (size_t r = 0; r < rows.size(); ++r) {
    const double* row = scores.data() + r * num_models();
    size_t best = 0;
    for (size_t m = 1; m < num_models(); ++m) {
      if (row[m] < row[best]) best = m;
    }
    out[r] = best;
  }
}

size_t FlatEnsembleSet::ArgMin(std::span<const double> features) const {
  RPE_CHECK_GT(num_models(), 0u);
  if (merged_.usable) {
    static thread_local std::vector<double> scores;
    scores.resize(num_models());
    PredictAll(features, scores);
    size_t best = 0;
    for (size_t m = 1; m < scores.size(); ++m) {
      if (scores[m] < scores[best]) best = m;
    }
    return best;
  }
  size_t best = 0;
  double best_value = ScoreModel(0, features.data());
  for (size_t m = 1; m < num_models(); ++m) {
    const double v = ScoreModel(m, features.data());
    if (v < best_value) {
      best_value = v;
      best = m;
    }
  }
  return best;
}

}  // namespace rpe
