// Resolves output schemas, marks nested-loop-inner subtrees, and validates
// operator parameters before execution. Must run once on every plan prior
// to ExecutePlan (the planner calls it automatically).
#pragma once

#include "common/status.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace rpe {

/// Fill `output_schema` and `nlj_inner` on every node; validate column
/// references, index availability and child arity.
Status ResolvePlanSchemas(PlanNode* node, const Catalog& catalog,
                          bool nlj_inner = false);

}  // namespace rpe
