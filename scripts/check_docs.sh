#!/usr/bin/env bash
# Docs gate (run by the CI docs job, usable locally):
#   1. every relative markdown link in docs/*.md and README.md resolves
#      to an existing file,
#   2. every `rpe_cli <subcommand>` documented in docs/CLI.md exists in
#      the built binary's --help output, and
#   3. every code symbol docs/TRAINING.md, docs/SERVING.md,
#      docs/ROBUSTNESS.md, docs/NETWORK.md and docs/CLI.md reference in
#      backticks still exists somewhere under src/ (or bench/, tests/,
#      tools/ for bench rows, test files and CLI flags) — the guides
#      must not drift from the code.
#
# usage: scripts/check_docs.sh [path/to/rpe_cli]
set -u

cd "$(dirname "$0")/.."
RPE_CLI="${1:-./build/rpe_cli}"
failures=0

# --- 1. internal links -----------------------------------------------------
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  # Markdown inline links: capture the (target) part, strip anchors.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | \#*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "BROKEN LINK: $doc -> $target"
      failures=$((failures + 1))
    fi
  done < <(grep -oE '\[[^]]+\]\([^)]+\)' "$doc" | sed -E 's/^\[[^]]+\]\(([^)]+)\)$/\1/')
done

# --- 2. documented subcommands exist ---------------------------------------
if [ ! -x "$RPE_CLI" ]; then
  echo "rpe_cli binary not found/executable at $RPE_CLI"
  exit 1
fi
help_output=$("$RPE_CLI" --help)
commands=$(grep -oE '^### `rpe_cli [a-z-]+`' docs/CLI.md |
  sed -E 's/^### `rpe_cli ([a-z-]+)`$/\1/')
if [ -z "$commands" ]; then
  # Guard against the gate passing vacuously after a heading reformat.
  echo "NO SUBCOMMANDS EXTRACTED from docs/CLI.md (expected '### \`rpe_cli <cmd>\`' headings)"
  failures=$((failures + 1))
fi
while IFS= read -r cmd; do
  [ -z "$cmd" ] && continue
  if ! printf '%s\n' "$help_output" | grep -qE "^  $cmd( |\$)"; then
    echo "UNDOCUMENTED-IN-BINARY: docs/CLI.md names subcommand '$cmd' but rpe_cli --help does not list it"
    failures=$((failures + 1))
  fi
done <<EOF
$commands
EOF

# --- 3. guide symbols still exist ------------------------------------------
# Backticked tokens that look like code symbols — qualified names
# (`Class::Member`), CamelCase identifiers, or k-prefixed constants — must
# appear somewhere in the sources. Lowercase/prose tokens are skipped.
for guide in docs/TRAINING.md docs/SERVING.md docs/ROBUSTNESS.md \
  docs/NETWORK.md docs/BENCHMARKS.md docs/CLI.md docs/OBSERVABILITY.md; do
  [ -f "$guide" ] || continue
  symbols=$(grep -oE '`[A-Za-z_][A-Za-z0-9_:()]*`' "$guide" |
    tr -d '\`' | sed 's/()$//' | sort -u)
  checked=0
  while IFS= read -r sym; do
    [ -z "$sym" ] && continue
    case "$sym" in
      *::*) ;;                # qualified name: check its last component
      k[A-Z]*) ;;             # constant
      [A-Z]*[a-z]*) ;;        # CamelCase type/function/bench row
      *) continue ;;          # prose-ish token
    esac
    checked=$((checked + 1))
    base="${sym##*::}"
    if ! grep -rqF "$base" src/ bench/ tests/ tools/; then
      echo "STALE SYMBOL: $guide references '$sym' but '$base' is not in src/, bench/, tests/ or tools/"
      failures=$((failures + 1))
    fi
  done <<EOF
$symbols
EOF
  if [ "$checked" -eq 0 ]; then
    # Guard against the gate passing vacuously after a formatting change.
    echo "NO SYMBOLS EXTRACTED from $guide (expected backticked identifiers)"
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "check_docs: $failures failure(s)"
  exit 1
fi
echo "check_docs: links resolve, documented subcommands exist, guide symbols are live"
