// Deterministic pseudo-random generation used by all data / workload
// generators. A fixed-seed xoshiro-style engine keeps every experiment
// reproducible across runs and platforms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rpe {

/// \brief Fast deterministic 64-bit PRNG (splitmix64-seeded xorshift128+).
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t Next();
  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUInt(uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Standard normal via Box-Muller.
  double NextGaussian();
  /// Bernoulli(p).
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

/// \brief Zipfian distribution over {1..n} with parameter z, matching the
/// Microsoft TPC-D/H skew generator referenced by the paper ([1]): z = 0 is
/// uniform, z = 1 classic Zipf, z = 2 heavily skewed. Sampling is O(log n)
/// via a precomputed CDF.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double z);

  /// Draw a value in [1, n].
  uint64_t Next(Rng* rng) const;

  uint64_t n() const { return n_; }
  double z() const { return z_; }

  /// Probability mass of value v (1-based).
  double Pmf(uint64_t v) const;

 private:
  uint64_t n_;
  double z_;
  std::vector<double> cdf_;  // cdf_[i] = P(value <= i+1)
};

}  // namespace rpe
