// The estimator-selection model (paper §4.1): one MART error-regressor per
// candidate estimator; at selection time the candidate with the smallest
// predicted error wins. Supports static-only feature mode (choice before
// execution) and static+dynamic mode (choice revised at the 20% driver
// marker), and arbitrary candidate pools (e.g. {DNE, TGN, LUO} vs. the full
// six of Figure 5).
#pragma once

#include <vector>

#include "mart/mart.h"
#include "selection/record.h"

namespace rpe {

/// \brief Trained selection model.
class EstimatorSelector {
 public:
  /// \param pool indices into SelectableEstimators() order of the candidate
  ///   estimators the selector may choose between.
  /// \param use_dynamic_features train on the full feature vector (static +
  ///   dynamic) rather than the static prefix only.
  static EstimatorSelector Train(const std::vector<PipelineRecord>& records,
                                 std::vector<size_t> pool,
                                 bool use_dynamic_features,
                                 const MartParams& params = DefaultParams());

  /// Paper training setup: M = 200 boosting iterations, 30-leaf trees.
  static MartParams DefaultParams();

  /// Predicted L1 error per pool candidate (pool order).
  std::vector<double> PredictErrors(
      const std::vector<double>& features) const;

  /// Index into SelectableEstimators order of the chosen estimator.
  size_t Select(const std::vector<double>& features) const;

  /// Chosen estimator for a record (uses its stored features).
  size_t SelectForRecord(const PipelineRecord& record) const;

  const std::vector<size_t>& pool() const { return pool_; }
  bool uses_dynamic_features() const { return use_dynamic_; }
  const std::vector<MartModel>& models() const { return models_; }

  /// Aggregate split-gain importance across the per-estimator models,
  /// indexed by feature (full schema indices).
  std::vector<double> FeatureImportance() const;

 private:
  std::vector<double> ProjectFeatures(
      const std::vector<double>& features) const;

  std::vector<size_t> pool_;
  bool use_dynamic_ = false;
  size_t num_inputs_ = 0;
  std::vector<MartModel> models_;  // one per pool entry
};

/// Convenience pools.
std::vector<size_t> PoolOriginalThree();  ///< DNE, TGN, LUO
std::vector<size_t> PoolSix();            ///< + BATCHDNE, DNESEEK, TGNINT
std::vector<size_t> PoolAll();            ///< all eight (incl. SAFE, PMAX)

}  // namespace rpe
