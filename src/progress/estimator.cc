#include "progress/estimator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rpe {

const char* EstimatorName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kDne: return "DNE";
    case EstimatorKind::kTgn: return "TGN";
    case EstimatorKind::kLuo: return "LUO";
    case EstimatorKind::kSafe: return "SAFE";
    case EstimatorKind::kPmax: return "PMAX";
    case EstimatorKind::kBatchDne: return "BATCHDNE";
    case EstimatorKind::kDneSeek: return "DNESEEK";
    case EstimatorKind::kTgnInt: return "TGNINT";
    case EstimatorKind::kOracleGetNext: return "ORACLE_GN";
    case EstimatorKind::kOracleBytes: return "ORACLE_BYTES";
  }
  return "UNKNOWN";
}

double PipelineView::Elapsed(size_t oi) const {
  return std::max(0.0, obs(oi).vtime - pipeline->start_time);
}

double PipelineView::TrueProgress(size_t oi) const {
  const double span = pipeline->end_time - pipeline->start_time;
  if (span <= 0.0) return 1.0;
  return std::clamp(Elapsed(oi) / span, 0.0, 1.0);
}

double SumK(const Observation& obs, const std::vector<int>& nodes) {
  double s = 0.0;
  for (int id : nodes) s += obs.k[static_cast<size_t>(id)];
  return s;
}

double SumE(const Observation& obs, const std::vector<int>& nodes) {
  double s = 0.0;
  for (int id : nodes) s += obs.e[static_cast<size_t>(id)];
  return s;
}

double SumLb(const Observation& obs, const std::vector<int>& nodes) {
  double s = 0.0;
  for (int id : nodes) s += obs.lb[static_cast<size_t>(id)];
  return s;
}

double SumUb(const Observation& obs, const std::vector<int>& nodes) {
  double s = 0.0;
  for (int id : nodes) {
    s += std::min(obs.ub[static_cast<size_t>(id)], kCardinalityInf);
  }
  return s;
}

std::vector<int> DriversPlus(const PipelineView& view, OpType extra) {
  std::vector<int> nodes = view.pipeline->driver_nodes;
  for (int id : view.pipeline->nodes) {
    if (view.node(id)->op == extra && !view.pipeline->IsDriver(id)) {
      nodes.push_back(id);
    }
  }
  return nodes;
}

namespace {

double Clamp01(double v) {
  if (std::isnan(v)) return 0.0;
  return std::clamp(v, 0.0, 1.0);
}

/// Fraction ΣK / ΣE over a node set (the DNE family, Eq. 4/6/7).
double CounterFraction(const Observation& obs, const std::vector<int>& nodes) {
  const double k = SumK(obs, nodes);
  const double e = SumE(obs, nodes);
  if (e <= 0.0) return k > 0.0 ? 1.0 : 0.0;
  return Clamp01(k / e);
}

class DneEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kDne; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    return CounterFraction(view.obs(oi), view.pipeline->driver_nodes);
  }
};

class TgnEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kTgn; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    return CounterFraction(view.obs(oi), view.pipeline->nodes);
  }
};

class BatchDneEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kBatchDne; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    return CounterFraction(view.obs(oi),
                           DriversPlus(view, OpType::kBatchSort));
  }
};

class DneSeekEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kDneSeek; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    return CounterFraction(view.obs(oi),
                           DriversPlus(view, OpType::kIndexSeek));
  }
};

/// TGN with the interpolation-based cardinality refinement of [13] (Eq. 8):
/// the total is ΣK plus the un-consumed fraction of the original estimates.
class TgnIntEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kTgnInt; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    const Observation& obs = view.obs(oi);
    const double k = SumK(obs, view.pipeline->nodes);
    const double e = SumE(obs, view.pipeline->nodes);
    const double alpha =
        CounterFraction(obs, view.pipeline->driver_nodes);  // = DNE_Pj
    const double denom = k + (1.0 - alpha) * e;
    if (denom <= 0.0) return 0.0;
    return Clamp01(k / denom);
  }
};

/// PMAX: most pessimistic progress consistent with the cardinality bounds,
/// ΣK / ΣUB. Ratio error bounded by the per-tuple fan-out µ ([5]).
class PmaxEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kPmax; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    const Observation& obs = view.obs(oi);
    const double k = SumK(obs, view.pipeline->nodes);
    const double ub = SumUb(obs, view.pipeline->nodes);
    if (ub <= 0.0) return 0.0;
    return Clamp01(k / ub);
  }
};

/// SAFE: worst-case-optimal for the ratio error — the geometric mean of the
/// lowest and highest progress consistent with the bounds ([5]).
class SafeEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kSafe; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    const Observation& obs = view.obs(oi);
    const double k = SumK(obs, view.pipeline->nodes);
    const double ub = SumUb(obs, view.pipeline->nodes);
    const double lb = std::max(SumLb(obs, view.pipeline->nodes), 1.0);
    if (ub <= 0.0 || k <= 0.0) return 0.0;
    const double lo = Clamp01(k / ub);
    const double hi = Clamp01(k / lb);
    return Clamp01(std::sqrt(lo * hi));
  }
};

/// LUO ([13]): bytes processed at the dominant inputs plus pipeline output,
/// converted to remaining time via the recently observed processing speed.
class LuoEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kLuo; }

  double Estimate(const PipelineView& view, size_t oi) const override {
    const Observation& obs = view.obs(oi);
    const double done = DoneBytes(view, obs);
    const double total = TotalBytesEstimate(view, obs);
    if (total <= 0.0) return 0.0;
    const double byte_fraction = Clamp01(done / total);

    // Speed over the trailing ~quarter of the pipeline window so far.
    const double elapsed = view.Elapsed(oi);
    if (elapsed <= 0.0) return byte_fraction;
    const double lookback_start = obs.vtime - std::max(elapsed * 0.25, 1.0);
    size_t j = oi;
    while (j > 0 &&
           static_cast<int>(j) > view.pipeline->first_obs &&
           view.obs(j - 1).vtime >= lookback_start) {
      --j;
    }
    const double dt = obs.vtime - view.obs(j).vtime;
    const double db = done - DoneBytes(view, view.obs(j));
    if (dt <= 0.0 || db <= 0.0) return byte_fraction;
    const double speed = db / dt;
    const double remaining = std::max(0.0, total - done) / speed;
    return Clamp01(elapsed / (elapsed + remaining));
  }

 private:
  double DoneBytes(const PipelineView& view, const Observation& obs) const {
    double done = 0.0;
    for (int id : view.pipeline->driver_nodes) {
      done += obs.bytes_read[static_cast<size_t>(id)];
    }
    const size_t sink = static_cast<size_t>(view.pipeline->sink);
    if (!view.pipeline->IsDriver(view.pipeline->sink)) {
      done += obs.bytes_read[sink];
    }
    done += obs.bytes_written[sink];
    return done;
  }

  double TotalBytesEstimate(const PipelineView& view,
                            const Observation& obs) const {
    double total = 0.0;
    for (int id : view.pipeline->driver_nodes) {
      const double width = static_cast<double>(
          view.node(id)->output_schema.row_width_bytes());
      total += obs.e[static_cast<size_t>(id)] * width;
    }
    if (!view.pipeline->IsDriver(view.pipeline->sink)) {
      const double width = static_cast<double>(
          view.node(view.pipeline->sink)->output_schema.row_width_bytes());
      total += obs.e[static_cast<size_t>(view.pipeline->sink)] * width;
    }
    // Already-written spill bytes are part of the work done and total.
    total += obs.bytes_written[static_cast<size_t>(view.pipeline->sink)];
    return total;
  }
};

/// §6.7: the GetNext model with exact cardinalities — ΣK(t) / ΣN.
class OracleGetNextEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override {
    return EstimatorKind::kOracleGetNext;
  }
  double Estimate(const PipelineView& view, size_t oi) const override {
    const Observation& obs = view.obs(oi);
    double k = 0.0, n = 0.0;
    for (int id : view.pipeline->nodes) {
      k += obs.k[static_cast<size_t>(id)];
      n += view.run->true_n[static_cast<size_t>(id)];
    }
    if (n <= 0.0) return 1.0;
    return Clamp01(k / n);
  }
};

/// §6.7: the bytes-processed model of [13] with exact byte totals.
class OracleBytesEstimator : public ProgressEstimator {
 public:
  EstimatorKind kind() const override { return EstimatorKind::kOracleBytes; }
  double Estimate(const PipelineView& view, size_t oi) const override {
    const Observation& obs = view.obs(oi);
    double done = 0.0, total = 0.0;
    for (int id : view.pipeline->driver_nodes) {
      const size_t i = static_cast<size_t>(id);
      done += obs.bytes_read[i];
      total += view.run->final_bytes_read[i];
    }
    const size_t sink = static_cast<size_t>(view.pipeline->sink);
    if (!view.pipeline->IsDriver(view.pipeline->sink)) {
      done += obs.bytes_read[sink];
      total += view.run->final_bytes_read[sink];
    }
    done += obs.bytes_written[sink];
    total += view.run->final_bytes_written[sink];
    if (total <= 0.0) return 1.0;
    return Clamp01(done / total);
  }
};

}  // namespace

const ProgressEstimator& GetEstimator(EstimatorKind kind) {
  static const DneEstimator dne;
  static const TgnEstimator tgn;
  static const LuoEstimator luo;
  static const SafeEstimator safe;
  static const PmaxEstimator pmax;
  static const BatchDneEstimator batch_dne;
  static const DneSeekEstimator dne_seek;
  static const TgnIntEstimator tgn_int;
  static const OracleGetNextEstimator oracle_gn;
  static const OracleBytesEstimator oracle_bytes;
  switch (kind) {
    case EstimatorKind::kDne: return dne;
    case EstimatorKind::kTgn: return tgn;
    case EstimatorKind::kLuo: return luo;
    case EstimatorKind::kSafe: return safe;
    case EstimatorKind::kPmax: return pmax;
    case EstimatorKind::kBatchDne: return batch_dne;
    case EstimatorKind::kDneSeek: return dne_seek;
    case EstimatorKind::kTgnInt: return tgn_int;
    case EstimatorKind::kOracleGetNext: return oracle_gn;
    case EstimatorKind::kOracleBytes: return oracle_bytes;
  }
  RPE_CHECK(false) << "unknown estimator kind";
  return dne;
}

const std::vector<const ProgressEstimator*>& SelectableEstimators() {
  static const std::vector<const ProgressEstimator*> kAll = [] {
    std::vector<const ProgressEstimator*> v;
    for (int i = 0; i < kNumSelectableEstimators; ++i) {
      v.push_back(&GetEstimator(static_cast<EstimatorKind>(i)));
    }
    return v;
  }();
  return kAll;
}

}  // namespace rpe
