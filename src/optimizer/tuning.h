// Physical-design configurations: named sets of secondary indexes applied
// to a catalog. Stands in for the paper's three Database Tuning Advisor
// configurations ("untuned" = integrity-constraint indexes only, "partially
// tuned" = half the recommended index budget, "fully tuned" = all
// recommendations) whose operator-mix impact Table 1 reports.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace rpe {

/// \brief Tuning levels used across the experiments.
enum class TuningLevel {
  kUntuned,
  kPartiallyTuned,
  kFullyTuned,
};

const char* TuningLevelName(TuningLevel level);

/// \brief One secondary index to create.
struct IndexSpec {
  std::string table;
  std::string column;
};

/// \brief A named physical design: the index set for one tuning level.
struct PhysicalDesign {
  std::string name;
  std::vector<IndexSpec> indexes;
};

/// Drop all current indexes and create the design's index set.
Status ApplyPhysicalDesign(Catalog* catalog, const PhysicalDesign& design);

}  // namespace rpe
