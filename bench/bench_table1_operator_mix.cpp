// Table 1: fraction of pipelines containing each operator type for TPC-H
// under the three physical designs. The physical design shifts the plan mix
// (more indexes -> more nested iteration / seeks / batch sorts), which is
// what makes the Table 3 sensitivity experiment challenging.
#include <iostream>

#include "bench/bench_util.h"

using namespace rpe;
using namespace rpe::bench;

namespace {

// Fraction of records (pipelines) whose Count_op feature is > 0.
double FractionWithOp(const std::vector<PipelineRecord>& records, OpType op) {
  if (records.empty()) return 0.0;
  size_t n = 0;
  for (const auto& r : records) {
    if (r.features[static_cast<size_t>(op) * 5] > 0.0) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(records.size());
}

}  // namespace

int main() {
  std::cout << "=== Table 1: % pipelines containing operator, per physical "
               "design (TPC-H) ===\n";
  const auto records = TpchVariantRecords("design");
  const auto untuned = FilterByTag(records, "untuned");
  const auto partial = FilterByTag(records, "partially");
  const auto full = FilterByTag(records, "fully");
  std::cout << "pipelines: untuned=" << untuned.size()
            << " partially=" << partial.size() << " fully=" << full.size()
            << "\n\n";

  const OpType ops[] = {OpType::kNestedLoopJoin, OpType::kMergeJoin,
                        OpType::kHashJoin,       OpType::kIndexSeek,
                        OpType::kBatchSort,      OpType::kStreamAggregate,
                        OpType::kHashAggregate,  OpType::kSort};
  TablePrinter table({"Operator", "not tuned", "partially tuned",
                      "fully tuned"});
  for (OpType op : ops) {
    table.AddRow({OpTypeName(op), TablePrinter::Pct(FractionWithOp(untuned, op)),
                  TablePrinter::Pct(FractionWithOp(partial, op)),
                  TablePrinter::Pct(FractionWithOp(full, op))});
  }
  table.Print();
  std::cout << "\nExpected shape (paper Table 1): index seeks and batch sorts\n"
               "increase sharply with tuning; merge joins decrease.\n";
  return 0;
}
