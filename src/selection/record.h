// PipelineRecord: one training/evaluation example for estimator selection —
// the features of one executed pipeline plus the measured error of every
// candidate estimator on it. Records serialize to CSV so expensive workload
// runs can be captured once and reused across experiments (the paper's
// "training data can be captured at low overhead in a running system",
// §6.4).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "progress/error.h"
#include "selection/features.h"

namespace rpe {

/// \brief One pipeline execution, featurized and labeled.
struct PipelineRecord {
  std::string workload;   ///< source workload label
  std::string query;      ///< query/template label
  int pipeline_id = 0;
  std::string tag;        ///< experiment dimension (skew/design/size bucket)
  double total_n = 0.0;   ///< true total GetNext calls in the pipeline
  std::vector<double> features;                 ///< full feature vector
  std::vector<double> l1;                       ///< per selectable estimator
  std::vector<double> l2;

  /// Index (into SelectableEstimators order) of the estimator with the
  /// smallest L1 error.
  size_t BestEstimator() const;
  double BestL1() const;
};

/// Featurize + evaluate all selectable estimators on one pipeline.
/// Returns false (skip) for degenerate pipelines with fewer than
/// `min_observations` samples in their activity window.
bool MakeRecord(const PipelineView& view, const std::string& workload,
                const std::string& query, const std::string& tag,
                PipelineRecord* out, size_t min_observations = 5);

/// CSV round-trip (header + one line per record).
std::string RecordsToCsv(const std::vector<PipelineRecord>& records);
Result<std::vector<PipelineRecord>> RecordsFromCsv(const std::string& csv);

Status SaveRecords(const std::vector<PipelineRecord>& records,
                   const std::string& path);
Result<std::vector<PipelineRecord>> LoadRecords(const std::string& path);

}  // namespace rpe
