// Shared execution state: the virtual clock, the per-node counter array,
// the observation sampler, and the online cardinality-refinement pass
// (paper §3.3, bound-based refinement of [6]).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "exec/counters.h"
#include "exec/plan.h"
#include "storage/catalog.h"

namespace rpe {

struct QueryRunResult;

/// \brief Executor knobs.
struct ExecOptions {
  /// Memory budget for blocking operators; exceeding it triggers the spill
  /// model (extra bytes written/read + extra GetNext calls, §3.1 (1)).
  double memory_limit_bytes = 2.0 * 1024 * 1024;
  /// Desired number of counter observations per query.
  int target_observations = 220;
  /// Hard cap; when reached, the sampler halves its resolution.
  int max_observations = 1200;
  /// Emission hook: invoked with the fully assembled run (observations,
  /// pipelines, ground truth) just before ExecutePlan returns — the tap
  /// the online-learning loop uses to capture training data from a
  /// running system. Called on the executing thread; must not throw. The
  /// referenced result is only valid for the duration of the call.
  std::function<void(const QueryRunResult&)> on_run_complete;
};

/// \brief Per-query execution state shared by all operators.
class ExecContext {
 public:
  ExecContext(const PhysicalPlan* plan, const Catalog* catalog,
              const ExecOptions& options);

  const Catalog& catalog() const { return *catalog_; }
  const ExecOptions& options() const { return options_; }
  const PhysicalPlan& plan() const { return *plan_; }

  NodeCounters& counters(int id) { return counters_[static_cast<size_t>(id)]; }
  const std::vector<NodeCounters>& all_counters() const { return counters_; }

  double vtime() const { return vtime_; }

  /// Advance the virtual clock; may take a counter observation.
  void Charge(double cost);
  /// Record `bytes` read at node `id` and charge read I/O time.
  void ChargeRead(int id, double bytes);
  /// Record `bytes` written at node `id` and charge write I/O time.
  void ChargeWrite(int id, double bytes);
  /// Account one produced row at node `id`: K_i += 1, R_i += width, CPU cost.
  void OnRowProduced(int id, OpType op, double width);

  /// Correlated parameter passed from a nested-loop join to its inner side.
  void SetCorrelatedKey(int64_t key) { correlated_key_ = key; }
  int64_t correlated_key() const { return correlated_key_; }

  /// Take a final observation (always called at query end).
  void SampleNow();

  /// Move the collected observations out.
  std::vector<Observation> TakeObservations() {
    return std::move(observations_);
  }
  size_t num_observations() const { return observations_.size(); }

 private:
  void MaybeSample();
  /// Bottom-up pass refining LB/UB and clamping E into [LB, UB] (§3.3).
  void RefineBounds();

  const PhysicalPlan* plan_;
  const Catalog* catalog_;
  ExecOptions options_;
  std::vector<NodeCounters> counters_;
  double vtime_ = 0.0;
  double next_sample_ = 0.0;
  double sample_interval_ = 1.0;
  int64_t correlated_key_ = 0;
  std::vector<Observation> observations_;
};

}  // namespace rpe
