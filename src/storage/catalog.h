// Catalog: named tables plus the current physical design (set of secondary
// indexes). One Catalog instance corresponds to one "database + physical
// design" configuration in the paper's experiments.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/index.h"
#include "storage/table.h"

namespace rpe {

/// \brief Owns tables and their secondary indexes.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Register a table; fails if the name is taken.
  Status AddTable(std::unique_ptr<Table> table);

  /// Table lookup; error if absent.
  Result<const Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Build (or no-op if already built) a sorted index on table.column.
  Status CreateIndex(const std::string& table, const std::string& column);
  /// Drop all indexes (e.g. to re-apply a different physical design).
  void DropAllIndexes();

  /// Index lookup; nullptr if no index exists on (table, column).
  const SortedIndex* GetIndex(const std::string& table,
                              const std::string& column) const;
  bool HasIndex(const std::string& table, const std::string& column) const;

  std::vector<std::string> TableNames() const;
  /// Total number of secondary indexes.
  size_t num_indexes() const { return indexes_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  // Keyed by "table.column".
  std::map<std::string, std::unique_ptr<SortedIndex>> indexes_;
};

}  // namespace rpe
