// Small descriptive-statistics helpers shared by the error metrics, feature
// extraction and experiment reporting code.
#pragma once

#include <cstddef>
#include <vector>

namespace rpe {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population variance; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) by linear interpolation; 0 for empty input.
double Percentile(std::vector<double> xs, double p);

/// Percentile over already-ascending input — callers extracting several
/// percentiles from one sample set sort once and call this per cut.
double PercentileSorted(const std::vector<double>& sorted, double p);

/// Pearson correlation coefficient; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Lp norm of the elementwise difference, normalized by count:
/// (sum |a_i - b_i|^p / n)^(1/p). Used for the paper's L1/L2 progress errors.
double LpError(const std::vector<double>& a, const std::vector<double>& b,
               double p);

/// \brief Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rpe
