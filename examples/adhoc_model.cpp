// Ad-hoc generalization (the paper's central robustness claim): train the
// selector on one benchmark family (TPC-H) and apply it to a completely
// different database and workload (the Real-1 sales schema). Prints the
// per-policy average errors plus the selector model round-tripped through
// its text serialization (as a deployment would).
//
//   $ ./examples/adhoc_model
#include <iostream>

#include "common/table_printer.h"
#include "harness/experiment.h"
#include "harness/runner.h"

using namespace rpe;

int main() {
  // Train workload: TPC-H, z = 1, partially tuned.
  WorkloadConfig train_config;
  train_config.kind = WorkloadKind::kTpch;
  train_config.name = "adhoc-train-tpch";
  train_config.scale = 5.0;
  train_config.zipf = 1.0;
  train_config.tuning = TuningLevel::kPartiallyTuned;
  train_config.num_queries = 150;
  train_config.seed = 23;

  // Test workload: the Real-1 sales/reporting schema — different tables,
  // different join shapes, different operator mix.
  WorkloadConfig test_config;
  test_config.kind = WorkloadKind::kReal1;
  test_config.name = "adhoc-test-real1";
  test_config.scale = 5.0;
  test_config.zipf = 1.2;
  test_config.tuning = TuningLevel::kPartiallyTuned;
  test_config.num_queries = 80;
  test_config.seed = 29;

  std::cout << "Running training workload (TPC-H)...\n";
  auto train = BuildAndRun(train_config);
  if (!train.ok()) {
    std::cerr << train.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Running test workload (Real-1)...\n";
  auto test = BuildAndRun(test_config);
  if (!test.ok()) {
    std::cerr << test.status().ToString() << "\n";
    return 1;
  }
  std::cout << train->size() << " training pipelines, " << test->size()
            << " ad-hoc test pipelines\n\n";

  MartParams params;
  params.num_trees = 80;
  EstimatorSelector selector = EstimatorSelector::Train(
      *train, PoolSix(), /*use_dynamic=*/true, params);

  // Round-trip one of the per-estimator models through serialization to
  // show the persistence path a deployment would use.
  const std::string blob = selector.models()[0].Serialize();
  auto restored = MartModel::Deserialize(blob);
  std::cout << "Serialized model for " << SelectableEstimators()[0]->name()
            << ": " << blob.size() << " bytes, "
            << (restored.ok() ? "round-trip OK" : "round-trip FAILED")
            << "\n\n";

  // Evaluate: each single estimator vs. the cross-schema selector.
  std::vector<size_t> choices;
  for (const auto& r : *test) choices.push_back(selector.SelectForRecord(r));

  TablePrinter table({"Policy", "avg L1", "% optimal", ">5x tail"});
  const std::vector<size_t> pool = PoolSix();
  const char* names[] = {"DNE", "TGN", "LUO", "BATCHDNE", "DNESEEK",
                         "TGNINT"};
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto m = EvaluateChoices(*test, FixedChoice(*test, pool[i]), pool);
    table.AddRow({names[i], TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Pct(m.pct_optimal),
                  TablePrinter::Pct(m.frac_ratio_gt5)});
  }
  const auto sel = EvaluateChoices(*test, choices, pool);
  table.AddRow({"Est. Selection (trained on TPC-H)",
                TablePrinter::Fmt(sel.avg_l1, 4),
                TablePrinter::Pct(sel.pct_optimal),
                TablePrinter::Pct(sel.frac_ratio_gt5)});
  const auto oracle = EvaluateChoices(*test, OracleChoice(*test), pool);
  table.AddRow({"Oracle selection", TablePrinter::Fmt(oracle.avg_l1, 4),
                TablePrinter::Pct(oracle.pct_optimal), "0.0%"});
  table.Print();
  std::cout << "\nThe selector has never seen the Real-1 schema, yet its\n"
               "average error should approach the oracle floor — the\n"
               "paper's generalization claim.\n";
  return 0;
}
