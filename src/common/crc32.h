// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) over byte buffers.
// Used by the binary snapshot container to detect corrupted or truncated
// payloads before any field is decoded.
//
// Crc32 dispatches through common/simd.h: on x86 with PCLMULQDQ (the
// sse42 tier and above) large buffers run a fold-by-4 carry-less-multiply
// reduction — the hardware `crc32` instruction computes the Castagnoli
// polynomial and cannot produce this checksum — while short buffers and
// tails, and every byte on the scalar tier, go through the slicing-by-8
// reference. Both paths produce identical words for identical bytes and
// identical seed chains (tests/simd_test.cpp proves it differentially and
// against known-answer vectors).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rpe {

/// CRC of `data[0, size)`; `seed` chains incremental computations (pass the
/// previous call's result to continue a running checksum).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// The always-compiled slicing-by-8 reference; the differential tests and
/// benchmarks compare the dispatched kernel against this directly.
uint32_t Crc32Scalar(const void* data, size_t size, uint32_t seed = 0);

}  // namespace rpe
