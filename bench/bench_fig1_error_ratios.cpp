// Figure 1: no single estimator is robust — for each of DNE / TGN / LUO,
// the ratio of its error to the best of the three, over all queries of all
// six workloads. The paper plots per-query curves (log-scale Y); we print
// the curve's percentiles and the fraction of pipelines beyond 2x/5x/10x.
#include <iostream>

#include "bench/bench_util.h"
#include "common/stats.h"

using namespace rpe;
using namespace rpe::bench;

int main() {
  std::cout << "=== Figure 1: error ratio (estimator / best-of-three) ===\n";
  const auto records = AllPaperRecords();
  std::cout << records.size() << " pipelines over "
            << PaperWorkloadNames().size() << " workloads\n\n";

  const std::vector<size_t> pool = PoolOriginalThree();
  const char* names[3] = {"DNE", "TGN", "LUO"};

  TablePrinter table({"Estimator", "p50", "p75", "p90", "p95", "p99", "max",
                      ">2x", ">5x", ">10x", "% optimal"});
  for (size_t i = 0; i < 3; ++i) {
    auto curve = ErrorRatioCurve(records, pool[i], pool);
    auto frac_above = [&](double t) {
      size_t n = 0;
      for (double r : curve) {
        if (r > t) ++n;
      }
      return static_cast<double>(n) / static_cast<double>(curve.size());
    };
    table.AddRow({names[i], TablePrinter::Fmt(Percentile(curve, 50), 2),
                  TablePrinter::Fmt(Percentile(curve, 75), 2),
                  TablePrinter::Fmt(Percentile(curve, 90), 2),
                  TablePrinter::Fmt(Percentile(curve, 95), 2),
                  TablePrinter::Fmt(Percentile(curve, 99), 2),
                  TablePrinter::Fmt(curve.back(), 1),
                  TablePrinter::Pct(frac_above(2.0)),
                  TablePrinter::Pct(frac_above(5.0)),
                  TablePrinter::Pct(frac_above(10.0)),
                  TablePrinter::Pct(FractionOptimal(records, pool[i], pool))});
  }
  table.Print();
  std::cout << "\nPaper's qualitative claim: each estimator is close to\n"
               "optimal for a subset of queries but degrades by 5x or more\n"
               "for a significant fraction of the workload.\n";
  return 0;
}
