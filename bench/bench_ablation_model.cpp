// Ablation (DESIGN.md / §4.2): the learning model. Compares MART against
// the ridge-regression baseline (the class of "other statistical models"
// the paper found inferior), and sweeps MART's boosting iterations and
// leaf counts.
#include <iostream>

#include "bench/bench_util.h"
#include "mart/linear.h"

using namespace rpe;
using namespace rpe::bench;

namespace {

/// Linear-model estimator selection: one ridge regressor per estimator.
std::vector<size_t> LinearChoices(const std::vector<PipelineRecord>& train,
                                  const std::vector<PipelineRecord>& test,
                                  const std::vector<size_t>& pool) {
  const size_t nf = FeatureSchema::Get().num_features();
  std::vector<LinearModel> models;
  for (size_t est : pool) {
    Dataset data(nf);
    for (const auto& r : train) {
      RPE_CHECK_OK(data.AddExample(r.features, r.l1[est]));
    }
    models.push_back(LinearModel::Train(data));
  }
  std::vector<size_t> choices;
  for (const auto& r : test) {
    size_t best = 0;
    double best_pred = 1e100;
    for (size_t i = 0; i < pool.size(); ++i) {
      const double pred = models[i].Predict(r.features);
      if (pred < best_pred) {
        best_pred = pred;
        best = pool[i];
      }
    }
    choices.push_back(best);
  }
  return choices;
}

}  // namespace

int main() {
  std::cout << "=== Ablation: learning model for estimator selection ===\n";
  const auto records = AllPaperRecords();
  std::vector<PipelineRecord> train, test;
  for (size_t i = 0; i < records.size(); ++i) {
    ((records[i].workload == "real1" || records[i].workload == "real2")
         ? test
         : train)
        .push_back(records[i]);
  }
  const std::vector<size_t> pool = PoolSix();

  TablePrinter table({"Model", "avg L1", "% optimal"});
  {
    const auto choices = LinearChoices(train, test, pool);
    const auto m = EvaluateChoices(test, choices, pool);
    table.AddRow({"ridge regression (linear)", TablePrinter::Fmt(m.avg_l1, 4),
                  TablePrinter::Pct(m.pct_optimal)});
  }
  struct Sweep {
    int trees;
    int leaves;
  };
  const Sweep sweeps[] = {{10, 30}, {25, 30}, {50, 30}, {100, 30},
                          {200, 30}, {100, 8}, {100, 16}, {100, 64}};
  for (const Sweep& s : sweeps) {
    MartParams params;
    params.num_trees = s.trees;
    params.tree.max_leaves = s.leaves;
    const auto eval =
        TrainAndEvaluate(train, test, pool, /*use_dynamic=*/true, params);
    table.AddRow({"MART M=" + std::to_string(s.trees) + " leaves=" +
                      std::to_string(s.leaves),
                  TablePrinter::Fmt(eval.metrics.avg_l1, 4),
                  TablePrinter::Pct(eval.metrics.pct_optimal)});
    std::cerr << "done M=" << s.trees << " leaves=" << s.leaves << "\n";
  }
  table.Print();
  std::cout << "\nExpected (§4.2): MART beats the linear baseline — the\n"
               "feature/error dependencies are non-linear — and accuracy\n"
               "saturates in M well before the paper's M=200 default.\n";
  return 0;
}
