// The estimator-selection model (paper §4.1): one MART error-regressor per
// candidate estimator; at selection time the candidate with the smallest
// predicted error wins. Supports static-only feature mode (choice before
// execution) and static+dynamic mode (choice revised at the 20% driver
// marker), and arbitrary candidate pools (e.g. {DNE, TGN, LUO} vs. the full
// six of Figure 5).
//
// Scoring runs on a FlatEnsembleSet compiled from the per-candidate models
// at training time: one contiguous buffer scores the whole pool per
// decision with no allocation, which is what the continuous-monitoring
// path (ProgressMonitor replay: selector × pipeline × observation) leans
// on. The candidate regressors themselves train concurrently on the
// ThreadPool; training is deterministic, so the serialized models are
// identical at any thread count.
//
// Threading contract: an EstimatorSelector is immutable once built
// (Train/FromModels are the only constructors-of-state), so all const
// methods — Select / PredictErrors / SelectForRecord / accessors — are
// safe to call concurrently from any number of threads without locking.
// This is what lets the serving layer share one selector stack across
// every session via shared_ptr<const ...> (see serving/monitor_service.h).
// Train itself runs parallel work on params.pool (nullptr = the global
// pool) and must not be re-entered with the same mutable output.
//
// Error behavior: Train and the Select/Predict paths RPE_CHECK their
// invariants (feature-vector arity must match the schema) — violations
// are programming errors and abort. FromModels is the untrusted-input
// gate (snapshot loading): malformed persisted models (wrong pool/model
// count, split features beyond the input width, hostile node graphs)
// return Status instead of aborting.
#pragma once

#include <span>
#include <vector>

#include "mart/flat_ensemble.h"
#include "mart/mart.h"
#include "selection/record.h"

namespace rpe {

/// \brief Trained selection model.
class EstimatorSelector {
 public:
  /// \param pool indices into SelectableEstimators() order of the candidate
  ///   estimators the selector may choose between.
  /// \param use_dynamic_features train on the full feature vector (static +
  ///   dynamic) rather than the static prefix only.
  static EstimatorSelector Train(const std::vector<PipelineRecord>& records,
                                 std::vector<size_t> pool,
                                 bool use_dynamic_features,
                                 const MartParams& params = DefaultParams());

  /// Paper training setup: M = 200 boosting iterations, 30-leaf trees.
  static MartParams DefaultParams();

  /// Reassemble a trained selector from persisted models (binary snapshot
  /// load path). The flat scoring buffers are recompiled — compilation is
  /// deterministic from the models, so the rebuilt selector scores
  /// bit-identically to the one that was saved.
  static Result<EstimatorSelector> FromModels(std::vector<size_t> pool,
                                              bool use_dynamic_features,
                                              std::vector<MartModel> models);

  /// Reassemble a selector directly from persisted compiled scoring
  /// buffers (zero-copy snapshot load path, serving/mmap_arena.h): no
  /// MartModels are materialized, so `models()` is empty and the selector
  /// cannot be re-encoded — it can only score. `flat` must already have
  /// passed FlatEnsembleSet::FromParts validation against this feature
  /// mode's input width; `feature_gains` (one vector per pool entry, may
  /// be empty) keeps FeatureImportance working without the models.
  static Result<EstimatorSelector> FromFlat(
      std::vector<size_t> pool, bool use_dynamic_features,
      FlatEnsembleSet flat, std::vector<std::vector<double>> feature_gains);

  /// False for selectors rebuilt via FromFlat: scoring works, but paths
  /// that need the tree structure (EncodeSelectorStack, text Serialize)
  /// do not.
  bool has_models() const { return !models_.empty() || pool_.empty(); }

  /// Predicted L1 error per pool candidate (pool order).
  std::vector<double> PredictErrors(std::span<const double> features) const;
  std::vector<double> PredictErrors(
      const std::vector<double>& features) const {
    return PredictErrors(std::span<const double>(features));
  }

  /// Index into SelectableEstimators order of the chosen estimator.
  /// Allocation-free: scores the compiled ensemble set directly.
  size_t Select(std::span<const double> features) const;
  size_t Select(const std::vector<double>& features) const {
    return Select(std::span<const double>(features));
  }

  /// Batched Select: `out[r]` is exactly `Select(rows[r])` for every row
  /// — same projection, same first-on-ties argmin — but the pool scores
  /// through FlatEnsembleSet::ArgMinBatch, whose merged QuickScorer path
  /// runs the SIMD tile kernel (common/simd.h) across 8 decisions at
  /// once. Each `rows[r]` must point at a full feature vector of the
  /// schema width Select accepts. Used by the serving tier to open and
  /// replay many sessions per call (monitor_service.h).
  void SelectBatch(std::span<const std::vector<double>* const> rows,
                   std::span<size_t> out) const;

  /// Chosen estimator for a record (uses its stored features).
  size_t SelectForRecord(const PipelineRecord& record) const;

  const std::vector<size_t>& pool() const { return pool_; }
  bool uses_dynamic_features() const { return use_dynamic_; }
  const std::vector<MartModel>& models() const { return models_; }
  const FlatEnsembleSet& flat() const { return flat_; }

  /// Aggregate split-gain importance across the per-estimator models,
  /// indexed by feature (full schema indices).
  std::vector<double> FeatureImportance() const;

 private:
  std::vector<double> ProjectFeatures(
      const std::vector<double>& features) const;
  /// Zero-copy projection: the model inputs are always a prefix of the
  /// full feature vector (static features come first in the schema).
  std::span<const double> ProjectSpan(std::span<const double> features) const;

  std::vector<size_t> pool_;
  bool use_dynamic_ = false;
  size_t num_inputs_ = 0;
  std::vector<MartModel> models_;  // one per pool entry; empty via FromFlat
  FlatEnsembleSet flat_;           // compiled from models_, scoring path
  /// Per-model training gains for FromFlat selectors (models_ is empty
  /// there); FeatureImportance falls back to these.
  std::vector<std::vector<double>> flat_gains_;
};

/// Convenience pools.
std::vector<size_t> PoolOriginalThree();  ///< DNE, TGN, LUO
std::vector<size_t> PoolSix();            ///< + BATCHDNE, DNESEEK, TGNINT
std::vector<size_t> PoolAll();            ///< all eight (incl. SAFE, PMAX)

}  // namespace rpe
