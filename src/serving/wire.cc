#include "serving/wire.h"

#include <cmath>
#include <type_traits>

#include "selection/features.h"

namespace rpe {
namespace {

/// Sequential little-endian writer. All wire integers are encoded with
/// memcpy so the codec is alignment- and strict-aliasing-safe.
class Writer {
 public:
  explicit Writer(size_t reserve) { out_.reserve(reserve); }

  template <typename T>
  void Put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    out_.append(raw, sizeof(T));
  }

  void PutBytes(const std::string& bytes) { out_.append(bytes); }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Sequential bounds-checked reader over an untrusted payload.
class Reader {
 public:
  explicit Reader(std::string_view payload) : payload_(payload) {}

  template <typename T>
  Status Get(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload_.size() - pos_ < sizeof(T)) {
      return Status::InvalidArgument("wire payload truncated");
    }
    std::memcpy(out, payload_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  Status GetBytes(std::string* out, size_t n) {
    if (payload_.size() - pos_ < n) {
      return Status::InvalidArgument("wire payload truncated");
    }
    out->assign(payload_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Typed payloads are exact-size: trailing bytes are as much a protocol
  /// violation as missing ones (a lying encoder, not a storage fault).
  Status ExpectEnd() const {
    if (pos_ != payload_.size()) {
      return Status::InvalidArgument(
          "wire payload has " + std::to_string(payload_.size() - pos_) +
          " trailing byte(s)");
    }
    return Status::OK();
  }

 private:
  std::string_view payload_;
  size_t pos_ = 0;
};

std::string FinishFrame(MsgType type, uint8_t status, Writer* payload) {
  return EncodeFrame(type, status, payload->Take());
}

// --- wire record (see the layout in wire.h) --------------------------------

void PutString16(Writer* w, const std::string& s) {
  // Lengths travel as written; the decoder enforces the caps, so a lying
  // or oversized encoder is rejected by the peer rather than silently
  // truncated here.
  w->Put(static_cast<uint16_t>(s.size()));
  w->PutBytes(s);
}

void PutDoubles16(Writer* w, const std::vector<double>& v) {
  w->Put(static_cast<uint16_t>(v.size()));
  for (double d : v) w->Put(d);
}

size_t RecordWireBytes(const PipelineRecord& r) {
  return 3 * 2 + r.workload.size() + r.query.size() + r.tag.size() + 4 + 8 +
         3 * 2 + 8 * (r.features.size() + r.l1.size() + r.l2.size());
}

void PutRecord(Writer* w, const PipelineRecord& r) {
  PutString16(w, r.workload);
  PutString16(w, r.query);
  PutString16(w, r.tag);
  w->Put(static_cast<int32_t>(r.pipeline_id));
  w->Put(r.total_n);
  PutDoubles16(w, r.features);
  PutDoubles16(w, r.l1);
  PutDoubles16(w, r.l2);
}

Status GetString16(Reader* r, std::string* out, const char* field) {
  uint16_t len = 0;
  RPE_RETURN_NOT_OK(r->Get(&len));
  if (len > kMaxIngestStringBytes) {
    return Status::InvalidArgument(
        "wire record " + std::string(field) + " length " +
        std::to_string(len) + " exceeds the " +
        std::to_string(kMaxIngestStringBytes) + "-byte cap");
  }
  return r->GetBytes(out, len);
}

Status GetDoubles16(Reader* r, std::vector<double>* out, size_t expected,
                    const char* field) {
  uint16_t n = 0;
  RPE_RETURN_NOT_OK(r->Get(&n));
  if (n != expected) {
    return Status::InvalidArgument(
        "wire record " + std::string(field) + " arity " + std::to_string(n) +
        " != expected " + std::to_string(expected));
  }
  out->clear();
  out->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    double d = 0.0;
    RPE_RETURN_NOT_OK(r->Get(&d));
    if (!std::isfinite(d)) {
      return Status::InvalidArgument("wire record " + std::string(field) +
                                     " carries a non-finite value");
    }
    out->push_back(d);
  }
  return Status::OK();
}

Status GetRecord(Reader* r, PipelineRecord* out) {
  RPE_RETURN_NOT_OK(GetString16(r, &out->workload, "workload"));
  RPE_RETURN_NOT_OK(GetString16(r, &out->query, "query"));
  RPE_RETURN_NOT_OK(GetString16(r, &out->tag, "tag"));
  int32_t pipeline_id = 0;
  RPE_RETURN_NOT_OK(r->Get(&pipeline_id));
  out->pipeline_id = pipeline_id;
  RPE_RETURN_NOT_OK(r->Get(&out->total_n));
  if (!std::isfinite(out->total_n)) {
    return Status::InvalidArgument(
        "wire record total_n carries a non-finite value");
  }
  // A record whose arity disagrees with this process's schema / estimator
  // table must be rejected at the wire, exactly as RecordsFromCsv rejects
  // it at the file boundary — a mixed-arity corpus breaks retraining.
  RPE_RETURN_NOT_OK(GetDoubles16(r, &out->features,
                                 FeatureSchema::Get().num_features(),
                                 "features"));
  RPE_RETURN_NOT_OK(GetDoubles16(
      r, &out->l1, static_cast<size_t>(kNumEstimatorKinds), "l1"));
  RPE_RETURN_NOT_OK(GetDoubles16(
      r, &out->l2, static_cast<size_t>(kNumEstimatorKinds), "l2"));
  return Status::OK();
}

}  // namespace

Status WireFrame::ToStatus() const {
  if (status == 0) return Status::OK();
  const auto code = static_cast<StatusCode>(status);
  switch (code) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kUnavailable:
      return Status(code, payload);
    case StatusCode::kOk:
      break;
  }
  return Status::Internal("unknown wire status code " +
                          std::to_string(int{status}) + ": " + payload);
}

std::string EncodeFrame(MsgType type, uint8_t status,
                        std::string_view payload) {
  Writer w(kFrameHeaderBytes + payload.size());
  w.Put(static_cast<uint32_t>(payload.size()));
  w.Put(static_cast<uint8_t>(type));
  w.Put(status);
  w.Put(static_cast<uint16_t>(0));  // reserved
  std::string out = w.Take();
  out.append(payload);
  return out;
}

std::string EncodeErrorFrame(MsgType type, const Status& error) {
  return EncodeFrame(type, static_cast<uint8_t>(error.code()),
                     error.message());
}

std::string EncodeOpenRequest(const OpenRequest& m) {
  Writer w(4);
  w.Put(m.run_index);
  return FinishFrame(MsgType::kOpen, 0, &w);
}

std::string EncodeOpenResponse(const OpenResponse& m) {
  Writer w(16);
  w.Put(m.session_id);
  w.Put(m.run_index);
  w.Put(m.num_observations);
  return FinishFrame(MsgType::kOpen, 0, &w);
}

std::string EncodeAdvanceRequest(const AdvanceRequest& m) {
  Writer w(12);
  w.Put(m.session_id);
  w.Put(m.max_steps);
  return FinishFrame(MsgType::kAdvance, 0, &w);
}

std::string EncodeAdvanceResponse(const AdvanceResponse& m) {
  Writer w(13);
  w.Put(m.progress);
  w.Put(m.steps);
  w.Put(m.done);
  return FinishFrame(MsgType::kAdvance, 0, &w);
}

std::string EncodeProgressRequest(const ProgressRequest& m) {
  Writer w(8);
  w.Put(m.session_id);
  return FinishFrame(MsgType::kProgress, 0, &w);
}

std::string EncodeProgressResponse(const ProgressResponse& m) {
  Writer w(9);
  w.Put(m.progress);
  w.Put(m.done);
  return FinishFrame(MsgType::kProgress, 0, &w);
}

std::string EncodeCloseRequest(const CloseRequest& m) {
  Writer w(8);
  w.Put(m.session_id);
  return FinishFrame(MsgType::kClose, 0, &w);
}

std::string EncodeCloseResponse() {
  return EncodeFrame(MsgType::kClose, 0, {});
}

std::string EncodeStatsRequest() {
  return EncodeFrame(MsgType::kStats, 0, {});
}

std::string EncodeMetricsDumpRequest() {
  return EncodeFrame(MsgType::kMetricsDump, 0, {});
}

std::string EncodeMetricsDumpResponse(std::string_view text) {
  return EncodeFrame(MsgType::kMetricsDump, 0, text);
}

std::string EncodeIngestRecordRequest(const IngestRecordRequest& m) {
  Writer w(RecordWireBytes(m.record));
  PutRecord(&w, m.record);
  return FinishFrame(MsgType::kIngestRecord, 0, &w);
}

std::string EncodeIngestBatchRequest(const IngestBatchRequest& m) {
  size_t bytes = 4;
  for (const PipelineRecord& r : m.records) bytes += RecordWireBytes(r);
  Writer w(bytes);
  w.Put(static_cast<uint32_t>(m.records.size()));
  for (const PipelineRecord& r : m.records) PutRecord(&w, r);
  return FinishFrame(MsgType::kIngestBatch, 0, &w);
}

std::string EncodeIngestResponse(MsgType type, const IngestResponse& m) {
  Writer w(8);
  w.Put(m.accepted);
  w.Put(m.dropped);
  return FinishFrame(type, 0, &w);
}

std::string EncodeStatsResponse(const WireStats& m) {
  Writer w(25 * 8 + 2 * 8);
  w.Put(m.sessions_opened);
  w.Put(m.sessions_completed);
  w.Put(m.decisions);
  w.Put(m.observations_scored);
  w.Put(m.model_generation);
  w.Put(m.connections_accepted);
  w.Put(m.connections_closed);
  w.Put(m.frames_received);
  w.Put(m.frames_sent);
  w.Put(m.bytes_received);
  w.Put(m.bytes_sent);
  w.Put(m.protocol_errors);
  w.Put(m.io_errors);
  w.Put(m.wire_sessions_opened);
  w.Put(m.wire_sessions_closed);
  w.Put(m.advance_steps);
  w.Put(m.p50_replay_ms);
  w.Put(m.p95_replay_ms);
  w.Put(m.records_ingested);
  w.Put(m.records_ingest_dropped);
  w.Put(m.records_ingest_shed);
  w.Put(m.requests_shed);
  w.Put(m.ingest_pushed);
  w.Put(m.ingest_dropped);
  w.Put(m.ingest_drained);
  w.Put(m.ingest_queue_size);
  w.Put(m.retrains);
  return FinishFrame(MsgType::kStats, 0, &w);
}

Result<OpenRequest> DecodeOpenRequest(std::string_view payload) {
  Reader r(payload);
  OpenRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.run_index));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<OpenResponse> DecodeOpenResponse(std::string_view payload) {
  Reader r(payload);
  OpenResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.Get(&m.run_index));
  RPE_RETURN_NOT_OK(r.Get(&m.num_observations));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<AdvanceRequest> DecodeAdvanceRequest(std::string_view payload) {
  Reader r(payload);
  AdvanceRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.Get(&m.max_steps));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  if (m.max_steps == 0 || m.max_steps > kMaxAdvanceSteps) {
    return Status::InvalidArgument(
        "AdvanceRequest.max_steps " + std::to_string(m.max_steps) +
        " outside [1, " + std::to_string(kMaxAdvanceSteps) + "]");
  }
  return m;
}

Result<AdvanceResponse> DecodeAdvanceResponse(std::string_view payload) {
  Reader r(payload);
  AdvanceResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.progress));
  RPE_RETURN_NOT_OK(r.Get(&m.steps));
  RPE_RETURN_NOT_OK(r.Get(&m.done));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<ProgressRequest> DecodeProgressRequest(std::string_view payload) {
  Reader r(payload);
  ProgressRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<ProgressResponse> DecodeProgressResponse(std::string_view payload) {
  Reader r(payload);
  ProgressResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.progress));
  RPE_RETURN_NOT_OK(r.Get(&m.done));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<CloseRequest> DecodeCloseRequest(std::string_view payload) {
  Reader r(payload);
  CloseRequest m;
  RPE_RETURN_NOT_OK(r.Get(&m.session_id));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<WireStats> DecodeStatsResponse(std::string_view payload) {
  Reader r(payload);
  WireStats m;
  RPE_RETURN_NOT_OK(r.Get(&m.sessions_opened));
  RPE_RETURN_NOT_OK(r.Get(&m.sessions_completed));
  RPE_RETURN_NOT_OK(r.Get(&m.decisions));
  RPE_RETURN_NOT_OK(r.Get(&m.observations_scored));
  RPE_RETURN_NOT_OK(r.Get(&m.model_generation));
  RPE_RETURN_NOT_OK(r.Get(&m.connections_accepted));
  RPE_RETURN_NOT_OK(r.Get(&m.connections_closed));
  RPE_RETURN_NOT_OK(r.Get(&m.frames_received));
  RPE_RETURN_NOT_OK(r.Get(&m.frames_sent));
  RPE_RETURN_NOT_OK(r.Get(&m.bytes_received));
  RPE_RETURN_NOT_OK(r.Get(&m.bytes_sent));
  RPE_RETURN_NOT_OK(r.Get(&m.protocol_errors));
  RPE_RETURN_NOT_OK(r.Get(&m.io_errors));
  RPE_RETURN_NOT_OK(r.Get(&m.wire_sessions_opened));
  RPE_RETURN_NOT_OK(r.Get(&m.wire_sessions_closed));
  RPE_RETURN_NOT_OK(r.Get(&m.advance_steps));
  RPE_RETURN_NOT_OK(r.Get(&m.p50_replay_ms));
  RPE_RETURN_NOT_OK(r.Get(&m.p95_replay_ms));
  RPE_RETURN_NOT_OK(r.Get(&m.records_ingested));
  RPE_RETURN_NOT_OK(r.Get(&m.records_ingest_dropped));
  RPE_RETURN_NOT_OK(r.Get(&m.records_ingest_shed));
  RPE_RETURN_NOT_OK(r.Get(&m.requests_shed));
  RPE_RETURN_NOT_OK(r.Get(&m.ingest_pushed));
  RPE_RETURN_NOT_OK(r.Get(&m.ingest_dropped));
  RPE_RETURN_NOT_OK(r.Get(&m.ingest_drained));
  RPE_RETURN_NOT_OK(r.Get(&m.ingest_queue_size));
  RPE_RETURN_NOT_OK(r.Get(&m.retrains));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<IngestRecordRequest> DecodeIngestRecordRequest(
    std::string_view payload) {
  Reader r(payload);
  IngestRecordRequest m;
  RPE_RETURN_NOT_OK(GetRecord(&r, &m.record));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<IngestBatchRequest> DecodeIngestBatchRequest(std::string_view payload) {
  Reader r(payload);
  uint32_t count = 0;
  RPE_RETURN_NOT_OK(r.Get(&count));
  if (count == 0 || count > kMaxIngestBatchRecords) {
    return Status::InvalidArgument(
        "IngestBatchRequest count " + std::to_string(count) +
        " outside [1, " + std::to_string(kMaxIngestBatchRecords) + "]");
  }
  IngestBatchRequest m;
  m.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    PipelineRecord record;
    RPE_RETURN_NOT_OK(GetRecord(&r, &record));
    m.records.push_back(std::move(record));
  }
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<IngestResponse> DecodeIngestResponse(std::string_view payload) {
  Reader r(payload);
  IngestResponse m;
  RPE_RETURN_NOT_OK(r.Get(&m.accepted));
  RPE_RETURN_NOT_OK(r.Get(&m.dropped));
  RPE_RETURN_NOT_OK(r.ExpectEnd());
  return m;
}

Result<bool> FrameDecoder::Next(WireFrame* frame) {
  const size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) {
    // Reclaim the consumed prefix while idle so a long-lived connection
    // does not grow the buffer without bound.
    if (pos_ > 0 && avail == 0) {
      buf_.clear();
      pos_ = 0;
    }
    return false;
  }
  uint32_t payload_len = 0;
  uint8_t type = 0;
  uint8_t status = 0;
  uint16_t reserved = 0;
  const char* head = buf_.data() + pos_;
  std::memcpy(&payload_len, head, 4);
  std::memcpy(&type, head + 4, 1);
  std::memcpy(&status, head + 5, 1);
  std::memcpy(&reserved, head + 6, 2);
  if (payload_len > max_payload_) {
    return Status::InvalidArgument(
        "wire frame payload length " + std::to_string(payload_len) +
        " exceeds the " + std::to_string(max_payload_) + "-byte cap");
  }
  if (type < kMinMsgType || type > kMaxMsgType) {
    return Status::InvalidArgument("unknown wire message type " +
                                   std::to_string(int{type}));
  }
  if (reserved != 0) {
    return Status::InvalidArgument(
        "wire frame reserved bits are nonzero (version mismatch?)");
  }
  if (avail < kFrameHeaderBytes + payload_len) return false;
  frame->type = static_cast<MsgType>(type);
  frame->status = status;
  frame->payload.assign(head + kFrameHeaderBytes, payload_len);
  pos_ += kFrameHeaderBytes + payload_len;
  // Compact once the consumed prefix dominates the buffer: amortized O(1)
  // per byte, keeps the resident footprint near the unread tail.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return true;
}

}  // namespace rpe
