#include "storage/schema.h"

namespace rpe {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (const auto& c : columns_) row_width_ += c.width_bytes;
}

Result<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("column not found: " + name);
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<ColumnDef> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

}  // namespace rpe
