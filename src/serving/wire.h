// Wire protocol of the TCP serving front-end (serving/server.h): a
// length-prefixed binary framing for the five session messages —
// Open / Advance / Progress / Close / Stats — shared by the server and
// the load generator (tools/rpe_loadgen.cc). The codec lives in its own
// translation unit, with no socket anywhere in sight, so framing and
// message encode/decode are unit-testable (tests/wire_test.cpp) and
// fuzzable (tests/wire_fuzz_test.cpp) byte-for-byte.
//
// Frame layout (all integers little-endian, no padding):
//
//   offset  size  field
//   0       4     payload_len   bytes after this 8-byte header;
//                               must be <= kMaxPayloadBytes
//   4       1     type          MsgType (1..5); anything else is rejected
//   5       1     status        StatusCode; 0 on requests and successful
//                               responses. A response with status != 0
//                               carries the error message as its payload.
//   6       2     reserved      must be zero (rejected otherwise) — the
//                               version/extension escape hatch
//   8       *     payload       fixed-layout message body (below)
//
// Requests and responses share the type byte; direction is implied by
// who sent the frame. Every request gets exactly one response, in
// request order per connection (the server's batch scheduler preserves
// per-connection FIFO even while it interleaves Advance work across
// connections — see serving/server.cc).
//
// Message payloads (sizes are exact; a typed decoder rejects any other
// payload length with Status, never reads out of bounds):
//
//   OpenRequest      u32 run_index      (server resolves modulo its run set)
//   OpenResponse     u64 session_id, u32 run_index (resolved),
//                    u32 num_observations
//   AdvanceRequest   u64 session_id, u32 max_steps (1..kMaxAdvanceSteps)
//   AdvanceResponse  f64 progress, u32 steps (taken), u8 done
//   ProgressRequest  u64 session_id
//   ProgressResponse f64 progress, u8 done
//   CloseRequest     u64 session_id
//   CloseResponse    (empty)
//   StatsRequest     (empty)
//   StatsResponse    WireStats (fixed field order, see struct)
//
// Threat model: the decoder consumes untrusted bytes from the socket.
// Hostile lengths, truncation, type/status garbage and payload-size lies
// must all come back as Status (or "need more bytes"), never UB — this
// is enforced by the seeded wire fuzz harness under ASan/UBSan in CI.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rpe {

/// Hard ceiling on a frame payload. Real payloads are tens of bytes; the
/// cap exists so a hostile 4 GiB length prefix is rejected at the header,
/// before any allocation sized by attacker-controlled input.
inline constexpr size_t kMaxPayloadBytes = 1 << 20;

/// Frame header size in bytes (see layout above).
inline constexpr size_t kFrameHeaderBytes = 8;

/// Per-request ceiling on AdvanceRequest::max_steps: bounds the work one
/// frame can demand from an IO thread.
inline constexpr uint32_t kMaxAdvanceSteps = 1 << 16;

/// \brief Message discriminator (the frame's `type` byte). Values are
/// wire format — never renumber.
enum class MsgType : uint8_t {
  kOpen = 1,
  kAdvance = 2,
  kProgress = 3,
  kClose = 4,
  kStats = 5,
};

/// Smallest/largest valid MsgType values, for header validation.
inline constexpr uint8_t kMinMsgType = 1;
inline constexpr uint8_t kMaxMsgType = 5;

/// \brief One complete decoded frame: header fields + owned payload.
struct WireFrame {
  MsgType type = MsgType::kOpen;
  uint8_t status = 0;  ///< StatusCode; 0 = OK
  std::string payload;

  bool ok() const { return status == 0; }
  /// Reconstruct the Status carried by an error response (OK when
  /// status == 0). Unknown code bytes map to kInternal.
  Status ToStatus() const;
};

// ---------------------------------------------------------------------------
// Typed messages

struct OpenRequest {
  uint32_t run_index = 0;
};

struct OpenResponse {
  uint64_t session_id = 0;
  uint32_t run_index = 0;  ///< resolved (modulo the server's run set)
  uint32_t num_observations = 0;
};

struct AdvanceRequest {
  uint64_t session_id = 0;
  uint32_t max_steps = 1;  ///< 1..kMaxAdvanceSteps
};

struct AdvanceResponse {
  double progress = 0.0;  ///< after the last step taken
  uint32_t steps = 0;     ///< observation steps actually taken
  uint8_t done = 0;       ///< 1 once the replay is exhausted
};

struct ProgressRequest {
  uint64_t session_id = 0;
};

struct ProgressResponse {
  double progress = 0.0;
  uint8_t done = 0;
};

struct CloseRequest {
  uint64_t session_id = 0;
};

/// \brief StatsResponse payload: the serving tier's counters as seen over
/// the wire, plus the front-end's own IO counters. Field order is wire
/// format — append, never reorder.
struct WireStats {
  // ShardedMonitorService counters (exact sums across shards).
  uint64_t sessions_opened = 0;
  uint64_t sessions_completed = 0;
  uint64_t decisions = 0;
  uint64_t observations_scored = 0;
  uint64_t model_generation = 0;
  // TCP front-end counters (exact sums across IO threads).
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t protocol_errors = 0;
  uint64_t io_errors = 0;
  uint64_t wire_sessions_opened = 0;
  uint64_t wire_sessions_closed = 0;
  uint64_t advance_steps = 0;
  // Replay latency percentiles (milliseconds) from the service window.
  double p50_replay_ms = 0.0;
  double p95_replay_ms = 0.0;
};

// ---------------------------------------------------------------------------
// Encoding (always succeeds; sizes are fixed and tiny)

/// Raw frame assembly: header + payload. `status` is the StatusCode byte.
std::string EncodeFrame(MsgType type, uint8_t status,
                        std::string_view payload);

/// A response frame carrying `error` for a request of type `type` (the
/// message text is the payload; must not be OK).
std::string EncodeErrorFrame(MsgType type, const Status& error);

std::string EncodeOpenRequest(const OpenRequest& m);
std::string EncodeOpenResponse(const OpenResponse& m);
std::string EncodeAdvanceRequest(const AdvanceRequest& m);
std::string EncodeAdvanceResponse(const AdvanceResponse& m);
std::string EncodeProgressRequest(const ProgressRequest& m);
std::string EncodeProgressResponse(const ProgressResponse& m);
std::string EncodeCloseRequest(const CloseRequest& m);
std::string EncodeCloseResponse();
std::string EncodeStatsRequest();
std::string EncodeStatsResponse(const WireStats& m);

// ---------------------------------------------------------------------------
// Decoding (bounds-checked; exact payload size required)

Result<OpenRequest> DecodeOpenRequest(std::string_view payload);
Result<OpenResponse> DecodeOpenResponse(std::string_view payload);
Result<AdvanceRequest> DecodeAdvanceRequest(std::string_view payload);
Result<AdvanceResponse> DecodeAdvanceResponse(std::string_view payload);
Result<ProgressRequest> DecodeProgressRequest(std::string_view payload);
Result<ProgressResponse> DecodeProgressResponse(std::string_view payload);
Result<CloseRequest> DecodeCloseRequest(std::string_view payload);
Result<WireStats> DecodeStatsResponse(std::string_view payload);

/// \brief Incremental frame reassembly over an untrusted byte stream.
/// Feed() appends whatever the socket produced (any chunking, including
/// one byte at a time); Next() extracts complete frames. A hostile
/// header — oversized length, unknown type, nonzero reserved bits —
/// comes back as Status, after which the stream is unrecoverable and the
/// connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  void Feed(std::string_view bytes) { buf_.append(bytes); }

  /// True: *frame holds the next complete frame. False: more bytes are
  /// needed (partial header or partial payload). Status: the header is
  /// hostile and the stream cannot be re-synchronized.
  Result<bool> Next(WireFrame* frame);

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  std::string buf_;
  size_t pos_ = 0;  ///< consumed prefix of buf_
};

}  // namespace rpe
