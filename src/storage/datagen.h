// Declarative synthetic-data generation. Each column of a generated table is
// described by a ColumnGen; Zipfian generators supply the skew knob (z) the
// paper's Table 4 experiment varies, and Correlated generators create the
// cross-column correlations that make histogram-based optimizer estimates
// realistically wrong.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/table.h"

namespace rpe {

/// \brief How to produce values for one generated column.
struct ColumnGen {
  enum class Kind {
    kSequential,   ///< 0,1,2,... (primary keys)
    kUniform,      ///< uniform integer in [lo, hi]
    kZipf,         ///< Zipf(z) over [1, domain], optionally value-shuffled
    kFkUniform,    ///< uniform foreign key in [0, fk_count)
    kFkZipf,       ///< Zipfian foreign key in [0, fk_count): hot parents
    kCorrelated,   ///< value = src_column / divisor + noise in [0, noise]
    kConstant,     ///< fixed value
  };

  Kind kind = Kind::kUniform;
  int64_t lo = 0;
  int64_t hi = 100;
  uint64_t domain = 100;      ///< Zipf domain size
  double z = 0.0;             ///< Zipf parameter
  bool shuffle_values = true; ///< remap Zipf ranks to scattered values
  uint64_t fk_count = 0;      ///< referenced table cardinality
  size_t src_column = 0;      ///< for kCorrelated
  int64_t divisor = 1;        ///< for kCorrelated
  int64_t noise = 0;          ///< for kCorrelated
  int64_t constant = 0;

  static ColumnGen Sequential();
  static ColumnGen Uniform(int64_t lo, int64_t hi);
  static ColumnGen Zipf(uint64_t domain, double z, bool shuffle = true);
  static ColumnGen FkUniform(uint64_t fk_count);
  static ColumnGen FkZipf(uint64_t fk_count, double z);
  static ColumnGen Correlated(size_t src_column, int64_t divisor,
                              int64_t noise);
  static ColumnGen Constant(int64_t v);
};

/// \brief Table generation spec: schema columns paired with generators.
struct TableGenSpec {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<ColumnGen> generators;
  uint64_t num_rows = 0;
};

/// Generate a table from a spec. Correlated columns must reference
/// lower-indexed columns. Deterministic given the Rng seed.
Result<std::unique_ptr<Table>> GenerateTable(const TableGenSpec& spec,
                                             Rng* rng);

}  // namespace rpe
