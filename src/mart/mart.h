// MART — Multiple Additive Regression Trees (stochastic gradient boosting,
// Friedman [10]): the statistical model behind estimator selection
// (paper §4.2). Squared loss, steepest-descent residual fitting, regression
// trees as the functional approximators. Training parallelizes histogram
// accumulation, the split sweep (both over feature blocks) and the
// per-tree prediction update on a ThreadPool; the fitted (and serialized)
// model is identical at any thread count. Training internals are
// documented in docs/TRAINING.md.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "mart/tree.h"

namespace rpe {

class ThreadPool;

/// \brief Boosting parameters (paper defaults: M = 200, 30 leaves).
struct MartParams {
  int num_trees = 200;
  double learning_rate = 0.1;
  TreeParams tree;
  /// Fraction of examples sampled per boosting iteration (1.0 = none).
  double subsample = 1.0;
  /// Quantile-binning resolution; must be in [2, 255] (checked at binning
  /// time — bin ids live in uint8, see BinnedDataset).
  int max_bins = 255;
  uint64_t seed = 7;
  /// Worker pool for training; nullptr = the global pool. The trained
  /// model does not depend on the pool's thread count.
  ThreadPool* pool = nullptr;
};

/// \brief A trained boosted ensemble.
class MartModel {
 public:
  MartModel() = default;

  /// Train on `data` with squared loss.
  static MartModel Train(const Dataset& data, const MartParams& params = {});

  /// Reassemble a trained model from its parts (binary snapshot load path).
  /// The training curve is not persisted; the rebuilt model predicts and
  /// re-serializes identically to the original.
  static MartModel FromParts(double bias, double learning_rate,
                             std::vector<RegressionTree> trees,
                             std::vector<double> feature_gains);

  double Predict(std::span<const double> features) const;
  double Predict(const std::vector<double>& features) const {
    return Predict(std::span<const double>(features));
  }

  /// Mean squared error over a dataset.
  double MeanSquaredError(const Dataset& data) const;

  size_t num_trees() const { return trees_.size(); }
  double bias() const { return bias_; }
  double learning_rate() const { return learning_rate_; }
  /// Read-only tree access for ensemble compilation (FlatEnsemble).
  const std::vector<RegressionTree>& trees() const { return trees_; }
  /// Total split gain accumulated per feature during training.
  const std::vector<double>& feature_gains() const { return feature_gains_; }
  /// Training MSE after each boosting iteration.
  const std::vector<double>& training_curve() const { return training_curve_; }

  /// Text round-trip for persistence.
  std::string Serialize() const;
  static Result<MartModel> Deserialize(const std::string& text);

 private:
  double bias_ = 0.0;
  double learning_rate_ = 0.1;
  std::vector<RegressionTree> trees_;
  std::vector<double> feature_gains_;
  std::vector<double> training_curve_;
};

}  // namespace rpe
