// Experiment runner: plans and executes whole workloads, turning every
// qualifying pipeline execution into a featurized, error-labeled
// PipelineRecord (the unit of training/evaluation throughout §6).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "harness/metrics.h"
#include "optimizer/planner.h"
#include "selection/record.h"
#include "workload/workload.h"

namespace rpe {

/// \brief One planned + executed query with its plan kept alive.
struct OwnedRun {
  std::unique_ptr<PhysicalPlan> plan;
  QueryRunResult result;
};

/// \brief Runner knobs.
struct RunOptions {
  ExecOptions exec;
  PlannerOptions planner;
  /// Pipelines with fewer observations than this are not recorded.
  size_t min_observations = 5;
  /// Print one progress line per N queries (0 = silent).
  size_t progress_every = 0;
  /// Record emission hook: invoked for every record a workload run
  /// produces, in execution order, before it is appended to the returned
  /// batch — wire it to RecordIngestQueue::Push to stream training data
  /// out of a running workload (the online-learning tap). Called on the
  /// executing thread; must not throw.
  std::function<void(const PipelineRecord&)> on_record;
};

/// Plan and execute a single query of a workload.
Result<OwnedRun> RunQuery(const Workload& workload, const QuerySpec& spec,
                          const RunOptions& options = {});

/// Run the full workload, labeling records with the workload name and `tag`.
Result<std::vector<PipelineRecord>> RunWorkload(
    const Workload& workload, const RunOptions& options = {},
    const std::string& tag = "");

/// Build the workload from `config` and run it (convenience).
Result<std::vector<PipelineRecord>> BuildAndRun(
    const WorkloadConfig& config, const RunOptions& options = {},
    const std::string& tag = "");

/// Disk-cached variant: loads `<cache_dir>/<name>.csv` when present,
/// otherwise builds + runs + saves. cache_dir defaults to $RPE_CACHE_DIR or
/// "rpe_record_cache" under the current directory.
Result<std::vector<PipelineRecord>> CachedRecords(
    const std::string& name, const WorkloadConfig& config,
    const RunOptions& options = {}, const std::string& tag = "");

/// The cache directory currently in effect (created on demand).
std::string RecordCacheDir();

}  // namespace rpe
