#include "storage/datagen.h"

#include <memory>

#include "common/logging.h"

namespace rpe {

ColumnGen ColumnGen::Sequential() {
  ColumnGen g;
  g.kind = Kind::kSequential;
  return g;
}

ColumnGen ColumnGen::Uniform(int64_t lo, int64_t hi) {
  ColumnGen g;
  g.kind = Kind::kUniform;
  g.lo = lo;
  g.hi = hi;
  return g;
}

ColumnGen ColumnGen::Zipf(uint64_t domain, double z, bool shuffle) {
  ColumnGen g;
  g.kind = Kind::kZipf;
  g.domain = domain;
  g.z = z;
  g.shuffle_values = shuffle;
  return g;
}

ColumnGen ColumnGen::FkUniform(uint64_t fk_count) {
  ColumnGen g;
  g.kind = Kind::kFkUniform;
  g.fk_count = fk_count;
  return g;
}

ColumnGen ColumnGen::FkZipf(uint64_t fk_count, double z) {
  ColumnGen g;
  g.kind = Kind::kFkZipf;
  g.fk_count = fk_count;
  g.z = z;
  return g;
}

ColumnGen ColumnGen::Correlated(size_t src_column, int64_t divisor,
                                int64_t noise) {
  ColumnGen g;
  g.kind = Kind::kCorrelated;
  g.src_column = src_column;
  g.divisor = divisor;
  g.noise = noise;
  return g;
}

ColumnGen ColumnGen::Constant(int64_t v) {
  ColumnGen g;
  g.kind = Kind::kConstant;
  g.constant = v;
  return g;
}

namespace {

/// Per-column sampling state (Zipf CDFs, value shuffles) built once.
struct GenState {
  std::unique_ptr<ZipfGenerator> zipf;
  std::vector<int64_t> value_map;  // rank -> scattered value
};

}  // namespace

Result<std::unique_ptr<Table>> GenerateTable(const TableGenSpec& spec,
                                             Rng* rng) {
  if (spec.columns.size() != spec.generators.size()) {
    return Status::InvalidArgument("spec arity mismatch for " + spec.name);
  }
  const size_t ncols = spec.columns.size();
  std::vector<GenState> states(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    const ColumnGen& g = spec.generators[c];
    switch (g.kind) {
      case ColumnGen::Kind::kZipf: {
        if (g.domain == 0) {
          return Status::InvalidArgument("zipf domain must be positive");
        }
        states[c].zipf = std::make_unique<ZipfGenerator>(g.domain, g.z);
        if (g.shuffle_values) {
          states[c].value_map.resize(g.domain);
          for (uint64_t i = 0; i < g.domain; ++i) {
            states[c].value_map[i] = static_cast<int64_t>(i + 1);
          }
          rng->Shuffle(&states[c].value_map);
        }
        break;
      }
      case ColumnGen::Kind::kFkZipf: {
        if (g.fk_count == 0) {
          return Status::InvalidArgument("fk_count must be positive");
        }
        states[c].zipf = std::make_unique<ZipfGenerator>(g.fk_count, g.z);
        break;
      }
      case ColumnGen::Kind::kFkUniform:
        if (g.fk_count == 0) {
          return Status::InvalidArgument("fk_count must be positive");
        }
        break;
      case ColumnGen::Kind::kCorrelated:
        if (g.src_column >= c) {
          return Status::InvalidArgument(
              "correlated column must reference an earlier column");
        }
        if (g.divisor == 0) {
          return Status::InvalidArgument("correlated divisor must be nonzero");
        }
        break;
      default:
        break;
    }
  }

  auto table = std::make_unique<Table>(spec.name, Schema(spec.columns));
  table->Reserve(spec.num_rows);
  Row row(ncols);
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      const ColumnGen& g = spec.generators[c];
      switch (g.kind) {
        case ColumnGen::Kind::kSequential:
          row[c] = static_cast<int64_t>(r);
          break;
        case ColumnGen::Kind::kUniform:
          row[c] = rng->NextInt(g.lo, g.hi);
          break;
        case ColumnGen::Kind::kZipf: {
          const uint64_t rank = states[c].zipf->Next(rng);
          row[c] = g.shuffle_values
                       ? states[c].value_map[rank - 1]
                       : static_cast<int64_t>(rank);
          break;
        }
        case ColumnGen::Kind::kFkUniform:
          row[c] = static_cast<int64_t>(rng->NextUInt(g.fk_count));
          break;
        case ColumnGen::Kind::kFkZipf:
          row[c] = static_cast<int64_t>(states[c].zipf->Next(rng) - 1);
          break;
        case ColumnGen::Kind::kCorrelated:
          row[c] = row[g.src_column] / g.divisor +
                   (g.noise > 0 ? rng->NextInt(0, g.noise) : 0);
          break;
        case ColumnGen::Kind::kConstant:
          row[c] = g.constant;
          break;
      }
    }
    RPE_RETURN_NOT_OK(table->Append(row));
  }
  return table;
}

}  // namespace rpe
