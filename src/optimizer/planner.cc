#include "optimizer/planner.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/logging.h"
#include "exec/plan_resolver.h"

namespace rpe {

namespace {

/// Provenance of one output column: which query table / base column it is.
struct ColRef {
  size_t table_idx = 0;
  size_t base_col = 0;
  bool operator==(const ColRef&) const = default;
};

/// Planner working state for the left-deep prefix built so far.
struct BuildState {
  std::unique_ptr<PlanNode> plan;
  std::vector<ColRef> cols;
  std::optional<ColRef> sorted_on;
  double est_rows = 0.0;
};

std::vector<ColRef> TableCols(size_t table_idx, const Schema& schema) {
  std::vector<ColRef> cols;
  cols.reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    cols.push_back(ColRef{table_idx, i});
  }
  return cols;
}

std::vector<ColRef> ConcatCols(const std::vector<ColRef>& a,
                               const std::vector<ColRef>& b) {
  std::vector<ColRef> out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Result<size_t> FindCol(const std::vector<ColRef>& cols, ColRef target) {
  for (size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] == target) return i;
  }
  return Status::Internal("planner lost track of a column");
}

Predicate ToPredicate(const FilterSpec& f, size_t col_pos) {
  Predicate p;
  p.kind = f.kind;
  p.column = col_pos;
  p.v1 = f.v1;
  p.v2 = f.v2;
  return p;
}

}  // namespace

Planner::Planner(const Catalog* catalog, CardinalityEstimator* cardinality,
                 PlannerOptions options)
    : catalog_(catalog), card_(cardinality), options_(options) {}

Result<std::unique_ptr<PhysicalPlan>> Planner::Plan(const QuerySpec& spec) {
  if (spec.tables.empty()) {
    return Status::InvalidArgument("query references no tables");
  }
  if (spec.joins.size() + 1 != spec.tables.size()) {
    return Status::InvalidArgument("need exactly tables-1 join edges");
  }

  // Group filters by table position.
  std::vector<std::vector<const FilterSpec*>> filters_by_table(
      spec.tables.size());
  for (const auto& f : spec.filters) {
    if (f.table_idx >= spec.tables.size()) {
      return Status::InvalidArgument("filter references unknown table");
    }
    filters_by_table[f.table_idx].push_back(&f);
  }

  // Base access path for one table: scan + pushed-down filters.
  // `ordered_col` requests delivery ordered on that column via an index
  // scan when available.
  auto base_access =
      [&](size_t tidx,
          const std::optional<std::string>& ordered_col) -> Result<BuildState> {
    const std::string& tname = spec.tables[tidx];
    RPE_ASSIGN_OR_RETURN(const Table* table, catalog_->GetTable(tname));
    BuildState s;
    s.cols = TableCols(tidx, table->schema());
    s.est_rows = static_cast<double>(table->num_rows());
    if (ordered_col.has_value() && catalog_->HasIndex(tname, *ordered_col)) {
      s.plan = MakeIndexScan(tname, *ordered_col);
      RPE_ASSIGN_OR_RETURN(size_t c, table->schema().ColumnIndex(*ordered_col));
      s.sorted_on = ColRef{tidx, c};
    } else {
      s.plan = MakeTableScan(tname);
    }
    s.plan->est_rows = s.est_rows;
    for (const FilterSpec* f : filters_by_table[tidx]) {
      RPE_ASSIGN_OR_RETURN(size_t c, table->schema().ColumnIndex(f->column));
      RPE_ASSIGN_OR_RETURN(double sel, card_->FilterSelectivity(tname, *f));
      s.plan = MakeFilter(std::move(s.plan), ToPredicate(*f, c));
      s.est_rows *= sel;
      s.plan->est_rows = std::max(1.0, s.est_rows);
      s.est_rows = s.plan->est_rows;
    }
    return s;
  };

  RPE_ASSIGN_OR_RETURN(BuildState state, base_access(0, std::nullopt));

  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const JoinEdge& edge = spec.joins[j];
    const size_t new_idx = j + 1;
    const std::string& new_table = spec.tables[new_idx];
    if (edge.left_idx > j) {
      return Status::InvalidArgument("join edge references a later table");
    }
    RPE_ASSIGN_OR_RETURN(const Table* new_t, catalog_->GetTable(new_table));
    RPE_ASSIGN_OR_RETURN(size_t left_base_col,
                         catalog_->GetTable(spec.tables[edge.left_idx])
                             .ValueOrDie()
                             ->schema()
                             .ColumnIndex(edge.left_col));
    RPE_ASSIGN_OR_RETURN(size_t right_base_col,
                         new_t->schema().ColumnIndex(edge.right_col));
    RPE_ASSIGN_OR_RETURN(
        size_t left_pos,
        FindCol(state.cols, ColRef{edge.left_idx, left_base_col}));

    RPE_ASSIGN_OR_RETURN(double join_sel,
                         card_->JoinSelectivity(spec.tables[edge.left_idx],
                                                edge.left_col, new_table,
                                                edge.right_col));
    const double new_rows = static_cast<double>(new_t->num_rows());
    // Selectivity of the new table's pushed-down filters.
    double new_filter_sel = 1.0;
    for (const FilterSpec* f : filters_by_table[new_idx]) {
      RPE_ASSIGN_OR_RETURN(double sel,
                           card_->FilterSelectivity(new_table, *f));
      new_filter_sel *= sel;
    }
    const double est_join = std::max(
        1.0, state.est_rows * new_rows * new_filter_sel * join_sel);

    const bool inner_index = catalog_->HasIndex(new_table, edge.right_col);
    JoinHint hint = edge.hint;
    if (hint == JoinHint::kAuto) {
      if (inner_index && state.est_rows <= options_.nlj_outer_max) {
        hint = JoinHint::kNestedLoop;
      } else if (state.sorted_on.has_value() &&
                 *state.sorted_on == ColRef{edge.left_idx, left_base_col} &&
                 inner_index) {
        hint = JoinHint::kMerge;
      } else {
        hint = JoinHint::kHash;
      }
    }

    if (hint == JoinHint::kNestedLoop && !inner_index &&
        (new_rows > options_.naive_nlj_inner_max ||
         state.est_rows * new_rows > options_.naive_nlj_work_max)) {
      hint = JoinHint::kHash;  // naive rescan would be pathological
    }
    if (hint == JoinHint::kMerge && !inner_index && state.sorted_on &&
        !(*state.sorted_on == ColRef{edge.left_idx, left_base_col})) {
      // Will need sorts on both sides; acceptable.
    }

    switch (hint) {
      case JoinHint::kNestedLoop: {
        // Optional partial batch sort on the outer side (§5.1).
        if (inner_index && state.est_rows >= options_.batch_sort_min_outer) {
          const size_t batch =
              std::clamp(static_cast<size_t>(state.est_rows / 8.0),
                         static_cast<size_t>(512), options_.batch_size_cap);
          auto bs = MakeBatchSort(std::move(state.plan), left_pos, batch);
          bs->est_rows = state.est_rows;
          state.plan = std::move(bs);
          state.sorted_on.reset();  // only batch-local order
        }
        std::unique_ptr<PlanNode> inner;
        if (inner_index) {
          inner = MakeIndexSeek(new_table, edge.right_col);
          // E at the seek node: total matches fed upward over the whole
          // query = join output before residual filters.
          inner->est_rows =
              std::max(1.0, state.est_rows * new_rows * join_sel);
        } else {
          // Naive rescanning inner: full scan per outer row + residual.
          inner = MakeTableScan(new_table);
          inner->est_rows = std::max(1.0, state.est_rows * new_rows);
          auto residual =
              MakeFilter(std::move(inner), Predicate::EqParam(right_base_col));
          residual->est_rows =
              std::max(1.0, state.est_rows * new_rows * join_sel);
          inner = std::move(residual);
        }
        double running = inner->est_rows;
        for (const FilterSpec* f : filters_by_table[new_idx]) {
          RPE_ASSIGN_OR_RETURN(size_t c,
                               new_t->schema().ColumnIndex(f->column));
          RPE_ASSIGN_OR_RETURN(double sel,
                               card_->FilterSelectivity(new_table, *f));
          inner = MakeFilter(std::move(inner), ToPredicate(*f, c));
          running = std::max(1.0, running * sel);
          inner->est_rows = running;
        }
        auto join = MakeNestedLoopJoin(std::move(state.plan),
                                       std::move(inner), left_pos);
        join->est_rows = est_join;
        state.cols = ConcatCols(state.cols,
                                TableCols(new_idx, new_t->schema()));
        state.plan = std::move(join);
        state.est_rows = est_join;
        // NLJ preserves outer order; sorted_on unchanged (unless batch sort
        // cleared it above).
        break;
      }
      case JoinHint::kMerge: {
        // Left side: sort unless already ordered on the join column.
        if (!(state.sorted_on.has_value() &&
              *state.sorted_on == ColRef{edge.left_idx, left_base_col})) {
          auto sort = MakeSort(std::move(state.plan), left_pos);
          sort->est_rows = state.est_rows;
          state.plan = std::move(sort);
        }
        // Right side: ordered index scan if possible, else scan + sort.
        RPE_ASSIGN_OR_RETURN(BuildState right,
                             base_access(new_idx, edge.right_col));
        RPE_ASSIGN_OR_RETURN(
            size_t right_pos,
            FindCol(right.cols, ColRef{new_idx, right_base_col}));
        if (!(right.sorted_on.has_value() &&
              *right.sorted_on == ColRef{new_idx, right_base_col})) {
          auto sort = MakeSort(std::move(right.plan), right_pos);
          sort->est_rows = right.est_rows;
          right.plan = std::move(sort);
        }
        auto join = MakeMergeJoin(std::move(state.plan), std::move(right.plan),
                                  left_pos, right_pos);
        join->est_rows = est_join;
        state.cols = ConcatCols(state.cols, right.cols);
        state.plan = std::move(join);
        state.est_rows = est_join;
        state.sorted_on = ColRef{edge.left_idx, left_base_col};
        break;
      }
      case JoinHint::kHash:
      default: {
        RPE_ASSIGN_OR_RETURN(BuildState right,
                             base_access(new_idx, std::nullopt));
        RPE_ASSIGN_OR_RETURN(
            size_t right_pos,
            FindCol(right.cols, ColRef{new_idx, right_base_col}));
        // Build on the smaller estimated side.
        const bool build_new = right.est_rows <= state.est_rows;
        std::unique_ptr<PlanNode> join;
        if (build_new) {
          join = MakeHashJoin(std::move(right.plan), std::move(state.plan),
                              right_pos, left_pos);
          state.cols = ConcatCols(right.cols, state.cols);
          // Probe order is preserved; probe side is the old prefix.
        } else {
          join = MakeHashJoin(std::move(state.plan), std::move(right.plan),
                              left_pos, right_pos);
          state.cols = ConcatCols(state.cols, right.cols);
          state.sorted_on.reset();  // probe side is the new table
        }
        join->est_rows = est_join;
        state.plan = std::move(join);
        state.est_rows = est_join;
        break;
      }
    }
  }

  // Aggregation.
  if (spec.agg.has_value()) {
    const AggSpec& agg = *spec.agg;
    std::vector<size_t> group_pos;
    std::vector<double> distincts;
    for (const auto& [tidx, col] : agg.group_cols) {
      RPE_ASSIGN_OR_RETURN(const Table* t,
                           catalog_->GetTable(spec.tables[tidx]));
      RPE_ASSIGN_OR_RETURN(size_t base, t->schema().ColumnIndex(col));
      RPE_ASSIGN_OR_RETURN(size_t pos,
                           FindCol(state.cols, ColRef{tidx, base}));
      group_pos.push_back(pos);
      RPE_ASSIGN_OR_RETURN(double d,
                           card_->DistinctCount(spec.tables[tidx], col));
      distincts.push_back(d);
    }
    const double est_groups = card_->GroupCount(state.est_rows, distincts);
    const bool ordered_on_group =
        group_pos.size() == 1 && state.sorted_on.has_value() &&
        [&] {
          const auto& [tidx, col] = agg.group_cols[0];
          const Table* t = *catalog_->GetTable(spec.tables[tidx]);
          auto base = t->schema().ColumnIndex(col);
          return base.ok() && *state.sorted_on == ColRef{tidx, *base};
        }();
    if (ordered_on_group) {
      auto node = MakeStreamAggregate(std::move(state.plan), group_pos);
      node->est_rows = est_groups;
      state.plan = std::move(node);
    } else if (agg.prefer_sort_stream && group_pos.size() == 1) {
      auto sort = MakeSort(std::move(state.plan), group_pos[0]);
      sort->est_rows = state.est_rows;
      auto node = MakeStreamAggregate(std::move(sort), group_pos);
      node->est_rows = est_groups;
      state.plan = std::move(node);
    } else {
      auto node = MakeHashAggregate(std::move(state.plan), group_pos);
      node->est_rows = est_groups;
      state.plan = std::move(node);
    }
    state.est_rows = est_groups;
    // Aggregate output: group columns then count; provenance of the group
    // columns survives, the count column is synthetic.
    std::vector<ColRef> new_cols;
    for (const auto& [tidx, col] : agg.group_cols) {
      const Table* t = *catalog_->GetTable(spec.tables[tidx]);
      new_cols.push_back(ColRef{tidx, *t->schema().ColumnIndex(col)});
    }
    new_cols.push_back(ColRef{static_cast<size_t>(-1), 0});  // count
    state.cols = new_cols;
    state.sorted_on = new_cols.size() > 1
                          ? std::optional<ColRef>(new_cols[0])
                          : std::nullopt;
  }

  // ORDER BY.
  if (spec.order_by.has_value()) {
    const auto& [tidx, col] = *spec.order_by;
    RPE_ASSIGN_OR_RETURN(const Table* t,
                         catalog_->GetTable(spec.tables[tidx]));
    auto base = t->schema().ColumnIndex(col);
    if (base.ok()) {
      auto pos = FindCol(state.cols, ColRef{tidx, *base});
      if (pos.ok() && !(state.sorted_on.has_value() &&
                        *state.sorted_on == ColRef{tidx, *base})) {
        auto sort = MakeSort(std::move(state.plan), *pos);
        sort->est_rows = state.est_rows;
        state.plan = std::move(sort);
        state.sorted_on = ColRef{tidx, *base};
      }
    }
  }

  // TOP.
  if (spec.top_limit > 0) {
    auto top = MakeTop(std::move(state.plan), spec.top_limit);
    top->est_rows =
        std::min(static_cast<double>(spec.top_limit), state.est_rows);
    state.est_rows = top->est_rows;
    state.plan = std::move(top);
  }

  RPE_RETURN_NOT_OK(ResolvePlanSchemas(state.plan.get(), *catalog_));
  return std::make_unique<PhysicalPlan>(std::move(state.plan));
}

}  // namespace rpe
